"""Turn a `repro lint --format sarif` log into GitHub check annotations.

    python .github/scripts/sarif_annotations.py lint.sarif

Each SARIF result becomes one `::error`/`::warning` workflow command, so
findings land inline on the PR diff without any marketplace action.
Exits 0 regardless of findings — the gating happens in the lint step
itself; this script only decorates the run.
"""

import json
import sys


def escape(text):
    # workflow-command data: %, CR and LF must be escaped
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} LOG.sarif", file=sys.stderr)
        return 2
    try:
        sarif = json.loads(open(argv[1]).read())
    except FileNotFoundError:
        print(f"{argv[1]} not found; nothing to annotate", file=sys.stderr)
        return 0
    emitted = 0
    for run in sarif.get("runs", []):
        for result in run.get("results", []):
            level = "error" if result.get("level") == "error" else "warning"
            message = result.get("message", {}).get("text", "")
            rule = result.get("ruleId", "lint")
            for loc in result.get("locations", []):
                phys = loc.get("physicalLocation", {})
                uri = phys.get("artifactLocation", {}).get("uri", "")
                region = phys.get("region", {})
                line = region.get("startLine", 1)
                col = region.get("startColumn", 1)
                print(
                    f"::{level} file={uri},line={line},col={col},"
                    f"title=repro-lint {rule}::{escape(message)}"
                )
                emitted += 1
    print(f"{emitted} annotation(s) emitted", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
