"""Quickstart: the paper's headline result in a few lines.

Builds Theorem 1's multiple-path embedding of the 2^n-node cycle in Q_n,
verifies every claimed invariant mechanically, and compares its packet
throughput with the classical gray-code embedding of Figure 1.

Run:  python examples/quickstart.py [n]
"""

import sys

from repro.core import embed_cycle_load1, graycode_cycle_embedding, theorem1_claim
from repro.routing.schedule import (
    multipath_packet_schedule,
    p_packet_cost_singlepath,
)


def main(n: int = 8) -> None:
    print(f"== Theorem 1 on Q_{n} ({2**n} nodes) ==")
    emb = embed_cycle_load1(n)
    emb.verify()  # one-to-one, valid paths, per-edge edge-disjointness
    claim = theorem1_claim(n)
    print(f"claimed width floor(n/2) = {claim['width']}, achieved {emb.width}")
    print(f"dilation {emb.dilation} (paths of length <= 3 plus the direct edge)")

    sched = multipath_packet_schedule(emb, extra_direct_at=3)
    sched.verify()  # no directed link carries two packets in one step
    per_edge = emb.info["packets_per_edge"]
    print(
        f"certified schedule: {per_edge} packets per cycle edge "
        f"delivered in {sched.makespan} steps "
        f"({sched.busy_link_fraction():.0%} of all link-step slots busy)"
    )

    gray = graycode_cycle_embedding(n)
    m = per_edge
    gray_cost = p_packet_cost_singlepath(gray, m)
    print(
        f"classical gray code needs {gray_cost} steps for the same {m} packets "
        f"-> speedup {gray_cost / sched.makespan:.1f}x (grows as Theta(n))"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
