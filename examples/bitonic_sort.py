"""Bitonic sort on the hypercube: the butterfly-pattern workload live.

Every compare-exchange stage is one dimension exchange — one step in the
paper's model since all dimension-j links run in parallel.  Sorting 2^n
keys costs exactly n(n+1)/2 communication steps.

Run:  python examples/bitonic_sort.py [n]
"""

import random
import sys

from repro.apps.bitonic import bitonic_communication_steps, bitonic_sort


def main(n: int = 8) -> None:
    rng = random.Random(0)
    vals = [rng.random() for _ in range(1 << n)]
    out, stats = bitonic_sort(vals)
    assert out == sorted(vals)
    print(f"== bitonic sort of {1 << n} keys on Q_{n} ==")
    print(f"  sorted correctly: True")
    print(
        f"  stages: {stats['stages']} (= n(n+1)/2 = "
        f"{bitonic_communication_steps(n)}), one step each"
    )
    print(f"  link crossings: {stats['link_crossings']}")
    print(
        "  every stage drives all 2^n links of one dimension in parallel —"
        " the all-links-per-step model the paper's embeddings exploit"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
