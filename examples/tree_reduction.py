"""Parallel reduction over Theorem 5's width-n tree embedding.

A classic tree computation (sum-reduce then broadcast back) runs over the
complete binary tree embedded in the hypercube with width n: every tree
link ships its partial results over n parallel paths, so a reduction with
w-word payloads costs ~ depth * ceil(w/n) communication rounds instead of
depth * w.

Run:  python examples/tree_reduction.py [m]   (m in {2, 4})
"""

import sys

import numpy as np

from repro.core import theorem5_embedding
from repro.routing.schedule import measured_multipath_cost


def tree_reduce(emb, leaf_values: np.ndarray) -> float:
    """Sum-reduce leaf values up the embedded tree, level by level."""
    levels = emb.guest.levels
    values = {}
    for i, leaf in enumerate(emb.guest.leaves()):
        values[leaf] = float(leaf_values[i])
    for level in range(levels - 2, -1, -1):
        for v in range(1 << level, 1 << (level + 1)):
            # children ship their partials along their embedded paths
            for child in (2 * v, 2 * v + 1):
                paths = emb.edge_paths[(child, v)]
                assert paths[0][0] == emb.vertex_map[child]
                assert paths[0][-1] == emb.vertex_map[v]
            values[v] = values[2 * v] + values[2 * v + 1]
    return values[1]


def main(m: int = 2) -> None:
    emb = theorem5_embedding(m)
    n = emb.info["n"]
    tree = emb.guest
    print(
        f"== sum-reduction over the {tree.num_vertices}-node CBT embedded "
        f"in Q_{emb.host.n} (width {n}) =="
    )
    rng = np.random.default_rng(1)
    leaves = rng.normal(size=1 << (tree.levels - 1))
    total = tree_reduce(emb, leaves)
    print(f"  reduce result {total:.6f} vs numpy {leaves.sum():.6f}")
    assert abs(total - leaves.sum()) < 1e-9

    cost = measured_multipath_cost(emb)
    print(
        f"  one full exchange phase (every tree link, width {n} paths): "
        f"{cost} steps on the link-bound simulator"
    )
    per_round_words = n
    print(
        f"  => a w-word reduction ships ceil(w/{per_round_words}) rounds "
        f"per level instead of w (the Theta(n) width dividend)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
