"""Compute a real FFT over the embedded FFT dataflow graph (Lemma 9).

The large-copy embedding maps the ``(n+1) * 2^n``-node FFT graph onto
``Q_n`` with dilation 1 and congestion <= 2: rank ``l`` of column ``c``
lives on hypercube node ``c``, and every butterfly exchange is either local
or a single hypercube link.  This example runs an actual radix-2 DIT FFT
through that mapping — each stage's communication is exactly the embedded
cross edges — and checks the result against numpy.fft.

Run:  python examples/fft_on_hypercube.py [n]
"""

import sys

import numpy as np

from repro.core import large_fft_embedding


def fft_via_embedding(values: np.ndarray) -> np.ndarray:
    """Radix-2 decimation-in-time FFT driven by the embedded FFT graph."""
    size = len(values)
    n = size.bit_length() - 1
    emb = large_fft_embedding(n)
    # state[c] = working value held by hypercube node c (one point per node,
    # bit-reversed input order as usual for DIT)
    rev = np.array(
        [int(format(i, f"0{n}b")[::-1], 2) for i in range(size)]
    )
    state = np.asarray(values, dtype=complex)[rev]

    hops = 0
    for rank in range(n):
        bit = 1 << rank
        partner = np.arange(size) ^ bit
        # the communication of this stage is exactly the embedded rank-`rank`
        # cross edges: node c sends its value across dimension `rank`
        for c in range(size):
            path = emb.edge_paths[((rank, c), (rank + 1, c ^ bit))]
            assert len(path) == 2 and path[0] == c and path[1] == c ^ bit
            hops += 1
        received = state[partner]
        # butterfly update: low partner keeps a + w b, high gets a - w b
        idx = np.arange(size)
        low = (idx & bit) == 0
        out = np.empty_like(state)
        w_low = np.exp(-2j * np.pi * (idx[low] & (bit - 1)) / (2 * bit))
        out[low] = state[low] + w_low * received[low]
        out[~low] = received[~low] - w_low * state[~low]
        state = out
    print(f"  stage communication: {hops} link crossings "
          f"({n} stages x {size} nodes, congestion "
          f"{emb.congestion} as embedded)")
    return state


def main(n: int = 6) -> None:
    size = 1 << n
    rng = np.random.default_rng(0)
    x = rng.normal(size=size) + 1j * rng.normal(size=size)
    print(f"== {size}-point FFT on Q_{n} via the large-copy FFT embedding ==")
    ours = fft_via_embedding(x)
    ref = np.fft.fft(x)
    err = np.max(np.abs(ours - ref))
    print(f"  max |error| vs numpy.fft: {err:.2e}")
    assert err < 1e-9


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
