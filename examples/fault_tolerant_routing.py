"""Fault tolerance over edge-disjoint paths (paper Section 1 + Rabin's IDA).

Theorem 1 gives every cycle edge ``w`` edge-disjoint hypercube paths.  This
example disperses a message into one IDA piece per path (any half of them
reconstruct), fails random links, and measures end-to-end delivery — then
sweeps the failure probability to show the multi-path advantage over a
single-path embedding.

Run:  python examples/fault_tolerant_routing.py [n]
"""

import sys

from repro.core import embed_cycle_load1, graycode_cycle_embedding
from repro.fault import FaultyLinkModel, multipath_delivery_experiment
from repro.fault.ida import disperse, reconstruct


def main(n: int = 8) -> None:
    message = b"routing multiple paths in hypercubes"
    print("== IDA on its own ==")
    pieces = disperse(message, w=5, m=3)
    recovered = reconstruct(pieces[:2] + pieces[3:4], 5, 3)
    print(f"5 pieces, any 3 reconstruct: {recovered == message}")
    overhead = 5 * len(pieces[0][1]) / len(message)
    print(f"bandwidth overhead w/m: {overhead:.2f}x\n")

    emb = embed_cycle_load1(n)
    gray = graycode_cycle_embedding(n)
    print(f"== delivery rate under link faults (Q_{n}) ==")
    print(f"{'fault prob':>10} {'multipath+IDA':>14} {'single path':>12}")
    for prob in (0.01, 0.02, 0.05, 0.10, 0.20):
        faults = FaultyLinkModel.random(emb.host, prob, seed=42)
        report = multipath_delivery_experiment(emb, faults, message)
        single_ok = sum(
            faults.path_alive(path) for path in gray.edge_paths.values()
        )
        single_rate = single_ok / gray.guest.num_edges
        print(f"{prob:>10.2f} {report.delivery_rate:>14.3f} {single_rate:>12.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
