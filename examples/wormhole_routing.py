"""Bit-serial message routing (paper Section 7).

Every node of the hypercube sends an M-packet message to a unique random
destination.  The single-path baseline store-and-forwards the whole message
(each hop holds its link for M steps: Theta(n * M) completion); splitting
each message into n pieces routed over Theorem 3's n CCC copies reduces a
hop to M/n steps and completion to O(M).

Run:  python examples/wormhole_routing.py [n]   (n a power of two)
"""

import sys

from repro.routing.permutation import (
    permutation_baseline_time,
    permutation_multicopy_time,
    random_permutation,
)


def main(n: int = 4) -> None:
    host_dim = n + (n.bit_length() - 1)
    size = 1 << host_dim
    perm = random_permutation(size, seed=7)
    print(f"== permutation routing on Q_{host_dim} ({size} nodes), {n} CCC copies ==")
    print(f"{'M':>6} {'single-path':>12} {'n pieces':>10} {'speedup':>8}")
    for M in (16, 64, 256):
        base = permutation_baseline_time(host_dim, perm, M)
        multi = permutation_multicopy_time(n, perm, M)
        print(f"{M:>6} {base:>12} {multi:>10} {base / multi:>8.2f}")
    print(
        "\nbaseline grows ~ n*M; the split version ~ 4*M, "
        "so the speedup approaches Theta(n) as n grows"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
