"""Grid relaxation on a hypercube: the paper's Sections 2 and 8.3 worked out.

Runs a real Jacobi iteration on an M x M grid, then compares the per-phase
communication cost of the three process-to-processor mappings of
Section 8.3 (large-copy points, blocked multiple-path, blocked large-copy).

Run:  python examples/grid_relaxation.py [M] [N]
"""

import sys

from repro.apps.relaxation import GridRelaxation, relaxation_strategy_comparison


def main(M: int = 256, N: int = 16) -> None:
    print(f"== Jacobi relaxation, {M}x{M} grid on {N * N} processors ==")
    relax = GridRelaxation(min(M, 128))  # keep the numerics quick
    delta = relax.run(100)
    print(f"numerical check: max update after 100 sweeps = {delta:.2e}")

    print("\nper-phase communication (Section 8.3):")
    table = relaxation_strategy_comparison(M, N)
    header = f"{'strategy':<22}{'total values':>14}{'per proc':>10}{'steps':>8}"
    print(header)
    print("-" * len(header))
    for name, row in table.items():
        print(
            f"{name:<22}{row['total_values']:>14}{row['per_processor']:>10.0f}"
            f"{row['steps']:>8}"
        )
    gray = table["blocked_multipath"].get("steps_graycode")
    if gray is not None:
        print(
            f"\nblocked boundary with classical gray code: {gray} steps; "
            "the multiple-path bundles amortize it by Theta(log N) as N grows"
        )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
