"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires bdist_wheel on this interpreter; with no network
access we fall back to `python setup.py develop`, which needs this file.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
