"""E2 (Lemma 1 / Section 3.1): Hamiltonian decompositions of hypercubes.

Claim: Q_{2k} splits into k undirected (2k directed) edge-disjoint
Hamiltonian cycles; Q_{2k+1} into k cycles plus a perfect matching — each
with dilation 1 and congestion 1 as cycle embeddings.
"""

from conftest import print_table

from repro.core import cycle_multicopy_embedding
from repro.hypercube.hamiltonian import _CACHE, hamiltonian_decomposition


def test_e02_lemma1_decompositions(benchmark):
    rows = []
    for n in range(2, 11):
        dec = hamiltonian_decomposition(n)  # verified internally
        claimed = n // 2
        rows.append(
            (n, claimed, len(dec.cycles), "yes" if n % 2 else "no",
             "yes" if dec.matching else "no")
        )
        assert len(dec.cycles) == claimed
    print_table(
        "E2: Lemma 1 decompositions",
        rows,
        ["n", "claimed cycles", "measured", "odd n", "matching"],
    )

    def rebuild():
        _CACHE.pop(8, None)
        hamiltonian_decomposition(8)

    benchmark(rebuild)


def test_e02_directed_copies_congestion():
    rows = []
    for n in (4, 6, 8):
        mc = cycle_multicopy_embedding(n)
        mc.verify()
        rows.append((n, n, mc.k, 1, mc.dilation, 1, mc.edge_congestion))
        assert mc.dilation == 1
        assert mc.edge_congestion == 1
    print_table(
        "E2: directed cycle copies (even n)",
        rows,
        ["n", "claimed copies", "measured", "claimed dil", "measured dil",
         "claimed cong", "measured cong"],
    )
