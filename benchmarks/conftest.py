"""Shared helpers for the experiment benches (E1-E13).

Every bench prints a paper-claim vs. measured table (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserts the claim's *shape*
(who wins, by what factor class) rather than exact constants, per the
reproduction policy in DESIGN.md.
"""

from __future__ import annotations


def print_table(title: str, rows, headers) -> None:
    print(f"\n== {title} ==")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
