"""A5: what the width buys beyond throughput — adaptive routing and matmul.

Two extension experiments quantifying the value of the paper's machinery in
settings the paper only gestures at:

* adaptive wormhole placement over Theorem 1's bundles (pick the
  least-loaded of the w paths per message) vs oblivious single-path;
* Cannon's matrix-multiply shifts overlapped on two edge-disjoint torus
  copies (Section 8.1's Johnsson–Ho citation) vs a single copy.
"""

from conftest import print_table

from repro.apps.matmul import cannon_communication_steps
from repro.core import embed_cycle_load1
from repro.routing.adaptive import adaptive_wormhole_experiment


def test_a05_adaptive_wormhole(benchmark):
    emb = embed_cycle_load1(8)
    rows = []
    for messages in (64, 256, 1024):
        res = adaptive_wormhole_experiment(emb, messages, flits=16, seed=1)
        rows.append(
            (messages, res["oblivious"], res["adaptive"],
             f"{res['oblivious'] / res['adaptive']:.2f}")
        )
        assert res["adaptive"] < res["oblivious"]
    # the dividend grows with load
    speedups = [float(r[-1]) for r in rows]
    assert speedups == sorted(speedups)
    print_table(
        "A5: adaptive least-loaded path choice over width-5 bundles (Q_8, "
        "16-flit worms)",
        rows,
        ["messages", "oblivious", "adaptive", "speedup"],
    )

    benchmark(
        lambda: adaptive_wormhole_experiment(emb, 128, flits=8, seed=1)
    )


def test_a05_cannon_shift_overlap(benchmark):
    rows = []
    for P, blk in ((16, 8), (16, 32), (64, 8)):
        res = cannon_communication_steps(P, blk)
        rows.append(
            (P, blk, res["overlapped_steps"], res["single_copy_steps"])
        )
        assert res["overlapped_steps"] * 2 == res["single_copy_steps"]
    print_table(
        "A5: Cannon shifts on two edge-disjoint torus copies vs one",
        rows,
        ["P", "block packets", "two copies", "one copy"],
    )

    benchmark(lambda: cannon_communication_steps(16, 8))
