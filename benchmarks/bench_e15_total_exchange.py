"""E15 (Section 1, Stout–Wagar theme): all-to-all personalized communication.

Single-port dimension exchange costs n * 2^{n-1}; in the paper's model
(every node drives all n links per step) e-cube spreads the 2^n * (2^n - 1)
packets perfectly evenly (2^{n-1} per directed link) and completes within a
small factor of the bandwidth bound — the Theta(n) all-links dividend.
"""

from conftest import print_table

from repro.apps.total_exchange import (
    ecube_link_load,
    total_exchange_comparison,
)


def test_e15_total_exchange(benchmark):
    rows = []
    for n in (4, 6, 8):
        row = total_exchange_comparison(n)
        rows.append(
            (n, row["single_port"], row["all_port"], row["bandwidth_bound"],
             f"{row['single_port'] / row['all_port']:.2f}")
        )
        assert row["single_port"] == n * 2 ** (n - 1)
        assert row["all_port"] >= row["bandwidth_bound"]
        assert row["all_port"] <= 2 * row["bandwidth_bound"] + 2 * n
    speedups = [float(r[-1]) for r in rows]
    assert speedups == sorted(speedups)  # Theta(n) growth
    print_table(
        "E15: all-to-all personalized exchange",
        rows,
        ["n", "single-port steps", "all-port measured",
         "bandwidth bound 2^(n-1)", "speedup"],
    )

    benchmark(lambda: total_exchange_comparison(6))


def test_e15_ecube_load_perfectly_uniform():
    for n in (3, 4, 5, 6):
        hist = ecube_link_load(n)
        assert hist == {1 << (n - 1): n * (1 << n)}
