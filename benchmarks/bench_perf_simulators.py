"""Performance: reference vs vectorized simulator (hpc-parallel hygiene).

Not a paper experiment — this bench keeps the two simulator engines honest
against each other (same semantics class, comparable makespans) and records
where the numpy engine pays off, per the profile-first guidance.
"""

from conftest import print_table

from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.permutation import dimension_order_path, random_permutation
from repro.routing.simulator import StoreForwardSimulator


def _workload(n: int, reps: int):
    perm = random_permutation(1 << n, seed=1)
    paths = [dimension_order_path(n, u, v) for u, v in enumerate(perm) if u != v]
    return [(p, r + 1) for p in paths for r in range(reps)]


def test_perf_reference_engine(benchmark):
    work = _workload(10, 4)

    def run():
        sim = StoreForwardSimulator(Hypercube(10))
        return sim.run(work).makespan

    makespan = benchmark(run)
    assert makespan > 0


def test_perf_vectorized_engine(benchmark):
    work = _workload(10, 4)

    def run():
        sim = FastStoreForward(Hypercube(10))
        return sim.run(work).makespan

    makespan = benchmark(run)
    assert makespan > 0


def test_engines_agree_within_envelope():
    rows = []
    for n, reps in ((8, 4), (10, 4), (12, 4)):
        work = _workload(n, reps)
        a = StoreForwardSimulator(Hypercube(n)).run(work).makespan
        b = FastStoreForward(Hypercube(n)).run(work).makespan
        rows.append((n, len(work), a, b))
        # FIFO vs static-priority arbitration: same congestion+dilation
        # envelope, so makespans stay within a small factor
        assert 0.5 <= b / a <= 2.0
    print_table(
        "perf: FIFO reference vs vectorized static-priority engine",
        rows,
        ["n", "packets", "reference makespan", "vectorized makespan"],
    )
