"""E10 (Sections 2 & 8.3): grid relaxation mapping comparison.

Claims: blocking minimizes total communication (O(M*N) values vs O(M^2));
the multiple-path embedding then delivers a block boundary in
Theta(M / (N log N)) steps instead of the gray code's Theta(M/N); the
blocked large-copy approach trades log N more traffic for cheaper links.
"""

from conftest import print_table

from repro.apps.broadcast import cycle_neighbor_exchange
from repro.apps.relaxation import GridRelaxation, relaxation_strategy_comparison


def test_e10_strategy_comparison(benchmark):
    rows = []
    for M, N in ((256, 8), (256, 16), (1024, 16)):
        table = relaxation_strategy_comparison(M, N)
        for name, data in table.items():
            rows.append(
                (f"M={M},N={N}", name, data["total_values"],
                 int(data["per_processor"]), data["steps"])
            )
        blocked = table["blocked_multipath"]
        points = table["large_copy_points"]
        # blocking reduces total communication by Theta(M/N)
        assert blocked["total_values"] * (M // (4 * N)) <= points["total_values"]
    print_table(
        "E10: Section 8.3 mapping comparison (per relaxation phase)",
        rows,
        ["config", "strategy", "total values", "per processor", "steps"],
    )

    benchmark(lambda: relaxation_strategy_comparison(256, 16))


def test_e10_cycle_exchange_speedup(benchmark):
    # the Section 2 speedup claim in its purest form, at growing n
    rows = []
    for n in (4, 8, 12):
        res = cycle_neighbor_exchange(n, m=60)
        speedup = res["graycode"] / res["multipath"]
        rows.append(
            (n, res["graycode"], res["multipath"], f"{speedup:.2f}",
             res["width"])
        )
        assert res["multipath"] < res["graycode"]
        assert res["multipath"] >= res["lower_bound"] // res["width"]
    print_table(
        "E10: m=60 packets per cycle node: gray vs Theorem 1 (speedup ~ (a+2)/3)",
        rows,
        ["n", "gray steps", "multipath steps", "speedup", "width"],
    )

    benchmark(lambda: cycle_neighbor_exchange(8, 60))


def test_e10_numerics_converge():
    relax = GridRelaxation(64)
    assert relax.run(200) < relax.values.max()
    assert 0.0 < relax.values[1:, :].max() < 1.0
