"""E11 (Section 7): bit-serial message routing.

Claims: store-and-forward of whole M-packet messages completes a random
permutation in Theta(n * M); splitting each message into n pieces routed on
the n CCC copies reduces this to O(M); wormhole/cut-through over the
multiple paths removes queueing.
"""

from conftest import print_table

from repro.routing.permutation import (
    permutation_baseline_time,
    permutation_multicopy_time,
    random_permutation,
)


def test_e11_split_message_speedup(benchmark):
    rows = []
    for n in (2, 4, 8):
        host_dim = n + (n.bit_length() - 1)
        perm = random_permutation(1 << host_dim, seed=7)
        M = 64
        base = permutation_baseline_time(host_dim, perm, M)
        multi = permutation_multicopy_time(n, perm, M)
        rows.append(
            (n, host_dim, M, base, multi, f"{base / multi:.2f}")
        )
        if n >= 4:
            assert multi < base  # the split wins and the gap grows with n
    speedups = [float(r[-1]) for r in rows]
    assert speedups == sorted(speedups)  # Theta(n) growth shape
    print_table(
        "E11: M-packet permutation, message store-and-forward vs n CCC pieces",
        rows,
        ["n (copies)", "host dim", "M", "baseline steps", "split steps",
         "speedup"],
    )

    perm = random_permutation(64, seed=7)
    benchmark(lambda: permutation_multicopy_time(4, perm, 64))


def test_e11_baseline_scales_with_message_length():
    # Theta(n*M): doubling M doubles the baseline
    perm = random_permutation(64, seed=5)
    t1 = permutation_baseline_time(6, perm, 32)
    t2 = permutation_baseline_time(6, perm, 64)
    assert 1.8 <= t2 / t1 <= 2.2

    m1 = permutation_multicopy_time(4, perm, 32)
    m2 = permutation_multicopy_time(4, perm, 64)
    assert 1.8 <= m2 / m1 <= 2.2  # O(M): also linear, smaller slope
    assert m2 / 64 < t2 / 64


def test_e11_wormhole_mode(benchmark):
    perm = random_permutation(64, seed=9)
    rows = []
    for M in (16, 64):
        base = permutation_baseline_time(6, perm, M, mode="wormhole")
        multi = permutation_multicopy_time(4, perm, M, mode="wormhole")
        rows.append((M, base, multi))
    print_table(
        "E11: flit-level wormhole variant (cut-through pieces)",
        rows,
        ["M", "single worm", "n pieces"],
    )
    benchmark(
        lambda: permutation_baseline_time(6, perm, 32, mode="wormhole")
    )


def test_e11_x_two_phase_routing(benchmark):
    """Section 7's closing alternative: route directly over X(butterfly).

    Messages take a row-butterfly phase then a column-butterfly phase, with
    the n pieces of each message on the width-n parallel tracks of every X
    edge — 'the need to queue messages can be eliminated'.
    """
    from repro.routing.x_routing import XRouter, x_permutation_time
    from repro.routing.permutation import (
        permutation_baseline_time,
        random_permutation,
    )

    rows = []
    for m in (2, 4):
        router = XRouter(m)
        host_dim = router.host.n
        perm = random_permutation(1 << host_dim, seed=11)
        M = 64
        base = permutation_baseline_time(host_dim, perm, M)
        xr = x_permutation_time(m, perm, M, router=router)
        rows.append((m, host_dim, M, base, xr, f"{base / xr:.2f}"))
        if m >= 4:
            # at m = 2 (Q_6) the two-phase route overhead roughly breaks
            # even; the win appears from m = 4 on and grows with n
            assert xr < base
    speedups = [float(r[-1]) for r in rows]
    assert speedups == sorted(speedups)  # widens with n
    print_table(
        "E11: two-phase routing over X(butterfly) vs single-path baseline",
        rows,
        ["m", "host dim", "M", "baseline", "X router", "speedup"],
    )

    router = XRouter(2)
    perm = random_permutation(64, seed=11)
    benchmark(lambda: x_permutation_time(2, perm, 64, router=router))
