"""Ablations: why the paper's design choices matter.

A1 — window overlap (Section 5.3's "two naive extremes"): identical windows
pile all straight edges onto r dimensions, disjoint windows admit only
(n+r)/r copies and still congest; the nested overlapping windows give
congestion 2 with all n copies.

A2 — moment labeling (Theorems 1/2): with a constant special-cycle label,
neighboring columns project the *same* cycle, the middle edges collide, and
the 3-step schedule is no longer feasible — the moments are exactly what
makes the projections edge-disjoint.
"""

import pytest
from conftest import print_table

from repro.core import embed_cycle_load1
from repro.core.ccc_multicopy import (
    ccc_multicopy_embedding,
    ccc_multicopy_naive,
    theorem3_claim,
)
from repro.routing.schedule import measured_multipath_cost, multipath_packet_schedule


def test_a01_window_ablation(benchmark):
    rows = []
    for n in (4, 8):
        paper = ccc_multicopy_embedding(n)
        ident = ccc_multicopy_naive(n, "identical")
        disj = ccc_multicopy_naive(n, "disjoint")
        for mc in (paper, ident, disj):
            mc.verify()
        rows.append((n, "paper (overlapping)", paper.k, paper.edge_congestion))
        rows.append((n, "identical windows", ident.k, ident.edge_congestion))
        rows.append((n, "disjoint windows", disj.k, disj.edge_congestion))
        assert paper.edge_congestion == theorem3_claim(n)["edge_congestion"]
        r = n.bit_length() - 1
        # the paper's lower bound for the naive schemes: congestion >= n/r
        assert ident.edge_congestion >= n // r
        # disjoint admits far fewer copies
        assert disj.k < paper.k
        if n // r > 2:  # the blowup appears once n/r exceeds Theorem 3's 2
            assert ident.edge_congestion > paper.edge_congestion
            assert disj.edge_congestion > paper.edge_congestion
    print_table(
        "A1: window-choice ablation (Theorem 3)",
        rows,
        ["n", "scheme", "copies", "edge congestion"],
    )

    benchmark(lambda: ccc_multicopy_naive(4, "identical"))


def test_a02_moment_labeling_ablation(benchmark):
    rows = []
    for n in (8, 10):
        good = embed_cycle_load1(n, labeling="moment")
        bad = embed_cycle_load1(n, labeling="constant")
        good.verify()
        bad.verify()  # still a valid embedding per edge...
        sched = multipath_packet_schedule(good, extra_direct_at=3)
        sched.verify()
        with pytest.raises(AssertionError):
            # ...but the 3-step schedule collides without the moments
            multipath_packet_schedule(bad, extra_direct_at=3).verify()
        good_cost = measured_multipath_cost(good)
        bad_cost = measured_multipath_cost(bad)
        rows.append((n, good.congestion, bad.congestion, good_cost, bad_cost))
        assert bad.congestion > good.congestion
        assert bad_cost > good_cost
    print_table(
        "A2: moment-labeling ablation (Theorem 1; 'constant' uses cycle 0 "
        "everywhere)",
        rows,
        ["n", "moment congestion", "constant congestion",
         "moment measured cost", "constant measured cost"],
    )

    benchmark(lambda: embed_cycle_load1(8, labeling="constant"))


def test_a03_theorem2_batched_remark(benchmark):
    """The paper's batched remark, measured honestly.

    The remark claims 2k batches with rotating doubled cycles cost
    3(2k)+1 instead of 4(2k).  A verifier-backed pipeline search settles at
    period 4 (= the naive cost): every batch's first hops cover all
    detour-class links, so the 4th-step stragglers always collide with the
    next batch regardless of which cycle is doubled.  Recorded as a
    reproduction finding in EXPERIMENTS.md.
    """
    from repro.core.cycle_multipath import theorem2_batched_schedule

    rows = []
    for n in (6, 7):
        sched = theorem2_batched_schedule(n)
        k = n // 4
        rows.append((n, 2 * k, 3 * 2 * k + 1, 4 * 2 * k, sched.makespan))
        assert sched.makespan <= 4 * 2 * k
    print_table(
        "A3: Theorem 2 batched remark (remark claim vs verified pipeline)",
        rows,
        ["n", "batches", "remark claim", "naive", "measured (verified)"],
    )

    benchmark(lambda: theorem2_batched_schedule(6))
