"""E1 (Section 2, Figure 1): the classical gray-code cycle baseline.

Claim: with the gray-code embedding, m packets per node need m steps (one
outgoing link per node), and no strategy confined to those links can beat
m/2 (dimension-0 saturation).
"""

from conftest import print_table

from repro.core import graycode_cycle_embedding
from repro.routing.schedule import (
    p_packet_cost_singlepath,
    singlepath_cost_lower_bound,
)


def test_e01_graycode_m_packet_cost(benchmark):
    emb = graycode_cycle_embedding(8)
    emb.verify(max_load=1)

    rows = []
    for m in (2, 8, 32, 128):
        measured = p_packet_cost_singlepath(emb, m)
        rows.append((m, m, measured, -(-m // 2)))
        assert measured == m  # exactly m: each node owns one outgoing link
        assert singlepath_cost_lower_bound(emb, m) == m
    print_table(
        "E1: gray-code cycle, m packets per node (Q_8)",
        rows,
        ["m", "paper cost", "measured", "lower bound m/2"],
    )

    benchmark(lambda: p_packet_cost_singlepath(emb, 32))


def test_e01_dimension_zero_saturation():
    # the counting argument: m * 2^(n-1) packets must cross dimension 0,
    # which has only 2^n directed edges
    emb = graycode_cycle_embedding(6)
    dim0_uses = sum(
        1
        for path in emb.edge_paths.values()
        for a, b in zip(path, path[1:])
        if emb.host.dimension_of(a, b) == 0
    )
    assert dim0_uses == 2**5  # half of all cycle edges cross dimension 0


def test_e01_dimension_spread(benchmark):
    """Section 2's fix, quantified: the gray code piles half its edges onto
    dimension 0; Theorem 2's spread is perfectly uniform."""
    from repro.analysis import dimension_usage
    from repro.core import embed_cycle_load2

    gray = dimension_usage(graycode_cycle_embedding(8))
    thm2 = dimension_usage(embed_cycle_load2(8))
    rows = [
        (d, gray[d], thm2[d]) for d in range(8)
    ]
    print_table(
        "E1: image edges per dimension, gray code vs Theorem 2 (Q_8)",
        rows,
        ["dimension", "gray code", "Theorem 2"],
    )
    assert gray[0] == 2 ** 7  # half the cycle
    assert len(set(thm2.values())) == 1  # "uses all dimensions uniformly"

    emb = graycode_cycle_embedding(8)
    benchmark(lambda: dimension_usage(emb))
