"""E9 (Theorem 5 + Section 6.2): multiple-path tree embeddings.

Claims: the (2^{2n}-1)-vertex complete binary tree embeds in Q_{2n}
(n = m + log m) with width n, O(1) load and O(1) n-packet cost; arbitrary
bounded-degree trees lose only an O(log) factor.
"""

from conftest import print_table

from repro.core import arbitrary_tree_embedding, theorem5_embedding
from repro.networks.tree import random_binary_tree
from repro.routing.schedule import measured_multipath_cost


def test_e09_theorem5(benchmark):
    rows = []
    for m in (2, 4):
        emb = theorem5_embedding(m)
        emb.verify()
        n = emb.info["n"]
        widths = [len(ps) for ps in emb.edge_paths.values() if len(ps[0]) > 1]
        cost = measured_multipath_cost(emb)
        rows.append(
            (m, n, emb.host.n, emb.guest.num_vertices, n, min(widths),
             emb.info["load"], emb.dilation, cost)
        )
        assert min(widths) == n
        assert emb.info["load"] <= 4  # O(1)
    print_table(
        "E9a: Theorem 5 complete binary trees",
        rows,
        ["m", "n", "host dim", "tree size", "claimed w", "measured w",
         "load", "dilation", "measured cost"],
    )

    benchmark(lambda: theorem5_embedding(2))


def test_e09_arbitrary_trees(benchmark):
    rows = []
    for size, m in ((50, 2), (500, 4), (2000, 4)):
        tree = random_binary_tree(size, seed=11)
        emb = arbitrary_tree_embedding(tree, m)
        emb.verify()
        n = emb.info["n"]
        widths = [len(ps) for ps in emb.edge_paths.values() if len(ps[0]) > 1]
        rows.append(
            (size, n, min(widths), emb.load, emb.dilation,
             emb.info["cbt_dilation"])
        )
        # claim: width Theta(n), cost O(log n) factors
        assert min(widths) >= n // 2
    print_table(
        "E9b: Section 6.2 arbitrary trees (O(log) factors measured)",
        rows,
        ["tree size", "n", "measured w", "load", "host dilation",
         "CBT-route dilation"],
    )

    tree = random_binary_tree(50, seed=11)
    benchmark(lambda: arbitrary_tree_embedding(tree, 2))
