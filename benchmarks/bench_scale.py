"""Scale check: the next power-of-two regime (n = 16, 17; 65k-node hosts).

n = 16, 17 are the first sizes beyond the unit-test range where 2k = 8 is a
power of two again, so Theorems 1 and 2 owe their *exact* claims: width
floor(n/2) (+1 for Theorem 1's direct edge), cost 3, and 100% link busy for
n = 16.  Construction plus full schedule verification runs in seconds.
"""

from conftest import print_table

from repro.core import (
    embed_cycle_load1,
    embed_cycle_load2,
    theorem1_claim,
    theorem2_claim,
)
from repro.routing.schedule import multipath_packet_schedule


def test_scale_theorem1_n16(benchmark):
    rows = []
    for n in (16, 17):
        emb = embed_cycle_load1(n)
        emb.verify()
        sched = multipath_packet_schedule(emb, extra_direct_at=3)
        sched.verify()
        claim = theorem1_claim(n)
        rows.append((n, 1 << n, claim["width"], emb.width, sched.makespan))
        assert emb.width >= claim["width"]
        assert sched.makespan == 3
    print_table(
        "scale: Theorem 1 at 2^16-node hosts (full power-of-two width)",
        rows,
        ["n", "nodes", "claimed w", "measured w", "cost"],
    )

    benchmark(lambda: embed_cycle_load1(14))


def test_scale_theorem2_n16(benchmark):
    emb = embed_cycle_load2(16)
    emb.verify()
    sched = multipath_packet_schedule(emb)
    sched.verify()
    claim = theorem2_claim(16)
    busy = sched.busy_link_fraction()
    print_table(
        "scale: Theorem 2 at n=16 (131072 guest vertices)",
        [(16, claim["width"], emb.width, claim["cost"], sched.makespan,
          f"{busy:.2f}")],
        ["n", "claimed w", "measured w", "claimed cost", "measured cost",
         "link busy"],
    )
    assert emb.width == claim["width"] == 8
    assert sched.makespan == 3
    assert busy == 1.0

    benchmark(lambda: embed_cycle_load2(12))
