"""Scale check: the next power-of-two regime and beyond (n = 16..20).

n = 16, 17 are the first sizes beyond the unit-test range where 2k = 8 is a
power of two again, so Theorems 1 and 2 owe their *exact* claims: width
floor(n/2) (+1 for Theorem 1's direct edge), cost 3, and 100% link busy for
n = 16.  Construction plus full schedule verification runs in seconds.

The vectorized kernels extend the checkable regime: Q_18 verification runs
fast *and* reference engines side by side (the scalar walk is still
affordable there, so the agreement is asserted, not assumed), Q_20 runs
the vectorized kernels alone (million-node host — the regime the scalar
walk priced out), and the Q_12 Section-7 wormhole workload pits the two
flit engines against each other at scale.
"""

import time

import pytest
from conftest import print_table

from repro.core import (
    embed_cycle_load1,
    embed_cycle_load2,
    theorem1_claim,
    theorem2_claim,
)
from repro.routing.schedule import multipath_packet_schedule


def test_scale_theorem1_n16(benchmark):
    rows = []
    for n in (16, 17):
        emb = embed_cycle_load1(n)
        emb.verify()
        sched = multipath_packet_schedule(emb, extra_direct_at=3)
        sched.verify()
        claim = theorem1_claim(n)
        rows.append((n, 1 << n, claim["width"], emb.width, sched.makespan))
        assert emb.width >= claim["width"]
        assert sched.makespan == 3
    print_table(
        "scale: Theorem 1 at 2^16-node hosts (full power-of-two width)",
        rows,
        ["n", "nodes", "claimed w", "measured w", "cost"],
    )

    benchmark(lambda: embed_cycle_load1(14))


def test_scale_theorem2_n16(benchmark):
    emb = embed_cycle_load2(16)
    emb.verify()
    sched = multipath_packet_schedule(emb)
    sched.verify()
    claim = theorem2_claim(16)
    busy = sched.busy_link_fraction()
    print_table(
        "scale: Theorem 2 at n=16 (131072 guest vertices)",
        [(16, claim["width"], emb.width, claim["cost"], sched.makespan,
          f"{busy:.2f}")],
        ["n", "claimed w", "measured w", "claimed cost", "measured cost",
         "link busy"],
    )
    assert emb.width == claim["width"] == 8
    assert sched.makespan == 3
    assert busy == 1.0

    benchmark(lambda: embed_cycle_load2(12))


def _verify_signature(report):
    return (
        tuple((c.name, c.passed) for c in report.checks),
        tuple(sorted(report.metrics.items())),
    )


def test_scale_verification_q18(benchmark):
    """Q_18 (262k nodes): vectorized vs scalar verification, side by side."""
    emb = embed_cycle_load1(18)
    t0 = time.perf_counter()
    fast = emb.verify(strict=False)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    reference = emb.verify_reference(strict=False)
    t_ref = time.perf_counter() - t0
    assert fast.ok and reference.ok
    assert _verify_signature(fast) == _verify_signature(reference)
    claim = theorem1_claim(18)
    print_table(
        "scale: Q_18 verification, vectorized kernels vs scalar referee",
        [(18, 1 << 18, claim["width"], fast.metrics["width"],
          f"{t_ref:.2f}s", f"{t_fast:.2f}s", f"{t_ref / t_fast:.1f}x")],
        ["n", "nodes", "claimed w", "measured w", "reference", "fast",
         "speedup"],
    )
    assert t_ref / t_fast >= 3.0

    benchmark(lambda: emb.verify(strict=False))


@pytest.mark.slow
def test_scale_verification_q20():
    """Q_20 (1M nodes): the regime the scalar walk priced out.

    Vectorized kernels only — the point is that full multipath
    verification of a million-node host completes at all.  The certified
    width follows E3's non-power-of-two rule (2k = 20), not the raw
    floor(n/2) claim.
    """
    emb = embed_cycle_load1(20)
    t0 = time.perf_counter()
    report = emb.verify(strict=False)
    t_fast = time.perf_counter() - t0
    assert report.ok
    claim = theorem1_claim(20)
    print_table(
        "scale: Q_20 verification (vectorized kernels only)",
        [(20, 1 << 20, claim["width"], report.metrics["width"],
          f"{t_fast:.2f}s")],
        ["n", "nodes", "claimed w", "measured w", "fast verify"],
    )
    # E3: 2k = 20 is not a power of two, so the moment-indexing width is
    # 2^floor(log2 n)/2 + 1 = 9, one short of the claimed floor(n/2)
    assert report.metrics["width"] == (1 << (20).bit_length() - 1) // 2 + 1


def test_scale_wormhole_q12(benchmark):
    """Q_12 Section-7 wormhole traffic: both flit engines, same makespan."""
    from repro.hypercube.graph import Hypercube
    from repro.routing.fast_wormhole import FastWormhole
    from repro.routing.permutation import dimension_order_path, random_permutation
    from repro.routing.wormhole import WormholeSimulator

    n, num_flits, overlays = 12, 16, 4
    work = []
    for s in range(overlays):
        perm = random_permutation(1 << n, seed=s + 1)
        work += [
            (dimension_order_path(n, u, v), num_flits, s + 1)
            for u, v in enumerate(perm)
            if u != v
        ]

    def run(engine_cls):
        sim = engine_cls(Hypercube(n))
        for path, flits, release in work:
            sim.inject(path, flits, release)
        t0 = time.perf_counter()
        makespan = sim.run()
        return makespan, time.perf_counter() - t0

    ref_makespan, t_ref = run(WormholeSimulator)
    fast_makespan, t_fast = run(FastWormhole)
    assert ref_makespan == fast_makespan
    print_table(
        "scale: Q_12 wormhole, flit-loop reference vs vectorized frontiers",
        [(n, len(work), num_flits, ref_makespan, f"{t_ref:.2f}s",
          f"{t_fast:.2f}s", f"{t_ref / t_fast:.1f}x")],
        ["n", "worms", "M", "makespan", "reference", "fast", "speedup"],
    )

    benchmark(lambda: run(FastWormhole)[0])
