"""Service layer: cold-build vs warm-cache vs parallel-batch throughput.

Not a paper experiment — this bench gives the serving subsystem its
baseline numbers: how much the registry saves over rebuilding (the
Theorem-5 pipeline is the expensive artifact), that the on-disk tier is
shared across processes, and what a batch of mixed routing requests
sustains through the concurrent engine.  Results are recorded in
EXPERIMENTS.md (S1).
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from conftest import print_table

import repro
from repro.service import (
    BuildEngine,
    EmbeddingRegistry,
    EmbeddingSpec,
    RouteRequest,
    RoutingService,
    build_spec,
)

# deliberately stable across runs: the second invocation of this bench
# demonstrates the cross-process on-disk tier
CACHE_DIR = Path(tempfile.gettempdir()) / "repro-bench-service-cache"

TREE_SPEC = EmbeddingSpec.make("tree", m=4)  # Theorem-5-scale artifact


def test_cold_vs_warm_vs_disk_tiers():
    registry = EmbeddingRegistry(cache_dir=CACHE_DIR)

    t0 = time.perf_counter()
    cold_emb = build_spec(TREE_SPEC)
    cold_emb.verify()
    cold = time.perf_counter() - t0

    registry.get_or_build(TREE_SPEC)  # populate both tiers
    t0 = time.perf_counter()
    warm_emb = registry.get(TREE_SPEC)
    warm = time.perf_counter() - t0

    fresh = EmbeddingRegistry(cache_dir=CACHE_DIR)  # no memory tier yet
    t0 = time.perf_counter()
    disk_emb = fresh.get(TREE_SPEC)
    disk = time.perf_counter() - t0

    assert warm_emb is not None and disk_emb is not None
    assert fresh.metrics.count("disk_hits") == 1
    print_table(
        "service: get_embedding latency by tier (Theorem 5, m=4)",
        [
            ("cold build+verify", f"{cold * 1000:.1f}", "1.0x"),
            ("disk tier", f"{disk * 1000:.1f}", f"{cold / disk:.0f}x"),
            ("memory tier", f"{warm * 1000:.3f}", f"{cold / warm:.0f}x"),
        ],
        ["tier", "latency (ms)", "speedup"],
    )
    # the acceptance bar: warm cache >= 10x faster than cold construction;
    # the disk tier skips build+verify but still pays JSON decode, so its
    # bar is "clearly faster", not 10x
    assert cold >= 10 * warm, f"warm {warm:.4f}s not 10x under cold {cold:.4f}s"
    assert cold >= 2 * disk, f"disk {disk:.4f}s not under half of cold {cold:.4f}s"


def test_disk_tier_is_shared_across_processes():
    EmbeddingRegistry(cache_dir=CACHE_DIR).get_or_build(TREE_SPEC)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    probe = (
        "from repro.service import EmbeddingRegistry, EmbeddingSpec;"
        f"reg = EmbeddingRegistry(cache_dir={str(CACHE_DIR)!r});"
        "spec = EmbeddingSpec.make('tree', m=4);"
        "emb = reg.get(spec);"
        "assert emb is not None, 'expected a disk hit in a fresh process';"
        "print('disk_hits', reg.metrics.count('disk_hits'))"
    )
    out = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True, text=True, env=env, check=True,
    )
    assert "disk_hits 1" in out.stdout


def test_parallel_batch_throughput():
    workload = (
        [EmbeddingSpec.make("cycle", n=n) for n in (6, 8, 10)]
        + [
            EmbeddingSpec.make("cycle2", n=8),
            EmbeddingSpec.make("grid", dims=(16, 16), torus=True),
            EmbeddingSpec.make("ccc", n=4),
            EmbeddingSpec.make("large-cycle", n=8),
            EmbeddingSpec.make("tree", m=2),
        ]
    )

    with tempfile.TemporaryDirectory() as serial_dir:
        engine = BuildEngine(EmbeddingRegistry(cache_dir=serial_dir), max_workers=0)
        t0 = time.perf_counter()
        engine.build_batch(workload)
        serial = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as parallel_dir:
        registry = EmbeddingRegistry(cache_dir=parallel_dir)
        engine = BuildEngine(registry)
        t0 = time.perf_counter()
        engine.build_batch(workload)
        parallel = time.perf_counter() - t0

        t0 = time.perf_counter()
        engine.build_batch(workload)  # now every spec is cached
        cached = time.perf_counter() - t0

    n = len(workload)
    print_table(
        f"service: mixed batch of {n} construction requests",
        [
            ("serial cold", f"{serial:.3f}", f"{n / serial:.1f}"),
            ("parallel cold", f"{parallel:.3f}", f"{n / parallel:.1f}"),
            ("warm cache", f"{cached:.4f}", f"{n / cached:.0f}"),
        ],
        ["mode", "time (s)", "requests/s"],
    )
    # shape: cache beats any rebuild by an order of magnitude; the pool
    # pays a fixed startup cost, so its bound is additive — it wins
    # outright once cores * construction time amortize the fork
    assert cached * 10 <= serial
    assert parallel <= serial + 1.5


def test_warm_route_serving_rate():
    registry = EmbeddingRegistry(cache_dir=CACHE_DIR)
    service = RoutingService(registry=registry)
    spec = EmbeddingSpec.make("cycle", n=10)
    service.get_embedding(spec)  # warm
    edges = list(service.get_embedding(spec).edge_paths)
    requests = 2_000
    t0 = time.perf_counter()
    for i in range(requests):
        service.route(spec, RouteRequest(edges[i % len(edges)]))
    elapsed = time.perf_counter() - t0
    rate = requests / elapsed
    print_table(
        "service: warm-cache routing requests",
        [(requests, f"{elapsed:.3f}", f"{rate:,.0f}")],
        ["requests", "time (s)", "requests/s"],
    )
    assert rate > 1_000  # warm serving must never fall back to rebuilds
