"""E12 (Corollary 3, Lemma 9, Section 8): large-copy embeddings and the
three-way comparison of embedding styles.

Claims: the n*2^n-node cycle/CCC embed with dilation 1, congestion 1 (FFT &
butterfly congestion <= 2); large copies need no forwarding but time-slice n
processes per node, whereas multiple-path embeddings keep load 1 at
dilation-3 prices — Section 8.2's trade-off table.
"""

from conftest import print_table

from repro.core import (
    embed_cycle_load1,
    large_butterfly_embedding,
    large_ccc_embedding,
    large_cycle_embedding,
    large_fft_embedding,
)


def test_e12_large_copy_claims(benchmark):
    rows = []
    cases = [
        ("cycle", large_cycle_embedding(6), 1),
        ("CCC", large_ccc_embedding(5), 1),
        ("butterfly", large_butterfly_embedding(5), 2),
        ("FFT", large_fft_embedding(5), 2),
    ]
    for name, emb, claimed_cong in cases:
        emb.verify()
        rows.append(
            (name, emb.guest.num_vertices, emb.host.n, emb.load, 1,
             emb.dilation, claimed_cong, emb.congestion)
        )
        assert emb.dilation == 1
        assert emb.congestion <= claimed_cong
    print_table(
        "E12: large-copy embeddings (Corollary 3, Lemma 9)",
        rows,
        ["guest", "|V|", "host dim", "load", "claimed dil", "measured dil",
         "claimed cong", "measured cong"],
    )

    benchmark(lambda: large_cycle_embedding(8))


def test_e12_style_comparison():
    # Section 8.2: the structural trade-off between the styles on Q_6
    n = 6
    large = large_cycle_embedding(n)
    multi = embed_cycle_load1(n)
    rows = [
        ("large-copy", large.guest.num_vertices, large.load, large.dilation,
         "none (dilation 1)"),
        ("multiple-path", multi.guest.num_vertices, multi.load,
         multi.dilation, "forwards via 3-hop paths"),
    ]
    print_table(
        "E12: embedding-style comparison (Section 8.2) on Q_6",
        rows,
        ["style", "guest size", "load", "dilation", "forwarding"],
    )
    assert large.load == n and multi.load == 1
    assert large.dilation == 1 and multi.dilation == 3


def test_e12_grid_and_tree_multicopies(benchmark):
    """Section 8.1's remaining multicopy list: grids and trees."""
    from repro.core.grid_multicopy import grid_multicopy_embedding
    from repro.core.tree_multicopy import cbt_multicopy_embedding

    rows = []
    for dims in [(16, 16), (16, 16, 16)]:
        mc = grid_multicopy_embedding(dims)
        mc.verify()
        rows.append(
            (f"torus {dims}", mc.k, mc.dilation, mc.edge_congestion,
             mc.copy_load_allowed)
        )
        assert mc.edge_congestion == 1 and mc.dilation == 1
    for m in (2, 4):
        mc = cbt_multicopy_embedding(m)
        mc.verify()
        rows.append(
            (f"CBT (m={m})", mc.k, mc.dilation, mc.edge_congestion,
             mc.copy_load_allowed)
        )
        assert mc.edge_congestion <= 8  # O(1)
    print_table(
        "E12: Section 8.1 grid/tree multiple-copy embeddings",
        rows,
        ["guest", "copies", "dilation", "total congestion", "per-copy load"],
    )

    benchmark(lambda: grid_multicopy_embedding((16, 16)))
