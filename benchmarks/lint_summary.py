"""Condense ``repro lint --format json`` into the committed snapshot.

    PYTHONPATH=src python benchmarks/lint_summary.py                # print
    PYTHONPATH=src python benchmarks/lint_summary.py --write        # refresh
    PYTHONPATH=src python benchmarks/lint_summary.py --check        # CI drift gate

The snapshot (``benchmarks/LINT_summary.json``) records the health of the
tree under the domain linter — files scanned, per-rule finding counts,
waiver pragmas in force, and wall time — so a PR that adds findings or
silently piles up waivers shows as a diff.  Timing is recorded for scale
context only and is excluded from ``--check``.

Not a pytest bench (the filename avoids the ``bench_*`` collection
pattern); this is a reporting tool, like ``trajectory.py``.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.lint import KNOWN_PRAGMAS, LintConfig, discover_files, parse_module, run_lint  # noqa: E402

REPO = Path(__file__).resolve().parent.parent
SNAPSHOT = Path(__file__).resolve().parent / "LINT_summary.json"


def count_waivers(paths):
    """Pragma tokens in force across ``paths``, by token."""
    out = {token: 0 for token in sorted(KNOWN_PRAGMAS)}
    for path in discover_files(paths):
        try:
            module = parse_module(path)
        except SyntaxError:
            continue
        for pragmas in module.pragmas.values():
            for token in pragmas:
                if token in out:
                    out[token] += 1
    return out


def build_summary(paths):
    start = time.perf_counter()
    report = run_lint(paths, LintConfig())
    elapsed = time.perf_counter() - start
    return {
        "version": 1,
        "tool": "repro-lint-summary",
        "scanned": [str(p.relative_to(REPO)) for p in paths],
        "files_scanned": report.files_scanned,
        "rules_run": list(report.rules_run),
        "errors": report.errors,
        "warnings": report.warnings,
        "counts": report.counts(),
        "waivers": count_waivers(paths),
        "elapsed_seconds": round(elapsed, 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true", help="refresh the snapshot")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the tree drifted from the snapshot (timing ignored)",
    )
    parser.add_argument(
        "--output", type=str, default=None, metavar="FILE",
        help="also write the freshly measured summary to FILE (CI uploads "
        "it as the drift-diff artifact when --check fails)",
    )
    args = parser.parse_args(argv)

    summary = build_summary([REPO / "src" / "repro"])
    if args.output:
        Path(args.output).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
    if args.write:
        SNAPSHOT.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT.relative_to(REPO)}")
        return 0
    if args.check:
        committed = json.loads(SNAPSHOT.read_text())
        drift = {
            key: (committed.get(key), summary[key])
            for key in summary
            if key != "elapsed_seconds" and committed.get(key) != summary[key]
        }
        if drift:
            for key, (old, new) in sorted(drift.items()):
                print(f"drift in {key}: committed {old!r} != measured {new!r}")
            print("refresh with: PYTHONPATH=src python benchmarks/lint_summary.py --write")
            return 1
        print("lint summary matches the committed snapshot")
        return 0
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
