"""E16 (Section 7's [20], Pippenger): routing with limited buffers.

Claim shape reproduced: constant-size node buffers suffice for fast
permutation routing — but only with care.  Naive backpressure deadlocks on
injection pressure; reserving two transit slots per node restores progress,
and B = 8 already matches the unbounded-buffer time.
"""

from conftest import print_table

from repro.hypercube.graph import Hypercube
from repro.routing.bounded_buffers import BoundedBufferSimulator, BufferDeadlock
from repro.routing.permutation import dimension_order_path, random_permutation
from repro.routing.simulator import StoreForwardSimulator


def _paths(n=6, reps=4):
    perm = random_permutation(1 << n, seed=2)
    return [
        dimension_order_path(n, u, v)
        for u, v in enumerate(perm)
        if u != v
        for _ in range(reps)
    ]


def _load(sim, n=6, reps=4):
    for p in _paths(n, reps):
        sim.inject(p)


def test_e16_buffer_sweep(benchmark):
    ref = StoreForwardSimulator(Hypercube(6))
    unbounded = ref.run(_paths()).makespan

    rows = [("unbounded", "-", unbounded)]
    for B, R in ((2, 0), (2, 1), (3, 2), (4, 2), (8, 4), (16, 4)):
        sim = BoundedBufferSimulator(Hypercube(6), B, injection_reserve=R)
        _load(sim)
        try:
            rows.append((B, R, sim.run()))
        except BufferDeadlock:
            rows.append((B, R, "DEADLOCK"))
    print_table(
        "E16: permutation routing vs node buffer size (Q_6, 4 packets/node)",
        rows,
        ["buffer B", "injection reserve", "completion"],
    )
    finite = [r[2] for r in rows[1:] if isinstance(r[2], int)]
    assert finite  # some constant-buffer configuration completes
    assert min(finite) <= 2 * unbounded  # within 2x of unbounded
    assert any(r[2] == "DEADLOCK" for r in rows)  # and naive ones jam

    def run_b8():
        sim = BoundedBufferSimulator(Hypercube(6), 8, injection_reserve=4)
        _load(sim)
        return sim.run()

    benchmark(run_b8)
