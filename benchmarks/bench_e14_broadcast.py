"""E14 (Section 1, extension): one-to-all broadcast of large messages.

The paper cites Ho–Johnsson [14] / Stout–Wagar [26] for multiple-copy
spanning-tree broadcast.  We reproduce the throughput comparison with the
paper's own Lemma 1 substrate: pipelining n message pieces around the n
edge-disjoint Hamiltonian cycles gives per-link bandwidth M/n instead of
the binomial tree's M — a Theta(n) win once M exceeds ~2^n.
"""

from conftest import print_table

from repro.apps.one_to_all import (
    binomial_broadcast_time,
    broadcast_comparison,
    hamiltonian_broadcast_time,
)


def test_e14_broadcast_crossover(benchmark):
    rows = []
    for n in (4, 6, 8):
        for m, tree, cycles in broadcast_comparison(n, (8, 512, 2048)):
            rows.append((n, m, tree, cycles,
                         "cycles" if cycles < tree else "tree"))
    print_table(
        "E14: one-to-all broadcast, binomial tree vs n Hamiltonian cycles",
        rows,
        ["n", "M", "tree steps", "cycles steps", "winner"],
    )
    # large messages: the cycle pipeline wins by ~ (n-1)x
    for n in (4, 6, 8):
        big = 4 * (1 << n) * n
        tree = binomial_broadcast_time(n, big)
        cyc = hamiltonian_broadcast_time(n, big)
        assert cyc < tree
        assert tree / cyc > n / 2  # Theta(n) throughput gap
    # small messages: the low-latency tree wins
    assert binomial_broadcast_time(8, 4) < hamiltonian_broadcast_time(8, 4)

    benchmark(lambda: hamiltonian_broadcast_time(6, 512))


def test_e14_closed_forms():
    # tree: ~ M + n (pipelined); cycles: ~ 2^n + M/n
    n, M = 6, 600
    assert binomial_broadcast_time(n, M) == M + n - 1  # pipelined tree
    expected = (1 << n) - 1 + (-(-M // n) - 1)
    assert abs(hamiltonian_broadcast_time(n, M) - expected) <= n
