"""Section 9's open questions, quantified.

The paper closes with: "Are there embeddings which use all links even when
communication proceeds along one grid axis at a time?"  Our Corollary 1
embedding inherits the cross-product structure, so a one-axis phase can only
touch its own dimension field — utilization is capped at 1/k.  This bench
measures that gap, making the open problem concrete.
"""

from conftest import print_table

from repro.core import embed_grid_multipath
from repro.routing.schedule import PacketSchedule, ScheduledPacket


def _axis_phase_schedule(emb, axis: int) -> PacketSchedule:
    packets = []
    for (u, v), paths in emb.edge_paths.items():
        changed = next(i for i in range(len(u)) if u[i] != v[i])
        if changed != axis:
            continue
        for path, st in zip(paths, emb.step_of[(u, v)]):
            packets.append(ScheduledPacket(tuple(path), tuple(st)))
    return PacketSchedule(emb.host, packets)


def test_a04_single_axis_utilization(benchmark):
    rows = []
    for dims in [(16, 16), (16, 16, 16)]:
        emb = embed_grid_multipath(dims, torus=True)
        k = len(dims)
        for axis in range(k):
            sched = _axis_phase_schedule(emb, axis)
            sched.verify()
            busy = sched.busy_link_fraction()
            rows.append((f"{dims}", axis, f"{busy:.3f}", f"{1 / k:.3f}"))
            # the cross-product structure caps one-axis phases at 1/k
            assert busy <= 1 / k + 1e-9
    print_table(
        "A4: Section 9 open question — link utilization when one axis "
        "communicates at a time (cap 1/k under cross products)",
        rows,
        ["grid", "axis", "busy fraction", "1/k cap"],
    )

    emb = embed_grid_multipath((16, 16), torus=True)
    benchmark(lambda: _axis_phase_schedule(emb, 0))
