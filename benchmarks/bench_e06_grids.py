"""E6 (Corollaries 1-2): multiple-path grid embeddings.

Claims: the k-axis grid with power-of-two side L embeds with width
floor(log L / 2), cost 3 (per direction) and expansion at most k+1; unequal
sides square first (contraction substitute: dilation 1, load O(1)) and keep
O(1) cost.
"""

from conftest import print_table

from repro.core import corollary1_claim, embed_grid_multipath
from repro.routing.schedule import multipath_packet_schedule


def test_e06_equal_sides(benchmark):
    rows = []
    for dims, torus in [
        ((16, 16), True),
        ((32, 32), True),
        ((16, 16, 16), True),
        ((64, 64), True),
    ]:
        emb = embed_grid_multipath(dims, torus=torus)
        emb.verify()
        sched = multipath_packet_schedule(emb)
        sched.verify()
        claim = corollary1_claim(len(dims), dims[0])
        rows.append(
            (f"{dims}", claim["width"], emb.info["width"], 3,
             sched.makespan, claim["expansion_upper"],
             f"{emb.info['expansion']:.2f}")
        )
        assert emb.info["width"] >= claim["width"]
        assert sched.makespan == 6  # 3 per direction, bidirectional
        assert emb.info["expansion"] <= claim["expansion_upper"]
    print_table(
        "E6: Corollary 1 (equal power-of-two sides; cost is per direction,"
        " makespan covers both)",
        rows,
        ["grid", "claimed w", "measured w", "claimed cost/dir",
         "measured both dirs", "expansion cap", "measured exp"],
    )

    benchmark(lambda: embed_grid_multipath((32, 32), torus=True))


def test_e06_unequal_sides_corollary2():
    rows = []
    for dims in [(5, 9), (3, 20), (7, 3, 5), (13, 16)]:
        emb = embed_grid_multipath(dims)
        emb.verify()
        sched = multipath_packet_schedule(emb)
        sched.verify()
        rows.append(
            (f"{dims}", emb.info["load"], emb.info["width"], sched.makespan)
        )
        assert emb.info["load"] <= 2 ** len(dims) + 1  # O(1) for fixed k
    print_table(
        "E6: Corollary 2 (unequal sides, contraction squaring)",
        rows,
        ["grid", "load", "width", "measured steps"],
    )
