"""E13 (Section 1): fault tolerance via IDA over the edge-disjoint paths.

Claim: the width-w paths of a multiple-path embedding carry Rabin's IDA
pieces, so message delivery survives link faults that break any single-path
embedding; at moderate fault rates the multipath+IDA delivery rate dominates
the single-path rate.
"""

from conftest import print_table

from repro.core import embed_cycle_load1, graycode_cycle_embedding
from repro.fault import FaultyLinkModel, multipath_delivery_experiment
from repro.fault.ida import disperse, reconstruct


def test_e13_ida_roundtrip(benchmark):
    message = b"x" * 1000
    pieces = disperse(message, w=6, m=3)
    for keep in ((0, 1, 2), (3, 4, 5), (0, 2, 4)):
        subset = [pieces[i] for i in keep]
        assert reconstruct(subset, 6, 3) == message

    benchmark(lambda: disperse(message, 6, 3))


def test_e13_delivery_under_faults(benchmark):
    emb = embed_cycle_load1(8)
    gray = graycode_cycle_embedding(8)
    message = b"routing multiple paths"
    rows = []
    for prob in (0.01, 0.05, 0.10):
        total_multi = total_single = 0.0
        trials = 5
        for seed in range(trials):
            faults = FaultyLinkModel.random(emb.host, prob, seed=seed)
            rep = multipath_delivery_experiment(emb, faults, message)
            total_multi += rep.delivery_rate
            ok = sum(
                faults.path_alive(p) for p in gray.edge_paths.values()
            )
            total_single += ok / gray.guest.num_edges
        multi, single = total_multi / trials, total_single / trials
        rows.append((prob, f"{multi:.3f}", f"{single:.3f}"))
        if prob <= 0.05:
            assert multi >= single
    print_table(
        "E13: delivery rate under random link faults (Q_8, 5 trials)",
        rows,
        ["fault prob", "multipath + IDA", "single path"],
    )

    faults = FaultyLinkModel.random(emb.host, 0.05, seed=0)
    benchmark(lambda: multipath_delivery_experiment(emb, faults, message))


def test_e13_redundancy_tradeoff(benchmark):
    """The IDA knob: bandwidth overhead w/m vs delivery reliability."""
    from repro.fault import redundancy_tradeoff_sweep

    emb = embed_cycle_load1(8)
    rows = redundancy_tradeoff_sweep(emb, 0.05, trials=3)
    table = [
        (r["pieces_needed"], r["overhead"], r["delivery_rate"]) for r in rows
    ]
    print_table(
        "E13: IDA redundancy trade-off (Q_8, 5% link faults, width 5)",
        table,
        ["pieces needed m", "overhead w/m", "delivery rate"],
    )
    rates = [r["delivery_rate"] for r in rows]
    assert rates == sorted(rates, reverse=True)  # more redundancy, safer
    assert rows[0]["delivery_rate"] >= 0.99      # 5x redundancy ~ certain
    assert rows[-1]["overhead"] == 1.0           # m = w: no overhead

    benchmark(lambda: redundancy_tradeoff_sweep(emb, 0.05, trials=1))
