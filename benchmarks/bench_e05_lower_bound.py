"""E5 (Lemma 3): lower bounds on width and cost.

Claims: (i) any width-w embedding with w > 2 has dilation (hence cost) at
least 3 — certified by an exhaustive path census showing adjacent nodes have
exactly one path of length < 3; (ii) no cost-3 embedding of the
2^(n+1)-cycle has width above floor(n/2) — Theorem 2's constructions meet
the cap exactly for n = 0, 1 (mod 4).
"""

from conftest import print_table

from repro.core import (
    count_short_paths,
    max_width_for_cost3,
    min_dilation_for_width,
    theorem2_claim,
    verify_no_two_hop_paths,
)


def test_e05_dilation_bound(benchmark):
    rows = []
    for n in (2, 3, 4, 5):
        ok = verify_no_two_hop_paths(n)
        census = count_short_paths(n, 0, 1, 3)
        rows.append((n, "yes" if ok else "NO", census.get(1, 0), census.get(2, 0),
                     census.get(3, 0)))
        assert ok
    print_table(
        "E5: path census between adjacent nodes (certifies dilation >= 3 for w > 2)",
        rows,
        ["n", "no 2-hop paths", "#len-1", "#len-2", "#len-3"],
    )
    for w in (3, 5, 9):
        assert min_dilation_for_width(w) == 3

    benchmark(lambda: verify_no_two_hop_paths(5))


def test_e05_width_cap_met_with_equality():
    rows = []
    for n in (4, 5, 8, 9, 12, 13, 16):
        cap = max_width_for_cost3(n)
        achieved = theorem2_claim(n)["width"] if n % 4 in (0, 1) else None
        rows.append((n, cap, achieved if achieved is not None else "-"))
        if n % 4 in (0, 1):
            assert achieved == cap  # optimal: construction meets the bound
    print_table(
        "E5: cost-3 width cap vs Theorem 2 (optimal for n = 0,1 mod 4)",
        rows,
        ["n", "Lemma 3 cap", "Theorem 2 width"],
    )
