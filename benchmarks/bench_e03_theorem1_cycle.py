"""E3 (Theorem 1): load-1 multiple-path cycle embedding.

Claim: the 2^n-node directed cycle embeds in Q_n with width floor(n/2) and
floor(n/2)-packet cost 3 (in fact (2k+2)-packet cost 3 with the doubled
direct edge).  Width matches the claim exactly when 2k is a power of two
(see the module note in repro.core.cycle_multipath); for other n the widest
certified cost-3 variant is built and reported.
"""

from conftest import print_table

from repro.core import embed_cycle_load1, theorem1_claim
from repro.routing.schedule import multipath_packet_schedule


def test_e03_theorem1(benchmark):
    rows = []
    for n in range(4, 13):
        emb = embed_cycle_load1(n)
        emb.verify()
        sched = multipath_packet_schedule(emb, extra_direct_at=3)
        sched.verify()
        claim = theorem1_claim(n)
        two_k = 2 * emb.info["k"]
        pow2 = two_k & (two_k - 1) == 0
        rows.append(
            (n, claim["width"], emb.width, claim["cost"], sched.makespan,
             emb.info["packets_per_edge"], "yes" if pow2 else "no")
        )
        assert sched.makespan == 3
        assert emb.load == 1
        if pow2:
            assert emb.width >= claim["width"]
    print_table(
        "E3: Theorem 1 (2^n-cycle, load 1)",
        rows,
        ["n", "claimed w", "measured w", "claimed cost", "measured cost",
         "packets/edge", "2k pow2"],
    )

    benchmark(lambda: embed_cycle_load1(10))
