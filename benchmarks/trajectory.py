"""Standalone runner for the recorded perf trajectory (``BENCH_perf.json``).

Thin wrapper over ``repro bench`` so CI and local runs share one entry
point regardless of whether the package is installed:

    PYTHONPATH=src python benchmarks/trajectory.py --quick \
        --baseline BENCH_perf.json --output bench-current.json

Not a pytest bench (the filename deliberately avoids the ``bench_*``
collection pattern); the pytest-benchmark suites next to this file measure
micro-timings, while this runner records the fast-vs-reference speedup
trajectory the CI gate consumes.  See ``repro bench --help`` for options.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
