"""E17 (Section 1): the constant-pinout comparison.

"One might suspect that a network designed for one particular communication
pattern would outperform a more general interconnection using narrower
channels.  Our multiple-path embedding results show that this need not be
true; the narrow hypercube can simulate the wide grid with O(1) slowdown
[while retaining] the flexibility to service low diameter patterns."

With W pins per node the hypercube's channels are W/n wide vs the torus's
W/4.  A torus edge's effective bandwidth on the embedded hypercube is
``width x W/n`` — Corollary 1's width ⌊log L / 2⌋ ~ n/4 puts it within a
small constant of W/4, while the hypercube's diameter stays n versus the
torus's Theta(sqrt(N)).
"""

from conftest import print_table

from repro.analysis import pinout_comparison
from repro.core import embed_grid_multipath


def test_e17_pinout_tradeoff(benchmark):
    rows = []
    W = 64
    for n, dims in ((8, (16, 16)), (10, (32, 32)), (12, (64, 64))):
        emb = embed_grid_multipath(dims, torus=True)
        emb.verify()
        width = emb.info["width"]
        table = pinout_comparison(n, channel_pins=W)
        cube_channel = table["hypercube"]["channel_width"]
        torus_channel = table["torus"]["channel_width"]
        effective = width * cube_channel
        slowdown = torus_channel / effective
        rows.append(
            (n, f"{dims}", f"{cube_channel:.1f}", f"{torus_channel:.1f}",
             width, f"{effective:.1f}", f"{slowdown:.2f}",
             table["hypercube"]["diameter"], table["torus"]["diameter"])
        )
        # O(1) slowdown: the width bundle recovers the wide channel within
        # a small constant factor
        assert slowdown <= 4.0
        # and the hypercube keeps its exponentially smaller diameter
        assert table["hypercube"]["diameter"] < table["torus"]["diameter"] or n <= 8
    print_table(
        "E17: constant pinout (W = 64 pins/node): narrow hypercube vs wide "
        "torus",
        rows,
        ["n", "grid", "cube chan", "torus chan", "width",
         "effective chan", "slowdown", "cube diam", "torus diam"],
    )

    benchmark(lambda: pinout_comparison(10))
