"""S4: adversarial traffic scenarios and fault campaigns.

Two series behind EXPERIMENTS.md section S4:

* **fault-tolerance curve** — on Q_8 under the permutation scenario, kill
  k = 1..7 random links (static) and compare delivered fraction with and
  without IDA failover over the 8 edge-disjoint paths.  The paper's §1
  reliability claim as a measured quantity: the IDA arm stays >= 0.99
  through k = n-1 kills while the single-path arm degrades monotonically
  in expectation.
* **saturation sweep** — offered vs accepted load and p99 latency per
  scenario; the adversarial patterns (bit-reversal, many-to-one)
  saturate far below uniform poisson traffic under e-cube routing.
"""

from conftest import print_table

from repro.scenarios import CampaignConfig, run_campaign, saturation_sweep


def test_s4_fault_campaign_curve(benchmark):
    rows = []
    for k in range(1, 8):
        rep = run_campaign(
            CampaignConfig(n=8, kill_links=k, kill_step=0, seed=0)
        )
        rows.append(
            (
                k,
                f"{rep.single.delivered_fraction:.4f}",
                f"{rep.ida.delivered_fraction:.4f}",
                f"{rep.reconstructions}/{rep.reconstruction_checks}",
            )
        )
        # the acceptance claim: IDA failover holds >= 0.99 through n-1 kills
        assert rep.ida.delivered_fraction >= 0.99
        assert rep.single.delivered_fraction < 1.0
        assert rep.reconstructions == rep.reconstruction_checks
    print_table(
        "S4: delivered fraction vs killed links "
        "(Q_8, permutation, static kill, seed 0)",
        rows,
        ["k links", "single path", "IDA failover", "payload checks"],
    )

    benchmark(
        lambda: run_campaign(
            CampaignConfig(n=8, kill_links=4, kill_step=0, seed=0)
        )
    )


def test_s4_mid_run_kill(benchmark):
    """The mid-run variant: packets that cleared the region still count."""
    static = run_campaign(
        CampaignConfig(n=8, kill_links=16, kill_step=0, seed=1)
    )
    midrun = run_campaign(
        CampaignConfig(n=8, kill_links=16, kill_step=None, seed=1)
    )
    # activating the same faults mid-run can only spare packets
    assert (
        midrun.single.delivered_fraction >= static.single.delivered_fraction
    )
    assert midrun.kill_step >= 1
    print_table(
        "S4: static vs mid-run activation (Q_8, 16 killed links, seed 1)",
        [
            ("static (step 0)", f"{static.single.delivered_fraction:.4f}",
             f"{static.ida.delivered_fraction:.4f}"),
            (f"mid-run (step {midrun.kill_step})",
             f"{midrun.single.delivered_fraction:.4f}",
             f"{midrun.ida.delivered_fraction:.4f}"),
        ],
        ["activation", "single path", "IDA failover"],
    )

    benchmark(
        lambda: run_campaign(
            CampaignConfig(n=8, kill_links=16, kill_step=None, seed=1)
        )
    )


def test_s4_saturation_by_scenario(benchmark):
    rows = []
    for name in ("poisson", "bit-reversal", "transpose", "many-to-one"):
        sweep = saturation_sweep(
            name, 7, [0.25, 0.5, 1.0], horizon=24, seed=0
        )
        for r in sweep:
            rows.append(
                (
                    name,
                    r["load"],
                    r["offered"],
                    r["accepted"],
                    r["latency_p50"],
                    r["latency_p99"],
                    r["congestion"],
                )
            )
    print_table(
        "S4: offered vs accepted load and latency (Q_7, horizon 24, seed 0)",
        rows,
        [
            "scenario", "load", "offered", "accepted",
            "p50", "p99", "congestion",
        ],
    )
    by = {}
    for row in rows:
        by.setdefault(row[0], []).append(row)
    # adversarial incast accepts far less than uniform traffic at load 1
    assert by["many-to-one"][-1][3] < by["poisson"][-1][3]
    # accepted load never exceeds offered load
    assert all(r[3] <= r[2] + 1e-9 for r in rows)

    benchmark(
        lambda: saturation_sweep("bit-reversal", 7, [1.0], horizon=24, seed=0)
    )
