"""E4 (Theorem 2): load-2 cycle embeddings that fully use the links.

Claim (per n mod 4): width floor(n/2) cost 3 for n = 0,1 (mod 4); for
n = 2,3 (mod 4) either width floor(n/2)-1 cost 3 or width floor(n/2)
cost 4.  For n = 0 (mod 4), all hypercube links are busy in all 3 steps.
"""

from conftest import print_table

from repro.core import embed_cycle_load2, theorem2_claim
from repro.routing.schedule import multipath_packet_schedule


def test_e04_theorem2_all_cases(benchmark):
    rows = []
    for n in range(4, 12):
        for prefer_width in ([False] if n % 4 in (0, 1) else [False, True]):
            emb = embed_cycle_load2(n, prefer_width=prefer_width)
            emb.verify()
            sched = multipath_packet_schedule(emb)
            sched.verify()
            claim = theorem2_claim(n, prefer_width)
            busy = sched.busy_link_fraction()
            rows.append(
                (n, n % 4, "wide" if prefer_width else "cost3",
                 claim["width"], emb.width, claim["cost"], sched.makespan,
                 f"{busy:.2f}")
            )
            assert emb.width == claim["width"]
            assert sched.makespan == claim["cost"]
            assert emb.load == 2
            if n % 4 == 0:
                assert busy == 1.0  # every link busy every step
    print_table(
        "E4: Theorem 2 (2^(n+1)-cycle, load 2)",
        rows,
        ["n", "n%4", "variant", "claimed w", "measured w",
         "claimed cost", "measured cost", "link busy frac"],
    )

    benchmark(lambda: embed_cycle_load2(8))
