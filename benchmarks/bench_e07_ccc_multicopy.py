"""E7 (Theorem 3 + Lemma 4): CCC embeddings.

Claims: a single n-level CCC embeds in Q_{n + ceil(log n)} with dilation 1
(n even) / 2 (n odd); n copies embed simultaneously with edge-congestion 2
(cross edges contribute at most 1; only dimension-1 links carry 2 straight
edges).
"""

from collections import Counter

from conftest import print_table

from repro.core import ccc_multicopy_embedding, ccc_single_embedding, theorem3_claim


def test_e07_lemma4_single_copy(benchmark):
    rows = []
    for n in range(2, 9):
        emb = ccc_single_embedding(n)
        emb.verify(max_load=1)
        claimed = 1 if n % 2 == 0 else 2
        rows.append((n, emb.host.n, claimed, emb.dilation, emb.congestion))
        assert emb.dilation == claimed
    print_table(
        "E7a: Lemma 4 single CCC copy",
        rows,
        ["n", "host dim", "claimed dilation", "measured", "congestion"],
    )

    benchmark(lambda: ccc_single_embedding(6))


def test_e07_theorem3_multicopy(benchmark):
    rows = []
    for n in (2, 4, 8):
        mc = ccc_multicopy_embedding(n)
        mc.verify()
        claim = theorem3_claim(n)

        cross = Counter()
        for copy in mc.copies:
            for (u, v), path in copy.edge_paths.items():
                if u[0] == v[0]:
                    for a, b in zip(path, path[1:]):
                        cross[copy.host.edge_id(a, b)] += 1
        rows.append(
            (n, claim["copies"], mc.k, claim["dilation"], mc.dilation,
             claim["edge_congestion"], mc.edge_congestion,
             max(cross.values()))
        )
        assert mc.k == claim["copies"]
        assert mc.dilation == claim["dilation"]
        assert mc.edge_congestion <= claim["edge_congestion"]
        assert max(cross.values()) == 1  # Lemma 7
    print_table(
        "E7b: Theorem 3 n-copy CCC",
        rows,
        ["n", "claimed copies", "measured", "claimed dil", "measured dil",
         "claimed cong", "measured cong", "cross-edge cong (Lemma 7: 1)"],
    )

    benchmark(lambda: ccc_multicopy_embedding(4))


def test_e07_section54_undirected(benchmark):
    """Section 5.4: the undirected CCC's extra straight edges add at most 2
    to the congestion, 'increasing the total congestion to four'."""
    rows = []
    for n in (2, 4, 8):
        mc = ccc_multicopy_embedding(n, undirected=True)
        mc.verify()
        rows.append((n, 4, mc.edge_congestion))
        assert mc.edge_congestion <= 4
    print_table(
        "E7c: Section 5.4 undirected CCC copies",
        rows,
        ["n", "claimed congestion", "measured"],
    )

    benchmark(lambda: ccc_multicopy_embedding(4, undirected=True))
