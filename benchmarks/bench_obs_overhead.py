"""Instrumentation overhead: disabled recording must stay off the hot path.

The obs acceptance bar (ISSUE.md): with ``recorder=None`` the simulators
pay only a truthiness test per decision point, so a permutation workload
runs at the same speed as before the instrumentation existed.  Timing
comparisons on shared CI hardware are noisy, so the assertion is lenient
(well under 2x, versus the <5% target measured locally); the recording-on
column is printed for the record, not asserted.
"""

import time

from conftest import print_table

from repro.hypercube.graph import Hypercube
from repro.obs import LinkRecorder
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.permutation import dimension_order_path, random_permutation
from repro.routing.simulator import StoreForwardSimulator


def _workload(n=8, reps=4, seed=3):
    perm = random_permutation(1 << n, seed=seed)
    paths = [dimension_order_path(n, u, v) for u, v in enumerate(perm) if u != v]
    return [(p, r + 1) for p in paths for r in range(reps)]


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_recorder_overhead():
    host = Hypercube(8)
    work = _workload()
    rows = []
    for engine in (StoreForwardSimulator, FastStoreForward):
        base = _best_of(lambda: engine(host).run(work))
        off = _best_of(lambda: engine(host).run(work, recorder=None))
        on = _best_of(
            lambda: engine(host).run(work, recorder=LinkRecorder(host=host))
        )
        rows.append(
            (
                engine.engine,
                f"{base * 1000:.2f}ms",
                f"{off * 1000:.2f}ms",
                f"{on * 1000:.2f}ms",
                f"{off / base:.3f}",
            )
        )
        # recorder=None must be indistinguishable from the plain run;
        # generous bound because CI timers jitter
        assert off <= base * 1.5 + 0.01
    print_table(
        "obs: recorder overhead (Q_8 permutation, 4 packets/node)",
        rows,
        ["engine", "baseline", "recorder=None", "recording", "off/base"],
    )
