"""Service load: batched CSR routing vs per-call, plus open-loop serving.

Not a paper experiment — this bench anchors the batch-serving redesign:
one ``route_batch()`` over a shared-memory CSR shard must sustain at
least **10x** the per-call ``route()`` request rate at batch >= 1024 on
the Q_12 multipath cycle, while staying *field-identical* to the
per-call answers.  The second half drives the batching front-end with
open-loop Poisson arrivals and reports sustained req/s and latency
percentiles.  Results are recorded in EXPERIMENTS.md (S5); the speedup
ratio is gated over time by the ``service:route-batch:q12`` trajectory
workload in ``BENCH_perf.json``.
"""

import tempfile
import time

from conftest import print_table

from repro._compat import resolve_rng
from repro.service import (
    EmbeddingRegistry,
    EmbeddingSpec,
    RouteRequest,
    RoutingService,
    open_loop_load,
)

SPEC = EmbeddingSpec.make("cycle", n=12)


def _request_batch(service, spec, count, seed=0):
    edges = service.shard_for(spec).csr.edges
    stream = resolve_rng(seed)
    batch = []
    for _ in range(count):
        u, v = edges[stream.randrange(len(edges))]
        batch.append(RouteRequest((v, u) if stream.random() < 0.5 else (u, v)))
    return batch


def test_route_batch_10x_over_per_call():
    with tempfile.TemporaryDirectory() as cache:
        service = RoutingService(registry=EmbeddingRegistry(cache_dir=cache))
        try:
            batch = _request_batch(service, SPEC, 4096)
            service.route_batch(SPEC, batch[:1])  # warm the resolve path

            t0 = time.perf_counter()
            result = service.route_batch(SPEC, batch)
            batch_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            singles = [service.route(SPEC, r) for r in batch]
            per_call_s = time.perf_counter() - t0

            # field identity: every request's paths, node for node
            assert all(
                resp.paths == result.paths(i)
                for i, resp in enumerate(singles)
            )

            n = len(batch)
            batch_rate = n / batch_s
            per_call_rate = n / per_call_s
            print_table(
                f"service: {n} routing requests on Q_12 multipath cycle",
                [
                    ("per-call route()", f"{per_call_s * 1e3:.1f}",
                     f"{per_call_rate:,.0f}", "1.0x"),
                    ("one route_batch()", f"{batch_s * 1e3:.1f}",
                     f"{batch_rate:,.0f}",
                     f"{batch_rate / per_call_rate:.1f}x"),
                ],
                ["mode", "time (ms)", "req/s", "speedup"],
            )
            # the acceptance bar for the batch-serving redesign
            assert batch_rate >= 10 * per_call_rate, (
                f"batch {batch_rate:,.0f} req/s not 10x over "
                f"per-call {per_call_rate:,.0f} req/s"
            )
        finally:
            service.close()


def test_open_loop_sustained_rate():
    with tempfile.TemporaryDirectory() as cache:
        service = RoutingService(registry=EmbeddingRegistry(cache_dir=cache))
        try:
            rows = []
            for rate in (5_000, 20_000):
                report = open_loop_load(
                    service, SPEC, rate=rate, total=min(2 * rate, 20_000),
                    seed=0, max_batch=1024, max_wait_s=0.002,
                )
                assert report.errors == 0, f"{report.errors} routing errors"
                assert report.completed == report.offered
                rows.append(
                    (f"{rate:,}", f"{report.sustained_rps:,.0f}",
                     f"{report.p50_ms:.2f}", f"{report.p99_ms:.2f}",
                     f"{report.mean_batch:.0f}")
                )
            print_table(
                "service: open-loop Poisson load on Q_12 multipath cycle",
                rows,
                ["offered req/s", "sustained req/s", "p50 (ms)", "p99 (ms)",
                 "mean batch"],
            )
        finally:
            service.close()
