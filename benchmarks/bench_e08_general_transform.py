"""E8 (Theorem 4): the multiple-copy -> multiple-path transform.

Claim: an n-copy embedding of G in Q_n with cost c and out-degree delta
yields a width-n embedding of X(G) in Q_{2n} with n-packet cost c + 2*delta.
The paper's own example: cycle copies (c = 1, delta = 1) give cost 3.
"""

from conftest import print_table

from repro.core import (
    butterfly_multicopy_embedding,
    cycle_multicopy_embedding,
    induced_cross_product_embedding,
    theorem4_claim,
)
from repro.routing.schedule import measured_multipath_cost


def test_e08_transform(benchmark):
    rows = []
    cases = [
        ("cycles n=4", cycle_multicopy_embedding(4)),
        ("cycles n=6", cycle_multicopy_embedding(6)),
        ("butterfly m=2", butterfly_multicopy_embedding(2)),
    ]
    for name, mc in cases:
        x = induced_cross_product_embedding(mc)
        x.verify()
        claim = theorem4_claim(mc)
        measured = measured_multipath_cost(x)
        rows.append(
            (name, claim["width"], x.width, claim["c"], claim["delta"],
             claim["cost_upper"], measured)
        )
        assert x.width == mc.host.n
        # greedy store-and-forward realizes the claim up to the LMR constant
        assert measured <= 2 * claim["cost_upper"]
    print_table(
        "E8: Theorem 4 transform (cost claim = c + 2*delta)",
        rows,
        ["copies of", "claimed w", "measured w", "c", "delta",
         "claimed cost", "measured cost"],
    )

    mc = cycle_multicopy_embedding(4)
    benchmark(lambda: induced_cross_product_embedding(mc))


def test_e08_paper_example_exact():
    # Section 6's worked example must come out exactly: cost 3
    mc = cycle_multicopy_embedding(4)
    x = induced_cross_product_embedding(mc)
    assert theorem4_claim(mc)["cost_upper"] == 3
    assert measured_multipath_cost(x) == 3
