"""Shard lifecycle: publish/attach/detach/unlink, integrity, multi-process.

The shared-memory layer has one safety story — publishers own segments,
attachers are guests — and these tests exercise it end to end: zero-copy
attach resolves the same answers as the publisher, a corrupted payload is
refused at attach, a crashing worker cannot reap a segment, and two
workers can serve batches off one published shard (the tier-1 smoke for
the batch-serving redesign).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core import embed_cycle_load1
from repro.core.fast_verify import embedding_csr
from repro.obs import MetricsRegistry
from repro.service.shards import (
    ShardIntegrityError,
    ShardManager,
    attach_shard,
    publish_csr,
)


def _csr(n=6):
    return embedding_csr(embed_cycle_load1(n))


def _env():
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_worker(probe: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True, text=True, env=_env(),
    )


class TestPublishAttach:
    def test_roundtrip_is_field_identical(self):
        csr = _csr()
        shm, info = publish_csr(csr, spec_key="test")
        try:
            view = attach_shard(info.name)
            try:
                assert view.info.spec_key == "test"
                assert view.info.num_paths == csr.num_paths
                assert view.csr.edges == csr.edges
                batch = list(csr.edges[:4]) + [
                    (v, u) for u, v in csr.edges[:4]
                ]
                a_nodes, a_po, a_ro = view.csr.take(batch)
                b_nodes, b_po, b_ro = csr.take(batch)
                assert (a_nodes == b_nodes).all()
                assert (a_po == b_po).all()
                assert (a_ro == b_ro).all()
            finally:
                view.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attached_arrays_are_read_only(self):
        shm, info = publish_csr(_csr())
        try:
            view = attach_shard(info.name)
            with pytest.raises((ValueError, RuntimeError)):
                view.csr.nodes[0] = 99
            view.close()
        finally:
            shm.close()
            shm.unlink()

    def test_unlinked_segment_cannot_be_attached(self):
        shm, info = publish_csr(_csr())
        shm.close()
        shm.unlink()
        with pytest.raises(FileNotFoundError):
            attach_shard(info.name)

    def test_payload_corruption_detected(self):
        csr = _csr()
        shm, info = publish_csr(csr)
        try:
            shm.buf[-1] ^= 0xFF  # flip one payload byte
            with pytest.raises(ShardIntegrityError, match="checksum"):
                attach_shard(info.name)
        finally:
            shm.close()
            shm.unlink()

    def test_bad_magic_detected(self):
        shm, info = publish_csr(_csr())
        try:
            shm.buf[0] ^= 0xFF
            with pytest.raises(ShardIntegrityError, match="not a repro shard"):
                attach_shard(info.name)
        finally:
            shm.close()
            shm.unlink()

    def test_dtype_contract_violation_detected(self):
        shm, info = publish_csr(_csr())
        try:
            # same-length in-place header tamper: nodes dtype <i8 -> <i2
            head = bytes(shm.buf[: 4096]).replace(b'"dtype":"<i8"', b'"dtype":"<i2"', 1)
            shm.buf[: 4096] = head
            with pytest.raises(ShardIntegrityError, match="dtype contract"):
                attach_shard(info.name)
        finally:
            shm.close()
            shm.unlink()


class TestShardManager:
    def test_get_or_publish_caches_and_counts(self):
        metrics = MetricsRegistry()
        with ShardManager(metrics=metrics) as mgr:
            first = mgr.get_or_publish("k", _csr)
            again = mgr.get_or_publish("k", _csr)
            assert again is first
            assert metrics.count("shard_misses") == 1
            assert metrics.count("shard_hits") == 1
            assert metrics.snapshot()["gauges"]["shards_active"] == 1
            assert list(mgr.info()) == ["k"]
            assert mgr.get("k") is first and mgr.get("absent") is None

    def test_unlink_and_close(self):
        mgr = ShardManager()
        view = mgr.get_or_publish("k", _csr)
        name = view.info.name
        assert mgr.unlink("k") is True
        assert mgr.unlink("k") is False  # idempotent
        with pytest.raises(FileNotFoundError):
            attach_shard(name)
        mgr.get_or_publish("k2", _csr)
        mgr.close()
        assert mgr.info() == {}
        mgr.close()  # close is idempotent too

    def test_local_backend_serves_without_segments(self):
        metrics = MetricsRegistry()
        with ShardManager(metrics=metrics, backend="local") as mgr:
            view = mgr.get_or_publish("k", _csr)
            assert view.info.backend == "local" and view.info.name == ""
            nodes, _, _ = view.csr.take([view.csr.edges[0]])
            assert nodes.size > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ShardManager(backend="nfs")


class TestMultiProcess:
    def test_worker_crash_leaves_segment_alive(self):
        shm, info = publish_csr(_csr(), spec_key="crashy")
        try:
            out = _run_worker(
                "import os;"
                "from repro.service.shards import attach_shard;"
                f"view = attach_shard({info.name!r});"
                "view.csr.take([view.csr.edges[0]]);"
                "print('attached-ok', flush=True);"
                "os._exit(17)"  # die without any cleanup
            )
            assert "attached-ok" in out.stdout
            assert out.returncode == 17
            # the publisher's segment must have survived the guest's death
            view = attach_shard(info.name)
            assert view.info.spec_key == "crashy"
            view.close()
        finally:
            shm.close()
            shm.unlink()

    def test_two_workers_resolve_batches(self):
        csr = _csr()
        shm, info = publish_csr(csr, spec_key="smoke")
        try:
            batch = list(csr.edges[:8]) + [(v, u) for u, v in csr.edges[:8]]
            _, _, request_offsets = csr.take(batch)
            expected = int(request_offsets[-1])
            probe = (
                "from repro.service.shards import attach_shard;"
                f"view = attach_shard({info.name!r});"
                f"batch = {batch!r};"
                "nodes, po, ro = view.csr.take(batch);"
                "print('paths', int(ro[-1]), flush=True);"
                "view.close()"
            )
            workers = [
                subprocess.Popen(
                    [sys.executable, "-c", probe],
                    stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                    text=True, env=_env(),
                )
                for _ in range(2)
            ]
            for worker in workers:
                out, err = worker.communicate(timeout=60)
                assert worker.returncode == 0, err
                assert f"paths {expected}" in out
        finally:
            shm.close()
            shm.unlink()
