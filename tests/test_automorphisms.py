"""Tests for hypercube automorphisms and embedding relabeling."""

import pytest
from hypothesis import given, strategies as st

from repro.core import embed_cycle_load1, graycode_cycle_embedding
from repro.hypercube.automorphisms import (
    HypercubeAutomorphism,
    relabel_embedding,
)
from repro.hypercube.graph import Hypercube
from repro.routing.schedule import multipath_packet_schedule

perms4 = st.permutations(list(range(4)))


class TestGroupLaws:
    @given(perms4, st.integers(0, 15), st.integers(0, 15))
    def test_bijection(self, perm, t, v):
        auto = HypercubeAutomorphism(4, tuple(perm), t)
        assert auto.inverse()(auto(v)) == v

    @given(perms4, st.integers(0, 15), perms4, st.integers(0, 15), st.integers(0, 15))
    def test_composition(self, p1, t1, p2, t2, v):
        a = HypercubeAutomorphism(4, tuple(p1), t1)
        b = HypercubeAutomorphism(4, tuple(p2), t2)
        assert a.compose(b)(v) == a(b(v))

    @given(perms4, st.integers(0, 15), st.integers(0, 15), st.integers(0, 3))
    def test_preserves_adjacency(self, perm, t, v, d):
        q = Hypercube(4)
        auto = HypercubeAutomorphism(4, tuple(perm), t)
        assert q.is_edge(auto(v), auto(v ^ (1 << d)))

    def test_identity(self):
        auto = HypercubeAutomorphism.identity(5)
        assert all(auto(v) == v for v in range(32))

    def test_translation_to(self):
        auto = HypercubeAutomorphism.translation_to(5, 19)
        assert auto(0) == 19

    def test_rotation(self):
        auto = HypercubeAutomorphism.rotation(4, 1)
        assert auto(0b0001) == 0b0010
        assert auto(0b1000) == 0b0001

    def test_invalid(self):
        with pytest.raises(ValueError):
            HypercubeAutomorphism(3, (0, 0, 1))
        with pytest.raises(ValueError):
            HypercubeAutomorphism(3, (0, 1, 2), 8)


class TestRelabeling:
    def test_metrics_invariant(self):
        emb = embed_cycle_load1(6)
        auto = HypercubeAutomorphism.translation_to(6, 45)
        moved = relabel_embedding(emb, auto)
        assert moved.width == emb.width
        assert moved.dilation == emb.dilation
        assert moved.congestion == emb.congestion
        assert moved.vertex_map[0] == auto(emb.vertex_map[0])

    def test_schedule_survives(self):
        emb = embed_cycle_load1(6)
        moved = relabel_embedding(
            emb, HypercubeAutomorphism.rotation(6, 2)
        )
        sched = multipath_packet_schedule(moved, extra_direct_at=3)
        sched.verify()
        assert sched.makespan == 3

    def test_single_path_embedding(self):
        emb = graycode_cycle_embedding(5)
        moved = relabel_embedding(
            emb, HypercubeAutomorphism.translation_to(5, 7)
        )
        assert moved.congestion == 1

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            relabel_embedding(
                graycode_cycle_embedding(4),
                HypercubeAutomorphism.identity(5),
            )
