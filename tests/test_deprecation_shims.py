"""The deprecated pre-obs APIs: still working, warning exactly once per use.

This is the only test module that intentionally exercises the shims; the
CI deprecation gate runs the rest of the suite with
``-W error::repro._compat.ReproDeprecationWarning`` and excludes this file.
"""

import warnings

import pytest

from repro._compat import ReproDeprecationWarning
from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.simulator import StoreForwardSimulator


def _assert_one_warning(record):
    assert len(record) == 1, [str(w.message) for w in record]


class TestLegacySimulatorShim:
    def test_store_forward_inject_run_still_works(self):
        sim = StoreForwardSimulator(Hypercube(3))
        sim.inject([0, 1, 3])
        sim.inject([0, 1])
        with pytest.warns(ReproDeprecationWarning) as record:
            assert sim.run() == 2
        _assert_one_warning(record)

    def test_fast_inject_run_still_works(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1, 3])
        with pytest.warns(ReproDeprecationWarning) as record:
            assert sim.run() == 2
        _assert_one_warning(record)

    def test_bare_int_positional_is_max_steps(self):
        sim = StoreForwardSimulator(Hypercube(3))
        sim.inject([0, 1])
        with pytest.warns(ReproDeprecationWarning):
            with pytest.raises(RuntimeError):
                sim.run(0)

    def test_schedule_mode_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            res = StoreForwardSimulator(Hypercube(3)).run([[0, 1]])
        assert res.makespan == 1

    def test_category_is_a_deprecation_warning(self):
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)


class TestServiceMetricsShim:
    def test_constructing_warns_once(self):
        from repro.service.metrics import ServiceMetrics

        with pytest.warns(ReproDeprecationWarning) as record:
            metrics = ServiceMetrics()
        _assert_one_warning(record)
        metrics.incr("hits")
        assert metrics.count("hits") == 1

    def test_legacy_snapshot_shape(self):
        from repro.service.metrics import ServiceMetrics

        with pytest.warns(ReproDeprecationWarning):
            metrics = ServiceMetrics()
        with metrics.time("build"):
            pass
        snap = metrics.snapshot()
        assert set(snap) == {"counters", "timers"}
        assert snap["timers"]["build"]["count"] == 1

    def test_reset_keeps_legacy_empty_shape(self):
        from repro.service.metrics import ServiceMetrics

        with pytest.warns(ReproDeprecationWarning):
            metrics = ServiceMetrics()
        metrics.incr("x")
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "timers": {}}
