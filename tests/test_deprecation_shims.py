"""The deprecated pre-obs APIs: still working, warning exactly once per use.

This is the only test module that intentionally exercises the shims; the
CI deprecation gate runs the rest of the suite with
``-W error::repro._compat.ReproDeprecationWarning`` and excludes this file.
"""

import warnings

import pytest

from repro._compat import ReproDeprecationWarning
from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.simulator import StoreForwardSimulator


def _assert_one_warning(record):
    assert len(record) == 1, [str(w.message) for w in record]


class TestLegacySimulatorShim:
    def test_store_forward_inject_run_still_works(self):
        sim = StoreForwardSimulator(Hypercube(3))
        sim.inject([0, 1, 3])
        sim.inject([0, 1])
        with pytest.warns(ReproDeprecationWarning) as record:
            assert sim.run() == 2
        _assert_one_warning(record)

    def test_fast_inject_run_still_works(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1, 3])
        with pytest.warns(ReproDeprecationWarning) as record:
            assert sim.run() == 2
        _assert_one_warning(record)

    def test_bare_int_positional_is_max_steps(self):
        sim = StoreForwardSimulator(Hypercube(3))
        sim.inject([0, 1])
        with pytest.warns(ReproDeprecationWarning):
            with pytest.raises(RuntimeError):
                sim.run(0)

    def test_schedule_mode_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            res = StoreForwardSimulator(Hypercube(3)).run([[0, 1]])
        assert res.makespan == 1

    def test_category_is_a_deprecation_warning(self):
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)


class TestRoutingShims:
    def _service(self, tmp_path):
        from repro.service import EmbeddingRegistry, EmbeddingSpec, RoutingService

        svc = RoutingService(registry=EmbeddingRegistry(cache_dir=tmp_path))
        return svc, EmbeddingSpec.make("cycle", n=6)

    def test_route_bare_tuple_warns_and_returns_bare_paths(self, tmp_path):
        from repro.service import RouteRequest

        svc, spec = self._service(tmp_path)
        with pytest.warns(ReproDeprecationWarning) as record:
            paths = svc.route(spec, (0, 1))
        _assert_one_warning(record)
        assert isinstance(paths, tuple)  # pre-redesign bare shape
        # field-identical to the redesigned response
        assert paths == svc.route(spec, RouteRequest((0, 1))).paths

    def test_route_request_form_does_not_warn(self, tmp_path):
        from repro.service import RouteRequest

        svc, spec = self._service(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            response = svc.route(spec, RouteRequest((0, 1)))
            batch = svc.route_batch(spec, [(0, 1), RouteRequest((1, 2))])
        assert response.paths == batch.paths(0)

    def test_route_fault_tolerant_positional_form_warns(self, tmp_path):
        svc, spec = self._service(tmp_path)
        with pytest.warns(ReproDeprecationWarning) as record:
            out = svc.route_fault_tolerant(spec, (0, 1), b"legacy payload")
        _assert_one_warning(record)
        assert out.delivered and out.message == b"legacy payload"

    def test_route_fault_tolerant_request_form_does_not_warn(self, tmp_path):
        from repro.service import RouteRequest

        svc, spec = self._service(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            out = svc.route_fault_tolerant(
                spec, RouteRequest((0, 1), message=b"new world")
            )
        assert out.delivered and out.message == b"new world"


class TestFaultSetAlias:
    def test_attribute_access_warns_and_forwards(self):
        import repro.service

        from repro.fault.faults import FaultModel

        with pytest.warns(ReproDeprecationWarning) as record:
            alias = repro.service.api.FaultSet
        _assert_one_warning(record)
        assert alias is FaultModel

    def test_from_import_warns(self):
        # CPython's from-import probes the module attribute twice
        # (hasattr then getattr), so this form may warn more than once;
        # what matters is that it warns at all and forwards correctly
        from repro.fault.faults import FaultModel

        with pytest.warns(ReproDeprecationWarning):
            from repro.service import FaultSet  # noqa: F401 - the shim under test
        assert FaultSet is FaultModel

    def test_alias_still_builds_a_working_model(self):
        with pytest.warns(ReproDeprecationWarning):
            from repro.service import FaultSet

        model = FaultSet(Hypercube(3), {0})
        assert model.hop_dead(0) and not model.hop_dead(1)

    def test_other_missing_attributes_still_raise(self):
        import repro.service

        with pytest.raises(AttributeError):
            repro.service.NoSuchThing
        with pytest.raises(AttributeError):
            repro.service.api.NoSuchThing


class TestServiceMetricsShim:
    def test_constructing_warns_once(self):
        from repro.service.metrics import ServiceMetrics

        with pytest.warns(ReproDeprecationWarning) as record:
            metrics = ServiceMetrics()
        _assert_one_warning(record)
        metrics.incr("hits")
        assert metrics.count("hits") == 1

    def test_legacy_snapshot_shape(self):
        from repro.service.metrics import ServiceMetrics

        with pytest.warns(ReproDeprecationWarning):
            metrics = ServiceMetrics()
        with metrics.time("build"):
            pass
        snap = metrics.snapshot()
        assert set(snap) == {"counters", "timers"}
        assert snap["timers"]["build"]["count"] == 1

    def test_reset_keeps_legacy_empty_shape(self):
        from repro.service.metrics import ServiceMetrics

        with pytest.warns(ReproDeprecationWarning):
            metrics = ServiceMetrics()
        metrics.incr("x")
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "timers": {}}
