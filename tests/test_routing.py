"""Tests for the routing substrate: schedules, store-and-forward, wormhole."""

import pytest

from repro.core.cycle_multicopy import graycode_cycle_embedding
from repro.hypercube.graph import Hypercube
from repro.routing.schedule import (
    PacketSchedule,
    ScheduledPacket,
    p_packet_cost_singlepath,
    singlepath_cost_lower_bound,
)
from repro.routing.simulator import StoreForwardSimulator
from repro.routing.wormhole import WormholeSimulator


class TestScheduledPacket:
    def test_valid(self):
        ScheduledPacket((0, 1, 3), (1, 2))

    def test_step_count_mismatch(self):
        with pytest.raises(ValueError):
            ScheduledPacket((0, 1, 3), (1,))

    def test_non_increasing_steps(self):
        with pytest.raises(ValueError):
            ScheduledPacket((0, 1, 3), (2, 2))

    def test_steps_start_at_one(self):
        with pytest.raises(ValueError):
            ScheduledPacket((0, 1), (0,))


class TestPacketSchedule:
    def test_conflict_detection(self):
        host = Hypercube(3)
        sched = PacketSchedule(
            host,
            [ScheduledPacket((0, 1), (1,)), ScheduledPacket((0, 1), (1,))],
        )
        with pytest.raises(AssertionError):
            sched.verify()

    def test_same_link_different_steps_ok(self):
        host = Hypercube(3)
        sched = PacketSchedule(
            host,
            [ScheduledPacket((0, 1), (1,)), ScheduledPacket((0, 1), (2,))],
        )
        sched.verify()
        assert sched.makespan == 2

    def test_busy_fraction(self):
        host = Hypercube(2)  # 8 directed links
        sched = PacketSchedule(host, [ScheduledPacket((0, 1), (1,))])
        assert sched.busy_link_fraction() == 1 / 8


class TestStoreForward:
    def test_single_packet_takes_path_length(self):
        sim = StoreForwardSimulator(Hypercube(4))
        assert sim.run([[0, 1, 3, 7, 15]]).makespan == 4

    def test_fifo_contention_serializes(self):
        sim = StoreForwardSimulator(Hypercube(3))
        assert sim.run([[0, 1]] * 5).makespan == 5

    def test_pipelining(self):
        # packets released 1 apart down a 3-hop path finish 1 apart
        sim = StoreForwardSimulator(Hypercube(3))
        res = sim.run([([0, 1, 3, 7], 1), ([0, 1, 3, 7], 2)])
        assert res.makespan == 4
        assert res.done_steps == (3, 4)

    def test_zero_hop_packet(self):
        res = StoreForwardSimulator(Hypercube(3)).run([[5]])
        assert res.makespan == 0
        assert res.done_steps == (0,)

    def test_release_delays(self):
        sim = StoreForwardSimulator(Hypercube(3))
        assert sim.run([([0, 4], 10)]).makespan == 10

    def test_gray_baseline_cost_is_p(self):
        emb = graycode_cycle_embedding(5)
        for p in (1, 3, 9):
            assert p_packet_cost_singlepath(emb, p) == p
            assert singlepath_cost_lower_bound(emb, p) == p


class TestWormhole:
    def test_free_path_pipelines(self):
        sim = WormholeSimulator(Hypercube(4))
        sim.inject([0, 1, 3, 7, 15], num_flits=10)
        # L + M - 1 steps
        assert sim.run() == 4 + 10 - 1

    def test_single_flit_is_store_and_forward(self):
        sim = WormholeSimulator(Hypercube(4))
        sim.inject([0, 1, 3, 7], num_flits=1)
        assert sim.run() == 3

    def test_blocking_serializes_on_shared_link(self):
        host = Hypercube(3)
        sim = WormholeSimulator(host)
        w1 = sim.inject([0, 1, 3], num_flits=8)
        w2 = sim.inject([5, 1, 3], num_flits=8)  # shares link 1->3
        sim.run()
        # second worm must wait for the first tail to release the link:
        # worm1 holds 1->3 during steps 2..9, worm2 crosses after
        assert w1.done_step == 2 + 8 - 1
        assert w2.done_step is not None and w2.done_step >= 8 + 8

    def test_larger_buffers_are_cut_through(self):
        # with huge buffers a blocked worm compresses into the node and the
        # link releases earlier
        host = Hypercube(3)
        slow = WormholeSimulator(host, buffer_capacity=1)
        fast = WormholeSimulator(host, buffer_capacity=64)
        for sim in (slow, fast):
            sim.inject([0, 1, 3], num_flits=8)
            sim.inject([5, 1, 3], num_flits=8)
        assert fast.run() <= slow.run()

    def test_invalid_args(self):
        sim = WormholeSimulator(Hypercube(3))
        with pytest.raises(ValueError):
            sim.inject([0], num_flits=2)
        with pytest.raises(ValueError):
            sim.inject([0, 1], num_flits=0)
        with pytest.raises(ValueError):
            WormholeSimulator(Hypercube(3), buffer_capacity=0)


class TestWormholeDeadlock:
    def test_cyclic_wait_detected(self):
        from repro.routing.wormhole import WormholeDeadlock, WormholeSimulator

        host = Hypercube(2)
        sim = WormholeSimulator(host)
        # four worms chasing each other around the 4-cycle 0-1-3-2-0:
        # each one's head needs the link its predecessor holds
        sim.inject([0, 1, 3], num_flits=8)
        sim.inject([1, 3, 2], num_flits=8)
        sim.inject([3, 2, 0], num_flits=8)
        sim.inject([2, 0, 1], num_flits=8)
        with pytest.raises(WormholeDeadlock):
            sim.run()

    def test_cut_through_buffers_break_the_cycle(self):
        from repro.routing.wormhole import WormholeSimulator

        host = Hypercube(2)
        sim = WormholeSimulator(host, buffer_capacity=8)
        sim.inject([0, 1, 3], num_flits=8)
        sim.inject([1, 3, 2], num_flits=8)
        sim.inject([3, 2, 0], num_flits=8)
        sim.inject([2, 0, 1], num_flits=8)
        assert sim.run() > 0  # completes

    def test_max_steps_guard(self):
        from repro.routing.simulator import StoreForwardSimulator

        sim = StoreForwardSimulator(Hypercube(3))
        with pytest.raises(RuntimeError):
            sim.run([[0, 1]], max_steps=0)


class TestRepeatRunRegressions:
    """Regression: a second run() after completion must not hang or mix state."""

    def test_wormhole_double_run_returns_immediately(self):
        # remaining used to count already-delivered worms, so the second
        # run() spun to max_steps
        sim = WormholeSimulator(Hypercube(3))
        sim.inject([0, 1, 3], num_flits=4)
        first = sim.run()
        assert sim.run(max_steps=100) == first

    def test_fast_wormhole_double_run_returns_immediately(self):
        from repro.routing.fast_wormhole import FastWormhole

        sim = FastWormhole(Hypercube(3))
        sim.inject([0, 1, 3], num_flits=4)
        first = sim.run()
        assert sim.run(max_steps=100) == first

    def test_store_forward_repeat_run_is_isolated(self):
        # _delivered/_steps_run used to accumulate across runs, so the
        # delivered property mixed packets from separate schedules
        sim = StoreForwardSimulator(Hypercube(3))
        r1 = sim.run([[0, 1], [2, 3]])
        assert r1.delivered == 2
        r2 = sim.run([[4, 5]])
        assert r2.delivered == 1
        assert len(sim.delivered) == 1  # this run's packet only

    def test_delivered_counts_actual_arrivals(self):
        # SimResult.delivered was hardcoded to len(requests); it must be
        # derived from per-packet done_steps
        sim = StoreForwardSimulator(Hypercube(3))
        res = sim.run([[0, 1, 3], [5, 4]])
        assert res.delivered == sum(1 for d in res.done_steps if d >= 0) == 2


class TestSparseReleaseFastForward:
    """Regression: empty steps before far-future releases iterated one at a
    time; both engines now jump straight to the next release, without
    changing any makespan."""

    def test_store_forward_far_release_completes_fast(self):
        sim = StoreForwardSimulator(Hypercube(3))
        # would be ~half a million idle iterations without the jump
        assert sim.run([([0, 1, 3], 500_000)]).makespan == 500_001

    def test_store_forward_staggered_far_releases(self):
        sim = StoreForwardSimulator(Hypercube(3))
        res = sim.run([([0, 1], 100_000), ([2, 3], 300_000)])
        assert res.makespan == 300_000
        assert res.done_steps == (100_000, 300_000)

    def test_store_forward_makespan_identical_to_dense_shift(self):
        # fast-forward is behavior-preserving: shifting every release by a
        # constant shifts every arrival by exactly that constant
        sched = [([0, 1, 3], 1), ([5, 1, 3], 2), ([4, 5], 1)]
        dense = StoreForwardSimulator(Hypercube(3)).run(sched)
        shifted = StoreForwardSimulator(Hypercube(3)).run(
            [(p, r + 40_000) for p, r in sched]
        )
        assert [d + 40_000 for d in dense.done_steps] == list(shifted.done_steps)

    def test_wormhole_far_release_completes_fast(self):
        sim = WormholeSimulator(Hypercube(3))
        sim.inject([0, 1, 3], num_flits=4, release_step=400_000)
        assert sim.run(max_steps=500_000) == 400_000 + 2 + 4 - 2

    def test_wormhole_mixed_releases_unchanged(self):
        # a released worm in flight blocks the jump; makespans match the
        # no-jump semantics exactly
        sim = WormholeSimulator(Hypercube(3))
        w1 = sim.inject([0, 1, 3], num_flits=6, release_step=1)
        w2 = sim.inject([5, 1, 3], num_flits=2, release_step=3)
        sim.run()
        assert w1.done_step == 7  # 2 + 6 - 1
        assert w2.done_step is not None and w2.done_step > 7


class TestPPacketCostMultipath:
    def test_theorem1_rounds(self):
        from repro.core import embed_cycle_load1
        from repro.routing.schedule import p_packet_cost_multipath

        emb = embed_cycle_load1(8)  # width 5 paths + schedules
        assert p_packet_cost_multipath(emb, 5) == 3
        assert p_packet_cost_multipath(emb, 10) == 6
        assert p_packet_cost_multipath(emb, 11) == 9

    def test_without_schedule_falls_back(self):
        from repro.core.generic import shortest_path_embedding, widen_embedding
        from repro.networks.cycle import DirectedCycle
        from repro.routing.schedule import p_packet_cost_multipath

        base = shortest_path_embedding(Hypercube(5), DirectedCycle(32))
        wide = widen_embedding(base, 3)
        assert p_packet_cost_multipath(wide, 6) >= 1

    def test_invalid_p(self):
        from repro.core import embed_cycle_load1
        from repro.routing.schedule import p_packet_cost_multipath

        with pytest.raises(ValueError):
            p_packet_cost_multipath(embed_cycle_load1(4), 0)


class TestPortLimit:
    def test_single_port_serializes_node_sends(self):
        # node 0 sends over 3 distinct dims: single-port takes 3 steps
        sim = StoreForwardSimulator(Hypercube(3), port_limit=1)
        assert sim.run([[0, 1 << d] for d in range(3)]).makespan == 3

    def test_all_port_parallelizes(self):
        sim = StoreForwardSimulator(Hypercube(3))
        assert sim.run([[0, 1 << d] for d in range(3)]).makespan == 1

    def test_port_limit_two(self):
        sim = StoreForwardSimulator(Hypercube(3), port_limit=2)
        assert sim.run([[0, 1 << d] for d in range(3)]).makespan == 2

    def test_measured_matches_dimension_exchange_closed_form(self):
        from repro.apps.total_exchange import single_port_exchange_steps

        for n in (3, 4, 5):
            assert single_port_exchange_steps(n, measured=True) == n * 2 ** (
                n - 1
            )

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            StoreForwardSimulator(Hypercube(3), port_limit=0)
