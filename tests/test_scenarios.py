"""Tests for repro.scenarios: generators, campaigns, sweeps, QA wiring."""

import pytest

from repro.fault.faults import FaultModel
from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.simulator import StoreForwardSimulator
from repro.scenarios import (
    CampaignConfig,
    build_schedule,
    get_scenario,
    run_campaign,
    saturation_sweep,
    scenario_names,
    scenario_subject,
    schedule_digest,
)

HOST = Hypercube(6)


class TestRegistry:
    def test_builtin_generators_registered(self):
        names = scenario_names()
        assert len(names) >= 7
        for expected in (
            "bit-reversal", "transpose", "shuffle", "tornado",
            "hot-spot", "many-to-one", "poisson",
        ):
            assert expected in names

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")
        with pytest.raises(KeyError):
            build_schedule("nope", HOST)

    def test_invalid_knobs(self):
        with pytest.raises(ValueError):
            build_schedule("poisson", HOST, load=-1)
        with pytest.raises(ValueError):
            build_schedule("poisson", HOST, horizon=0)

    def test_defaults_overridable(self):
        sched = build_schedule(
            "many-to-one", HOST, load=1.0, horizon=2, seed=1, sink=5
        )
        assert sched and all(path[-1] == 5 for path, _ in sched)


class TestDeterminism:
    @pytest.mark.parametrize("name", scenario_names())
    def test_same_seed_same_schedule(self, name):
        a = build_schedule(name, HOST, load=0.7, horizon=4, seed="d1")
        b = build_schedule(name, HOST, load=0.7, horizon=4, seed="d1")
        assert schedule_digest(a) == schedule_digest(b)
        assert a == b

    def test_different_seeds_differ(self):
        a = build_schedule("poisson", HOST, load=1.0, horizon=4, seed="a")
        b = build_schedule("poisson", HOST, load=1.0, horizon=4, seed="b")
        assert schedule_digest(a) != schedule_digest(b)


class TestSubject:
    @pytest.mark.parametrize("name", scenario_names())
    def test_verifies(self, name):
        subject = scenario_subject(name, 6, load=0.5, horizon=3, seed=2)
        report = subject.verify(strict=False)
        assert report.ok
        assert report.metrics["packets"] == len(subject.schedule)

    def test_relabel_dispatch(self):
        from repro._compat import resolve_rng
        from repro.hypercube.automorphisms import (
            HypercubeAutomorphism,
            relabel_embedding,
        )

        subject = scenario_subject("bit-reversal", 5, horizon=2, seed=3)
        auto = HypercubeAutomorphism.random(5, resolve_rng(9))
        image = relabel_embedding(subject, auto)
        assert image.verify(strict=False).ok
        base, img = subject.verify(strict=False), image.verify(strict=False)
        assert base.metrics == img.metrics


class TestEngineDifferential:
    @pytest.mark.parametrize("name", scenario_names())
    def test_engines_agree_clean(self, name):
        sched = build_schedule(name, HOST, load=0.5, horizon=4, seed=5)
        ref = StoreForwardSimulator(HOST, tie_break="priority").run(sched)
        fast = FastStoreForward(HOST).run(sched)
        assert ref.measured() == fast.measured()
        assert ref.done_steps == fast.done_steps

    @pytest.mark.parametrize("name", scenario_names())
    def test_engines_agree_under_faults(self, name):
        sched = build_schedule(name, HOST, load=0.5, horizon=4, seed=5)
        faults = FaultModel.random_links(HOST, 5, seed=f"f:{name}")
        faults = faults.merged(
            FaultModel.random_nodes(HOST, 2, seed=f"g:{name}")
        )
        faults.active_from = 3
        ref = StoreForwardSimulator(HOST, tie_break="priority").run(
            sched, faults=faults
        )
        fast = FastStoreForward(HOST).run(sched, faults=faults)
        assert ref.measured() == fast.measured()
        assert ref.done_steps == fast.done_steps


class TestCampaign:
    def test_no_kills_delivers_everything(self):
        rep = run_campaign(
            CampaignConfig(n=5, kill_links=0, fault_prob=0.0, seed=1)
        )
        assert rep.single.delivered_fraction == 1.0
        assert rep.ida.delivered_fraction == 1.0
        assert rep.reconstructions == rep.reconstruction_checks > 0

    def test_ida_failover_beats_single(self):
        rep = run_campaign(
            CampaignConfig(n=8, kill_links=4, kill_step=0, seed=0)
        )
        assert rep.ida.delivered_fraction >= 0.99
        assert rep.single.delivered_fraction < rep.ida.delivered_fraction
        assert rep.failover_gain > 0
        assert rep.killed_links == 4

    def test_deterministic(self):
        a = run_campaign(CampaignConfig(n=5, kill_links=2, seed=3))
        b = run_campaign(CampaignConfig(n=5, kill_links=2, seed=3))
        assert a.to_dict() == b.to_dict()

    def test_engines_agree(self):
        fast = run_campaign(
            CampaignConfig(n=5, kill_links=3, kill_step=2, seed=4)
        )
        ref = run_campaign(
            CampaignConfig(
                n=5, kill_links=3, kill_step=2, seed=4, engine="reference"
            )
        )
        assert fast.single.to_dict() == ref.single.to_dict()
        assert fast.ida.delivered_messages == ref.ida.delivered_messages

    def test_node_kills(self):
        rep = run_campaign(
            CampaignConfig(n=5, kill_nodes=2, kill_step=0, seed=6)
        )
        assert rep.killed_nodes == 2
        # messages whose endpoint died can never deliver, in either arm
        assert rep.single.delivered_fraction < 1.0

    def test_report_shapes(self):
        rep = run_campaign(CampaignConfig(n=4, kill_links=1, seed=0))
        d = rep.to_dict()
        assert d["single"]["label"] == "single-path"
        assert d["ida"]["label"] == "ida-failover"
        text = rep.format()
        assert "delivered" in text and "campaign:" in text

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CampaignConfig(n=4, engine="warp")
        with pytest.raises(ValueError):
            CampaignConfig(n=4, kill_links=-1)


class TestSaturationSweep:
    def test_rows_and_metrics(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        rows = saturation_sweep(
            "poisson", 5, [0.25, 1.0], horizon=8, seed=1, metrics=metrics
        )
        assert [r["load"] for r in rows] == [0.25, 1.0]
        for row in rows:
            assert row["scenario"] == "poisson"
            assert 0 <= row["accepted"] <= row["offered"] + 1e-9
            assert row["latency_p99"] >= row["latency_p50"] >= 0
        # congestion grows with offered load
        assert rows[1]["congestion"] >= rows[0]["congestion"]
        snap = metrics.snapshot()
        assert any("scenarios.packets" in k for k in snap["counters"])

    def test_engine_choice_validated(self):
        with pytest.raises(ValueError):
            saturation_sweep("poisson", 4, [0.5], engine="warp")


class TestQAWiring:
    def test_scenario_kinds_in_fuzz_space(self):
        from repro.qa.constructions import default_space

        kinds = default_space().kinds()
        for name in scenario_names():
            assert f"scenario:{name}" in kinds

    @pytest.mark.parametrize("name", scenario_names())
    def test_fuzz_point_passes_all_stages(self, name):
        import repro.qa.oracles  # noqa: F401  (arms the oracles)
        from repro.qa.fuzzer import Fuzzer

        fz = Fuzzer(seed=7, images=2, max_packets=40)
        params = {"n": 4, "load": 0.5, "horizon": 3, "scenario_seed": 99}
        failure = fz.check_point(f"scenario:{name}", params, f"pt:{name}")
        assert failure is None, failure

    def test_oracle_catches_pattern_break(self):
        import repro.qa.oracles  # noqa: F401
        from repro.core.verification import run_oracles

        subject = scenario_subject("many-to-one", 4, horizon=2, seed=1)
        params = dict(subject.params, scenario_seed=1)
        # corrupt one destination: the incast oracle must notice
        path, release = subject.schedule[0]
        broken = (path[:-1] + (path[-1] ^ 1,), release)
        subject.schedule[0] = broken
        subject.edge_paths[0] = broken[0]
        checks = run_oracles("scenario:many-to-one", subject, params)
        assert any(not c.passed for c in checks)


class TestScenarioCLI:
    @pytest.mark.parametrize(
        "argv",
        [
            ["scenarios", "ls"],
            ["scenarios", "run", "tornado", "--n", "5", "--load", "0.5"],
            ["scenarios", "campaign", "--n", "5", "--kill-links", "2"],
            ["scenarios", "campaign", "--n", "5", "--kill-links", "2",
             "--kill-step", "auto", "--json"],
            ["scenarios", "sweep", "poisson", "--n", "4",
             "--loads", "0.25,0.5", "--horizon", "4"],
            ["scenarios", "smoke", "--n", "4"],
        ],
    )
    def test_exits_zero(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 0
        assert capsys.readouterr().out

    def test_faults_new_flags(self, capsys):
        from repro.cli import main

        assert main(
            ["faults", "--n", "5", "--kill-links", "3", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "ida-failover" in out and "single-path" in out
