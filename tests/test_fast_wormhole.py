"""Tests for the vectorized wormhole engine (mirrors TestWormhole semantics)."""

import pytest

from repro.hypercube.graph import Hypercube
from repro.obs.recorder import LinkRecorder
from repro.routing.fast_wormhole import FastWormhole
from repro.routing.wormhole import WormholeDeadlock, WormholeSimulator


class TestSemantics:
    def test_free_path_pipelines(self):
        sim = FastWormhole(Hypercube(4))
        sim.inject([0, 1, 3, 7, 15], num_flits=10)
        # L + M - 1 steps
        assert sim.run() == 4 + 10 - 1

    def test_single_flit_is_store_and_forward(self):
        sim = FastWormhole(Hypercube(4))
        sim.inject([0, 1, 3, 7], num_flits=1)
        assert sim.run() == 3

    def test_blocking_serializes_on_shared_link(self):
        sim = FastWormhole(Hypercube(3))
        w1 = sim.inject([0, 1, 3], num_flits=8)
        w2 = sim.inject([5, 1, 3], num_flits=8)  # shares link 1->3
        sim.run()
        assert w1.done_step == 2 + 8 - 1
        assert w2.done_step is not None and w2.done_step >= 8 + 8

    def test_larger_buffers_are_cut_through(self):
        host = Hypercube(3)
        slow = FastWormhole(host, buffer_capacity=1)
        fast = FastWormhole(host, buffer_capacity=64)
        for sim in (slow, fast):
            sim.inject([0, 1, 3], num_flits=8)
            sim.inject([5, 1, 3], num_flits=8)
        assert fast.run() <= slow.run()

    def test_invalid_args(self):
        sim = FastWormhole(Hypercube(3))
        with pytest.raises(ValueError):
            sim.inject([0], num_flits=2)
        with pytest.raises(ValueError):
            sim.inject([0, 1], num_flits=0)
        with pytest.raises(ValueError):
            FastWormhole(Hypercube(3), buffer_capacity=0)

    def test_empty_run(self):
        assert FastWormhole(Hypercube(3)).run() == 0

    def test_release_fast_forward(self):
        sim = FastWormhole(Hypercube(3))
        sim.inject([0, 1, 3], num_flits=4, release_step=100_000)
        # jumps over the idle window instead of spinning through it
        assert sim.run(max_steps=200_000) == 100_000 + 2 + 4 - 1 - 1


class TestDeadlock:
    CYCLE = ([0, 1, 3], [1, 3, 2], [3, 2, 0], [2, 0, 1])

    def test_cyclic_wait_detected(self):
        sim = FastWormhole(Hypercube(2))
        for path in self.CYCLE:
            sim.inject(path, num_flits=8)
        with pytest.raises(WormholeDeadlock):
            sim.run()

    def test_cut_through_buffers_break_the_cycle(self):
        sim = FastWormhole(Hypercube(2), buffer_capacity=8)
        for path in self.CYCLE:
            sim.inject(path, num_flits=8)
        assert sim.run() > 0

    def test_deadlocked_state_matches_reference(self):
        ref = WormholeSimulator(Hypercube(2))
        fast = FastWormhole(Hypercube(2))
        for sim in (ref, fast):
            for path in self.CYCLE:
                sim.inject(path, num_flits=8)
        with pytest.raises(WormholeDeadlock) as ref_err:
            ref.run()
        with pytest.raises(WormholeDeadlock) as fast_err:
            fast.run()
        assert str(ref_err.value) == str(fast_err.value)
        # the stuck partial state is written back, link ownership included
        for a, b in zip(ref.worms, fast.worms):
            assert (a.done_step, a.head_link, a.flits_crossed) == (
                b.done_step,
                b.head_link,
                b.flits_crossed,
            )
        assert ref._owner == fast._owner


class TestReferenceParity:
    def test_worm_objects_match_reference(self):
        ref = WormholeSimulator(Hypercube(3))
        fast = FastWormhole(Hypercube(3))
        for sim in (ref, fast):
            sim.inject([0, 1, 3, 7], num_flits=5)
            sim.inject([4, 5, 7, 6], num_flits=3, release_step=2)
            sim.inject([5, 1, 3], num_flits=8)
        assert ref.run() == fast.run()
        for a, b in zip(ref.worms, fast.worms):
            assert a.done_step == b.done_step
            assert a.head_link == b.head_link
            assert a.flits_crossed == b.flits_crossed

    def test_recorder_totals_match_reference(self):
        host = Hypercube(3)
        ref, ref_rec = WormholeSimulator(host), LinkRecorder(host=host)
        fast, fast_rec = FastWormhole(host), LinkRecorder(host=host)
        for sim in (ref, fast):
            sim.inject([0, 1, 3], num_flits=6)
            sim.inject([5, 1, 3], num_flits=6)
            sim.inject([2, 3, 7], num_flits=2, release_step=3)
        ref.run(recorder=ref_rec)
        fast.run(recorder=fast_rec)
        assert ref_rec.snapshot() == fast_rec.snapshot()

    def test_repeat_run_resumes_like_reference(self):
        # first run delivers; a second run() must return the same makespan
        # immediately (regression: the reference engine used to hang here)
        ref = WormholeSimulator(Hypercube(3))
        fast = FastWormhole(Hypercube(3))
        for sim in (ref, fast):
            sim.inject([0, 1, 3], num_flits=4)
        assert ref.run() == fast.run()
        assert ref.run(max_steps=100) == fast.run(max_steps=100)
