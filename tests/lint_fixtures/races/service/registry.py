"""R6 fixture: one racy registry, one disciplined one, one waived access."""

import threading


class RacyCache:
    """Deliberate bug farm: ``_store`` is guarded, then touched bare."""

    def __init__(self):
        self._lock = threading.Lock()
        self._store = {}
        self.hits = 0

    def put(self, key, value):
        with self._lock:
            self._store[key] = value  # the write that declares _store shared

    def get(self, key):
        return self._store.get(key)  # unsynchronized read

    def evict(self, key):
        self._store.pop(key, None)  # unsynchronized mutator write

    def bump(self):
        with self._lock:
            self.hits += 1

    def peek_hits(self):
        return self.hits  # lint: race-ok(monotonic int read is a stale-ok stat)


class DisciplinedCache:
    """Every access to guarded state takes the lock: zero findings."""

    def __init__(self):
        self._lock = threading.RLock()
        self._store = {}
        self.label = "cache"  # never written under lock: not guarded

    def put(self, key, value):
        with self._lock:
            self._store[key] = value

    def get(self, key):
        with self._lock:
            return self._store.get(key)

    def describe(self):
        return self.label  # unguarded attr, free to read


def _teardown(lock, store):
    with lock:
        store.clear()


class HandoffCache:
    """Teardown hands the callee the lock along with the guarded map."""

    def __init__(self):
        self._lock = threading.Lock()
        self._store = {}

    def put(self, key, value):
        with self._lock:
            self._store[key] = value

    def close(self):
        _teardown(self._lock, self._store)  # synchronized by handoff

    def leak(self):
        _teardown(None, self._store)  # no lock handed over: flagged
