"""R6 fixture: asyncio paths and delegation edge cases.

Mirrors the batching frontend's shape: a drain loop and async serve
paths sharing instance state, plus the two delegation idioms the
detector must recognize — the lock passed through a *keyword* argument,
and the ``weakref.finalize`` teardown registration.
"""

import threading
import weakref


class AsyncFrontend:
    """Async methods are analyzed exactly like threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._batches = 0
        self._queue = []

    def drain(self):
        with self._lock:
            self._batches += 1  # declares _batches shared

    async def serve(self):
        return self._batches  # unsynchronized read from the async path

    async def serve_locked(self):
        with self._lock:
            return self._batches  # disciplined async read


def _teardown(lock, store):
    with lock:
        store.clear()


class KeywordHandoff:
    """The lock travels as a keyword argument: still a handoff."""

    def __init__(self):
        self._lock = threading.Lock()
        self._store = {}

    def put(self, key, value):
        with self._lock:
            self._store[key] = value

    def close(self):
        _teardown(store=self._store, lock=self._lock)  # synchronized


class FinalizeHandoff:
    """finalize(self, cb, lock, map): teardown owns the map at GC time."""

    def __init__(self):
        self._lock = threading.Lock()
        self._store = {}
        weakref.finalize(self, _teardown, self._lock, self._store)

    def put(self, key, value):
        with self._lock:
            self._store[key] = value

    def register(self):
        weakref.finalize(self, _teardown, self._lock, self._store)
