"""R1 negative fixture: disciplined randomness, plus a waived exception."""

import random
from typing import Optional

from repro._compat import resolve_rng


def sample_things(items, seed=None, rng: Optional[random.Random] = None):
    rng = resolve_rng(seed, rng)
    return rng.choice(items)


def forwarding(items, seed=None, rng=None):
    # forwarding both to an arbitrating callee is also fine
    return sample_things(items, seed=seed, rng=rng)


def benchmark_noise():
    return random.Random(0)  # lint: rng-ok(fixture exercises the waiver)


def uses_stream(rng):
    # calls on an rng *object* are the approved pattern, never flagged
    return rng.randrange(10)
