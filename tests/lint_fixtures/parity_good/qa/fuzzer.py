"""R9 fixture fuzzer registering every differential check."""

from qa.differential import (
    batched_thing_differential_check,
    fast_thing_differential_check,
)

STAGES = ("differential", "batched_differential")


def run(host, schedule):
    fast_thing_differential_check(host, schedule)
    batched_thing_differential_check(host, [schedule])
