"""R9 fixture differential module covering both engines."""

from kernels.routing.engines import BatchedThing, FastThing


def fast_thing_differential_check(host, schedule):
    return FastThing().run(schedule)


def batched_thing_differential_check(host, schedules):
    return BatchedThing().run_many(schedules)
