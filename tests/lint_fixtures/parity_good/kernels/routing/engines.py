"""R9 fixture: every optimized engine is covered (or waived)."""


class FastThing:
    engine = "fast-thing"

    def run(self, schedule):
        return schedule


class BatchedThing:
    engine = "batched-thing"

    def run_many(self, schedules):
        return schedules


# lint: no-parity(parity proven via BatchedThing, which wraps it lane 0)
class BatchedWrapped:
    engine = "batched-wrapped"

    def run_many(self, schedules):
        return schedules
