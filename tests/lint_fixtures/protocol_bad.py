"""R4 positive fixture: engine classes that break the run() surface."""


class SimResult:
    pass


class DriftingEngine:
    """Wrong first parameter, missing keyword-only params."""

    engine = "drifting"

    def run(self, packets, limit=100):
        return SimResult()


class NoRunEngine:
    """Claims to be an engine but cannot run at all."""

    engine = "inert"

    def step(self):
        return None


class NoResultEngine:
    """Right signature, but run() never produces a SimResult."""

    engine = "resultless"

    def run(self, schedule=None, *, max_steps=1000, recorder=None):
        return 42
