"""R8 fixture: domains that provably fit, and contract-width packs."""

import numpy as np


def packed_keys_as_int64(lookup, us, vs):
    key = us * np.int64(lookup.base) + vs
    return key.astype(np.int64)


def plain_links_fit_int32(host, heads, dims):
    # LinkId tops out at 20 * 2^20 — int32 holds it with room to spare
    eids = heads * np.int64(host.n) + dims
    return eids.astype(np.int32)


def flit_positions_fit_int32(worms):
    # FlitPos extent is 2^20: the batched engine's int32 flit tensors
    positions = np.fromiter((w.num_flits for w in worms), dtype=np.int32)
    return positions
