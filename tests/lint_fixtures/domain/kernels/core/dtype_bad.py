"""R8 fixture: packed ids narrowed below their Q_20/B=4096 extent."""

import numpy as np


def packed_keys_as_int32(lookup, us, vs):
    # ~1.1e12 at Q_20 — wraps in int32
    key = us * np.int64(lookup.base) + vs
    return key.astype(np.int32)


def lane_ids_packed_in_int32(host, lane, eids):
    # the multiply itself overflows before any store
    lanes32 = lane.astype(np.int32)
    links32 = np.int32(host.num_edges)
    return lanes32 * links32 + eids.astype(np.int32)


def offsets_narrowed(csr):
    # CSR offsets are int64 by the pathcode.py contract
    return np.asarray(csr.path_offsets, dtype=np.int32)


def store_into_narrow_array(host, lane, eid, out32):
    flat = lane * np.int64(host.num_edges) + eid
    sink = np.zeros(8, dtype=np.int32)
    sink[0] = flat
    return sink


def waived_tight_bound(host, lane, eid):
    flat = lane * np.int64(host.num_edges) + eid
    # lint: dtype-ok(callers cap lanes at 4 so this fits comfortably)
    return flat.astype(np.int32)
