"""R7 fixture: lane-major ids leaking into scalar-link territory."""

import numpy as np


def lane_into_scalar_api(host, recorder, lane, eid, counts):
    # the motivating bug: a LaneLinkId handed to a per-link recorder API
    links = host.num_edges
    flat = lane * links + eid
    recorder.add_link_counts(flat, counts)


def lane_into_per_link_array(host, lane, eid):
    # a num_edges-sized array indexed with a lane-major id reads garbage
    row = np.zeros(host.num_edges, dtype=np.int64)
    flat = lane * host.num_edges + eid
    row[flat] += 1
    return row


def packed_key_vs_node(lookup, csr, us, vs):
    # a PackedEdgeKey can only coincidentally equal a NodeId
    key = us * np.int64(lookup.base) + vs
    return key == csr.nodes[0]


def packed_needles_in_node_keys(csr, lookup, us, vs):
    # searchsorted needles must share the haystack's domain
    key = us * np.int64(lookup.base) + vs
    return np.searchsorted(csr.nodes, key)


def _forward(recorder, eids, counts):
    # one-level summary: eids is a LinkId because it flows into the
    # seeded consumer untouched
    recorder.add_link_counts(eids, counts)


def lane_through_helper(host, recorder, lane, eid, counts):
    flat = lane * host.num_edges + eid
    _forward(recorder, flat, counts)


def waived_reinterpretation(host, recorder, lane, eid, counts):
    flat = lane * host.num_edges + eid
    # lint: domain-ok(disjointness key, uniqueness only)
    recorder.add_link_counts(flat, counts)
