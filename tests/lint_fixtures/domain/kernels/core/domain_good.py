"""R7 fixture: the same flows done right — unpack before consuming."""

import numpy as np


def unpacked_into_scalar_api(host, recorder, lane, eid, counts):
    links = host.num_edges
    flat = lane * links + eid
    recorder.add_link_counts(flat % links, counts)


def lane_major_array_indexed_lane_major(host, lane, eid):
    links = host.num_edges
    flat_state = np.zeros(4096 * links, dtype=np.int64)
    flat = lane * links + eid
    flat_state[flat] += 1
    return flat_state


def packed_key_vs_packed_key(lookup, us, vs):
    key = us * np.int64(lookup.base) + vs
    return np.searchsorted(lookup.keys, key)


def plain_ints_stay_silent(recorder, eids, counts):
    # unknown domains are compatible with every consumer
    recorder.add_link_counts(eids, counts)
