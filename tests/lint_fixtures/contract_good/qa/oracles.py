"""Oracles for the good contract fixture: every kind is covered."""


def register_oracle(kind):
    def decorate(fn):
        return fn

    return decorate


@register_oracle("ring")
def ring_oracle(emb, params):
    yield ("ring:size", True)


@register_oracle("star")
def star_oracle(emb, params):
    yield ("star:size", True)
