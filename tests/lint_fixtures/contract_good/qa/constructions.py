"""Construction table for the good contract fixture."""


class FuzzConstruction:
    def __init__(self, kind, sample, build, shrink):
        self.kind = kind


def _build_ring(p):
    from contract_good.core import embed_ring

    return embed_ring(p["n"])


def _build_star(p):
    from contract_good.core import star_embedding

    return star_embedding(p["n"])


def default_space():
    return [
        FuzzConstruction("ring", lambda rng: {"n": 4}, _build_ring, None),
        FuzzConstruction("star", lambda rng: {"n": 4}, _build_star, None),
    ]
