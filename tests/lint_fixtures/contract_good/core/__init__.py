"""R3 negative fixture: every public builder is fuzzable and oracled."""

__all__ = [
    "embed_ring",
    "star_embedding",
    "count_nodes",
]


def embed_ring(n):
    return ("ring", n)


def star_embedding(n):
    return ("star", n)


def count_nodes(n):
    # not a builder by naming convention: the contract ignores it
    return 2**n
