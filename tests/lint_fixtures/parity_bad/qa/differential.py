"""R9 fixture differential module: covers FastThing only, and defines a
check the fuzzer never registers."""

from kernels.routing.engines import FastThing


def fast_thing_differential_check(host, schedule):
    return FastThing().run(schedule)


def orphan_differential_check(host, schedule):
    # defined but never referenced by qa/fuzzer.py
    return None
