"""R9 fixture fuzzer: registers only one of the differential checks."""

from qa.differential import fast_thing_differential_check

STAGES = ("differential",)


def run(host, schedule):
    return fast_thing_differential_check(host, schedule)
