"""R9 fixture: a serving kernel the differential module never touches."""


def embedding_csr(emb):
    return emb


def helper_not_a_kernel(emb):
    return emb
