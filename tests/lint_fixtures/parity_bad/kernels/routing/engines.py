"""R9 fixture: two optimized engines, one with no differential coverage."""


class FastThing:
    """Covered: the differential module references it."""

    engine = "fast-thing"

    def run(self, schedule):
        return schedule


class BatchedThing:
    """Uncovered: nothing in qa/differential.py mentions it."""

    engine = "batched-thing"

    def run_many(self, schedules):
        return schedules


class ReferenceThing:
    """Reference engines owe nobody a differential."""

    engine = "reference-thing"

    def run(self, schedule):
        return schedule
