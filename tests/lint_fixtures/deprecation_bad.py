"""R2 positive fixture: adopts every deprecated shim at once."""

from repro.service.metrics import ServiceMetrics


def build_and_run(host, schedule):
    from repro.routing.simulator import StoreForwardSimulator

    metrics = ServiceMetrics()
    sim = StoreForwardSimulator(host)
    for path, release in schedule:
        sim.inject(path, release)  # pre-obs style
    return metrics, sim.run()
