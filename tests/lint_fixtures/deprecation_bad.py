"""R2 positive fixture: adopts every deprecated shim at once."""

from repro.service.metrics import ServiceMetrics


def build_and_run(host, schedule):
    from repro.routing.simulator import StoreForwardSimulator

    metrics = ServiceMetrics()
    sim = StoreForwardSimulator(host)
    for path, release in schedule:
        sim.inject(path, release)  # pre-obs style
    return metrics, sim.run()


def faults_via_retired_alias(host):
    from repro.service import FaultSet

    return FaultSet(host, {1})
