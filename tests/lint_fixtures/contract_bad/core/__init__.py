"""R3 positive fixture: an orphaned builder and an unoracled fuzz kind."""

__all__ = [
    "embed_ring",
    "orphan_embedding",
    "rewrap_embedding",  # lint: no-oracle(thin rewrap of embed_ring, same numbers)
]


def embed_ring(n):
    return ("ring", n)


def orphan_embedding(n):
    # public, but no FuzzConstruction ever references it
    return ("orphan", n)


def rewrap_embedding(n):
    return embed_ring(n)
