"""Construction table for the bad contract fixture."""


class FuzzConstruction:
    def __init__(self, kind, sample, build, shrink):
        self.kind = kind


def _build_ring(p):
    from contract_bad.core import embed_ring

    return embed_ring(p["n"])


def default_space():
    return [
        FuzzConstruction("ring", lambda rng: {"n": 4}, _build_ring, None),
        FuzzConstruction("probe", lambda rng: {"n": 2}, _build_ring, None),  # lint: no-oracle(diagnostic kind, no paper claim)
    ]
