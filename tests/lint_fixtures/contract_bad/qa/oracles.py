"""Oracles for the bad contract fixture: the 'ring' kind is not covered."""


def register_oracle(kind):
    def decorate(fn):
        return fn

    return decorate
