"""R4 negative fixture: a conforming engine and a waived special surface."""


class SimResult:
    pass


class GoodEngine:
    engine = "good"

    def run(self, schedule=None, *, max_steps=10_000, recorder=None):
        return SimResult()


class FlitEngine:  # lint: protocol-exempt(flit-level surface by design)
    engine = "flit"

    def run(self, max_steps=10_000):
        return 7


class NotAnEngine:
    """No engine attribute: the rule must ignore this class entirely."""

    def run(self, whatever):
        return whatever
