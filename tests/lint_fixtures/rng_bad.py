"""R1 positive fixture: every statement here violates RNG discipline."""

import random

import numpy as np


def draw():
    return random.random()  # direct module call


def make_stream():
    return random.Random(42)  # private stream outside resolve_rng


def make_np_stream():
    return np.random.default_rng(7)


def sample_things(items, seed=None, rng=None):
    # takes both seed and rng but never arbitrates them
    if rng is None:
        rng = random.Random(seed)
    return rng.choice(items)
