"""R5 negative fixture: pure kernel, plus a waived instrumentation read."""

import time


def route(paths, now=None):
    # the caller supplies the timestamp; the kernel stays replayable
    return [(now, p) for p in paths]


def profiled_route(paths):
    start = time.perf_counter()  # perf_counter is profiling, never flagged
    out = route(paths)
    elapsed = time.monotonic()  # lint: nondet-ok(fixture exercises the waiver)
    return out, elapsed - start
