"""R5 positive fixture: a "kernel" module that reads clock and entropy."""

import os
import time
from datetime import datetime


def stamp_route(paths):
    started = time.time()
    token = os.urandom(8)
    when = datetime.now()
    return started, token, when, paths
