"""R4/R5 positive fixture: a batched engine that drifts off the protocol.

Mirrors the ``routing/batched*`` layout so the tests can prove the real
module's directory is inside both rules' scope: the class advertises an
``engine`` tag but only exposes ``run_many`` (R4), and the lane setup
reads the clock for a seed (R5, ``routing`` is a kernel dir).
"""

import time


class SimResult:
    pass


class DriftingBatchedEngine:
    """Batch-only surface: no scalar run(), results are bare lists."""

    engine = "batched-drifting"

    def run_many(self, schedules, recorders=None):
        seed = int(time.time())
        return [[seed] for _ in schedules]
