"""R2 negative fixture: the replacement APIs, plus a waived shim test."""

from repro.obs.metrics import MetricsRegistry


def build_and_run(host, schedule):
    from repro.routing.simulator import StoreForwardSimulator

    metrics = MetricsRegistry()
    sim = StoreForwardSimulator(host)
    result = sim.run(schedule)
    return metrics, result.makespan


def shim_regression_test():
    # the shim's own tests are the one legitimate call site
    from repro.service.metrics import ServiceMetrics  # lint: deprecated-ok(shim regression test)

    return ServiceMetrics


def wormhole_inject_is_fine(host):
    from repro.routing.wormhole import WormholeSimulator

    sim = WormholeSimulator(host)
    sim.inject([0, 1, 3], num_flits=4)  # flit API, not the shim
    return sim.run()


def faults_live_in_the_fault_package(host):
    from repro.fault.faults import FaultModel

    return FaultModel(host, {0})


def alias_shim_test():
    from repro.service import FaultSet  # lint: deprecated-ok(alias shim regression test)

    return FaultSet
