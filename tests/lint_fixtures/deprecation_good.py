"""R2 negative fixture: the replacement APIs, plus a waived shim test."""

from repro.obs.metrics import MetricsRegistry


def build_and_run(host, schedule):
    from repro.routing.simulator import StoreForwardSimulator

    metrics = MetricsRegistry()
    sim = StoreForwardSimulator(host)
    result = sim.run(schedule)
    return metrics, result.makespan


def shim_regression_test():
    # the shim's own tests are the one legitimate call site
    from repro.service.metrics import ServiceMetrics  # lint: deprecated-ok(shim regression test)

    return ServiceMetrics


def wormhole_inject_is_fine(host):
    from repro.routing.wormhole import WormholeSimulator

    sim = WormholeSimulator(host)
    sim.inject([0, 1, 3], num_flits=4)  # flit API, not the shim
    return sim.run()
