"""Cross-cutting property-based tests (hypothesis).

These check invariants that hold across randomized instances rather than
hand-picked cases: embedding metric consistency, simulator bounds,
loop-erasure laws, and the structural facts the constructions rely on.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import embed_cycle_load1, embed_cycle_load2
from repro.core.cycle_multicopy import graycode_cycle_embedding
from repro.hypercube.graph import Hypercube
from repro.hypercube.graycode import gray, gray_node_sequence
from repro.hypercube.hamiltonian import hamiltonian_decomposition
from repro.hypercube.moments import moment
from repro.routing.pathutils import erase_loops
from repro.routing.simulator import StoreForwardSimulator
from repro.routing.wormhole import WormholeSimulator

small_n = st.integers(min_value=2, max_value=8)


class TestStructuralInvariants:
    @given(small_n, st.integers(min_value=0, max_value=255))
    def test_gray_neighbors_in_hypercube(self, n, i):
        size = 1 << n
        q = Hypercube(n)
        assert q.is_edge(gray(i % size), gray((i + 1) % size))

    @given(st.integers(min_value=2, max_value=10))
    def test_decomposition_cycles_alternate_parity(self, n):
        # every Hamiltonian cycle alternates between even and odd weight
        dec = hamiltonian_decomposition(n)
        for cyc in dec.cycles:
            parities = [v.bit_count() % 2 for v in cyc[:16]]
            assert all(a != b for a, b in zip(parities, parities[1:]))

    @given(st.integers(min_value=1, max_value=2**20 - 1))
    def test_moment_invariant_under_bit_pairing(self, v):
        # xor-ing in two equal-b bits cancels: M(v ^ 2^i ^ 2^i) = M(v)
        i = v.bit_length() % 20
        assert moment(v ^ (1 << i) ^ (1 << i)) == moment(v)

    @given(small_n)
    def test_theorem1_paths_partition_step_classes(self, n):
        if n < 4:
            return
        emb = embed_cycle_load1(n)
        # every non-direct path has length exactly 3 and its middle edge
        # lies in the same dimension as the guest edge's direct image
        for (u, v), paths in list(emb.edge_paths.items())[:32]:
            hu, hv = emb.vertex_map[u], emb.vertex_map[v]
            d = emb.host.dimension_of(hu, hv)
            for p in paths[:-1]:
                assert len(p) == 4
                assert emb.host.dimension_of(p[1], p[2]) == d


class TestSimulatorBounds:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 63)),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=30)
    def test_makespan_at_least_longest_path(self, pairs):
        host = Hypercube(6)
        sched = []
        longest = 0
        for u, v in pairs:
            path = [u]
            cur = u
            for d in range(6):
                if (cur ^ v) >> d & 1:
                    cur ^= 1 << d
                    path.append(cur)
            if len(path) > 1:
                sched.append(path)
                longest = max(longest, len(path) - 1)
        if sched:
            t = StoreForwardSimulator(host).run(sched).makespan
            assert longest <= t <= longest + len(sched)  # FIFO can only delay

    @given(st.integers(1, 12), st.integers(1, 20))
    def test_wormhole_single_worm_exact(self, hops, flits):
        host = Hypercube(4)
        # a self-avoiding gray path of `hops` hops
        path = gray_node_sequence(4)[: hops + 1]
        sim = WormholeSimulator(host)
        sim.inject(path, flits)
        assert sim.run() == hops + flits - 1

    @given(st.integers(1, 10))
    def test_service_time_scales_message_sf(self, service):
        host = Hypercube(4)
        sim = StoreForwardSimulator(host)
        assert sim.run([([0, 1, 3, 7], 1, service)]).makespan == 3 * service


class TestLoopErasure:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=40))
    def test_erasure_properties(self, walk):
        out = erase_loops(walk)
        assert out[0] == walk[0]
        assert out[-1] == walk[-1]
        assert len(set(out)) == len(out)  # simple
        assert set(out) <= set(walk)

    @given(st.integers(2, 6), st.integers(0, 100))
    def test_erasure_of_hypercube_walk_is_path(self, n, seed):
        rng = random.Random(seed)
        host = Hypercube(n)
        walk = [rng.randrange(host.num_nodes)]
        for _ in range(30):
            walk.append(walk[-1] ^ (1 << rng.randrange(n)))
        path = erase_loops(walk)
        assert host.is_path(path)


class TestEmbeddingMetricConsistency:
    @given(st.integers(4, 9))
    @settings(max_examples=6, deadline=None)
    def test_theorem1_metrics(self, n):
        emb = embed_cycle_load1(n)
        # congestion counts each guest edge once per host edge
        counts = emb.edge_congestion_counts()
        assert max(counts.values()) == emb.congestion
        assert emb.width == min(len(ps) for ps in emb.edge_paths.values())
        assert emb.expansion == 1.0

    @given(st.integers(4, 8))
    @settings(max_examples=5, deadline=None)
    def test_theorem2_uses_more_links_than_theorem1(self, n):
        # load 2 exists to raise utilization (Section 4.3's motivation)
        t1 = embed_cycle_load1(n)
        t2 = embed_cycle_load2(n)
        assert len(t2.edge_congestion_counts()) >= len(t1.edge_congestion_counts())

    @given(st.integers(2, 9))
    @settings(max_examples=8)
    def test_gray_embedding_congestion_profile(self, n):
        emb = graycode_cycle_embedding(n)
        counts = emb.edge_congestion_counts()
        assert set(counts.values()) == {1}
        assert len(counts) == 2**n
