"""Tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fault.gf256 import GF256

byte = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(byte, byte)
    def test_add_is_xor_and_self_inverse(self, a, b):
        s = GF256.add(a, b)
        assert GF256.add(s, b) == a

    @given(byte, byte, byte)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(byte, byte)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(byte, byte, byte)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(nonzero)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(byte)
    def test_identity(self, a):
        assert GF256.mul(a, 1) == a
        assert GF256.mul(a, 0) == 0

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    @given(nonzero, nonzero)
    def test_division(self, a, b):
        assert GF256.mul(GF256.div(a, b), b) == a

    @given(nonzero, st.integers(min_value=0, max_value=300))
    def test_pow_matches_repeated_mul(self, a, k):
        expected = 1
        for _ in range(k):
            expected = GF256.mul(expected, a)
        assert GF256.pow(a, k) == expected


class TestVectorized:
    @given(st.lists(byte, min_size=1, max_size=32), st.lists(byte, min_size=1, max_size=32))
    def test_mul_vec_matches_scalar(self, xs, ys):
        size = min(len(xs), len(ys))
        a = np.array(xs[:size], dtype=np.uint8)
        b = np.array(ys[:size], dtype=np.uint8)
        out = GF256.mul_vec(a, b)
        for i in range(size):
            assert out[i] == GF256.mul(int(a[i]), int(b[i]))

    def test_matvec(self):
        m = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        v = np.array([5, 6], dtype=np.uint8)
        out = GF256.matvec(m, v)
        assert out[0] == GF256.mul(1, 5) ^ GF256.mul(2, 6)
        assert out[1] == GF256.mul(3, 5) ^ GF256.mul(4, 6)

    def test_solve_roundtrip(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            m = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
            x = rng.integers(0, 256, size=4).astype(np.uint8)
            rhs = GF256.matvec(m, x)
            try:
                solved = GF256.solve(m, rhs)
            except np.linalg.LinAlgError:
                continue  # singular draw
            assert np.array_equal(GF256.matvec(m, solved), rhs)

    def test_solve_singular_raises(self):
        m = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            GF256.solve(m, np.array([1, 2], dtype=np.uint8))

    def test_solve_rejects_non_square(self):
        with pytest.raises(ValueError):
            GF256.solve(np.ones((2, 3), dtype=np.uint8), np.ones(2, dtype=np.uint8))
