"""Tests for the perf-trajectory harness and the ``repro bench`` CLI."""

import json

import pytest

from repro.analysis.trajectory import (
    Workload,
    compare_to_baseline,
    default_workloads,
    format_points,
    load_trajectory,
    run_trajectory,
    write_trajectory,
)
from repro.cli import main


def _toy_workloads():
    return [
        Workload(
            name="toy:paired",
            description="fast twice as good as reference",
            build=lambda: 21,
            fast=lambda ctx: ctx * 2,
            reference=lambda ctx: ctx * 2,
            agree=lambda ref, fast: ref == fast,
            quick=True,
        ),
        Workload(
            name="toy:scale-only",
            description="no reference side",
            build=lambda: 1,
            fast=lambda ctx: ctx,
            quick=False,
            repeats=1,
        ),
    ]


class TestRunTrajectory:
    def test_points_shape(self):
        payload = run_trajectory(_toy_workloads(), repeats=1)
        assert payload["schema"] == 1
        by_engine = {(p["workload"], p["engine"]) for p in payload["points"]}
        assert by_engine == {
            ("toy:paired", "reference"),
            ("toy:paired", "fast"),
            ("toy:scale-only", "fast"),
        }
        fast = next(
            p
            for p in payload["points"]
            if p["workload"] == "toy:paired" and p["engine"] == "fast"
        )
        assert fast["agree"] is True and fast["speedup"] is not None

    def test_quick_filters(self):
        payload = run_trajectory(_toy_workloads(), quick=True, repeats=1)
        assert {p["workload"] for p in payload["points"]} == {"toy:paired"}

    def test_names_filter_and_unknown_name(self):
        payload = run_trajectory(
            _toy_workloads(), names=["toy:scale-only"], repeats=1
        )
        assert {p["workload"] for p in payload["points"]} == {"toy:scale-only"}
        with pytest.raises(ValueError, match="unknown workload"):
            run_trajectory(_toy_workloads(), names=["nope"], repeats=1)

    def test_disagreement_is_recorded_not_raised(self):
        w = Workload(
            name="toy:lying",
            description="engines disagree",
            build=lambda: 0,
            fast=lambda ctx: 1,
            reference=lambda ctx: 2,
            agree=lambda ref, fast: ref == fast,
        )
        payload = run_trajectory([w], repeats=1)
        fast = [p for p in payload["points"] if p["engine"] == "fast"][0]
        assert fast["agree"] is False

    def test_write_and_load_round_trip(self, tmp_path):
        payload = run_trajectory(_toy_workloads(), repeats=1)
        path = str(tmp_path / "BENCH_perf.json")
        write_trajectory(payload, path)
        assert load_trajectory(path) == json.loads(json.dumps(payload))

    def test_format_points_renders_every_workload(self):
        payload = run_trajectory(_toy_workloads(), repeats=1)
        table = format_points(payload)
        assert "toy:paired" in table and "toy:scale-only" in table


class TestBaselineGate:
    def _payload(self, speedup, agree=True):
        point = {"workload": "w", "engine": "fast", "wall_s": 1.0, "speedup": speedup}
        if agree is not None:
            point["agree"] = agree
        return {"schema": 1, "points": [point]}

    def test_no_regression_passes(self):
        assert compare_to_baseline(self._payload(4.0), self._payload(4.0)) == []
        # faster than baseline is fine too
        assert compare_to_baseline(self._payload(9.0), self._payload(4.0)) == []

    def test_within_tolerance_passes(self):
        assert (
            compare_to_baseline(
                self._payload(3.2), self._payload(4.0), max_regression=0.25
            )
            == []
        )

    def test_below_tolerance_fails(self):
        problems = compare_to_baseline(
            self._payload(2.9), self._payload(4.0), max_regression=0.25
        )
        assert problems and "fell below" in problems[0]

    def test_disagreement_always_fails(self):
        problems = compare_to_baseline(
            self._payload(9.0, agree=False), self._payload(4.0)
        )
        assert any("disagree" in p for p in problems)

    def test_workload_missing_from_baseline_ignored(self):
        baseline = {"schema": 1, "points": []}
        assert compare_to_baseline(self._payload(1.0), baseline) == []

    def test_lost_speedup_fails(self):
        current = {
            "schema": 1,
            "points": [
                {"workload": "w", "engine": "fast", "wall_s": 1.0, "speedup": None}
            ],
        }
        problems = compare_to_baseline(current, self._payload(4.0))
        assert problems and "no speedup" in problems[0]


class TestDefaultWorkloads:
    def test_acceptance_anchors_present(self):
        names = {w.name for w in default_workloads()}
        assert "verify:cycle-multipath:q16" in names
        assert "verify:cycle-multipath:q20" in names
        assert "wormhole:q12:m16x4" in names

    def test_quick_subset_is_nonempty_and_proper(self):
        workloads = default_workloads()
        quick = [w for w in workloads if w.quick]
        assert quick and len(quick) < len(workloads)

    def test_committed_baseline_covers_quick_set(self):
        # the CI gate compares the quick run against the committed file, so
        # every quick workload must have a fast point with a speedup there
        import os

        baseline_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_perf.json",
        )
        baseline = load_trajectory(baseline_path)
        recorded = {
            p["workload"]
            for p in baseline["points"]
            if p["engine"] == "fast" and p["speedup"] is not None
        }
        for w in default_workloads():
            if w.quick:
                assert w.name in recorded, w.name

    def test_committed_baseline_meets_claims(self):
        # the acceptance anchors recorded in the committed trajectory
        import os

        baseline_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_perf.json",
        )
        speedups = {
            p["workload"]: p["speedup"]
            for p in load_trajectory(baseline_path)["points"]
            if p["engine"] == "fast"
        }
        assert speedups["verify:cycle-multipath:q16"] >= 5.0
        assert speedups["wormhole:q12:m16x4"] >= 3.0
        # the Q_20 probe completed (recorded, by design without a reference)
        assert "verify:cycle-multipath:q20" in speedups


class TestBenchCli:
    def test_list_workloads(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "verify:cycle-multipath:q16" in out and "[quick]" in out

    def test_single_small_workload_run(self, tmp_path, capsys):
        out_path = str(tmp_path / "bench.json")
        code = main(
            [
                "bench",
                "--workloads", "verify:cycle-multipath:q12",
                "--repeats", "1",
                "--output", out_path,
            ]
        )
        assert code == 0
        payload = load_trajectory(out_path)
        assert {p["workload"] for p in payload["points"]} == {
            "verify:cycle-multipath:q12"
        }
        assert "wrote 2 point(s)" in capsys.readouterr().out

    def test_regression_gate_exit_code(self, tmp_path):
        out_path = str(tmp_path / "bench.json")
        baseline_path = str(tmp_path / "baseline.json")
        write_trajectory(
            {
                "schema": 1,
                "points": [
                    {
                        "workload": "verify:cycle-multipath:q12",
                        "engine": "fast",
                        "wall_s": 0.001,
                        "speedup": 10_000.0,  # unreachable: must regress
                    }
                ],
            },
            baseline_path,
        )
        code = main(
            [
                "bench",
                "--workloads", "verify:cycle-multipath:q12",
                "--repeats", "1",
                "--output", out_path,
                "--baseline", baseline_path,
            ]
        )
        assert code == 1
