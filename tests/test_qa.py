"""Tests for the repro.qa fuzzing/metamorphic/differential harness."""

import json
import random

import pytest

from repro._compat import resolve_rng
from repro.cli import main
from repro.core import embed_cycle_load1
from repro.core.verification import oracles_for, register_oracle, run_oracles
from repro.hypercube.graph import Hypercube
from repro.qa import (
    ConstructionSpace,
    Corpus,
    CorpusEntry,
    FuzzConstruction,
    Fuzzer,
    default_space,
    differential_check,
    map_schedule,
    metamorphic_check,
    random_schedule,
    run_pair,
    schedule_from_jsonable,
    schedule_to_jsonable,
    shrink_schedule,
)

# one representative small parameter point per construction kind
SMALL_POINTS = [
    ("cycle", {"n": 4}),
    ("cycle2", {"n": 4, "wide": True}),
    ("grid", {"dims": [4, 4], "torus": True}),
    ("ccc", {"n": 2}),
    ("tree", {"m": 2}),
    ("large-cycle", {"n": 2}),
    ("graycode", {"n": 3}),
    ("cycle-multicopy", {"n": 3}),
    ("butterfly-multicopy", {"m": 2, "undirected": True}),
    ("butterfly-multipath", {"m": 2}),
    ("grid-multicopy", {"dims": [4]}),
    ("cbt-multicopy", {"m": 2}),
    ("arbitrary-tree", {"vertices": 9, "tree_seed": 5, "m": 2}),
    ("cross-product", {"m": 2}),
]


class TestConstructionSpace:
    def test_default_space_covers_every_builder(self):
        kinds = default_space().kinds()
        assert len(kinds) >= 14
        assert set(k for k, _ in SMALL_POINTS) <= set(kinds)

    def test_samples_build_and_verify(self):
        space = default_space()
        rng = random.Random(11)
        for construction in space:
            params = construction.sample(rng)
            emb = construction.build(params)
            assert emb.verify(strict=False).ok, (construction.kind, params)

    def test_params_json_round_trip(self):
        space = default_space()
        rng = random.Random(3)
        for construction in space:
            params = construction.sample(rng)
            assert json.loads(json.dumps(params)) == params

    def test_shrink_proposes_valid_points(self):
        space = default_space()
        rng = random.Random(7)
        for construction in space:
            params = construction.sample(rng)
            for candidate in construction.shrink(params):
                construction.build(candidate).verify(strict=True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            default_space().get("no-such-kind")

    def test_duplicate_kind_rejected(self):
        c = default_space().get("cycle")
        with pytest.raises(ValueError):
            ConstructionSpace([c, c])


class TestOracleRegistry:
    def test_every_kind_with_claims_has_oracles(self):
        import repro.qa.oracles  # noqa: F401 - registration side effect

        for kind in ("cycle", "cycle2", "grid", "ccc", "graycode",
                     "cycle-multicopy", "large-cycle"):
            assert oracles_for(kind), kind

    def test_registration_is_idempotent(self):
        from repro.qa.oracles import theorem1_oracle

        before = len(oracles_for("cycle"))
        register_oracle("cycle")(theorem1_oracle)
        assert len(oracles_for("cycle")) == before

    def test_oracle_exception_becomes_failed_check(self):
        @register_oracle("qa-test-crashing")
        def crashing(subject, params):
            raise RuntimeError("boom")

        checks = run_oracles("qa-test-crashing", object(), {})
        assert len(checks) == 1 and not checks[0].passed
        assert "boom" in checks[0].detail

    def test_small_points_pass_their_oracles(self):
        space = default_space()
        for kind, params in SMALL_POINTS:
            emb = space.get(kind).build(dict(params))
            for check in run_oracles(kind, emb, dict(params)):
                assert check.passed, (kind, check.name, check.detail)


class TestMetamorphic:
    @pytest.mark.parametrize("kind,params", SMALL_POINTS)
    def test_eight_images_per_kind(self, kind, params):
        emb = default_space().get(kind).build(dict(params))
        checks = metamorphic_check(emb, random.Random(f"meta:{kind}"), images=8)
        assert len(checks) >= 8
        for check in checks:
            assert check.passed, (kind, check.name, check.detail)

    def test_map_schedule_preserves_structure(self):
        from repro.hypercube.automorphisms import HypercubeAutomorphism

        host = Hypercube(4)
        rng = random.Random(5)
        schedule = random_schedule(host, rng, max_packets=10)
        auto = HypercubeAutomorphism.random(4, rng)
        mapped = map_schedule(schedule, auto)
        assert len(mapped) == len(schedule)
        for (path, rel), (mpath, mrel) in zip(schedule, mapped):
            assert mrel == rel and len(mpath) == len(path)
            for a, b in zip(mpath, mpath[1:]):
                assert host.is_edge(a, b)


class TestDifferential:
    def test_fifty_random_schedules_agree(self):
        # tier-1 differential smoke: the reference engine (priority
        # tie-break) and the vectorized engine must agree field-for-field
        host = Hypercube(6)
        for i in range(50):
            rng = random.Random(f"diff-smoke:{i}")
            schedule = random_schedule(host, rng, max_packets=40)
            reference, fast = run_pair(host, schedule)
            assert reference.diff_fields(fast) == (), (i, schedule)

    def test_differential_check_passes_clean(self):
        host = Hypercube(5)
        schedule = random_schedule(host, random.Random(1), max_packets=30)
        assert differential_check(host, schedule) is None

    def test_shrink_schedule_proposals(self):
        schedule = [((0, 1), 2), ((0, 2), 1), ((1, 3), 3), ((2, 3), 1)]
        candidates = list(shrink_schedule(schedule))
        assert [len(c) for c in candidates[:2]] == [2, 2]  # halves first
        assert sum(1 for c in candidates if len(c) == 3) == 4
        assert candidates[-1] == [(p, 1) for p, _ in schedule]

    def test_schedule_json_round_trip(self):
        schedule = [((0, 1, 3), 2), ((4,), 1)]
        data = schedule_to_jsonable(schedule)
        assert json.loads(json.dumps(data)) == data
        assert schedule_from_jsonable(data) == schedule


class TestColdStartDifferential:
    def test_clean_embedding_passes(self):
        from repro.qa import cold_start_differential

        checks = cold_start_differential(embed_cycle_load1(6), random.Random(0))
        names = [c.name for c in checks]
        assert "diff:coldstart:fields" in names
        assert "diff:coldstart:edges" in names
        assert "diff:coldstart:routing" in names
        assert all(c.passed for c in checks), [
            (c.name, c.detail) for c in checks
        ]

    def test_non_embedding_contributes_nothing(self):
        from repro.qa import cold_start_differential

        assert cold_start_differential(object(), random.Random(0)) == []

    def test_stage_is_wired_into_fuzzer(self, tmp_path):
        report = Fuzzer(
            corpus=Corpus(str(tmp_path)), seed=5,
            checks=("build", "cold_start_differential"),
        ).run(seeds=4)
        assert report.ok, report.failures
        assert report.points == 4


class TestWormholeDifferential:
    def test_twenty_five_schedules_agree(self):
        # tier-1 smoke: the flit-loop reference and the vectorized frontier
        # engine must agree on makespan, per-worm state, link ownership and
        # recorder totals — deadlocks included (rotated dimension orders
        # can produce cyclic waits)
        from repro.qa import run_wormhole_pair, random_worm_schedule

        host = Hypercube(4)
        for i in range(25):
            rng = random.Random(f"worm-smoke:{i}")
            schedule = random_worm_schedule(host, rng, rotate=i % 2 == 1)
            cap = rng.choice([1, 1, 2, 4])
            reference, fast = run_wormhole_pair(host, schedule, buffer_capacity=cap)
            assert reference == fast, (i, cap, schedule)

    def test_check_passes_clean(self):
        from repro.qa import random_worm_schedule, wormhole_differential_check

        host = Hypercube(3)
        schedule = random_worm_schedule(host, random.Random(2))
        assert wormhole_differential_check(host, schedule) is None

    def test_deadlock_parity(self):
        from repro.qa import run_wormhole_pair, wormhole_differential_check

        host = Hypercube(2)
        # four worms chasing each other around the 4-cycle 0-1-3-2-0
        schedule = [
            ((0, 1, 3), 8, 1),
            ((1, 3, 2), 8, 1),
            ((3, 2, 0), 8, 1),
            ((2, 0, 1), 8, 1),
        ]
        reference, fast = run_wormhole_pair(host, schedule)
        assert reference["deadlock"] and reference == fast
        assert wormhole_differential_check(host, schedule) is None

    def test_worm_schedules_are_valid_and_jsonable(self):
        from repro.qa import random_worm_schedule

        host = Hypercube(4)
        schedule = random_worm_schedule(host, random.Random(9), rotate=True)
        assert schedule
        for path, flits, release in schedule:
            assert len(path) >= 2 and flits >= 1 and release >= 1
            for a, b in zip(path, path[1:]):
                assert host.is_edge(a, b)
        data = [[list(p), m, r] for p, m, r in schedule]
        assert json.loads(json.dumps(data)) == data

    def test_shrink_worm_schedule_proposals(self):
        from repro.qa import shrink_worm_schedule

        schedule = [((0, 1), 4, 2), ((0, 2), 1, 1), ((1, 3), 2, 3), ((2, 3), 8, 1)]
        candidates = list(shrink_worm_schedule(schedule))
        assert [len(c) for c in candidates[:2]] == [2, 2]  # halves first
        assert sum(1 for c in candidates if len(c) == 3) == 4
        assert [(p, m, 1) for p, m, _ in schedule] in candidates  # flat releases
        assert [(p, max(1, m // 2), r) for p, m, r in schedule] in candidates


class TestVerificationReferee:
    @pytest.mark.parametrize("kind,params", SMALL_POINTS)
    def test_fast_verify_agrees_with_reference(self, kind, params):
        from repro.qa import verification_differential

        emb = default_space().get(kind).build(dict(params))
        checks = verification_differential(emb)
        assert checks
        for check in checks:
            assert check.passed, (kind, check.name, check.detail)

    def test_fuzzer_verify_stage_catches_kernel_divergence(self):
        # an embedding whose fast verify disagrees with the reference must
        # surface as a "verify" finding, not slip through as ok
        from repro.qa import verification_differential

        emb = embed_cycle_load1(4)

        class Lying:
            """Proxy whose vectorized verify() hides a broken bundle."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def verify(self, strict=True):
                return self._inner.verify(strict=False)

            def verify_reference(self, strict=True):
                edge = next(iter(self._inner.edge_paths))
                paths = self._inner.edge_paths[edge]
                try:
                    self._inner.edge_paths[edge] = (paths[0],) * len(paths)
                    return self._inner.verify_reference(strict=False)
                finally:
                    self._inner.edge_paths[edge] = paths

        checks = verification_differential(Lying(emb))
        assert any(not c.passed for c in checks)


class TestCorpus:
    def _entry(self, **overrides):
        kwargs = dict(
            kind="cycle", params={"n": 4}, stage="verify",
            detail="example", point_seed="0:point:0",
        )
        kwargs.update(overrides)
        return CorpusEntry(**kwargs)

    def test_save_is_idempotent(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        corpus.save(self._entry())
        corpus.save(self._entry(detail="same content hash fields"))
        assert len(corpus) == 1

    def test_load_by_id_and_path(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        path = corpus.save(self._entry())
        entry = corpus.entries()[0]
        assert corpus.load(entry.entry_id).params == {"n": 4}
        assert corpus.load(path).entry_id == entry.entry_id

    def test_load_missing_entry(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Corpus(str(tmp_path)).load("verify-cycle-000000000000")

    def test_clear(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        corpus.save(self._entry())
        corpus.save(self._entry(stage="oracle"))
        assert corpus.clear() == 2 and len(corpus) == 0

    def test_newer_format_rejected(self):
        data = json.loads(self._entry().to_json())
        data["version"] = 99
        with pytest.raises(ValueError):
            CorpusEntry.from_json(json.dumps(data))


def _sabotaged_space():
    """A construction space whose only member is a deliberately broken
    cycle builder: one bundle's paths are all replaced with path 0,
    destroying edge-disjointness at every n."""

    def build(params):
        emb = embed_cycle_load1(params["n"])
        edge = next(iter(emb.edge_paths))
        paths = emb.edge_paths[edge]
        emb.edge_paths[edge] = (paths[0],) * len(paths)
        return emb

    def shrink(params):
        if params["n"] > 4:
            yield {"n": 4}
            yield {"n": params["n"] - 1}

    return ConstructionSpace(
        [
            FuzzConstruction(
                "cycle",
                lambda rng: {"n": rng.randint(5, 8)},
                build,
                shrink,
            )
        ]
    )


class TestFuzzer:
    def test_smoke_run_is_clean(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        report = Fuzzer(corpus=corpus, seed=0, images=2).run(seeds=20)
        assert report.ok, report.failures
        assert report.points == 20 and len(corpus) == 0
        assert "OK" in report.summary()

    def test_budget_exhaustion_stops_early(self):
        report = Fuzzer(seed=0, images=1).run(seeds=10_000, budget_s=0.5)
        assert report.budget_exhausted and report.points < 10_000
        assert "budget exhausted" in report.summary()

    def test_kind_restriction(self):
        report = Fuzzer(seed=0, images=1).run(seeds=5, kinds=["graycode"])
        assert set(report.per_kind) == {"graycode"}
        with pytest.raises(KeyError):
            Fuzzer(seed=0).run(seeds=1, kinds=["bogus"])

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            Fuzzer(checks=("build", "bogus"))

    def test_mutation_is_caught_shrunk_and_replayable(self, tmp_path):
        # the acceptance mutation test: an injected edge-disjointness bug
        # must be caught, shrunk to the minimal n, persisted, and
        # reproduced from the corpus alone
        corpus = Corpus(str(tmp_path))
        fuzzer = Fuzzer(space=_sabotaged_space(), corpus=corpus, seed=1)
        report = fuzzer.run(seeds=4)
        assert not report.ok
        assert all(e.stage == "verify" for e in report.failures)
        assert all(e.params == {"n": 4} for e in report.failures)  # shrunk
        assert len(corpus) == 1  # idempotent: one minimal reproducer

        entry = corpus.entries()[0]
        assert "edge-disjoint" in entry.detail
        replayed = fuzzer.replay(entry)
        assert replayed is not None and replayed.stage == "verify"

    def test_replay_of_fixed_bug_returns_none(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        entry = CorpusEntry(
            kind="cycle", params={"n": 4}, stage="verify",
            detail="was broken once", point_seed="1:point:0",
        )
        corpus.save(entry)
        # the real (unsabotaged) space passes: the finding is gone
        assert Fuzzer(corpus=corpus, seed=1).replay(entry) is None


class TestResolveRng:
    def test_seed_and_rng_are_exclusive(self):
        with pytest.raises(ValueError):
            resolve_rng(seed=1, rng=random.Random(2))

    def test_default_seed(self):
        assert (
            resolve_rng().random()
            == random.Random(0).random()
            == resolve_rng(default_seed=0).random()
        )

    def test_shared_stream_passes_through(self):
        rng = random.Random(5)
        assert resolve_rng(rng=rng) is rng


class TestSeededDeterminism:
    """Satellite: fixed seeds give byte-identical results everywhere."""

    def test_random_permutation(self):
        from repro.routing.permutation import random_permutation

        assert random_permutation(64, seed=9) == random_permutation(64, seed=9)
        shared = random.Random(9)
        assert random_permutation(64, seed=9) == random_permutation(64, rng=shared)
        with pytest.raises(ValueError):
            random_permutation(8, seed=1, rng=random.Random(1))

    def test_faulty_link_model(self):
        from repro.fault.faults import FaultyLinkModel

        host = Hypercube(5)
        a = FaultyLinkModel.random(host, 0.3, seed=4)
        b = FaultyLinkModel.random(host, 0.3, seed=4)
        c = FaultyLinkModel.random(host, 0.3, rng=random.Random(4))
        assert a.failed == b.failed == c.failed
        with pytest.raises(ValueError):
            FaultyLinkModel.random(host, 0.3, seed=1, rng=random.Random(1))

    def test_random_binary_tree(self):
        from repro.networks.tree import random_binary_tree

        a = random_binary_tree(40, seed=6)
        b = random_binary_tree(40, rng=random.Random(6))
        assert a.parent == b.parent

    def test_adaptive_wormhole_experiment(self):
        from repro.core import embed_cycle_load1
        from repro.routing.adaptive import adaptive_wormhole_experiment

        emb = embed_cycle_load1(4)
        a = adaptive_wormhole_experiment(emb, 16, flits=4, seed=2)
        b = adaptive_wormhole_experiment(emb, 16, flits=4, rng=random.Random(2))
        assert a == b

    def test_permutation_multicopy_time(self):
        from repro.routing.permutation import (
            permutation_multicopy_time,
            random_permutation,
        )

        perm = random_permutation(64, seed=2)
        a = permutation_multicopy_time(4, perm, 16, randomized=True, seed=3)
        b = permutation_multicopy_time(
            4, perm, 16, randomized=True, rng=random.Random(3)
        )
        assert a == b

    def test_random_x_permutation(self):
        from repro.routing.x_routing import XRouter, random_x_permutation

        router = XRouter(2)
        a = random_x_permutation(2, seed=8, router=router)
        b = random_x_permutation(2, rng=random.Random(8), router=router)
        assert a == b and sorted(a) == list(range(router.host.num_nodes))


class TestQaCli:
    def test_fuzz_smoke(self, capsys, tmp_path):
        assert main(
            ["qa", "fuzz", "--seeds", "6", "--budget", "60s",
             "--corpus", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "fuzzed 6 point(s)" in out and "OK" in out

    def test_fuzz_kind_filter(self, capsys, tmp_path):
        assert main(
            ["qa", "fuzz", "--seeds", "3", "--kinds", "graycode,cycle",
             "--corpus", str(tmp_path)]
        ) == 0

    def test_diff_smoke(self, capsys):
        assert main(["qa", "diff", "--seeds", "5", "--n", "5"]) == 0
        assert "agree" in capsys.readouterr().out

    def test_corpus_empty_then_listed(self, capsys, tmp_path):
        assert main(["qa", "corpus", "--corpus", str(tmp_path)]) == 0
        assert "corpus empty" in capsys.readouterr().out
        Corpus(str(tmp_path)).save(
            CorpusEntry(
                kind="cycle", params={"n": 4}, stage="verify",
                detail="demo", point_seed="0:point:0",
            )
        )
        assert main(["qa", "corpus", "--corpus", str(tmp_path)]) == 0
        assert "1 reproducer(s)" in capsys.readouterr().out

    def test_corpus_clear(self, capsys, tmp_path):
        Corpus(str(tmp_path)).save(
            CorpusEntry(
                kind="cycle", params={"n": 4}, stage="verify",
                detail="demo", point_seed="0:point:0",
            )
        )
        assert main(["qa", "corpus", "--corpus", str(tmp_path), "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_replay_fixed_entry(self, capsys, tmp_path):
        corpus = Corpus(str(tmp_path))
        entry = CorpusEntry(
            kind="cycle", params={"n": 4}, stage="verify",
            detail="was broken once", point_seed="0:point:0",
        )
        corpus.save(entry)
        assert main(
            ["qa", "replay", entry.entry_id, "--corpus", str(tmp_path)]
        ) == 0
        assert "no longer reproduces" in capsys.readouterr().out
