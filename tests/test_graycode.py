"""Tests for binary reflected gray codes (paper Section 3 definitions)."""

import pytest
from hypothesis import given, strategies as st

from repro.hypercube.graycode import (
    gray,
    gray_array,
    gray_node_sequence,
    gray_rank,
    transition_at,
    transitions,
    transitions_prime,
)


class TestTransitionSequences:
    def test_g_prime_1(self):
        assert transitions_prime(1) == [0]

    def test_g_prime_recurrence(self):
        # G'_{i+1} = G'_i . i . G'_i
        for k in range(1, 8):
            prev = transitions_prime(k)
            assert transitions_prime(k + 1) == prev + [k] + prev

    def test_g_prime_length(self):
        for k in range(1, 10):
            assert len(transitions_prime(k)) == 2**k - 1

    def test_g_k_appends_top_dimension(self):
        for k in range(1, 10):
            seq = transitions(k)
            assert len(seq) == 2**k
            assert seq[-1] == k - 1
            assert seq[:-1] == transitions_prime(k)

    def test_transition_at_matches_sequence(self):
        seq = transitions_prime(10)
        for j, d in enumerate(seq):
            assert transition_at(j) == d

    def test_dimension_usage_counts(self):
        # dimension d < k-1 is used 2^(k-1-d) times; dimension k-1 twice
        k = 8
        seq = transitions(k)
        for d in range(k - 1):
            assert seq.count(d) == 2 ** (k - 1 - d)
        assert seq.count(k - 1) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            transitions_prime(0)


class TestGrayClosedForm:
    def test_small_values(self):
        assert [gray(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    @given(st.integers(min_value=0, max_value=2**40))
    def test_rank_inverts_gray(self, i):
        assert gray_rank(gray(i)) == i

    @given(st.integers(min_value=0, max_value=2**40))
    def test_gray_adjacent_codes_differ_in_one_bit(self, i):
        diff = gray(i) ^ gray(i + 1)
        assert diff != 0 and diff & (diff - 1) == 0

    def test_gray_array_matches_scalar(self):
        arr = gray_array(10)
        assert [gray(i) for i in range(1024)] == list(arr)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray(-1)
        with pytest.raises(ValueError):
            gray_rank(-2)


class TestNodeSequence:
    @pytest.mark.parametrize("k", range(1, 11))
    def test_hamiltonian_cycle(self, k):
        seq = gray_node_sequence(k)
        assert len(seq) == 2**k
        assert len(set(seq)) == 2**k
        assert seq[0] == 0
        closed = seq + [seq[0]]
        for u, v in zip(closed, closed[1:]):
            diff = u ^ v
            assert diff and diff & (diff - 1) == 0

    @pytest.mark.parametrize("k", range(1, 11))
    def test_matches_closed_form(self, k):
        assert gray_node_sequence(k) == [gray(i) for i in range(2**k)]

    def test_closing_edge_crosses_top_dimension(self):
        for k in range(1, 10):
            seq = gray_node_sequence(k)
            assert seq[-1] ^ seq[0] == 1 << (k - 1)
