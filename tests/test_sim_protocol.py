"""Tests for the unified simulator protocol (repro.routing.api)."""

import pytest

from repro.hypercube.graph import Hypercube
from repro.obs import LinkRecorder
from repro.routing.api import SimRequest, SimResult, Simulator, normalize_schedule
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.simulator import StoreForwardSimulator

ENGINES = [StoreForwardSimulator, FastStoreForward]


class TestNormalizeSchedule:
    def test_all_item_shapes(self):
        reqs = normalize_schedule(
            [
                [0, 1, 3],
                ([0, 1], 5),
                ((0, 4), 2, 3),
                SimRequest((7, 6), release_step=9),
            ]
        )
        assert reqs == [
            SimRequest((0, 1, 3)),
            SimRequest((0, 1), 5),
            SimRequest((0, 4), 2, 3),
            SimRequest((7, 6), 9),
        ]

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            normalize_schedule([42])
        with pytest.raises(TypeError):
            normalize_schedule([([0, 1], 1, 1, 1)])
        with pytest.raises(ValueError):
            normalize_schedule([[]])

    def test_request_validation(self):
        with pytest.raises(ValueError):
            SimRequest(())
        with pytest.raises(ValueError):
            SimRequest((0, 1), release_step=0)
        with pytest.raises(ValueError):
            SimRequest((0, 1), service_time=0)


class TestProtocolConformance:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_isinstance_simulator(self, engine):
        assert isinstance(engine(Hypercube(3)), Simulator)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_schedule_run_returns_simresult(self, engine):
        res = engine(Hypercube(3)).run([[0, 1, 3]])
        assert isinstance(res, SimResult)
        assert res.makespan == 2
        assert res.delivered == res.injected == 1
        assert res.done_steps == (2,)
        assert res.engine == engine.engine

    def test_engines_agree_on_contention_free_load(self):
        host = Hypercube(4)
        sched = [[u, u ^ 1, u ^ 3] for u in range(0, 16, 4)]
        results = [engine(host).run(sched) for engine in ENGINES]
        # identical fields except the engine tag (and recorder, not compared)
        a, b = results
        assert (a.makespan, a.done_steps) == (b.makespan, b.done_steps)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_result_echoes_recorder(self, engine):
        rec = LinkRecorder()
        res = engine(Hypercube(3)).run([[0, 1]], recorder=rec)
        assert res.recorder is rec


class TestRecording:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_measured_congestion_matches_structural(self, engine):
        from repro.core import embed_cycle_load1

        emb = embed_cycle_load1(6)
        sched = [p for paths in emb.edge_paths.values() for p in paths]
        rec = LinkRecorder(host=emb.host)
        res = engine(emb.host).run(sched, recorder=rec)
        # one packet per path: per-link transmission counts ARE the
        # embedding's structural congestion counts
        assert rec.link_congestion_counts() == dict(emb.edge_congestion_counts())
        assert rec.congestion == emb.congestion
        assert rec.delivered == res.delivered == len(sched)
        assert rec.makespan == res.makespan

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_hop_packets_counted_as_deliveries(self, engine):
        rec = LinkRecorder()
        res = engine(Hypercube(3)).run([[5], [2]], recorder=rec)
        assert res.makespan == 0
        assert rec.delivered == 2
        assert rec.link_congestion_counts() == {}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_disabled_recorder_calls_no_hooks(self, engine):
        calls = []

        class Tripwire:
            enabled = False

            def __bool__(self):
                return False

            def __getattr__(self, name):
                calls.append(name)
                raise AssertionError(f"hook {name} called while disabled")

        res = engine(Hypercube(3)).run([[0, 1, 3]] * 4, recorder=Tripwire())
        assert res.makespan >= 2
        assert calls == []

    def test_queue_depth_peak(self):
        rec = LinkRecorder()
        StoreForwardSimulator(Hypercube(3)).run([[0, 1]] * 3, recorder=rec)
        eid = Hypercube(3).edge_id(0, 1)
        assert rec.queue_peak[eid] == 3


class TestEngineLimits:
    def test_fast_engine_rejects_service_time(self):
        with pytest.raises(ValueError):
            FastStoreForward(Hypercube(3)).run([([0, 1], 1, 2)])

    def test_reference_engine_supports_service_time(self):
        res = StoreForwardSimulator(Hypercube(3)).run([([0, 1, 3], 1, 4)])
        assert res.makespan == 8

    @pytest.mark.parametrize("engine", ENGINES)
    def test_max_steps_guard(self, engine):
        with pytest.raises(RuntimeError):
            engine(Hypercube(3)).run([[0, 1]], max_steps=0)
