"""Tests for the repro.obs instrumentation subsystem."""

import json

import pytest

from repro.hypercube.graph import Hypercube
from repro.obs import (
    NULL_RECORDER,
    LinkRecorder,
    MetricsRegistry,
    NullRecorder,
    Tracer,
    collect_snapshot,
    disable_profiling,
    enable_profiling,
    profile_span,
    profiling_enabled,
    snapshot_to_csv,
    snapshot_to_json,
)
from repro.obs.metrics import Histogram


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.counter("builds").inc()
        reg.counter("builds").inc(2)
        assert reg.counter("builds").value == 3

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("builds", kind="cycle").inc()
        reg.counter("builds", kind="tree").inc(5)
        snap = reg.snapshot()
        assert snap["counters"]["builds{kind=cycle}"] == 1
        assert snap["counters"]["builds{kind=tree}"] == 5

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("width").set(4)
        reg.gauge("width").add(1)
        assert reg.snapshot()["gauges"]["width"] == 5

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("hops")
        for v in (1, 2, 3, 5):
            h.observe(v)
        s = reg.snapshot()["histograms"]["hops"]
        assert s["count"] == 4
        assert s["total"] == 11
        assert s["min"] == 1 and s["max"] == 5
        # power-of-two buckets: 1 -> 1.0, 2 -> 2.0, 3 -> 4.0, 5 -> 8.0
        assert s["buckets"] == {"1.0": 1, "2.0": 1, "4.0": 1, "8.0": 1}

    def test_bucket_of(self):
        assert Histogram.bucket_of(0) == 0.0
        assert Histogram.bucket_of(0.3) == 0.5
        assert Histogram.bucket_of(1) == 1.0
        assert Histogram.bucket_of(1024) == 1024.0
        assert Histogram.bucket_of(1025) == 2048.0

    def test_legacy_sugar_and_timers_view(self):
        reg = MetricsRegistry()
        reg.incr("hits")
        assert reg.count("hits") == 1
        assert reg.count("absent") == 0
        with reg.time("build"):
            pass
        reg.histogram("hops").observe(3)  # unitless: not a timer
        snap = reg.snapshot()
        assert snap["timers"]["build"]["count"] == 1
        assert "hops" not in snap["timers"]
        assert "hops" in snap["histograms"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.incr("x")
        reg.reset()
        assert reg.snapshot()["counters"] == {}


class TestLinkRecorder:
    def test_scalar_hooks(self):
        rec = LinkRecorder()
        rec.on_transmit(7, 1)
        rec.on_transmit(7, 2)
        rec.on_transmit(9, 1, service_time=4)
        rec.on_deliver(2)
        rec.on_deliver(5, count=2)
        rec.on_queue_depth(7, 3)
        rec.on_queue_depth(7, 1)  # lower: peak unchanged
        assert rec.link_congestion_counts() == {7: 2, 9: 1}
        assert rec.link_busy_steps[9] == 4
        assert rec.congestion == 2
        assert rec.delivered == 3
        assert rec.makespan == 5
        assert rec.queue_peak[7] == 3
        assert rec.step_histogram() == {2: 1, 5: 2}
        assert rec.busiest_links(1) == [(7, 2)]

    def test_bulk_hooks_match_scalar(self):
        bulk, scalar = LinkRecorder(), LinkRecorder()
        bulk.add_link_counts([3, 8], [2, 1])
        bulk.add_deliveries([1, 1, 4])
        for _ in range(2):
            scalar.on_transmit(3, 1)
        scalar.on_transmit(8, 1)
        scalar.on_deliver(1, 2)
        scalar.on_deliver(4)
        assert bulk.link_congestion_counts() == scalar.link_congestion_counts()
        assert bulk.step_histogram() == scalar.step_histogram()

    def test_snapshot_decodes_edges_with_host(self):
        host = Hypercube(3)
        rec = LinkRecorder(host=host)
        eid = host.edge_id(0, 1)
        rec.on_transmit(eid, 1)
        rec.on_deliver(1)
        snap = rec.snapshot()
        assert snap["links"][str(eid)]["edge"] == [0, 1]
        assert snap["congestion"] == 1

    def test_reset(self):
        rec = LinkRecorder()
        rec.on_transmit(1, 1)
        rec.reset()
        assert rec.congestion == 0 and rec.delivered == 0

    def test_null_recorder_is_falsy(self):
        assert not NULL_RECORDER
        assert not NullRecorder()
        assert NULL_RECORDER.enabled is False
        # all hooks exist and do nothing
        NULL_RECORDER.on_transmit(1, 1)
        NULL_RECORDER.on_deliver(1)
        NULL_RECORDER.on_queue_depth(1, 1)
        NULL_RECORDER.add_link_counts([1], [1])
        NULL_RECORDER.add_deliveries([1])


class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", kind="x"):
            with tracer.span("inner"):
                pass
        tree = tracer.to_dict()["spans"]
        assert len(tree) == 1
        assert tree[0]["name"] == "outer"
        assert tree[0]["attrs"] == {"kind": "x"}
        assert tree[0]["children"][0]["name"] == "inner"
        text = tracer.format_tree()
        assert "outer kind=x" in text
        assert "\n  inner" in text

    def test_siblings_become_two_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s["name"] for s in tracer.to_dict()["spans"]] == ["a", "b"]

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.to_dict()["spans"] == []


class TestProfiling:
    def teardown_method(self):
        disable_profiling()

    def test_disabled_is_shared_noop(self):
        disable_profiling()
        assert not profiling_enabled()
        c1 = profile_span("anything")
        c2 = profile_span("else")
        assert c1 is c2  # one shared null context, no allocation
        with c1:
            pass

    def test_enabled_records_span_and_timer(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        enable_profiling(reg, tracer)
        with profile_span("hot", kind="t"):
            pass
        assert reg.snapshot()["timers"]["hot"]["count"] == 1
        spans = tracer.to_dict()["spans"]
        assert spans and spans[-1]["name"] == "hot"


class TestExport:
    def _sample(self):
        host = Hypercube(3)
        reg = MetricsRegistry()
        reg.incr("builds")
        rec = LinkRecorder(host=host)
        rec.on_transmit(host.edge_id(0, 1), 1)
        rec.on_deliver(1)
        return reg, rec

    def test_collect_and_json_roundtrip(self):
        reg, rec = self._sample()
        snap = collect_snapshot(registry=reg, recorder=rec, meta={"n": 3})
        doc = json.loads(snapshot_to_json(snap))
        assert doc["meta"]["n"] == 3
        assert doc["metrics"]["counters"]["builds"] == 1
        assert doc["links"]["congestion"] == 1
        assert doc["links"]["step_histogram"] == {"1": 1}

    def test_disabled_recorder_is_omitted(self):
        snap = collect_snapshot(recorder=NULL_RECORDER, meta={"n": 1})
        assert "links" not in snap

    def test_csv_rows(self):
        reg, rec = self._sample()
        snap = collect_snapshot(registry=reg, recorder=rec, meta={"n": 3})
        lines = snapshot_to_csv(snap).splitlines()
        assert lines[0] == "section,series,field,value"
        assert "meta,n,,3" in lines
        assert "counters,builds,,1" in lines
        assert "links,congestion,,1" in lines
        assert any(line.startswith("step_histogram,1,arrivals,") for line in lines)
        # per-link rows decode the edge endpoints
        assert any(",edge,0->1" in line for line in lines)
