"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_embed_defaults(self):
        args = build_parser().parse_args(["embed", "cycle"])
        assert args.n == 8 and args.kind == "cycle"


class TestCommands:
    def test_embed_cycle(self, capsys):
        assert main(["embed", "cycle", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "verified OK" in out and "width" in out

    def test_embed_cycle2_wide(self, capsys):
        assert main(["embed", "cycle2", "--n", "6", "--wide"]) == 0
        assert "multiple-path" in capsys.readouterr().out

    def test_embed_grid(self, capsys):
        assert main(["embed", "grid", "--dims", "16x16", "--torus"]) == 0
        assert "Q_8" in capsys.readouterr().out

    def test_embed_ccc(self, capsys):
        assert main(["embed", "ccc", "--n", "4"]) == 0
        assert "multiple-copy" in capsys.readouterr().out

    def test_embed_large_cycle(self, capsys):
        assert main(["embed", "large-cycle", "--n", "6"]) == 0
        assert "single-path" in capsys.readouterr().out

    def test_embed_tree(self, capsys):
        assert main(["embed", "tree", "--m", "2"]) == 0
        assert "Q_6" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "multipath" in out and "large-copy" in out

    def test_compare_odd_n_rejected(self, capsys):
        assert main(["compare", "--n", "5"]) == 2

    def test_figures(self, capsys):
        assert main(["figures", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out

    def test_broadcast(self, capsys):
        assert main(["broadcast", "--n", "4", "--packets", "32"]) == 0
        assert "binomial" in capsys.readouterr().out

    def test_faults(self, capsys):
        assert main(["faults", "--n", "6", "--prob", "0.02"]) == 0
        assert "delivered" in capsys.readouterr().out


class TestNewCommands:
    def test_sweep_speedup(self, capsys):
        assert main(["sweep", "speedup", "--n", "8"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_sweep_utilization(self, capsys):
        assert main(["sweep", "utilization", "--n", "6"]) == 0
        assert "busy_fraction" in capsys.readouterr().out

    def test_sweep_broadcast(self, capsys):
        assert main(["sweep", "broadcast", "--n", "4"]) == 0
        assert "winner" in capsys.readouterr().out

    def test_save_and_load_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "emb.json")
        assert main(["save", "cycle", path, "--n", "6"]) == 0
        assert main(["load", path]) == 0
        assert "verified OK" in capsys.readouterr().out

    def test_save_grid(self, tmp_path, capsys):
        path = str(tmp_path / "grid.json")
        assert main(["save", "grid", path, "--dims", "16x16", "--torus"]) == 0
        assert main(["load", path]) == 0


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCacheCommands:
    def test_build_ls_stats_clear(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(["cache", "build", "cycle", "--n", "6"] + cache) == 0
        assert "artifact(s) ready" in capsys.readouterr().out
        assert main(["cache", "ls"] + cache) == 0
        out = capsys.readouterr().out
        assert "cycle(n=6)" in out and "1 artifact(s)" in out
        assert main(["cache", "stats"] + cache) == 0
        assert '"disk_entries": 1' in capsys.readouterr().out
        assert main(["cache", "clear"] + cache) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_build_sweep_batch(self, tmp_path, capsys):
        rc = main(
            ["cache", "build", "cycle", "--ns", "4,6", "--workers", "0",
             "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        assert "2 artifact(s)" in capsys.readouterr().out

    def test_ls_empty(self, tmp_path, capsys):
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "cache empty" in capsys.readouterr().out


class TestRouteCommand:
    def test_route_explicit_edge(self, tmp_path, capsys):
        rc = main(
            ["route", "cycle", "--n", "6", "--edge", "0", "1",
             "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "host path(s)" in out and "[0]" in out

    def test_route_default_edge_with_faults(self, tmp_path, capsys):
        rc = main(
            ["route", "cycle", "--n", "6", "--faults", "0.0",
             "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        assert "delivered" in capsys.readouterr().out

    def test_route_grid_tuple_edge(self, tmp_path, capsys):
        rc = main(
            ["route", "grid", "--dims", "4x4", "--torus",
             "--edge", "(0, 0)", "(0, 1)", "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        assert "host path(s)" in capsys.readouterr().out

    def test_route_uses_warm_cache(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(["cache", "build", "cycle", "--n", "6"] + cache) == 0
        capsys.readouterr()
        assert main(["route", "cycle", "--n", "6", "--edge", "0", "1"]
                    + cache) == 0
        assert "host path(s)" in capsys.readouterr().out


class TestValidate:
    def test_validate_all_pass(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "11/11 claims verified" in out

    def test_programmatic(self):
        from repro.analysis import validate_claims

        results = validate_claims()
        assert len(results) == 11
        assert all(r.ok for r in results)


class TestObsCommands:
    def test_report(self, capsys):
        assert main(["obs", "report", "cycle", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "link congestion" in out
        assert "busiest links" in out
        assert "arrivals by step" in out

    def test_report_measured_equals_structural(self, capsys):
        from repro.core import embed_cycle_load1

        assert main(["obs", "report", "cycle", "--n", "6"]) == 0
        out = capsys.readouterr().out
        c = embed_cycle_load1(6).congestion
        assert f"measured {c}  structural {c}" in out

    def test_export_json_matches_delivery(self, capsys):
        import json

        from repro.core import embed_cycle_load1

        assert main(["obs", "export", "cycle", "--n", "6",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        emb = embed_cycle_load1(6)
        links = doc["links"]
        assert links["congestion"] == emb.congestion
        # per-link counts are exactly the structural congestion counts
        per_link = {
            int(eid): entry["transmissions"]
            for eid, entry in links["links"].items()
        }
        assert per_link == dict(emb.edge_congestion_counts())
        # every scheduled packet arrives; the histogram accounts for all
        total_paths = sum(len(ps) for ps in emb.edge_paths.values())
        assert links["delivered"] == total_paths
        assert sum(links["step_histogram"].values()) == total_paths
        assert doc["meta"]["engine"] == "store-forward"

    def test_export_csv_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "obs.csv"
        assert main(["obs", "export", "cycle", "--n", "6",
                     "--format", "csv", "--output", str(out_file)]) == 0
        assert "wrote" in capsys.readouterr().out
        lines = out_file.read_text().splitlines()
        assert lines[0] == "section,series,field,value"
        assert any(line.startswith("links,congestion,") for line in lines)

    def test_trace(self, capsys):
        from repro.obs import disable_profiling

        try:
            assert main(["obs", "trace", "cycle", "--n", "6"]) == 0
            out = capsys.readouterr().out
            assert "build.cycle" in out
            assert "verify" in out
        finally:
            disable_profiling()

    def test_multiple_packets_per_path(self, capsys):
        assert main(["obs", "report", "cycle", "--n", "6",
                     "--packets", "2"]) == 0
        assert "delivered" in capsys.readouterr().out
