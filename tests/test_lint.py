"""Tests for repro.lint: each rule against its fixtures, the engine
machinery (pragmas, fixes, JSON schema), and the clean-repo gate."""

import json
import shutil
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import (
    KNOWN_PRAGMAS,
    LintConfig,
    all_rules,
    apply_fixes,
    run_lint,
)
from repro.lint.engine import _parse_pragmas, parse_module
from repro.lint.findings import Finding, LintReport

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_SRC = Path(__file__).parents[1] / "src" / "repro"


def lint(path, *rules, **config):
    select = tuple(rules) if rules else None
    report = run_lint([FIXTURES / path], LintConfig(select=select, **config))
    return report


def rule_findings(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestRuleRegistry:
    def test_all_nine_rules_register(self):
        ids = [r.id for r in all_rules()]
        assert ids == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        ]

    def test_every_rule_documents_a_waiver(self):
        # one pragma token per rule, all known to the engine
        assert len(KNOWN_PRAGMAS) == 9

    def test_select_restricts_rules_run(self):
        report = lint("rng_bad.py", "R2")
        assert report.rules_run == ("R2",)
        assert report.findings == []  # R1 violations invisible to R2


class TestRngDiscipline:
    def test_flags_direct_module_calls(self):
        report = lint("rng_bad.py", "R1")
        messages = [f.message for f in rule_findings(report, "R1")]
        assert any("random.random()" in m for m in messages)
        assert any("random.Random()" in m for m in messages)
        assert any("numpy.random.default_rng()" in m for m in messages)

    def test_flags_unarbitrated_seed_rng_pair(self):
        report = lint("rng_bad.py", "R1")
        assert any(
            "sample_things" in f.message and "resolve_rng" in f.message
            for f in rule_findings(report, "R1")
        )

    def test_clean_fixture_passes(self):
        report = lint("rng_good.py", "R1")
        assert rule_findings(report, "R1") == []

    def test_compat_module_is_exempt(self):
        report = run_lint([REPO_SRC / "_compat.py"], LintConfig(select=("R1",)))
        assert report.findings == []


class TestDeprecation:
    def test_flags_shim_import_and_inject_style(self):
        report = lint("deprecation_bad.py", "R2")
        findings = rule_findings(report, "R2")
        assert any("repro.service.metrics" in f.message for f in findings)
        assert any("inject" in f.message for f in findings)

    def test_import_finding_is_fixable(self):
        report = lint("deprecation_bad.py", "R2")
        fixable = [f for f in rule_findings(report, "R2") if f.fixable]
        assert fixable, "the plain shim import must carry an autofix"
        old, new = fixable[0].fix
        assert "ServiceMetrics" in old and "MetricsRegistry" in new

    def test_clean_fixture_passes(self):
        report = lint("deprecation_good.py", "R2")
        assert rule_findings(report, "R2") == []

    def test_flags_retired_faultset_alias(self):
        report = lint("deprecation_bad.py", "R2")
        findings = rule_findings(report, "R2")
        assert any("FaultSet" in f.message for f in findings)

    def test_faultset_fix_rewrites_to_fault_model(self, tmp_path):
        target = tmp_path / "adopter.py"
        target.write_text(
            "from repro.service import FaultSet\n"
            "faults = FaultSet(host, {1})\n"
        )
        report = run_lint([target], LintConfig(select=("R2",)))
        applied, remaining = apply_fixes(report)
        assert applied == 1
        assert "from repro.fault.faults import FaultModel" in (
            target.read_text()
        )
        assert not any(f.fixable for f in remaining.findings)

    def test_fix_rewrites_the_import(self, tmp_path):
        target = tmp_path / "adopter.py"
        target.write_text(
            "from repro.service.metrics import ServiceMetrics\n"
            "m = ServiceMetrics()\n"
        )
        report = run_lint([target], LintConfig(select=("R2",)))
        applied, remaining = apply_fixes(report)
        assert applied == 1
        assert "from repro.obs.metrics import MetricsRegistry" in (
            target.read_text()
        )
        assert not any(f.fixable for f in remaining.findings)


class TestConstructionContract:
    def test_orphan_builder_and_unoracled_kind_flagged(self):
        report = lint("contract_bad", "R3")
        findings = rule_findings(report, "R3")
        assert any("orphan_embedding" in f.message for f in findings)
        assert any("'ring'" in f.message for f in findings)
        # the two pragma-waived entries stay quiet
        assert not any("rewrap_embedding" in f.message for f in findings)
        assert not any("'probe'" in f.message for f in findings)

    def test_covered_contract_passes(self):
        report = lint("contract_good", "R3")
        assert rule_findings(report, "R3") == []

    def test_partial_scan_stays_silent(self):
        # without the table and oracle files the contract can't be judged
        report = run_lint(
            [FIXTURES / "contract_bad" / "core" / "__init__.py"],
            LintConfig(select=("R3",)),
        )
        assert report.findings == []


class TestSimulatorProtocol:
    def test_flags_every_protocol_break(self):
        report = lint("protocol_bad.py", "R4")
        messages = [f.message for f in rule_findings(report, "R4")]
        assert any("no run() method" in m for m in messages)
        assert any("'schedule'" in m for m in messages)
        assert any("max_steps" in m for m in messages)
        assert any("never constructs a SimResult" in m for m in messages)

    def test_conforming_and_waived_engines_pass(self):
        report = lint("protocol_good.py", "R4")
        assert rule_findings(report, "R4") == []

    def test_batched_engine_without_scalar_run_is_flagged(self):
        # a batch-only surface (run_many, no run) is still an engine:
        # the protocol requires the scalar run() entry point
        report = lint("kernels/routing/batched_bad.py", "R4")
        messages = [f.message for f in rule_findings(report, "R4")]
        assert any(
            "batched-drifting" in m and "no run() method" in m
            for m in messages
        )

    def test_real_batched_engines_conform(self):
        # the shipping batched module is in R4 scope (two engine tags)
        # and clean; a protocol drift there fails here before CI lint
        source = (REPO_SRC / "routing" / "batched.py").read_text()
        assert source.count('engine = "batched-') == 2
        report = run_lint(
            [REPO_SRC / "routing" / "batched.py"],
            LintConfig(select=("R4",)),
        )
        assert report.findings == [] and report.files_scanned == 1


class TestDeterminism:
    def test_flags_clock_and_entropy_in_kernel_dirs(self):
        report = lint("kernels/core/kernel_bad.py", "R5")
        messages = [f.message for f in rule_findings(report, "R5")]
        assert any("time.time()" in m for m in messages)
        assert any("os.urandom()" in m for m in messages)
        assert any("datetime.datetime.now()" in m for m in messages)

    def test_pure_kernel_and_waiver_pass(self):
        report = lint("kernels/core/kernel_good.py", "R5")
        assert rule_findings(report, "R5") == []

    def test_rule_is_scoped_to_kernel_dirs(self):
        # same nondeterministic calls outside core//routing/ are fine
        report = lint("deprecation_good.py", "R5")
        assert rule_findings(report, "R5") == []

    def test_routing_batched_modules_are_kernel_scope(self):
        # routing/ is a kernel dir, so batched engines inherit the
        # determinism discipline: clock-derived seeds are flagged
        report = lint("kernels/routing/batched_bad.py", "R5")
        messages = [f.message for f in rule_findings(report, "R5")]
        assert any("time.time()" in m for m in messages)
        clean = run_lint(
            [REPO_SRC / "routing" / "batched.py"],
            LintConfig(select=("R5",)),
        )
        assert clean.findings == []


class TestServiceRaces:
    def test_unlocked_accesses_of_guarded_state_flagged(self):
        report = lint("races/service/registry.py", "R6")
        findings = rule_findings(report, "R6")
        assert any(
            "read" in f.message and "get()" in f.message for f in findings
        )
        assert any(
            "write" in f.message and "evict()" in f.message for f in findings
        )
        # the waived read and the disciplined class stay quiet
        assert not any("peek_hits" in f.message for f in findings)
        assert not any("DisciplinedCache" in f.message for f in findings)

    def test_lock_handoff_call_is_synchronized(self):
        report = lint("races/service/registry.py", "R6")
        findings = rule_findings(report, "R6")
        # passing self._lock alongside the guarded map delegates the
        # synchronization to the callee — the shard-teardown idiom
        assert not any("close()" in f.message for f in findings)
        # the same call without the lock stays a violation
        assert any(
            "read" in f.message and "leak()" in f.message for f in findings
        )

    def test_shard_modules_are_covered_by_default(self):
        assert "service/shards.py" in LintConfig().race_modules
        assert "service/frontend.py" in LintConfig().race_modules

    def test_detector_only_runs_on_configured_modules(self):
        report = run_lint(
            [FIXTURES / "races" / "service" / "registry.py"],
            LintConfig(select=("R6",), race_modules=("elsewhere.py",)),
        )
        assert report.findings == []


class TestEngine:
    def test_unknown_pragma_is_a_finding(self, tmp_path):
        target = tmp_path / "odd.py"
        target.write_text("x = 1  # lint: bogus-token(who knows)\n")
        report = run_lint([target])
        assert any(
            f.rule == "pragma" and "bogus-token" in f.message
            for f in report.findings
        )

    def test_reasonless_pragma_is_a_finding(self, tmp_path):
        target = tmp_path / "odd.py"
        target.write_text("x = 1  # lint: rng-ok()\n")
        report = run_lint([target])
        assert any(
            f.rule == "pragma" and "needs a reason" in f.message
            for f in report.findings
        )

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        (tmp_path / "fine.py").write_text("x = 1\n")
        report = run_lint([tmp_path])
        assert report.files_scanned == 2
        assert any(f.rule == "parse" for f in report.findings)

    def test_json_shape_is_stable(self):
        report = lint("rng_bad.py", "R1")
        data = report.to_dict()
        assert data["version"] == 1
        assert data["tool"] == "repro-lint"
        assert set(data) == {
            "version", "tool", "files_scanned", "errors", "warnings",
            "counts", "findings",
        }
        assert data["counts"]["R1"] == data["errors"] == len(data["findings"])
        for f in data["findings"]:
            assert set(f) == {
                "rule", "severity", "path", "line", "col", "message",
                "suggestion", "fixable",
            }
        json.dumps(data)  # round-trippable


class TestCli:
    def test_lint_bad_fixture_exits_nonzero(self, capsys):
        code = cli_main(
            ["lint", "--select", "R1", str(FIXTURES / "rng_bad.py")]
        )
        assert code == 1
        assert "R1 error" in capsys.readouterr().out

    def test_lint_json_output_parses(self, capsys):
        code = cli_main(
            [
                "lint", "--format", "json", "--select", "R1",
                str(FIXTURES / "rng_good.py"),
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["errors"] == 0

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        ):
            assert rule_id in out


class TestPragmaParser:
    def test_reason_may_contain_balanced_parens(self):
        out = _parse_pragmas("x = 1  # lint: race-ok(drain() owns it (fully))")
        assert len(out) == 1
        _, token, reason, problem = out[0]
        assert token == "race-ok"
        assert reason == "drain() owns it (fully)"
        assert problem == ""

    def test_two_pragmas_one_line(self):
        out = _parse_pragmas(
            "y = p(x)  # lint: domain-ok(key reuse) dtype-ok(capped at 4)"
        )
        assert [(t, r) for _, t, r, _ in out] == [
            ("domain-ok", "key reuse"),
            ("dtype-ok", "capped at 4"),
        ]

    def test_stacked_pragmas_both_waive(self, tmp_path):
        target = tmp_path / "stacked.py"
        target.write_text(
            "flat = 1  # lint: domain-ok(key reuse) dtype-ok(capped)\n"
        )
        module = parse_module(target)
        assert module.waived("domain-ok", 1)
        assert module.waived("dtype-ok", 1)
        assert not module.waived("rng-ok", 1)

    def test_lint_marker_inside_a_reason_is_inert(self):
        out = _parse_pragmas(
            "x = 1  # lint: rng-ok(the lint: prefix here is prose)"
        )
        assert len(out) == 1
        assert out[0][1] == "rng-ok"
        assert out[0][2] == "the lint: prefix here is prose"

    def test_unterminated_reason_is_a_finding(self, tmp_path):
        target = tmp_path / "odd.py"
        target.write_text("x = 1  # lint: rng-ok(never closed\n")
        report = run_lint([target])
        assert any(
            f.rule == "pragma" and "unterminated" in f.message
            for f in report.findings
        )

    def test_unknown_token_in_a_stack_is_still_caught(self, tmp_path):
        target = tmp_path / "odd.py"
        target.write_text("x = 1  # lint: rng-ok(fine) bogus-tok(huh)\n")
        report = run_lint([target])
        assert any(
            f.rule == "pragma" and "bogus-tok" in f.message
            for f in report.findings
        )
        # the well-formed pragma before it still waives
        assert parse_module(target).waived("rng-ok", 1)

    def test_prose_after_a_pragma_is_not_a_token(self):
        # trailing words without parens are comment prose, not pragmas
        out = _parse_pragmas("x = 1  # lint: rng-ok(fine) see the docs")
        assert [(t, p) for _, t, _, p in out] == [("rng-ok", "")]


class TestDomainConfusion:
    BAD = "domain/kernels/core/domain_bad.py"
    GOOD = "domain/kernels/core/domain_good.py"

    def test_flags_every_confusion_kind(self):
        report = lint(self.BAD, "R7")
        messages = [f.message for f in rule_findings(report, "R7")]
        assert len(messages) == 5
        # seeded consumer API
        assert any(
            "LaneLinkId passed to add_link_counts()" in m for m in messages
        )
        # subscript into a per-link array
        assert any(
            "LaneLinkId used to index a LinkId-indexed array" in m
            for m in messages
        )
        # cross-domain comparison and searchsorted needles
        assert any(
            "comparing a PackedEdgeKey to a NodeId" in m for m in messages
        )
        assert any(
            "searchsorted over NodeId keys with PackedEdgeKey needles" in m
            for m in messages
        )

    def test_one_level_call_summary_propagates(self):
        # _forward() has no seed entry: its requirement that eids is a
        # LinkId comes from summarizing its own body (one level deep)
        report = lint(self.BAD, "R7")
        assert any(
            "LaneLinkId passed to _forward() where LinkId is consumed "
            "(argument 2)" in f.message
            for f in rule_findings(report, "R7")
        )

    def test_waiver_is_honored(self):
        report = lint(self.BAD, "R7")
        lines = [f.line for f in rule_findings(report, "R7")]
        assert 47 not in lines  # waived_reinterpretation's consumer call

    def test_clean_fixture_passes(self):
        report = lint(self.GOOD, "R7")
        assert rule_findings(report, "R7") == []


class TestDtypeOverflow:
    BAD = "domain/kernels/core/dtype_bad.py"
    GOOD = "domain/kernels/core/dtype_good.py"

    def test_flags_cast_arithmetic_and_store_sites(self):
        report = lint(self.BAD, "R8")
        messages = [f.message for f in rule_findings(report, "R8")]
        assert len(messages) == 4
        assert any(
            "PackedEdgeKey values narrowed to int32" in m for m in messages
        )
        assert any(
            "LaneLinkId arithmetic in int32" in m for m in messages
        )
        assert any(
            "CsrOffset values narrowed to int32" in m for m in messages
        )
        assert any(
            "storing a LaneLinkId into a int32 array" in m for m in messages
        )

    def test_extents_are_quoted_for_triage(self):
        report = lint(self.BAD, "R8")
        assert all(
            "overflows" in f.message or "max extent" in f.message
            for f in rule_findings(report, "R8")
        )

    def test_waiver_is_honored(self):
        report = lint(self.BAD, "R8")
        assert not any(
            f.line == 34 for f in rule_findings(report, "R8")
        )  # waived_tight_bound's astype

    def test_clean_fixture_passes(self):
        # int64 packs, int32-safe LinkId/FlitPos tensors
        report = lint(self.GOOD, "R8")
        assert rule_findings(report, "R8") == []


class TestKernelParity:
    def test_flags_all_three_coverage_legs(self):
        report = lint("parity_bad", "R9")
        messages = [f.message for f in rule_findings(report, "R9")]
        assert len(messages) == 3
        assert any(
            "BatchedThing" in m and "has no QA differential" in m
            for m in messages
        )
        assert any(
            "embedding_csr() is never referenced" in m for m in messages
        )
        assert any(
            "orphan_differential_check() is not registered as a fuzzer "
            "stage" in m
            for m in messages
        )

    def test_reference_engines_are_exempt(self):
        report = lint("parity_bad", "R9")
        assert not any(
            "ReferenceThing" in f.message for f in rule_findings(report, "R9")
        )

    def test_covered_and_waived_engines_pass(self):
        report = lint("parity_good", "R9")
        assert rule_findings(report, "R9") == []

    def test_partial_scan_stays_silent(self):
        # without qa/differential.py in the scan, coverage is unjudgeable
        report = run_lint(
            [FIXTURES / "parity_bad" / "kernels" / "routing" / "engines.py"],
            LintConfig(select=("R9",)),
        )
        assert report.findings == []

    def test_deleting_a_real_registration_fails_r9(self, tmp_path):
        # mutation check against the shipping sources: copy the batched
        # engines + QA pair, drop one stage registration from the fuzzer,
        # and the parity rule must notice
        for rel in (
            "routing/batched.py", "qa/differential.py", "qa/fuzzer.py"
        ):
            dest = tmp_path / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(REPO_SRC / rel, dest)
        baseline = run_lint([tmp_path], LintConfig(select=("R9",)))
        assert baseline.findings == []

        fuzzer = tmp_path / "qa" / "fuzzer.py"
        mutated = fuzzer.read_text().replace(
            "wormhole_differential_check", "wormhole_parity_probe"
        )
        assert mutated != fuzzer.read_text()
        fuzzer.write_text(mutated)
        report = run_lint([tmp_path], LintConfig(select=("R9",)))
        assert any(
            "wormhole_differential_check() is not registered" in f.message
            for f in rule_findings(report, "R9")
        )


class TestApplyFixes:
    def _fix_finding(self, target, message, new):
        old = target.read_text().splitlines()[0]
        return Finding(
            "R2", "error", str(target), 1, 1, message,
            fix=(old, new),
        )

    def test_overlapping_fixes_on_one_line_apply_once(self, tmp_path):
        target = tmp_path / "adopter.py"
        target.write_text("from repro.service import FaultSet\n")
        first = self._fix_finding(
            target, "first", "from repro.fault.faults import FaultModel"
        )
        second = self._fix_finding(
            target, "second", "from repro.elsewhere import Other"
        )
        report = LintReport(
            findings=[first, second], files_scanned=1, rules_run=("R2",)
        )
        applied, remaining = apply_fixes(report)
        # the first rewrite wins; the second no longer matches the line
        assert applied == 1
        assert target.read_text() == (
            "from repro.fault.faults import FaultModel\n"
        )
        assert [f.message for f in remaining.findings] == ["second"]

    def test_apply_fixes_is_idempotent(self, tmp_path):
        target = tmp_path / "adopter.py"
        target.write_text(
            "from repro.service.metrics import ServiceMetrics\n"
            "m = ServiceMetrics()\n"
        )
        report = run_lint([target], LintConfig(select=("R2",)))
        applied, _ = apply_fixes(report)
        assert applied == 1
        after_first = target.read_text()
        # replaying the stale report must not touch the file again
        applied_again, _ = apply_fixes(report)
        assert applied_again == 0
        assert target.read_text() == after_first

    def test_unknown_pragma_in_nested_scope_is_a_finding(self, tmp_path):
        target = tmp_path / "odd.py"
        target.write_text(
            "class Outer:\n"
            "    def inner(self):\n"
            "        x = 1  # lint: not-a-token(deep down)\n"
            "        return x\n"
        )
        report = run_lint([target])
        assert any(
            f.rule == "pragma"
            and "not-a-token" in f.message
            and f.line == 3
            for f in report.findings
        )


class TestAsyncRaces:
    FIXTURE = "races/service/frontend.py"

    def test_async_method_reads_are_analyzed(self):
        report = lint(self.FIXTURE, "R6")
        findings = rule_findings(report, "R6")
        assert any(
            "serve()" in f.message and "read" in f.message for f in findings
        )
        # the locked async read is disciplined
        assert not any("serve_locked" in f.message for f in findings)

    def test_keyword_lock_handoff_is_synchronized(self):
        report = lint(self.FIXTURE, "R6")
        assert not any(
            "close()" in f.message for f in rule_findings(report, "R6")
        )

    def test_finalize_handoff_is_synchronized(self):
        report = lint(self.FIXTURE, "R6")
        findings = rule_findings(report, "R6")
        assert not any("register()" in f.message for f in findings)
        assert not any("FinalizeHandoff" in f.message for f in findings)


class TestChangedScope:
    def test_focus_filters_findings_not_analysis(self):
        engines = (
            FIXTURES / "parity_bad" / "kernels" / "routing" / "engines.py"
        )
        report = run_lint(
            [FIXTURES / "parity_bad"],
            LintConfig(select=("R9",)),
            focus=[engines],
        )
        # the uncovered engine lives in the focused file and survives...
        assert any(
            "BatchedThing" in f.message for f in rule_findings(report, "R9")
        )
        # ...while the qa-module findings are filtered, not un-found
        assert all(f.path.endswith("engines.py") for f in report.findings)
        full = run_lint([FIXTURES / "parity_bad"], LintConfig(select=("R9",)))
        assert len(full.findings) > len(report.findings)

    def test_empty_focus_reports_nothing_but_scans(self):
        report = run_lint(
            [FIXTURES / "rng_bad.py"],
            LintConfig(select=("R1",)),
            focus=[],
        )
        assert report.findings == []
        assert report.files_scanned == 1


class TestSarif:
    def test_sarif_shape(self):
        report = lint("rng_bad.py", "R1")
        sarif = report.to_sarif()
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {"R1"}
        assert len(run["results"]) == len(report.findings) > 0
        for result in run["results"]:
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            assert loc["region"]["startLine"] >= 1
        json.dumps(sarif)  # round-trippable

    def test_cli_sarif_to_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "lint.sarif"
        code = cli_main(
            [
                "lint", "--format", "sarif", "--select", "R1",
                "--output", str(out_file),
                str(FIXTURES / "rng_bad.py"),
            ]
        )
        assert code == 1
        assert capsys.readouterr().out == ""
        sarif = json.loads(out_file.read_text())
        assert sarif["runs"][0]["results"]


class TestRepositoryIsClean:
    def test_repro_package_lints_clean(self):
        report = run_lint([REPO_SRC])
        assert report.ok, "\n".join(
            f.format() for f in report.findings
        )
        # all nine rules actually ran over a substantial file set
        assert report.rules_run == (
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        )
        assert report.files_scanned > 50
