"""Tests for repro.lint: each rule against its fixtures, the engine
machinery (pragmas, fixes, JSON schema), and the clean-repo gate."""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import (
    KNOWN_PRAGMAS,
    LintConfig,
    all_rules,
    apply_fixes,
    run_lint,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_SRC = Path(__file__).parents[1] / "src" / "repro"


def lint(path, *rules, **config):
    select = tuple(rules) if rules else None
    report = run_lint([FIXTURES / path], LintConfig(select=select, **config))
    return report


def rule_findings(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestRuleRegistry:
    def test_all_six_rules_register(self):
        ids = [r.id for r in all_rules()]
        assert ids == ["R1", "R2", "R3", "R4", "R5", "R6"]

    def test_every_rule_documents_a_waiver(self):
        # one pragma token per rule, all known to the engine
        assert len(KNOWN_PRAGMAS) == 6

    def test_select_restricts_rules_run(self):
        report = lint("rng_bad.py", "R2")
        assert report.rules_run == ("R2",)
        assert report.findings == []  # R1 violations invisible to R2


class TestRngDiscipline:
    def test_flags_direct_module_calls(self):
        report = lint("rng_bad.py", "R1")
        messages = [f.message for f in rule_findings(report, "R1")]
        assert any("random.random()" in m for m in messages)
        assert any("random.Random()" in m for m in messages)
        assert any("numpy.random.default_rng()" in m for m in messages)

    def test_flags_unarbitrated_seed_rng_pair(self):
        report = lint("rng_bad.py", "R1")
        assert any(
            "sample_things" in f.message and "resolve_rng" in f.message
            for f in rule_findings(report, "R1")
        )

    def test_clean_fixture_passes(self):
        report = lint("rng_good.py", "R1")
        assert rule_findings(report, "R1") == []

    def test_compat_module_is_exempt(self):
        report = run_lint([REPO_SRC / "_compat.py"], LintConfig(select=("R1",)))
        assert report.findings == []


class TestDeprecation:
    def test_flags_shim_import_and_inject_style(self):
        report = lint("deprecation_bad.py", "R2")
        findings = rule_findings(report, "R2")
        assert any("repro.service.metrics" in f.message for f in findings)
        assert any("inject" in f.message for f in findings)

    def test_import_finding_is_fixable(self):
        report = lint("deprecation_bad.py", "R2")
        fixable = [f for f in rule_findings(report, "R2") if f.fixable]
        assert fixable, "the plain shim import must carry an autofix"
        old, new = fixable[0].fix
        assert "ServiceMetrics" in old and "MetricsRegistry" in new

    def test_clean_fixture_passes(self):
        report = lint("deprecation_good.py", "R2")
        assert rule_findings(report, "R2") == []

    def test_flags_retired_faultset_alias(self):
        report = lint("deprecation_bad.py", "R2")
        findings = rule_findings(report, "R2")
        assert any("FaultSet" in f.message for f in findings)

    def test_faultset_fix_rewrites_to_fault_model(self, tmp_path):
        target = tmp_path / "adopter.py"
        target.write_text(
            "from repro.service import FaultSet\n"
            "faults = FaultSet(host, {1})\n"
        )
        report = run_lint([target], LintConfig(select=("R2",)))
        applied, remaining = apply_fixes(report)
        assert applied == 1
        assert "from repro.fault.faults import FaultModel" in (
            target.read_text()
        )
        assert not any(f.fixable for f in remaining.findings)

    def test_fix_rewrites_the_import(self, tmp_path):
        target = tmp_path / "adopter.py"
        target.write_text(
            "from repro.service.metrics import ServiceMetrics\n"
            "m = ServiceMetrics()\n"
        )
        report = run_lint([target], LintConfig(select=("R2",)))
        applied, remaining = apply_fixes(report)
        assert applied == 1
        assert "from repro.obs.metrics import MetricsRegistry" in (
            target.read_text()
        )
        assert not any(f.fixable for f in remaining.findings)


class TestConstructionContract:
    def test_orphan_builder_and_unoracled_kind_flagged(self):
        report = lint("contract_bad", "R3")
        findings = rule_findings(report, "R3")
        assert any("orphan_embedding" in f.message for f in findings)
        assert any("'ring'" in f.message for f in findings)
        # the two pragma-waived entries stay quiet
        assert not any("rewrap_embedding" in f.message for f in findings)
        assert not any("'probe'" in f.message for f in findings)

    def test_covered_contract_passes(self):
        report = lint("contract_good", "R3")
        assert rule_findings(report, "R3") == []

    def test_partial_scan_stays_silent(self):
        # without the table and oracle files the contract can't be judged
        report = run_lint(
            [FIXTURES / "contract_bad" / "core" / "__init__.py"],
            LintConfig(select=("R3",)),
        )
        assert report.findings == []


class TestSimulatorProtocol:
    def test_flags_every_protocol_break(self):
        report = lint("protocol_bad.py", "R4")
        messages = [f.message for f in rule_findings(report, "R4")]
        assert any("no run() method" in m for m in messages)
        assert any("'schedule'" in m for m in messages)
        assert any("max_steps" in m for m in messages)
        assert any("never constructs a SimResult" in m for m in messages)

    def test_conforming_and_waived_engines_pass(self):
        report = lint("protocol_good.py", "R4")
        assert rule_findings(report, "R4") == []

    def test_batched_engine_without_scalar_run_is_flagged(self):
        # a batch-only surface (run_many, no run) is still an engine:
        # the protocol requires the scalar run() entry point
        report = lint("kernels/routing/batched_bad.py", "R4")
        messages = [f.message for f in rule_findings(report, "R4")]
        assert any(
            "batched-drifting" in m and "no run() method" in m
            for m in messages
        )

    def test_real_batched_engines_conform(self):
        # the shipping batched module is in R4 scope (two engine tags)
        # and clean; a protocol drift there fails here before CI lint
        source = (REPO_SRC / "routing" / "batched.py").read_text()
        assert source.count('engine = "batched-') == 2
        report = run_lint(
            [REPO_SRC / "routing" / "batched.py"],
            LintConfig(select=("R4",)),
        )
        assert report.findings == [] and report.files_scanned == 1


class TestDeterminism:
    def test_flags_clock_and_entropy_in_kernel_dirs(self):
        report = lint("kernels/core/kernel_bad.py", "R5")
        messages = [f.message for f in rule_findings(report, "R5")]
        assert any("time.time()" in m for m in messages)
        assert any("os.urandom()" in m for m in messages)
        assert any("datetime.datetime.now()" in m for m in messages)

    def test_pure_kernel_and_waiver_pass(self):
        report = lint("kernels/core/kernel_good.py", "R5")
        assert rule_findings(report, "R5") == []

    def test_rule_is_scoped_to_kernel_dirs(self):
        # same nondeterministic calls outside core//routing/ are fine
        report = lint("deprecation_good.py", "R5")
        assert rule_findings(report, "R5") == []

    def test_routing_batched_modules_are_kernel_scope(self):
        # routing/ is a kernel dir, so batched engines inherit the
        # determinism discipline: clock-derived seeds are flagged
        report = lint("kernels/routing/batched_bad.py", "R5")
        messages = [f.message for f in rule_findings(report, "R5")]
        assert any("time.time()" in m for m in messages)
        clean = run_lint(
            [REPO_SRC / "routing" / "batched.py"],
            LintConfig(select=("R5",)),
        )
        assert clean.findings == []


class TestServiceRaces:
    def test_unlocked_accesses_of_guarded_state_flagged(self):
        report = lint("races/service/registry.py", "R6")
        findings = rule_findings(report, "R6")
        assert any(
            "read" in f.message and "get()" in f.message for f in findings
        )
        assert any(
            "write" in f.message and "evict()" in f.message for f in findings
        )
        # the waived read and the disciplined class stay quiet
        assert not any("peek_hits" in f.message for f in findings)
        assert not any("DisciplinedCache" in f.message for f in findings)

    def test_lock_handoff_call_is_synchronized(self):
        report = lint("races/service/registry.py", "R6")
        findings = rule_findings(report, "R6")
        # passing self._lock alongside the guarded map delegates the
        # synchronization to the callee — the shard-teardown idiom
        assert not any("close()" in f.message for f in findings)
        # the same call without the lock stays a violation
        assert any(
            "read" in f.message and "leak()" in f.message for f in findings
        )

    def test_shard_modules_are_covered_by_default(self):
        assert "service/shards.py" in LintConfig().race_modules
        assert "service/frontend.py" in LintConfig().race_modules

    def test_detector_only_runs_on_configured_modules(self):
        report = run_lint(
            [FIXTURES / "races" / "service" / "registry.py"],
            LintConfig(select=("R6",), race_modules=("elsewhere.py",)),
        )
        assert report.findings == []


class TestEngine:
    def test_unknown_pragma_is_a_finding(self, tmp_path):
        target = tmp_path / "odd.py"
        target.write_text("x = 1  # lint: bogus-token(who knows)\n")
        report = run_lint([target])
        assert any(
            f.rule == "pragma" and "bogus-token" in f.message
            for f in report.findings
        )

    def test_reasonless_pragma_is_a_finding(self, tmp_path):
        target = tmp_path / "odd.py"
        target.write_text("x = 1  # lint: rng-ok()\n")
        report = run_lint([target])
        assert any(
            f.rule == "pragma" and "needs a reason" in f.message
            for f in report.findings
        )

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        (tmp_path / "fine.py").write_text("x = 1\n")
        report = run_lint([tmp_path])
        assert report.files_scanned == 2
        assert any(f.rule == "parse" for f in report.findings)

    def test_json_shape_is_stable(self):
        report = lint("rng_bad.py", "R1")
        data = report.to_dict()
        assert data["version"] == 1
        assert data["tool"] == "repro-lint"
        assert set(data) == {
            "version", "tool", "files_scanned", "errors", "warnings",
            "counts", "findings",
        }
        assert data["counts"]["R1"] == data["errors"] == len(data["findings"])
        for f in data["findings"]:
            assert set(f) == {
                "rule", "severity", "path", "line", "col", "message",
                "suggestion", "fixable",
            }
        json.dumps(data)  # round-trippable


class TestCli:
    def test_lint_bad_fixture_exits_nonzero(self, capsys):
        code = cli_main(
            ["lint", "--select", "R1", str(FIXTURES / "rng_bad.py")]
        )
        assert code == 1
        assert "R1 error" in capsys.readouterr().out

    def test_lint_json_output_parses(self, capsys):
        code = cli_main(
            [
                "lint", "--format", "json", "--select", "R1",
                str(FIXTURES / "rng_good.py"),
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["errors"] == 0

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule_id in out


class TestRepositoryIsClean:
    def test_repro_package_lints_clean(self):
        report = run_lint([REPO_SRC])
        assert report.ok, "\n".join(
            f.format() for f in report.findings
        )
        # all six rules actually ran over a substantial file set
        assert report.rules_run == ("R1", "R2", "R3", "R4", "R5", "R6")
        assert report.files_scanned > 50
