"""Tests for Lemma 1: Hamiltonian decompositions of hypercubes."""

import pytest

from repro.hypercube.graph import Hypercube
from repro.hypercube.hamiltonian import (
    directed_hamiltonian_decomposition,
    hamiltonian_decomposition,
    verify_hamiltonian_decomposition,
)


class TestLemma1Even:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10, 12])
    def test_cycle_count(self, n):
        dec = hamiltonian_decomposition(n)
        assert len(dec.cycles) == n // 2
        assert dec.matching is None

    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10])
    def test_cycles_are_hamiltonian_and_edge_disjoint(self, n):
        dec = hamiltonian_decomposition(n)
        q = Hypercube(n)
        seen = set()
        for cyc in dec.cycles:
            assert len(cyc) == q.num_nodes
            assert len(set(cyc)) == q.num_nodes
            closed = list(cyc) + [cyc[0]]
            for u, v in zip(closed, closed[1:]):
                assert q.is_edge(u, v)
                e = frozenset((u, v))
                assert e not in seen
                seen.add(e)

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_covers_all_edges(self, n):
        dec = hamiltonian_decomposition(n)
        covered = set()
        for cyc in dec.cycles:
            closed = list(cyc) + [cyc[0]]
            covered.update(frozenset((u, v)) for u, v in zip(closed, closed[1:]))
        assert len(covered) == n * 2**n // 2


class TestLemma1Odd:
    @pytest.mark.parametrize("n", [1, 3, 5, 7, 9, 11])
    def test_cycles_plus_matching(self, n):
        dec = hamiltonian_decomposition(n)
        assert len(dec.cycles) == n // 2
        assert dec.matching is not None
        assert len(dec.matching) == 2 ** (n - 1)

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_matching_is_perfect_and_disjoint(self, n):
        dec = hamiltonian_decomposition(n)
        q = Hypercube(n)
        covered = set()
        for u, v in dec.matching:
            assert q.is_edge(u, v)
            assert u not in covered and v not in covered
            covered.update((u, v))
        assert len(covered) == q.num_nodes


class TestDirectedForm:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_directed_cycle_count(self, n):
        cycles = directed_hamiltonian_decomposition(n)
        assert len(cycles) == n  # 2 * (n // 2) for even n

    def test_orientation_pairing(self):
        # cycle 2i+1 is cycle 2i reversed (same start node)
        cycles = directed_hamiltonian_decomposition(6)
        for i in range(0, len(cycles), 2):
            fwd, rev = cycles[i], cycles[i + 1]
            assert fwd[0] == rev[0]
            assert rev[1:] == list(reversed(fwd[1:]))

    @pytest.mark.parametrize("n", [4, 6])
    def test_directed_edge_disjoint(self, n):
        cycles = directed_hamiltonian_decomposition(n)
        seen = set()
        for cyc in cycles:
            closed = cyc + [cyc[0]]
            for u, v in zip(closed, closed[1:]):
                assert (u, v) not in seen
                seen.add((u, v))
        assert len(seen) == n * 2**n  # all directed edges, n even


class TestVerification:
    def test_verifier_accepts_valid(self):
        verify_hamiltonian_decomposition(hamiltonian_decomposition(6))

    def test_verifier_rejects_duplicate_cycle(self):
        from repro.hypercube.hamiltonian import HypercubeDecomposition

        dec = hamiltonian_decomposition(4)
        bad = HypercubeDecomposition(4, (dec.cycles[0], dec.cycles[0]))
        with pytest.raises(AssertionError):
            verify_hamiltonian_decomposition(bad)

    def test_verifier_rejects_wrong_count(self):
        from repro.hypercube.hamiltonian import HypercubeDecomposition

        dec = hamiltonian_decomposition(4)
        bad = HypercubeDecomposition(4, (dec.cycles[0],))
        with pytest.raises(AssertionError):
            verify_hamiltonian_decomposition(bad)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            hamiltonian_decomposition(0)

    def test_cached(self):
        assert hamiltonian_decomposition(6) is hamiltonian_decomposition(6)
