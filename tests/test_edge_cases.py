"""Edge-case coverage across the data model and substrates."""

import pytest

from repro.core import graycode_cycle_embedding
from repro.core.embedding import Embedding
from repro.hypercube.graph import Hypercube
from repro.networks.cycle import DirectedCycle


class TestSinglePathEmbeddingVerify:
    def _emb(self):
        return graycode_cycle_embedding(4)

    def test_missing_vertex(self):
        emb = self._emb()
        del emb.vertex_map[3]
        with pytest.raises(AssertionError):
            emb.verify()

    def test_image_out_of_range(self):
        emb = self._emb()
        emb.vertex_map[3] = 99
        with pytest.raises(AssertionError):
            emb.verify()

    def test_missing_path(self):
        emb = self._emb()
        del emb.edge_paths[(0, 1)]
        with pytest.raises(AssertionError):
            emb.verify()

    def test_wrong_endpoint(self):
        emb = self._emb()
        hu = emb.vertex_map[0]
        wrong = hu ^ 8  # a neighbor that is not vertex 1's image
        assert wrong != emb.vertex_map[1]
        emb.edge_paths[(0, 1)] = (hu, wrong)
        with pytest.raises(AssertionError):
            emb.verify()

    def test_load_parameter(self):
        host = Hypercube(2)
        guest = DirectedCycle(8)  # 8 vertices on 4 nodes: load 2
        seq = [0, 1, 3, 2]  # gray order: consecutive hosts are adjacent
        vmap = {i: seq[i % 4] for i in range(8)}
        paths = {}
        for i in range(8):
            hu, hv = vmap[i], vmap[(i + 1) % 8]
            paths[(i, (i + 1) % 8)] = (
                (hu,) if hu == hv else (hu, hv)
            )
        emb = Embedding(host, guest, vmap, paths)
        emb.verify()  # default allows ceil(8/4) = 2
        with pytest.raises(AssertionError):
            emb.verify(max_load=1)

    def test_repr_contains_metrics(self):
        assert "dilation" in repr(self._emb())


class TestGraycodeScale:
    def test_large_gray_array(self):
        from repro.hypercube.graycode import gray, gray_array

        arr = gray_array(16)
        assert len(arr) == 65536
        assert arr[12345] == gray(12345)

    def test_transition_at_deep(self):
        from repro.hypercube.graycode import transition_at, transitions_prime

        seq = transitions_prime(16)
        for j in (0, 1, 1000, 32766):
            assert transition_at(j) == seq[j]


class TestMomentScale:
    def test_table_q16(self):
        from repro.hypercube.moments import moment, moment_table

        table = moment_table(16)
        for v in (0, 1, 4097, 65535):
            assert table[v] == moment(v)


class TestScheduleInternals:
    def test_link_usage_counts(self):
        from repro.routing.schedule import PacketSchedule, ScheduledPacket

        host = Hypercube(3)
        sched = PacketSchedule(
            host,
            [
                ScheduledPacket((0, 1, 3), (1, 2)),
                ScheduledPacket((0, 2), (2,)),
            ],
        )
        use = sched.link_usage()
        assert use[(host.edge_id(0, 1), 1)] == 1
        assert use[(host.edge_id(0, 2), 2)] == 1
        assert sched.makespan == 2

    def test_empty_schedule(self):
        from repro.routing.schedule import PacketSchedule

        sched = PacketSchedule(Hypercube(3), [])
        sched.verify()
        assert sched.makespan == 0
        assert sched.busy_link_fraction() == 0.0


class TestXRouterCache:
    def test_inverse_cache_reused(self):
        from repro.routing.x_routing import XRouter

        router = XRouter(2)
        a = router.piece_paths(0, 5)
        b = router.piece_paths(0, 5)
        assert a == b  # deterministic, cached inverses

    def test_router_reuse_between_calls(self):
        from repro.routing.permutation import random_permutation
        from repro.routing.x_routing import XRouter, x_permutation_time

        router = XRouter(2)
        perm = random_permutation(64, seed=1)
        t1 = x_permutation_time(2, perm, 8, router=router)
        t2 = x_permutation_time(2, perm, 8, router=router)
        assert t1 == t2


class TestDecompositionScaleQ18:
    @pytest.mark.slow
    def test_q18(self):
        from repro.hypercube.hamiltonian import hamiltonian_decomposition

        dec = hamiltonian_decomposition(18)
        assert len(dec.cycles) == 9
