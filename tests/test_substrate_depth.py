"""Depth tests for the certified substrate and the width-gap argument."""

import pytest

from repro.core.cycle_multipath import embed_cycle_load1, embed_cycle_load2
from repro.hypercube.graph import Hypercube
from repro.hypercube.hamiltonian import hamiltonian_decomposition
from repro.hypercube.torus import torus_hamiltonian_decomposition
from repro.routing.schedule import multipath_packet_schedule


class TestTorusTileSweep:
    @pytest.mark.parametrize("m", [4, 8, 12, 16, 20, 24, 28, 32, 48, 64])
    def test_c4_column_tile(self, m):
        # the absorption-friendly tile, every height multiple of 4
        torus_hamiltonian_decomposition(m, 4)

    @pytest.mark.parametrize("mn", [(6, 6), (6, 14), (10, 22), (14, 6)])
    def test_checkerboard_tile_other_shapes(self, mn):
        torus_hamiltonian_decomposition(*mn)


class TestOddDecompositionStructure:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_snake_visits_both_halves_contiguously(self, n):
        # each cycle of Q_n = Q_{n-1} x K_2 traverses copy 0 fully, crosses
        # one rung, traverses copy 1 fully, crosses back
        dec = hamiltonian_decomposition(n)
        for cyc in dec.cycles:
            sides = [v >> (n - 1) for v in cyc]
            # exactly two transitions around the cycle
            changes = sum(
                1 for a, b in zip(sides, sides[1:] + sides[:1]) if a != b
            )
            assert changes == 2

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_matching_contains_rungs_and_wraps(self, n):
        dec = hamiltonian_decomposition(n)
        top = 1 << (n - 1)
        rungs = sum(1 for u, v in dec.matching if (u ^ v) == top)
        wraps = len(dec.matching) - rungs
        # 2 wrap edges per cycle (one per copy)
        assert wraps == 2 * len(dec.cycles)


class TestWidthGapRegime:
    """Theorem 1/2 for n where 2k is NOT a power of two (n >= 12)."""

    @pytest.mark.parametrize("n", [12, 13])
    def test_theorem1_still_cost3(self, n):
        emb = embed_cycle_load1(n)
        emb.verify()
        sched = multipath_packet_schedule(emb, extra_direct_at=3)
        sched.verify()
        assert sched.makespan == 3
        # width is the certified fallback 2^floor(log2 2k) + 1
        assert emb.width == emb.info["a"] + 1
        assert emb.info["a"] == 4  # k = 3 -> a = 4 < 2k = 6

    def test_theorem2_n12_pays_one_extra_step(self):
        # 2k = 6 is not a power of two, so the moment labels fold onto the
        # 6 cycles with reuse: middle congestion 2, certified cost 4 instead
        # of the claimed 3 (same gap as Theorem 1; see EXPERIMENTS.md)
        emb = embed_cycle_load2(12)
        emb.verify()
        sched = multipath_packet_schedule(emb)
        sched.verify()
        assert emb.width == 6
        assert emb.info["middle_congestion"] == 2
        assert sched.makespan == 4

    def test_rainbow_coloring_counting_obstruction(self):
        # the arithmetic behind the width note: a neighborhood-rainbow
        # coloring of Q_m with exactly m colors forces every color class C_i
        # to satisfy |C_i| * m = 2^m (each vertex has exactly one neighbor
        # in C_i), so m must divide 2^m -- m must be a power of two
        for m in (6, 10, 12):
            assert (1 << m) % m != 0
        for m in (2, 4, 8, 16):
            assert (1 << m) % m == 0


class TestDecompositionScale:
    def test_q14(self):
        dec = hamiltonian_decomposition(14)
        assert len(dec.cycles) == 7

    def test_directed_cycles_cover_exactly(self):
        from repro.hypercube.hamiltonian import directed_hamiltonian_decomposition

        n = 10
        cycles = directed_hamiltonian_decomposition(n)
        used = set()
        for cyc in cycles:
            for u, v in zip(cyc, cyc[1:] + [cyc[0]]):
                used.add((u, v))
        assert len(used) == n * (1 << n)


class TestHostModelEdgeCases:
    def test_q0(self):
        q = Hypercube(0)
        assert q.num_nodes == 1 and q.num_edges == 0
        assert list(q.edges()) == []

    def test_q1(self):
        q = Hypercube(1)
        assert set(q.edges()) == {(0, 1), (1, 0)}

    def test_distance_symmetry(self):
        q = Hypercube(6)
        for u, v in ((0, 63), (5, 40)):
            assert q.distance(u, v) == q.distance(v, u)
