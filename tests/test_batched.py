"""Tests for the batched tensor engines and their differential harness.

Three layers:

* engine semantics — protocol conformance, empty/degenerate lanes,
  per-lane fault drops and wormhole deadlock freezing;
* metamorphic properties — permuting a batch permutes results, a batch
  of one equals the scalar engine, splitting a batch and concatenating
  the results is the identity;
* the QA harness — seeded ``batched_differential`` fuzz smoke, the
  fault-activation edge matrix across all three store-and-forward
  engines, and a mutation test proving an injected arbitration bug is
  caught and shrunk to a minimal batch.
"""

import numpy as np
import pytest

from repro._compat import resolve_rng
from repro.fault.faults import FaultModel
from repro.hypercube.graph import Hypercube
from repro.obs.recorder import LinkRecorder
from repro.qa.differential import (
    batched_differential_check,
    batched_wormhole_differential_check,
)
from repro.qa.fuzzer import STAGES, Fuzzer
from repro.qa.schedules import (
    random_schedule_batch,
    random_worm_schedule_batch,
)
from repro.routing import (
    BatchedStoreForward,
    BatchedWormhole,
    FastStoreForward,
    FastWormhole,
    Simulator,
    StoreForwardSimulator,
    WormholeDeadlock,
)


def _measured(results):
    return [r.measured() for r in results]


def _scalar(host, schedule, faults=None):
    rec = LinkRecorder(host=host)
    res = FastStoreForward(host).run(schedule, recorder=rec, faults=faults)
    return res.measured(), rec.snapshot()


def _worm_observable(out, recorder):
    return {
        "makespan": None if out.deadlocked else out.makespan,
        "deadlock": out.deadlock,
        "worms": tuple(
            (w.done_step, w.head_link, tuple(w.flits_crossed))
            for w in out.worms
        ),
        "owner": out.owner,
        "recorder": recorder.snapshot(),
    }


class TestProtocol:
    def test_both_engines_satisfy_simulator_protocol(self):
        host = Hypercube(3)
        assert isinstance(BatchedStoreForward(host), Simulator)
        assert isinstance(BatchedWormhole(host), Simulator)

    def test_run_is_run_many_of_one(self):
        host = Hypercube(3)
        schedule = [((0, 1, 3), 1), ((5, 1, 3), 1)]
        single = BatchedStoreForward(host).run(schedule)
        [batched] = BatchedStoreForward(host).run_many([schedule])
        assert single.measured() == batched.measured()

    def test_run_requires_a_schedule(self):
        with pytest.raises(ValueError):
            BatchedStoreForward(Hypercube(3)).run(None)

    def test_empty_batch_and_empty_lane(self):
        host = Hypercube(3)
        assert BatchedStoreForward(host).run_many([]) == []
        [res] = BatchedStoreForward(host).run_many([[]])
        assert res.makespan == 0 and res.delivered == 0
        [out] = BatchedWormhole(host).run_many([[]])
        assert out.makespan == 0 and out.deadlock is None

    def test_zero_hop_lane_delivers_at_step_zero(self):
        host = Hypercube(3)
        [res] = BatchedStoreForward(host).run_many([[(3,)]])
        assert res.delivered == 1
        assert res.done_steps == (0,)

    def test_multi_packet_service_time_rejected(self):
        from repro.routing.api import SimRequest

        host = Hypercube(3)
        req = SimRequest(path=(0, 1), release_step=1, service_time=2)
        with pytest.raises(ValueError, match="unit service time"):
            BatchedStoreForward(host).run_many([[req]])

    def test_single_recorder_is_not_broadcast(self):
        host = Hypercube(3)
        rec = LinkRecorder(host=host)
        with pytest.raises(ValueError, match="per-lane"):
            BatchedStoreForward(host).run_many(
                [[((0, 1), 1)], [((2, 3), 1)]], recorders=rec
            )

    def test_fault_sequence_length_must_match(self):
        host = Hypercube(3)
        fm = FaultModel.random_links(host, k=1, seed=1)
        with pytest.raises(ValueError):
            BatchedStoreForward(host).run_many(
                [[((0, 1), 1)], [((2, 3), 1)]], faults=[fm]
            )

    def test_wormhole_run_raises_on_deadlock(self):
        host = Hypercube(2)
        # 4-cycle of 2-link worms: each holds its first link and waits
        # forever for the next one, held by the next worm
        cycle = [(0, 1, 3), (1, 3, 2), (3, 2, 0), (2, 0, 1)]
        schedule = [(path, 4, 1) for path in cycle]
        scalar = FastWormhole(host)
        for path, flits, release in schedule:
            scalar.inject(path, flits, release)
        with pytest.raises(WormholeDeadlock) as scalar_err:
            scalar.run()
        with pytest.raises(WormholeDeadlock) as batched_err:
            BatchedWormhole(host).run(schedule)
        assert str(batched_err.value) == str(scalar_err.value)

    def test_deadlocked_lane_freezes_while_others_finish(self):
        host = Hypercube(2)
        cycle = [(0, 1, 3), (1, 3, 2), (3, 2, 0), (2, 0, 1)]
        dead_lane = [(path, 4, 1) for path in cycle]
        live_lane = [((0, 1, 3), 6, 1)]
        dead, live = BatchedWormhole(host).run_many([dead_lane, live_lane])
        assert dead.deadlocked and "deadlocked" in dead.deadlock
        assert live.deadlock is None
        assert live.worms[0].done_step == 2 + 6 - 1


class TestMetamorphic:
    def _batch(self, host, seed, lanes=5):
        rng = resolve_rng(f"meta:{seed}")
        batch = random_schedule_batch(host, rng, max_lanes=1)
        while len(batch) < lanes:
            batch += random_schedule_batch(host, rng, max_lanes=1)
        return batch[:lanes]

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_permutation_permutes_results(self, seed):
        host = Hypercube(3)
        batch = self._batch(host, seed)
        rng = resolve_rng(f"perm:{seed}")
        order = list(range(len(batch)))
        rng.shuffle(order)
        base = _measured(BatchedStoreForward(host).run_many(batch))
        shuffled = _measured(
            BatchedStoreForward(host).run_many([batch[i] for i in order])
        )
        assert shuffled == [base[i] for i in order]

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_of_one_equals_scalar_engine(self, seed):
        host = Hypercube(3)
        for lane in self._batch(host, seed, lanes=3):
            rec = LinkRecorder(host=host)
            [res] = BatchedStoreForward(host).run_many(
                [lane], recorders=[rec]
            )
            scalar, scalar_snap = _scalar(host, lane)
            assert res.measured() == scalar
            assert rec.snapshot() == scalar_snap

    @pytest.mark.parametrize("seed", range(3))
    def test_split_batch_and_concat_is_identity(self, seed):
        host = Hypercube(3)
        batch = self._batch(host, seed)
        whole = _measured(BatchedStoreForward(host).run_many(batch))
        half = len(batch) // 2
        left = _measured(BatchedStoreForward(host).run_many(batch[:half]))
        right = _measured(BatchedStoreForward(host).run_many(batch[half:]))
        assert left + right == whole

    @pytest.mark.parametrize("seed", range(3))
    def test_wormhole_batch_metamorphics(self, seed):
        host = Hypercube(3)
        rng = resolve_rng(f"worm-meta:{seed}")
        batch = random_worm_schedule_batch(host, rng, max_lanes=3)
        recs = [LinkRecorder(host=host) for _ in batch]
        outs = BatchedWormhole(host).run_many(batch, recorders=recs)
        whole = [_worm_observable(o, r) for o, r in zip(outs, recs)]
        # batch of one equals the scalar fast engine, lane for lane
        for lane, expect in zip(batch, whole):
            rec = LinkRecorder(host=host)
            [out] = BatchedWormhole(host).run_many([lane], recorders=[rec])
            assert _worm_observable(out, rec) == expect
        # reversing the batch reverses the outcomes
        recs_r = [LinkRecorder(host=host) for _ in batch]
        outs_r = BatchedWormhole(host).run_many(batch[::-1], recorders=recs_r)
        reversed_obs = [
            _worm_observable(o, r) for o, r in zip(outs_r, recs_r)
        ]
        assert reversed_obs == whole[::-1]


class TestFaultActivationEdges:
    """``active_from`` at step 0, the final step, and past ``max_steps``
    must drop the same packets in all three store-and-forward engines."""

    def _all_engines(self, host, schedule, faults):
        reference = StoreForwardSimulator(host, tie_break="priority").run(
            schedule, faults=faults
        )
        fast = FastStoreForward(host).run(schedule, faults=faults)
        [batched] = BatchedStoreForward(host).run_many(
            [schedule], faults=faults
        )
        return reference, fast, batched

    def _schedule_and_fault(self, seed):
        host = Hypercube(3)
        rng = resolve_rng(f"fault-edge:{seed}")
        [schedule] = random_schedule_batch(host, rng, max_lanes=1)
        fault = FaultModel.random_links(host, k=2, rng=rng)
        return host, schedule, fault

    @pytest.mark.parametrize("seed", range(4))
    def test_active_from_step_zero(self, seed):
        host, schedule, fault = self._schedule_and_fault(seed)
        models = FaultModel(
            host, fault.failed, fault.failed_nodes, active_from=0
        )
        ref, fast, batched = self._all_engines(host, schedule, models)
        assert ref.measured() == fast.measured() == batched.measured()

    @pytest.mark.parametrize("seed", range(4))
    def test_active_from_final_step(self, seed):
        host, schedule, fault = self._schedule_and_fault(seed)
        clean = FastStoreForward(host).run(schedule)
        final = max(1, clean.makespan)
        models = FaultModel(
            host, fault.failed, fault.failed_nodes, active_from=final
        )
        ref, fast, batched = self._all_engines(host, schedule, models)
        assert ref.measured() == fast.measured() == batched.measured()

    @pytest.mark.parametrize("seed", range(4))
    def test_active_from_past_max_steps_is_a_clean_run(self, seed):
        host, schedule, fault = self._schedule_and_fault(seed)
        models = FaultModel(
            host, fault.failed, fault.failed_nodes, active_from=10**9
        )
        ref, fast, batched = self._all_engines(host, schedule, models)
        clean = FastStoreForward(host).run(schedule)
        assert ref.measured() == fast.measured() == batched.measured()
        assert batched.measured() == clean.measured()
        assert -1 not in batched.done_steps


class TestBatchedDifferential:
    def test_stage_is_registered(self):
        assert "batched_differential" in STAGES

    def test_hundred_seed_smoke(self):
        host = Hypercube(3)
        for i in range(100):
            rng = resolve_rng(f"batched-smoke:{i}")
            batch = random_schedule_batch(host, rng, max_lanes=3)
            faults = None
            if rng.random() < 0.4:
                faults = [
                    FaultModel.random_links(
                        host, k=1, rng=rng,
                        active_from=rng.choice([0, 1, 3]),
                    )
                    if rng.random() < 0.5
                    else None
                    for _ in batch
                ]
            assert (
                batched_differential_check(host, batch, faults=faults)
                is None
            )

    def test_wormhole_smoke(self):
        host = Hypercube(3)
        for i in range(40):
            rng = resolve_rng(f"batched-worm-smoke:{i}")
            batch = random_worm_schedule_batch(host, rng)
            assert batched_wormhole_differential_check(host, batch) is None

    def test_fuzzer_runs_the_stage(self):
        fuzzer = Fuzzer(checks=("build", "batched_differential"))
        report = fuzzer.run(seeds=5)
        assert report.points == 5
        assert not report.failures


class _ReversedArbitration(BatchedStoreForward):
    """Sabotage: highest injection index wins links instead of lowest."""

    def _priorities(self, total):
        return np.arange(total - 1, -1, -1, dtype=np.int64)


class TestMutation:
    def _colliding_batch(self):
        # lane 0: three packets contending for node 1's outgoing links;
        # lane 1: a decoy that never collides
        return [
            [((0, 1, 3), 1), ((2, 0, 1), 1), ((4, 0, 1, 5), 1)],
            [((6, 7), 1), ((5, 4), 2)],
        ]

    def test_injected_arbitration_bug_is_caught_and_shrunk(self):
        host = Hypercube(3)
        divergence = batched_differential_check(
            host, self._colliding_batch(), batched_cls=_ReversedArbitration
        )
        assert divergence is not None
        assert "done_steps" in divergence.fields or "makespan" in (
            divergence.fields
        )
        # shrunk to a minimal reproducer: one lane, at most two packets
        assert len(divergence.schedules) == 1
        assert len(divergence.schedules[divergence.lane]) <= 2

    def test_monkeypatched_engine_is_picked_up(self, monkeypatch):
        import repro.qa.differential as differential

        monkeypatch.setattr(
            differential, "BatchedStoreForward", _ReversedArbitration
        )
        divergence = differential.batched_differential_check(
            Hypercube(3), self._colliding_batch()
        )
        assert divergence is not None

    def test_clean_engine_passes_the_same_batch(self):
        host = Hypercube(3)
        assert (
            batched_differential_check(host, self._colliding_batch()) is None
        )
