"""Tests for Rabin's IDA and the link-fault experiments."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import embed_cycle_load1, graycode_cycle_embedding
from repro.fault import FaultModel, FaultyLinkModel, multipath_delivery_experiment
from repro.fault.ida import cauchy_matrix, disperse, reconstruct
from repro.hypercube.graph import Hypercube


class TestCauchy:
    def test_every_square_submatrix_invertible(self):
        import numpy as np

        from repro.fault.gf256 import GF256

        w, m = 6, 3
        a = cauchy_matrix(w, m)
        for rows in itertools.combinations(range(w), m):
            GF256.solve(a[list(rows), :], np.zeros(m, dtype=np.uint8))

    def test_bounds(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)
        with pytest.raises(ValueError):
            cauchy_matrix(0, 1)


class TestIDA:
    @given(
        st.binary(min_size=0, max_size=200),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=40)
    def test_roundtrip_any_m_pieces(self, message, m, extra):
        w = m + extra
        pieces = disperse(message, w, m)
        assert len(pieces) == w
        assert reconstruct(pieces[-m:], w, m) == message

    def test_every_m_subset_reconstructs(self):
        msg = b"hypercube"
        w, m = 5, 3
        pieces = disperse(msg, w, m)
        for subset in itertools.combinations(pieces, m):
            assert reconstruct(list(subset), w, m) == msg

    def test_piece_size_overhead(self):
        msg = b"z" * 300
        pieces = disperse(msg, 6, 3)
        # each piece ~ len/m plus the 4-byte length frame
        assert len(pieces[0][1]) == -(-304 // 3)

    def test_too_few_pieces(self):
        pieces = disperse(b"abc", 4, 2)
        with pytest.raises(ValueError):
            reconstruct(pieces[:1], 4, 2)

    def test_duplicate_pieces_do_not_count(self):
        pieces = disperse(b"abc", 4, 2)
        with pytest.raises(ValueError):
            reconstruct([pieces[0], pieces[0]], 4, 2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            disperse(b"x", 2, 3)  # w < m
        disperse(b"x", 3, 2)
        with pytest.raises(ValueError):
            reconstruct([(9, b"")], 3, 2)  # index out of range


class TestFaultModel:
    def test_no_faults(self):
        host = Hypercube(5)
        fm = FaultyLinkModel.random(host, 0.0, seed=1)
        assert not fm.failed
        assert fm.path_alive([0, 1, 3, 7])

    def test_all_faults(self):
        host = Hypercube(4)
        fm = FaultyLinkModel.random(host, 1.0, seed=1)
        assert len(fm.failed) == host.num_edges
        assert not fm.path_alive([0, 1])
        assert fm.path_alive([3])  # zero-hop path never fails

    def test_symmetric_failures(self):
        host = Hypercube(5)
        fm = FaultyLinkModel.random(host, 0.3, seed=2)
        for eid in fm.failed:
            u, v = host.edge_from_id(eid)
            assert host.edge_id(v, u) in fm.failed

    def test_deterministic_by_seed(self):
        host = Hypercube(5)
        a = FaultyLinkModel.random(host, 0.2, seed=9)
        b = FaultyLinkModel.random(host, 0.2, seed=9)
        assert a.failed == b.failed

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultyLinkModel.random(Hypercube(3), 1.5)


class TestDeliveryExperiment:
    def test_no_faults_delivers_everything(self):
        emb = embed_cycle_load1(6)
        fm = FaultyLinkModel(emb.host, set())
        report = multipath_delivery_experiment(emb, fm)
        assert report.delivery_rate == 1.0

    def test_total_failure(self):
        emb = embed_cycle_load1(6)
        fm = FaultyLinkModel.random(emb.host, 1.0, seed=0)
        report = multipath_delivery_experiment(emb, fm)
        assert report.delivery_rate == 0.0

    def test_multipath_beats_single_at_moderate_faults(self):
        emb = embed_cycle_load1(8)
        gray = graycode_cycle_embedding(8)
        wins = 0
        for seed in range(3):
            fm = FaultyLinkModel.random(emb.host, 0.03, seed=seed)
            rep = multipath_delivery_experiment(emb, fm)
            single = sum(
                fm.path_alive(p) for p in gray.edge_paths.values()
            ) / gray.guest.num_edges
            wins += rep.delivery_rate >= single
        assert wins >= 2

    def test_pieces_needed_override(self):
        emb = embed_cycle_load1(6)
        fm = FaultyLinkModel(emb.host, set())
        report = multipath_delivery_experiment(emb, fm, pieces_needed=1)
        assert report.delivery_rate == 1.0


class TestRedundancySweep:
    def test_monotone_and_bounded(self):
        from repro.fault import redundancy_tradeoff_sweep

        emb = embed_cycle_load1(6)
        rows = redundancy_tradeoff_sweep(emb, 0.08, trials=2)
        assert len(rows) == emb.width
        rates = [r["delivery_rate"] for r in rows]
        assert rates == sorted(rates, reverse=True)
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_zero_faults_always_delivers(self):
        from repro.fault import redundancy_tradeoff_sweep

        emb = embed_cycle_load1(6)
        rows = redundancy_tradeoff_sweep(emb, 0.0, trials=1)
        assert all(r["delivery_rate"] == 1.0 for r in rows)


class TestNodeAndExactFaults:
    """FaultModel extensions: node faults, exact-k kills, mid-run activation."""

    def test_random_links_exact_count_and_symmetric(self):
        host = Hypercube(5)
        fm = FaultModel.random_links(host, 7, seed=3)
        assert len(fm.failed) == 14  # 7 undirected links, both directions
        for eid in fm.failed:
            u, v = host.edge_from_id(eid)
            assert host.edge_id(v, u) in fm.failed

    def test_random_links_bounds(self):
        host = Hypercube(3)
        assert not FaultModel.random_links(host, 0, seed=1).failed
        full = FaultModel.random_links(host, host.num_edges // 2, seed=1)
        assert len(full.failed) == host.num_edges
        with pytest.raises(ValueError):
            FaultModel.random_links(host, host.num_edges // 2 + 1, seed=1)
        with pytest.raises(ValueError):
            FaultModel.random_links(host, -1, seed=1)

    def test_random_nodes(self):
        host = Hypercube(5)
        fm = FaultModel.random_nodes(host, 4, seed=8)
        assert len(fm.failed_nodes) == 4
        dead = next(iter(fm.failed_nodes))
        # every hop into or out of a dead node is dead
        for d in range(host.n):
            assert fm.hop_dead(host.edge_id(dead, dead ^ (1 << d)))
            assert fm.hop_dead(host.edge_id(dead ^ (1 << d), dead))

    def test_path_alive_node_aware(self):
        host = Hypercube(4)
        fm = FaultModel(host, failed_nodes={5})
        assert not fm.path_alive([1, 5, 7])   # transits the dead node
        assert not fm.path_alive([5])         # zero-hop on a dead node
        assert fm.path_alive([0, 1, 3])
        assert fm.path_alive([3])

    def test_merged_unions_and_takes_earliest_activation(self):
        host = Hypercube(4)
        a = FaultModel.random_links(host, 2, seed=1, active_from=5)
        b = FaultModel.random_nodes(host, 1, seed=2, active_from=3)
        m = a.merged(b)
        assert m.failed == a.failed
        assert m.failed_nodes == b.failed_nodes
        assert m.active_from == 3
        with pytest.raises(ValueError):
            a.merged(FaultModel.random_links(Hypercube(3), 1, seed=1))

    def test_dead_link_mask_matches_hop_dead(self):
        host = Hypercube(4)
        fm = FaultModel.random_links(host, 3, seed=4)
        fm = fm.merged(FaultModel.random_nodes(host, 2, seed=5))
        mask = fm.dead_link_mask()
        assert mask.shape == (host.num_nodes * host.n,)
        for eid in range(host.num_edges):
            assert bool(mask[eid]) == fm.hop_dead(eid)


class TestMidRunFaults:
    """Regression: a fault injected mid-run, on both engines, in agreement."""

    def _schedule(self, host):
        # long paths released over several steps so the kill lands mid-flight
        from repro.routing.permutation import dimension_order_path

        sched = []
        for src in range(host.num_nodes):
            dst = src ^ (host.num_nodes - 1)
            sched.append((tuple(dimension_order_path(host.n, src, dst)), 1))
            sched.append(
                (tuple(dimension_order_path(host.n, dst, src)), 3)
            )
        return sched

    @pytest.mark.parametrize("active_from", [0, 2, 4, 100])
    def test_engines_agree(self, active_from):
        from repro.routing.fast_simulator import FastStoreForward
        from repro.routing.simulator import StoreForwardSimulator

        host = Hypercube(5)
        sched = self._schedule(host)
        faults = FaultModel.random_links(
            host, 6, seed=11, active_from=active_from
        )
        ref = StoreForwardSimulator(host, tie_break="priority").run(
            sched, faults=faults
        )
        fast = FastStoreForward(host).run(sched, faults=faults)
        assert ref.measured() == fast.measured()
        assert ref.done_steps == fast.done_steps

    def test_mid_run_kill_spares_early_packets(self):
        from repro.routing.simulator import StoreForwardSimulator

        host = Hypercube(4)
        # packet 0 crosses link 0->1 at step 1; packet 1 crosses it at
        # release 5 after the same link dies at step 3
        sched = [((0, 1), 1), ((0, 1), 5)]
        faults = FaultModel(
            host,
            failed={host.edge_id(0, 1), host.edge_id(1, 0)},
            active_from=3,
        )
        res = StoreForwardSimulator(host).run(sched, faults=faults)
        assert res.done_steps == (1, -1)
        assert res.delivered == 1

    def test_late_activation_is_a_no_op(self):
        from repro.routing.fast_simulator import FastStoreForward

        host = Hypercube(4)
        sched = self._schedule(host)
        clean = FastStoreForward(host).run(sched)
        faults = FaultModel.random_links(
            host, 5, seed=2, active_from=clean.makespan + 1
        )
        faulty = FastStoreForward(host).run(sched, faults=faults)
        assert faulty.measured() == clean.measured()


class TestIDAThreshold:
    """Reconstruction at exactly n-k surviving shares, and one below."""

    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8])
    def test_exact_threshold_reconstructs(self, n):
        message = bytes(range(64))
        m = -(-n // 2)  # the campaign default: ceil(n/2) of n pieces
        pieces = disperse(message, n, m)
        # exactly m survivors — every contiguous window of the pieces
        for start in range(n - m + 1):
            got = reconstruct(pieces[start : start + m], n, m)
            assert got == message

    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8])
    def test_one_below_threshold_fails(self, n):
        message = b"threshold probe"
        m = -(-n // 2)
        pieces = disperse(message, n, m)
        if m == 1:
            pytest.skip("m=1 cannot go below threshold")
        with pytest.raises(ValueError):
            reconstruct(pieces[: m - 1], n, m)
