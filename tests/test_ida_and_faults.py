"""Tests for Rabin's IDA and the link-fault experiments."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import embed_cycle_load1, graycode_cycle_embedding
from repro.fault import FaultyLinkModel, multipath_delivery_experiment
from repro.fault.ida import cauchy_matrix, disperse, reconstruct
from repro.hypercube.graph import Hypercube


class TestCauchy:
    def test_every_square_submatrix_invertible(self):
        import numpy as np

        from repro.fault.gf256 import GF256

        w, m = 6, 3
        a = cauchy_matrix(w, m)
        for rows in itertools.combinations(range(w), m):
            GF256.solve(a[list(rows), :], np.zeros(m, dtype=np.uint8))

    def test_bounds(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)
        with pytest.raises(ValueError):
            cauchy_matrix(0, 1)


class TestIDA:
    @given(
        st.binary(min_size=0, max_size=200),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=40)
    def test_roundtrip_any_m_pieces(self, message, m, extra):
        w = m + extra
        pieces = disperse(message, w, m)
        assert len(pieces) == w
        assert reconstruct(pieces[-m:], w, m) == message

    def test_every_m_subset_reconstructs(self):
        msg = b"hypercube"
        w, m = 5, 3
        pieces = disperse(msg, w, m)
        for subset in itertools.combinations(pieces, m):
            assert reconstruct(list(subset), w, m) == msg

    def test_piece_size_overhead(self):
        msg = b"z" * 300
        pieces = disperse(msg, 6, 3)
        # each piece ~ len/m plus the 4-byte length frame
        assert len(pieces[0][1]) == -(-304 // 3)

    def test_too_few_pieces(self):
        pieces = disperse(b"abc", 4, 2)
        with pytest.raises(ValueError):
            reconstruct(pieces[:1], 4, 2)

    def test_duplicate_pieces_do_not_count(self):
        pieces = disperse(b"abc", 4, 2)
        with pytest.raises(ValueError):
            reconstruct([pieces[0], pieces[0]], 4, 2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            disperse(b"x", 2, 3)  # w < m
        disperse(b"x", 3, 2)
        with pytest.raises(ValueError):
            reconstruct([(9, b"")], 3, 2)  # index out of range


class TestFaultModel:
    def test_no_faults(self):
        host = Hypercube(5)
        fm = FaultyLinkModel.random(host, 0.0, seed=1)
        assert not fm.failed
        assert fm.path_alive([0, 1, 3, 7])

    def test_all_faults(self):
        host = Hypercube(4)
        fm = FaultyLinkModel.random(host, 1.0, seed=1)
        assert len(fm.failed) == host.num_edges
        assert not fm.path_alive([0, 1])
        assert fm.path_alive([3])  # zero-hop path never fails

    def test_symmetric_failures(self):
        host = Hypercube(5)
        fm = FaultyLinkModel.random(host, 0.3, seed=2)
        for eid in fm.failed:
            u, v = host.edge_from_id(eid)
            assert host.edge_id(v, u) in fm.failed

    def test_deterministic_by_seed(self):
        host = Hypercube(5)
        a = FaultyLinkModel.random(host, 0.2, seed=9)
        b = FaultyLinkModel.random(host, 0.2, seed=9)
        assert a.failed == b.failed

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultyLinkModel.random(Hypercube(3), 1.5)


class TestDeliveryExperiment:
    def test_no_faults_delivers_everything(self):
        emb = embed_cycle_load1(6)
        fm = FaultyLinkModel(emb.host, set())
        report = multipath_delivery_experiment(emb, fm)
        assert report.delivery_rate == 1.0

    def test_total_failure(self):
        emb = embed_cycle_load1(6)
        fm = FaultyLinkModel.random(emb.host, 1.0, seed=0)
        report = multipath_delivery_experiment(emb, fm)
        assert report.delivery_rate == 0.0

    def test_multipath_beats_single_at_moderate_faults(self):
        emb = embed_cycle_load1(8)
        gray = graycode_cycle_embedding(8)
        wins = 0
        for seed in range(3):
            fm = FaultyLinkModel.random(emb.host, 0.03, seed=seed)
            rep = multipath_delivery_experiment(emb, fm)
            single = sum(
                fm.path_alive(p) for p in gray.edge_paths.values()
            ) / gray.guest.num_edges
            wins += rep.delivery_rate >= single
        assert wins >= 2

    def test_pieces_needed_override(self):
        emb = embed_cycle_load1(6)
        fm = FaultyLinkModel(emb.host, set())
        report = multipath_delivery_experiment(emb, fm, pieces_needed=1)
        assert report.delivery_rate == 1.0


class TestRedundancySweep:
    def test_monotone_and_bounded(self):
        from repro.fault import redundancy_tradeoff_sweep

        emb = embed_cycle_load1(6)
        rows = redundancy_tradeoff_sweep(emb, 0.08, trials=2)
        assert len(rows) == emb.width
        rates = [r["delivery_rate"] for r in rows]
        assert rates == sorted(rates, reverse=True)
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_zero_faults_always_delivers(self):
        from repro.fault import redundancy_tradeoff_sweep

        emb = embed_cycle_load1(6)
        rows = redundancy_tradeoff_sweep(emb, 0.0, trials=1)
        assert all(r["delivery_rate"] == 1.0 for r in rows)
