"""Lemma-by-lemma checks of Section 5's congestion argument.

Theorem 3's proof rests on Lemmas 5-8; each is verified here directly on
the constructed embeddings (not just via the final congestion number), so a
regression in the window machinery is pinpointed to the lemma it breaks.
"""

from collections import Counter, defaultdict

import pytest

from repro.core.ccc_multicopy import ccc_multicopy_embedding


@pytest.fixture(scope="module", params=[4, 8])
def multicopy(request):
    return ccc_multicopy_embedding(request.param)


class TestLemma5:
    def test_at_most_one_embedding_per_level_per_node(self, multicopy):
        # "For any level i and any hypercube node v at most one of the n
        # embeddings maps a level-i CCC vertex to v."
        n = multicopy.guest.n
        for level in range(n):
            seen = defaultdict(set)
            for k, copy in enumerate(multicopy.copies):
                for c in range(1 << n):
                    host = copy.vertex_map[(level, c)]
                    assert k not in seen[host]
                    seen[host].add(k)
                    assert len(seen[host]) <= 1


class TestLemma7:
    def test_cross_edge_congestion_at_most_one(self, multicopy):
        counts = Counter()
        for copy in multicopy.copies:
            for (u, v), path in copy.edge_paths.items():
                if u[0] == v[0]:  # cross edge (levels equal)
                    for a, b in zip(path, path[1:]):
                        counts[copy.host.edge_id(a, b)] += 1
        assert max(counts.values()) == 1

    def test_dimension_one_carries_no_cross_edges(self, multicopy):
        host = multicopy.host
        for copy in multicopy.copies:
            for (u, v), path in copy.edge_paths.items():
                if u[0] == v[0]:
                    for a, b in zip(path, path[1:]):
                        assert host.dimension_of(a, b) != 1


class TestLemma8:
    def test_straight_edge_congestion(self, multicopy):
        # at most one embedding per dimension != 1; at most two on dim 1
        host = multicopy.host
        counts = Counter()
        for copy in multicopy.copies:
            for (u, v), path in copy.edge_paths.items():
                if u[0] != v[0]:  # straight edge
                    for a, b in zip(path, path[1:]):
                        counts[(host.dimension_of(a, b), host.edge_id(a, b))] += 1
        for (dim, _eid), c in counts.items():
            assert c <= (2 if dim == 1 else 1)

    def test_dim1_straight_edges_at_levels_half_and_top(self, multicopy):
        # "dimension 1 is used for straight-edges at level n/2 - 1 and n - 1"
        n = multicopy.guest.n
        host = multicopy.host
        for copy in multicopy.copies:
            levels = set()
            for (u, v), path in copy.edge_paths.items():
                if u[0] != v[0]:
                    for a, b in zip(path, path[1:]):
                        if host.dimension_of(a, b) == 1:
                            levels.add(u[0])
            assert levels == {n // 2 - 1, n - 1}


class TestWindowStructure:
    def test_all_windows_contain_dimension_one(self, multicopy):
        # W^k(0) = 1 for every copy: dimension 1 never hosts cross edges and
        # is the only dimension shared by ALL windows
        n = multicopy.guest.n
        r = n.bit_length() - 1
        for k in range(n):
            window = [1] + [(1 << i) + (k >> (r - i)) for i in range(1, r)]
            assert window[0] == 1
            assert len(set(window)) == r

    def test_tier_structure(self, multicopy):
        # W^k(i) lies in tier i: 2^i <= W^k(i) < 2^{i+1}
        n = multicopy.guest.n
        r = n.bit_length() - 1
        for k in range(n):
            for i in range(1, r):
                w = (1 << i) + (k >> (r - i))
                assert (1 << i) <= w < (1 << (i + 1))

    def test_observation4_window_prefixes(self, multicopy):
        # lambda(W^k1, W^k2) = lambda(k1, k2) + 1
        n = multicopy.guest.n
        r = n.bit_length() - 1

        def window(k):
            return [1] + [(1 << i) + (k >> (r - i)) for i in range(1, r)]

        def lcp(a, b):
            out = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                out += 1
            return out

        def bit_lcp(k1, k2, bits):
            s1 = format(k1, f"0{bits}b")
            s2 = format(k2, f"0{bits}b")
            return lcp(s1, s2)

        for k1 in range(n):
            for k2 in range(k1 + 1, n):
                assert lcp(window(k1), window(k2)) == bit_lcp(k1, k2, r) + 1
