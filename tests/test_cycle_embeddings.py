"""Tests for the gray-code baseline, Lemma 1 copies, and Theorems 1 & 2."""

import pytest

from repro.core.cycle_multicopy import (
    cycle_multicopy_embedding,
    graycode_cycle_embedding,
)
from repro.core.cycle_multipath import (
    embed_cycle_load1,
    embed_cycle_load2,
    theorem1_claim,
    theorem2_claim,
)
from repro.routing.schedule import multipath_packet_schedule


class TestGraycodeBaseline:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_valid_dilation1_congestion1(self, n):
        emb = graycode_cycle_embedding(n)
        emb.verify(max_load=1)
        assert emb.load == 1
        assert emb.dilation == 1
        assert emb.congestion == 1

    def test_uses_single_outgoing_link_per_node(self):
        emb = graycode_cycle_embedding(5)
        # exactly 2^n of the n*2^n directed links are used
        assert len(emb.edge_congestion_counts()) == 2**5


class TestLemma1Copies:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_even_n_copies(self, n):
        mc = cycle_multicopy_embedding(n)
        mc.verify()
        assert mc.k == n
        assert mc.dilation == 1
        assert mc.edge_congestion == 1

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_gives_n_minus_1(self, n):
        mc = cycle_multicopy_embedding(n)
        mc.verify()
        assert mc.k == n - 1
        assert mc.edge_congestion == 1

    def test_even_n_saturates_every_link(self):
        # n copies x 2^n edges = n*2^n = all directed links, congestion 1
        mc = cycle_multicopy_embedding(4)
        counts = {}
        for c in mc.copies:
            for eid, v in c.edge_congestion_counts().items():
                counts[eid] = counts.get(eid, 0) + v
        assert len(counts) == mc.host.num_edges
        assert set(counts.values()) == {1}


class TestTheorem1:
    @pytest.mark.parametrize("n", range(4, 12))
    def test_structure(self, n):
        emb = embed_cycle_load1(n)
        emb.verify()  # one-to-one, paths valid, per-edge edge-disjoint
        assert emb.load == 1
        assert emb.dilation == 3
        info = emb.info
        # width claim holds exactly when 2k is a power of two
        two_k = 2 * info["k"]
        if two_k & (two_k - 1) == 0:
            assert emb.width >= theorem1_claim(n)["width"]
        else:
            assert emb.width == info["a"] + 1

    @pytest.mark.parametrize("n", range(4, 12))
    def test_cost3_schedule_is_conflict_free(self, n):
        emb = embed_cycle_load1(n)
        sched = multipath_packet_schedule(emb, extra_direct_at=3)
        sched.verify()
        assert sched.makespan == 3

    def test_packets_per_edge(self):
        # (a + 2)-packet cost 3: a detour packets + 2 on the direct edge
        emb = embed_cycle_load1(8)
        sched = multipath_packet_schedule(emb, extra_direct_at=3)
        assert len(sched.packets) == emb.guest.num_edges * emb.info["packets_per_edge"]

    def test_visits_every_node_once(self):
        emb = embed_cycle_load1(6)
        assert sorted(emb.vertex_map.values()) == list(range(64))

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            embed_cycle_load1(3)


class TestTheorem2:
    @pytest.mark.parametrize("n", range(4, 11))
    def test_structure_cost3_variant(self, n):
        emb = embed_cycle_load2(n)
        emb.verify()
        assert emb.load == 2
        assert emb.guest.num_vertices == 2 ** (n + 1)
        claim = theorem2_claim(n)
        assert emb.width == claim["width"]
        assert emb.info["cost"] == claim["cost"]

    @pytest.mark.parametrize("n", [6, 7, 10, 11])
    def test_prefer_width_variant(self, n):
        emb = embed_cycle_load2(n, prefer_width=True)
        emb.verify()
        claim = theorem2_claim(n, prefer_width=True)
        assert emb.width == claim["width"]
        assert emb.info["cost"] == claim["cost"]
        assert emb.info["middle_congestion"] == 2

    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8, 9])
    def test_schedule_conflict_free(self, n):
        emb = embed_cycle_load2(n)
        sched = multipath_packet_schedule(emb)
        sched.verify()
        assert sched.makespan == emb.info["cost"]

    def test_full_link_utilization_when_n_mod4_is_0(self):
        # paper: "When n = 0 (mod 4) all the hypercube edges are in use
        # during each of the 3 steps."
        emb = embed_cycle_load2(8)
        sched = multipath_packet_schedule(emb)
        sched.verify()
        assert sched.busy_link_fraction() == 1.0

    def test_every_node_hosts_exactly_two(self):
        from collections import Counter

        emb = embed_cycle_load2(5)
        counts = Counter(emb.vertex_map.values())
        assert set(counts.values()) == {2}
        assert len(counts) == 2**5

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            embed_cycle_load2(3)


class TestMultiPathVerifier:
    """The vectorized verifier rejects each class of invalid input."""

    def _valid(self):
        from repro.core import embed_cycle_load1

        return embed_cycle_load1(4)

    def test_rejects_shared_edge_across_paths(self):
        emb = self._valid()
        edge = (0, 1)
        paths = list(emb.edge_paths[edge])
        paths.append(paths[0])  # duplicate an entire path
        emb.edge_paths[edge] = tuple(paths)
        with pytest.raises(AssertionError):
            emb.verify()

    def test_rejects_non_hypercube_hop(self):
        emb = self._valid()
        edge = (0, 1)
        p = list(emb.edge_paths[edge][0])
        p[1] = p[0] ^ 0b11  # two-bit jump
        emb.edge_paths[edge] = (tuple(p),) + emb.edge_paths[edge][1:]
        with pytest.raises(AssertionError):
            emb.verify()

    def test_rejects_wrong_endpoints(self):
        emb = self._valid()
        edge = (0, 1)
        p = emb.edge_paths[edge][0]
        emb.edge_paths[edge] = ((p[0], p[0] ^ 1),) + emb.edge_paths[edge][1:]
        with pytest.raises(AssertionError):
            emb.verify()

    def test_rejects_missing_edge(self):
        emb = self._valid()
        del emb.edge_paths[(0, 1)]
        with pytest.raises(AssertionError):
            emb.verify()

    def test_rejects_overload(self):
        emb = self._valid()
        emb.vertex_map[0] = emb.vertex_map[1]
        with pytest.raises(AssertionError):
            emb.verify()

    def test_rejects_out_of_range_node(self):
        emb = self._valid()
        edge = (0, 1)
        p = list(emb.edge_paths[edge][0])
        hv = p[-1]
        emb.edge_paths[edge] = ((p[0], 1 << 10, hv),) + emb.edge_paths[edge][1:]
        with pytest.raises(AssertionError):
            emb.verify()
