"""Tests for the Kotzig torus decomposition."""

import pytest

from repro.hypercube.torus import (
    torus_hamiltonian_decomposition,
    verify_torus_decomposition,
)


class TestSupportedShapes:
    @pytest.mark.parametrize(
        "m,n",
        [
            (4, 4), (4, 8), (8, 4), (6, 6), (6, 10), (10, 6),
            (16, 4), (4, 16), (32, 4), (64, 4), (16, 16), (64, 16),
            (3, 3), (5, 5), (7, 7), (9, 9),
        ],
    )
    def test_decomposes(self, m, n):
        ca, cb = torus_hamiltonian_decomposition(m, n)
        # the constructor verifies internally; re-verify via the public checker
        verify_torus_decomposition(m, n, ca, cb)

    def test_unsupported_shape(self):
        with pytest.raises(NotImplementedError):
            torus_hamiltonian_decomposition(5, 7)

    def test_too_small(self):
        with pytest.raises(ValueError):
            torus_hamiltonian_decomposition(2, 4)


class TestProperties:
    def test_cached_identity(self):
        a1 = torus_hamiltonian_decomposition(8, 4)
        a2 = torus_hamiltonian_decomposition(8, 4)
        assert a1 is a2

    def test_balanced_edge_usage(self):
        # each Hamiltonian cycle has exactly m*n edges
        m, n = 12, 4
        ca, cb = torus_hamiltonian_decomposition(m, n)
        assert len(ca) == len(cb) == m * n

    def test_verifier_rejects_bad_input(self):
        ca, cb = torus_hamiltonian_decomposition(4, 4)
        with pytest.raises(AssertionError):
            verify_torus_decomposition(4, 4, ca, ca)  # not edge-disjoint
        with pytest.raises(AssertionError):
            verify_torus_decomposition(4, 4, ca[:-1], cb)  # missing a vertex

    def test_verifier_rejects_non_torus_edge(self):
        ca, cb = (list(c) for c in torus_hamiltonian_decomposition(4, 4))
        ca[0], ca[2] = ca[2], ca[0]  # breaks adjacency
        with pytest.raises(AssertionError):
            verify_torus_decomposition(4, 4, ca, cb)
