"""Tests for Theorem 4: the induced cross product transform."""

import pytest

from repro.core.butterfly_multicopy import butterfly_multicopy_embedding
from repro.core.cross_product import (
    induced_cross_product_embedding,
    theorem4_claim,
)
from repro.core.cycle_multicopy import cycle_multicopy_embedding
from repro.routing.schedule import measured_multipath_cost


class TestWithCycleCopies:
    def test_structure(self):
        mc = cycle_multicopy_embedding(4)
        x = induced_cross_product_embedding(mc)
        x.verify()
        assert x.host.n == 8
        assert x.width == 4
        assert x.load == 1
        assert x.guest.num_vertices == 2**8
        # each row and each column contributes |E(G)| = 16 edges
        assert x.guest.num_edges == 2 * 16 * 16

    def test_paper_example_cost(self):
        # Section 6: cycle copies have c = 1, delta = 1 -> n-packet cost 3
        mc = cycle_multicopy_embedding(4)
        x = induced_cross_product_embedding(mc)
        claim = theorem4_claim(mc)
        assert claim["cost_upper"] == 3
        assert measured_multipath_cost(x) <= claim["cost_upper"]

    def test_all_paths_length_three(self):
        mc = cycle_multicopy_embedding(4)
        x = induced_cross_product_embedding(mc)
        for paths in x.edge_paths.values():
            assert all(len(p) == 4 for p in paths)

    def test_rows_use_distinct_automorphs(self):
        # the n neighbors of a row have pairwise distinct moments (Lemma 2);
        # rows 1 and 2 (moments 0 and 1) must host different automorphs.
        # note b(0) = 0, so rows 0 and 1 legitimately share an automorph.
        mc = cycle_multicopy_embedding(4)
        x = induced_cross_product_embedding(mc)
        n = 4
        row_edges = {}
        for (u, v) in x.guest.edges():
            if u >> n == v >> n:  # row edge
                row_edges.setdefault(u >> n, set()).add((u & 15, v & 15))
        assert row_edges[1] != row_edges[2]
        assert row_edges[0] == row_edges[1]
        # the neighborhood-of-a-row property: rows 1^2^j pairwise distinct
        neighborhood = [frozenset(row_edges[1 ^ (1 << j)]) for j in range(n)]
        assert len(set(neighborhood)) == n


class TestWithButterflyCopies:
    def test_dilation2_copies_supported(self):
        mc = butterfly_multicopy_embedding(2, undirected=True)
        x = induced_cross_product_embedding(mc)
        x.verify()
        assert x.width == mc.host.n
        # base paths have length <= 2, widened to <= 4
        assert x.dilation <= mc.dilation + 2

    def test_cost_within_claim(self):
        mc = butterfly_multicopy_embedding(2, undirected=False)
        x = induced_cross_product_embedding(mc)
        claim = theorem4_claim(mc)
        # greedy store-and-forward is a constructive upper bound; allow the
        # LMR constant-factor slack over the idealized claim
        assert measured_multipath_cost(x) <= 2 * claim["cost_upper"]


class TestErrors:
    def test_empty_copies_rejected(self):
        from repro.core.embedding import MultiCopyEmbedding
        from repro.hypercube.graph import Hypercube
        from repro.networks.cycle import DirectedCycle

        mc = MultiCopyEmbedding(Hypercube(2), DirectedCycle(4), [])
        with pytest.raises(ValueError):
            induced_cross_product_embedding(mc)

    def test_non_bijective_copies_rejected(self):
        mc = cycle_multicopy_embedding(4)
        mc.copies[0].vertex_map[0] = mc.copies[0].vertex_map[1]
        with pytest.raises(ValueError):
            induced_cross_product_embedding(mc)


class TestGeneralizedCrossProduct:
    def test_equal_factors_give_ordinary_product(self):
        from repro.core.cross_product import generalized_cross_product
        from repro.networks.cycle import DirectedCycle

        c4 = DirectedCycle(4)
        x = generalized_cross_product([c4] * 4, [c4] * 4)
        # the ordinary cross product C4 x C4 = the 4x4 directed torus
        assert x.num_vertices == 16
        assert x.num_edges == 32
        edges = set(x.edges())
        assert ((0, 0), (0, 1)) in edges   # row edge
        assert ((0, 0), (1, 0)) in edges   # column edge

    def test_automorph_relabeling(self):
        from repro.core.cross_product import automorph_graph
        from repro.networks.cycle import DirectedCycle

        phi = lambda v: v ^ 1  # swap pairs
        g = automorph_graph(DirectedCycle(4), phi)
        assert set(g.edges()) == {(1, 0), (0, 3), (3, 2), (2, 1)}

    def test_x_guest_matches_abstract_definition(self):
        # X(G) built by the embedding must equal the abstract generalized
        # cross product of the moment-indexed automorphs
        from repro.core.cross_product import (
            automorph_graph,
            generalized_cross_product,
            induced_cross_product_embedding,
        )
        from repro.core.cycle_multicopy import cycle_multicopy_embedding
        from repro.hypercube.moments import moment

        mc = cycle_multicopy_embedding(4)
        x = induced_cross_product_embedding(mc)
        factors = []
        for i in range(16):
            phi = mc.copies[moment(i) % 4].vertex_map
            factors.append(automorph_graph(mc.guest, lambda v, p=phi: p[v]))
        abstract = generalized_cross_product(factors, factors)
        # identify (i, j) with host node (i << 4) | j
        abstract_edges = {
            ((i1 << 4) | j1, (i2 << 4) | j2)
            for ((i1, j1), (i2, j2)) in abstract.edges()
        }
        assert abstract_edges == set(x.guest.edges())

    def test_mismatched_factors_rejected(self):
        import pytest

        from repro.core.cross_product import generalized_cross_product
        from repro.networks.cycle import DirectedCycle

        with pytest.raises(ValueError):
            generalized_cross_product([DirectedCycle(4)], [DirectedCycle(4)] * 2)
        with pytest.raises(ValueError):
            generalized_cross_product(
                [DirectedCycle(4)] * 4, [DirectedCycle(8)] * 4
            )
