"""Edge cases for the path utilities and the bounded-buffer simulator."""

import pytest

from repro.hypercube.graph import Hypercube
from repro.routing.bounded_buffers import BoundedBufferSimulator, BufferDeadlock
from repro.routing.pathutils import edge_disjoint_paths, erase_loops


class TestEraseLoops:
    def test_empty_walk(self):
        assert erase_loops([]) == ()

    def test_single_vertex(self):
        assert erase_loops([5]) == (5,)

    def test_simple_path_unchanged(self):
        assert erase_loops([0, 1, 3, 7]) == (0, 1, 3, 7)

    def test_immediate_backtrack(self):
        assert erase_loops([0, 1, 0, 2]) == (0, 2)

    def test_nested_loops(self):
        # the inner loop 3-7-3 vanishes first, then the outer 1-3-1
        assert erase_loops([0, 1, 3, 7, 3, 1, 5]) == (0, 1, 5)

    def test_walk_ending_at_start(self):
        assert erase_loops([0, 1, 3, 2, 0]) == (0,)

    def test_endpoints_preserved(self):
        walk = [4, 5, 7, 5, 4, 6, 2]
        out = erase_loops(walk)
        assert out[0] == walk[0] and out[-1] == walk[-1]
        assert len(set(out)) == len(out)


class TestEdgeDisjointPaths:
    def test_equal_endpoints_rejected(self):
        with pytest.raises(ValueError):
            edge_disjoint_paths(4, 3, 3, 2)

    def test_count_above_n_rejected(self):
        with pytest.raises(ValueError):
            edge_disjoint_paths(3, 0, 7, 4)

    def test_count_below_one_rejected(self):
        with pytest.raises(ValueError):
            edge_disjoint_paths(3, 0, 7, 0)

    def test_full_width_paths_are_edge_disjoint(self):
        n, u, v = 4, 0b0000, 0b0110
        paths = edge_disjoint_paths(n, u, v, n)
        assert len(paths) == n
        host = Hypercube(n)
        seen = set()
        for path in paths:
            assert path[0] == u and path[-1] == v
            for a, b in zip(path, path[1:]):
                key = frozenset((a, b))
                assert host.is_edge(a, b)
                assert key not in seen
                seen.add(key)

    def test_antipodal_single_path(self):
        (path,) = edge_disjoint_paths(3, 0, 7, 1)
        assert path[0] == 0 and path[-1] == 7 and len(path) == 4


class TestBoundedBufferEdges:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedBufferSimulator(Hypercube(3), 0)

    def test_empty_path_rejected(self):
        sim = BoundedBufferSimulator(Hypercube(3), 2)
        with pytest.raises(ValueError):
            sim.inject([])

    def test_single_vertex_path_completes_at_step_zero(self):
        sim = BoundedBufferSimulator(Hypercube(3), 1)
        sim.inject([6])
        assert sim.run() == 0

    def test_non_adjacent_hop_rejected(self):
        # 0 -> 3 flips two bits at once: not a hypercube edge, surfaced
        # when the packet first tries to claim a link
        sim = BoundedBufferSimulator(Hypercube(2), 2)
        sim.inject([0, 3])
        with pytest.raises(ValueError):
            sim.run()

    def test_ring_of_full_buffers_deadlocks(self):
        # four capacity-1 nodes around the Q_2 cycle 0-1-3-2-0, each
        # holding a packet whose next hop is its full neighbor: the
        # classic circular buffer wait
        sim = BoundedBufferSimulator(Hypercube(2), 1)
        sim.inject([0, 1, 3])
        sim.inject([1, 3, 2])
        sim.inject([3, 2, 0])
        sim.inject([2, 0, 1])
        with pytest.raises(BufferDeadlock):
            sim.run()

    def test_same_ring_drains_with_capacity_two(self):
        sim = BoundedBufferSimulator(Hypercube(2), 2)
        sim.inject([0, 1, 3])
        sim.inject([1, 3, 2])
        sim.inject([3, 2, 0])
        sim.inject([2, 0, 1])
        assert sim.run() >= 2
