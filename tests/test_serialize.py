"""Tests for embedding serialization."""

import io

import pytest

from repro.core import (
    ccc_single_embedding,
    embed_cycle_load1,
    embed_cycle_load2,
    graycode_cycle_embedding,
    large_cycle_embedding,
)
from repro.core.cycle_multicopy import cycle_multicopy_embedding
from repro.core.serialize import dump, from_json, load, to_json
from repro.routing.schedule import multipath_packet_schedule


class TestRoundtrip:
    def test_single_path(self):
        emb = graycode_cycle_embedding(5)
        back = from_json(to_json(emb))
        assert back.host.n == emb.host.n
        assert back.dilation == emb.dilation
        assert back.congestion == emb.congestion
        assert dict(back.vertex_map) == dict(emb.vertex_map)

    def test_multipath_with_schedule(self):
        emb = embed_cycle_load1(6)
        back = from_json(to_json(emb))
        assert back.width == emb.width
        assert back.load_allowed == emb.load_allowed
        assert back.step_of is not None
        # the restored schedule is still conflict-free
        sched = multipath_packet_schedule(back, extra_direct_at=3)
        sched.verify()
        assert sched.makespan == 3

    def test_load2_roundtrip(self):
        emb = embed_cycle_load2(5)
        back = from_json(to_json(emb))
        assert back.load == 2
        assert back.width == emb.width

    def test_tuple_vertices(self):
        emb = ccc_single_embedding(3)
        back = from_json(to_json(emb))
        assert back.dilation == emb.dilation
        assert all(isinstance(v, tuple) for v in back.vertex_map)

    def test_nested_tuple_vertices(self):
        # regression: the vertex codec only converted the outer level, so a
        # vertex like (level, (b0, b1)) decoded as a tuple holding a list —
        # unhashable, and != the original vertex
        from repro.core.generic import shortest_path_embedding
        from repro.hypercube.graph import Hypercube
        from repro.networks.base import ExplicitGraph

        verts = [(0, (0, 0)), (0, (0, 1)), (1, (1, 0)), (1, (1, 1))]
        guest = ExplicitGraph(
            verts,
            [(verts[0], verts[1]), (verts[1], verts[2]), (verts[2], verts[3])],
            name="nested",
        )
        emb = shortest_path_embedding(Hypercube(3), guest)
        back = from_json(to_json(emb))
        assert dict(back.vertex_map) == dict(emb.vertex_map)
        assert set(back.guest.vertices()) == set(verts)
        assert back.edge_paths == emb.edge_paths
        for v in back.vertex_map:
            hash(v)  # every decoded vertex must be hashable

    def test_large_copy(self):
        emb = large_cycle_embedding(4)
        back = from_json(to_json(emb))
        assert back.load == 4
        assert back.congestion == 1

    def test_file_io(self):
        emb = graycode_cycle_embedding(4)
        buf = io.StringIO()
        dump(emb, buf)
        buf.seek(0)
        assert load(buf).dilation == 1


class TestVersionMetadata:
    def test_payload_records_package_version_and_construction(self):
        import json

        from repro import __version__

        payload = json.loads(
            to_json(graycode_cycle_embedding(4), construction="graycode(n=4)")
        )
        assert payload["package_version"] == __version__
        assert payload["construction"] == "graycode(n=4)"

    def test_construction_defaults_to_embedding_name(self):
        import json

        emb = graycode_cycle_embedding(4)
        assert json.loads(to_json(emb))["construction"] == emb.name

    def test_old_files_without_metadata_still_load(self):
        import json

        payload = json.loads(to_json(graycode_cycle_embedding(4)))
        del payload["package_version"]
        del payload["construction"]
        back = from_json(json.dumps(payload))  # format v1 round-trip intact
        assert back.dilation == 1

    def test_verify_flag_skips_recheck(self):
        import json

        payload = json.loads(to_json(graycode_cycle_embedding(4)))
        payload["vertex_map"][0][1] = 99  # invalid, but verify is off
        emb = from_json(json.dumps(payload), verify=False)
        with pytest.raises(AssertionError):
            emb.verify()


class TestErrors:
    def test_multicopy_rejected(self):
        with pytest.raises(TypeError):
            to_json(cycle_multicopy_embedding(4))

    def test_bad_version(self):
        import json

        emb = graycode_cycle_embedding(4)
        payload = json.loads(to_json(emb))
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            from_json(json.dumps(payload))

    def test_tampered_data_fails_verification(self):
        import json

        emb = graycode_cycle_embedding(4)
        payload = json.loads(to_json(emb))
        payload["vertex_map"][0][1] = 99  # out of host range
        with pytest.raises((AssertionError, ValueError)):
            from_json(json.dumps(payload))


class TestPropertyRoundtrips:
    """Hypothesis: random generic embeddings survive serialization."""

    from hypothesis import given, settings, strategies as st

    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=4, max_value=30),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_tree_roundtrip(self, n, size, seed):
        from repro.core.generic import shortest_path_embedding
        from repro.hypercube.graph import Hypercube
        from repro.networks.tree import random_binary_tree

        tree = random_binary_tree(size, seed=seed)
        emb = shortest_path_embedding(Hypercube(n), tree)
        back = from_json(to_json(emb))
        assert back.dilation == emb.dilation
        assert back.congestion == emb.congestion
        assert back.load == emb.load
        assert dict(back.vertex_map) == dict(emb.vertex_map)

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=8, deadline=None)
    def test_widened_roundtrip(self, width):
        from repro.core.generic import shortest_path_embedding, widen_embedding
        from repro.hypercube.graph import Hypercube
        from repro.networks.cycle import DirectedCycle

        base = shortest_path_embedding(Hypercube(5), DirectedCycle(32))
        wide = widen_embedding(base, width)
        back = from_json(to_json(wide))
        assert back.width == width
        back.verify()
