"""Tests for Section 7 permutation routing."""

import random

import pytest

from repro.core.ccc_multicopy import ccc_multicopy_embedding
from repro.networks.ccc import CubeConnectedCycles
from repro.routing.permutation import (
    bit_reversal_permutation,
    ccc_copy_host_path,
    ccc_route,
    dimension_order_path,
    permutation_baseline_time,
    permutation_multicopy_time,
    random_permutation,
)


class TestPaths:
    def test_dimension_order(self):
        assert dimension_order_path(4, 0b0000, 0b1010) == [0b0000, 0b0010, 0b1010]
        assert dimension_order_path(4, 5, 5) == [5]

    def test_ccc_route_valid(self):
        n = 4
        ccc = CubeConnectedCycles(n)
        for src, dst in [((0, 0), (3, 15)), ((2, 7), (2, 8)), ((1, 3), (1, 3))]:
            route = ccc_route(n, src, dst)
            assert route[0] == src and route[-1] == dst
            for a, b in zip(route, route[1:]):
                ccc.edge_level(a, b)  # raises if not a CCC edge

    def test_ccc_route_length_bound(self):
        n = 8
        rng = random.Random(0)
        for _ in range(50):
            src = (rng.randrange(n), rng.randrange(1 << n))
            dst = (rng.randrange(n), rng.randrange(1 << n))
            assert len(ccc_route(n, src, dst)) - 1 <= 3 * n

    def test_copy_host_path_is_hypercube_walk(self):
        mc = ccc_multicopy_embedding(4)
        host = mc.host
        rng = random.Random(1)
        for copy in mc.copies[:2]:
            for _ in range(10):
                u, v = rng.randrange(host.num_nodes), rng.randrange(host.num_nodes)
                path = ccc_copy_host_path(copy, 4, u, v)
                assert path[0] == u and path[-1] == v
                for a, b in zip(path, path[1:]):
                    assert host.is_edge(a, b)

    def test_randomized_path_valid(self):
        mc = ccc_multicopy_embedding(4)
        host = mc.host
        rng = random.Random(5)
        path = ccc_copy_host_path(mc.copies[0], 4, 0, 37, rng)
        assert path[0] == 0 and path[-1] == 37
        assert len(set(path)) == len(path)  # loop-erased
        for a, b in zip(path, path[1:]):
            assert host.is_edge(a, b)


class TestPermutations:
    def test_bit_reversal(self):
        perm = bit_reversal_permutation(4)
        assert perm[0b0001] == 0b1000
        assert perm[0b1100] == 0b0011
        assert sorted(perm) == list(range(16))

    def test_random_permutation_deterministic(self):
        assert random_permutation(32, seed=4) == random_permutation(32, seed=4)


class TestExperiment:
    def test_baseline_scales_linearly_in_m(self):
        perm = random_permutation(64, seed=2)
        t32 = permutation_baseline_time(6, perm, 32)
        t64 = permutation_baseline_time(6, perm, 64)
        assert abs(t64 / t32 - 2) < 0.2

    def test_multicopy_beats_baseline(self):
        perm = random_permutation(64, seed=2)
        base = permutation_baseline_time(6, perm, 64)
        multi = permutation_multicopy_time(4, perm, 64)
        assert multi < base

    def test_packet_mode_beats_message_mode(self):
        perm = random_permutation(64, seed=2)
        msg = permutation_baseline_time(6, perm, 32, mode="message")
        pkt = permutation_baseline_time(6, perm, 32, mode="packet")
        assert pkt <= msg

    def test_wrong_permutation_size(self):
        with pytest.raises(ValueError):
            permutation_multicopy_time(4, list(range(10)), 8)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            permutation_baseline_time(4, list(range(16)), 4, mode="bogus")
        with pytest.raises(ValueError):
            permutation_multicopy_time(
                4, list(range(64)), 4, mode="bogus"
            )

    def test_identity_permutation_is_free(self):
        assert permutation_baseline_time(4, list(range(16)), 8) == 0
