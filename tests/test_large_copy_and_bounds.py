"""Tests for Corollary 3, Lemma 9 (large copies) and Lemma 3 (bounds)."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.core.bounds import (
    count_short_paths,
    max_width_for_cost3,
    min_dilation_for_width,
    verify_no_two_hop_paths,
)
from repro.core.large_copy import (
    large_butterfly_embedding,
    large_ccc_embedding,
    large_cycle_embedding,
    large_fft_embedding,
)


class TestLargeCycle:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_corollary3(self, n):
        emb = large_cycle_embedding(n)
        emb.verify()
        assert emb.guest.num_vertices == n * 2**n
        assert emb.load == n
        assert emb.dilation == 1
        assert emb.congestion == 1

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_saturates_every_directed_link(self, n):
        emb = large_cycle_embedding(n)
        counts = emb.edge_congestion_counts()
        assert len(counts) == emb.host.num_edges
        assert set(counts.values()) == {1}

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError):
            large_cycle_embedding(5)

    @pytest.mark.parametrize("n", [2, 4])
    def test_load_perfectly_balanced(self, n):
        emb = large_cycle_embedding(n)
        counts = Counter(emb.vertex_map.values())
        assert set(counts.values()) == {n}


class TestLemma9:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_ccc(self, n):
        emb = large_ccc_embedding(n)
        emb.verify()
        assert emb.load == n
        assert emb.dilation == 1
        assert emb.congestion == 1

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_butterfly(self, n):
        emb = large_butterfly_embedding(n)
        emb.verify()
        assert emb.load == n
        assert emb.congestion <= 2

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_fft(self, n):
        emb = large_fft_embedding(n)
        emb.verify()
        assert emb.load == n + 1
        assert emb.congestion <= 2

    def test_ccc_saturates_links(self):
        emb = large_ccc_embedding(4)
        counts = emb.edge_congestion_counts()
        assert len(counts) == emb.host.num_edges


class TestLemma3:
    def test_min_dilation(self):
        assert min_dilation_for_width(1) == 1
        assert min_dilation_for_width(2) == 2
        for w in (3, 4, 10):
            assert min_dilation_for_width(w) == 3
        with pytest.raises(ValueError):
            min_dilation_for_width(0)

    def test_max_width(self):
        assert max_width_for_cost3(4) == 2
        assert max_width_for_cost3(8) == 4
        assert max_width_for_cost3(9) == 4

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_no_two_hop_paths(self, n):
        assert verify_no_two_hop_paths(n)

    def test_adjacent_path_census(self):
        # between adjacent nodes of Q_n: 1 direct path, 0 of length 2,
        # n-1 of length 3 (one per detour dimension)
        for n in (3, 4, 5):
            counts = count_short_paths(n, 0, 1, 3)
            assert counts == {1: 1, 3: n - 1}

    @given(st.integers(min_value=4, max_value=64))
    def test_theorem2_width_meets_lemma3_bound(self, n):
        # Theorem 2's achieved widths never exceed the Lemma 3 cap (cost 3)
        from repro.core.cycle_multipath import theorem2_claim

        claim = theorem2_claim(n)
        if claim["cost"] == 3:
            assert claim["width"] <= max_width_for_cost3(n)


class TestUndirectedLargeCycle:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_corollary3_undirected(self, n):
        from repro.core.large_copy import large_cycle_embedding_undirected

        emb = large_cycle_embedding_undirected(n)
        emb.verify()
        assert emb.guest.num_vertices == n * 2 ** (n - 1)
        assert emb.dilation == 1
        assert emb.congestion == 1
        # both orientations of every link carry exactly one guest edge
        counts = emb.edge_congestion_counts()
        assert len(counts) == emb.host.num_edges
        assert set(counts.values()) == {1}

    def test_load_is_half_n(self):
        from collections import Counter

        from repro.core.large_copy import large_cycle_embedding_undirected

        emb = large_cycle_embedding_undirected(6)
        counts = Counter(emb.vertex_map.values())
        assert set(counts.values()) == {3}  # n/2 visits per node

    def test_odd_rejected(self):
        from repro.core.large_copy import large_cycle_embedding_undirected

        with pytest.raises(ValueError):
            large_cycle_embedding_undirected(5)
