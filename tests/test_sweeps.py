"""Tests for the parameter-sweep harness."""

from repro.analysis import (
    broadcast_crossover_sweep,
    cycle_speedup_sweep,
    fault_tolerance_sweep,
    format_rows,
    utilization_sweep,
)


class TestCycleSpeedup:
    def test_speedup_nondecreasing(self):
        rows = cycle_speedup_sweep([4, 8], m=48)
        assert rows[0]["speedup"] <= rows[1]["speedup"]
        assert all(r["multipath_steps"] < r["gray_steps"] for r in rows)

    def test_gray_cost_is_m(self):
        rows = cycle_speedup_sweep([6], m=17)
        assert rows[0]["gray_steps"] == 17


class TestUtilization:
    def test_full_when_n_mod4_zero(self):
        rows = utilization_sweep([4, 8])
        assert all(r["busy_fraction"] == 1.0 for r in rows)

    def test_partial_otherwise(self):
        rows = utilization_sweep([5, 6, 7])
        assert all(r["busy_fraction"] < 1.0 for r in rows)


class TestFaultSweep:
    def test_monotone_in_fault_rate(self):
        rows = fault_tolerance_sweep(6, [0.0, 0.1, 0.5], trials=2)
        rates = [r["multipath_ida"] for r in rows]
        assert rates[0] == 1.0
        assert rates == sorted(rates, reverse=True)


class TestBroadcastSweep:
    def test_crossover_exists(self):
        rows = broadcast_crossover_sweep(6, [4, 4096])
        assert rows[0]["winner"] == "tree"
        assert rows[-1]["winner"] == "cycles"


class TestFormat:
    def test_renders(self):
        text = format_rows(cycle_speedup_sweep([4], m=8))
        assert "speedup" in text and "\n" in text

    def test_empty(self):
        assert format_rows([]) == "(empty sweep)"
