"""Tests for the service layer: registry, engine, facade, metrics."""

import json
import random
import threading

import pytest

from repro.fault.faults import FaultModel
from repro.obs import MetricsRegistry
from repro.service import (
    BatchingFrontend,
    BatchRouteResult,
    BuildEngine,
    EmbeddingRegistry,
    EmbeddingSpec,
    RouteRequest,
    RouteResponse,
    RoutingService,
    build_spec,
    decode_embedding,
    encode_embedding,
    disjoint_paths,
)
from repro.service.store import read_store_header


def cycle_spec(n=6):
    return EmbeddingSpec.make("cycle", n=n)


class TestSpecs:
    def test_key_is_deterministic(self):
        assert cycle_spec().cache_key() == cycle_spec().cache_key()

    def test_key_ignores_param_order(self):
        a = EmbeddingSpec.make("grid", dims=(4, 4), torus=True)
        b = EmbeddingSpec.make("grid", torus=True, dims=(4, 4))
        assert a.cache_key() == b.cache_key()

    def test_key_separates_params(self):
        assert cycle_spec(6).cache_key() != cycle_spec(8).cache_key()
        assert (
            cycle_spec(6).cache_key()
            != EmbeddingSpec.make("large-cycle", n=6).cache_key()
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingSpec.make("hypertorus", n=4)

    def test_build_dispatch(self):
        emb = build_spec(EmbeddingSpec.make("grid", dims=(4, 4), torus=True))
        emb.verify()
        assert emb.guest.num_vertices == 16

    def test_specs_hash_and_pickle(self):
        import pickle

        spec = EmbeddingSpec.make("tree", m=2)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, EmbeddingSpec.make("tree", m=2)}) == 1


class TestEncodeDecode:
    def test_multipath_roundtrip(self):
        emb = build_spec(cycle_spec(6))
        back = decode_embedding(encode_embedding(emb))
        assert back.width == emb.width
        assert dict(back.vertex_map) == dict(emb.vertex_map)

    def test_multicopy_roundtrip(self):
        emb = build_spec(EmbeddingSpec.make("ccc", n=4))
        back = decode_embedding(encode_embedding(emb))
        assert back.k == emb.k
        assert back.edge_congestion == emb.edge_congestion
        back.verify()


class TestRegistry:
    def test_miss_then_build_then_memory_hit(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = cycle_spec()
        assert reg.get(spec) is None
        emb = reg.get_or_build(spec)
        assert reg.get(spec) is emb  # identical object from the LRU tier
        assert reg.metrics.count("memory_hits") == 1
        assert reg.metrics.count("builds") == 1

    def test_disk_tier_across_instances(self, tmp_path):
        EmbeddingRegistry(cache_dir=tmp_path).get_or_build(cycle_spec())
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        emb = fresh.get(cycle_spec())
        assert emb is not None and emb.width >= 3
        assert fresh.metrics.count("disk_hits") == 1
        assert fresh.metrics.count("builds") == 0

    def test_lru_eviction(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path, memory_capacity=2)
        specs = [cycle_spec(n) for n in (4, 6, 8)]
        for s in specs:
            reg.get_or_build(s)
        assert reg.metrics.count("memory_evictions") == 1
        # oldest evicted from memory but still on disk
        reg.get(specs[0])
        assert reg.metrics.count("disk_hits") == 1

    def test_truncated_artifact_triggers_rebuild(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = cycle_spec()
        reg.get_or_build(spec)
        path = reg.path_for(spec)
        with open(path, "r+b") as fh:
            fh.truncate(80)  # corrupt on disk
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        assert fresh.get(spec) is None  # recovered, not crashed
        assert fresh.metrics.count("disk_corrupt") == 1
        assert not path.exists()  # a provably bad artifact is removed
        emb = fresh.get_or_build(spec)  # rebuild + reverify + re-admit
        emb.verify()
        assert fresh.metrics.count("builds") == 1
        # the re-written artifact is valid again
        assert EmbeddingRegistry(cache_dir=tmp_path).get(spec) is not None

    def test_payload_tamper_detected_by_checksum(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = cycle_spec()
        reg.get_or_build(spec)
        path = reg.path_for(spec)
        header = read_store_header(path)
        with open(path, "r+b") as fh:  # flip one byte of the array payload
            fh.seek(header["data_start"])
            byte = fh.read(1)
            fh.seek(header["data_start"])
            fh.write(bytes([byte[0] ^ 0xFF]))
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        assert fresh.get(spec) is None
        assert fresh.metrics.count("disk_corrupt") == 1

    def test_blob_tamper_detected_by_checksum(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = cycle_spec()
        reg.get_or_build(spec)
        path = reg.path_for(spec)
        header = read_store_header(path)
        with open(path, "r+b") as fh:  # flip one byte of the embedding blob
            fh.seek(header["blob_offset"])
            byte = fh.read(1)
            fh.seek(header["blob_offset"])
            fh.write(bytes([byte[0] ^ 0xFF]))
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        # the CSR fast path only touches the (intact) arrays ...
        assert fresh.get_store(spec) is not None
        # ... but materializing the embedding re-hashes the blob and balks
        assert fresh.get(spec) is None
        assert fresh.metrics.count("disk_corrupt") == 1

    def test_stale_package_version_rebuilds(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = cycle_spec()
        reg.get_or_build(spec)
        path = reg.path_for(spec)
        version = read_store_header(path)["package_version"]
        stale = "0" * len(version)  # same length: header geometry unchanged
        raw = path.read_bytes().replace(
            f'"package_version":"{version}"'.encode(),
            f'"package_version":"{stale}"'.encode(),
            1,
        )
        path.write_bytes(raw)
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        assert fresh.get(spec) is None  # stale -> miss -> rebuild path

    def test_ls_clear_contains(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = cycle_spec()
        assert spec not in reg
        reg.get_or_build(spec)
        assert spec in reg
        rows = reg.ls()
        assert len(rows) == 1 and "cycle" in rows[0]["construction"]
        assert reg.clear() == 1
        assert reg.ls() == [] and spec not in reg

    def test_multicopy_through_disk(self, tmp_path):
        spec = EmbeddingSpec.make("ccc", n=4)
        EmbeddingRegistry(cache_dir=tmp_path).get_or_build(spec)
        back = EmbeddingRegistry(cache_dir=tmp_path).get(spec)
        assert back.k == 4
        back.verify()

    def test_stats_reports_tiers(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        reg.get_or_build(cycle_spec())
        snap = reg.stats()
        assert snap["disk_entries"] == 1
        assert snap["memory_entries"] == 1
        assert snap["counters"]["builds"] == 1
        assert snap["timers"]["build"]["count"] == 1


class TestEngine:
    def test_batch_preserves_order_and_dedups(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        engine = BuildEngine(reg, max_workers=0)  # in-process
        specs = [cycle_spec(6), cycle_spec(8), cycle_spec(6)]
        out = engine.build_batch(specs)
        assert [e.host.n for e in out] == [6, 8, 6]
        assert out[0] is out[2]
        assert reg.metrics.count("batch_dedup") == 1
        assert reg.metrics.count("builds") == 2

    def test_parallel_workers_populate_disk(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        engine = BuildEngine(reg, max_workers=2)
        specs = [cycle_spec(6), EmbeddingSpec.make("grid", dims=(4, 4))]
        out = engine.build_batch(specs)
        assert len(out) == 2 and all(e is not None for e in out)
        assert len(reg.ls()) == 2
        # second batch is all cache hits: no further builds
        before = reg.metrics.count("builds")
        engine.build_batch(specs)
        assert reg.metrics.count("builds") == before

    def test_worker_errors_propagate(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        engine = BuildEngine(reg, max_workers=2)
        bad = [EmbeddingSpec.make("ccc", n=3), EmbeddingSpec.make("ccc", n=5)]
        with pytest.raises(ValueError):
            engine.build_batch(bad)
        assert reg.metrics.count("build_errors") >= 1

    def test_warm(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        assert BuildEngine(reg, max_workers=0).warm([cycle_spec()]) == 1
        assert cycle_spec() in reg


class TestRoutingService:
    def _service(self, tmp_path):
        return RoutingService(registry=EmbeddingRegistry(cache_dir=tmp_path))

    def test_route_returns_disjoint_paths(self, tmp_path):
        svc = self._service(tmp_path)
        spec = cycle_spec(8)
        response = svc.route(spec, RouteRequest((0, 1)))
        assert isinstance(response, RouteResponse)
        assert response.guest_edge == (0, 1)
        emb = svc.get_embedding(spec)
        assert response.width == emb.width
        used = set()
        for p in response.paths:
            for a, b in zip(p, p[1:]):
                eid = emb.host.edge_id(a, b)
                assert eid not in used  # pairwise edge-disjoint
                used.add(eid)

    def test_route_reversed_edge(self, tmp_path):
        svc = self._service(tmp_path)
        spec = cycle_spec(6)
        fwd = svc.route(spec, RouteRequest((0, 1))).paths
        rev = svc.route(spec, RouteRequest((1, 0))).paths
        assert rev == tuple(tuple(reversed(p)) for p in fwd)

    def test_route_unknown_edge_raises(self, tmp_path):
        with pytest.raises(KeyError):
            self._service(tmp_path).route(cycle_spec(6), RouteRequest((0, 5)))

    def test_route_multicopy_gives_one_path_per_copy(self, tmp_path):
        svc = self._service(tmp_path)
        spec = EmbeddingSpec.make("ccc", n=4)
        emb = svc.get_embedding(spec)
        edge = next(iter(emb.copies[0].edge_paths))
        assert svc.route(spec, RouteRequest(edge)).width == emb.k

    def test_fault_tolerant_survives_w_minus_1_failures(self, tmp_path):
        svc = self._service(tmp_path)
        spec = cycle_spec(8)
        emb = svc.get_embedding(spec)
        paths = svc.route(spec, RouteRequest((0, 1))).paths
        w = len(paths)
        assert w >= 4
        # kill every path but the last: fail the first link of each
        failed = {
            emb.host.edge_id(p[0], p[1]) for p in paths[:-1] if len(p) > 1
        }
        faults = FaultModel(emb.host, failed)
        out = svc.route_fault_tolerant(
            spec, RouteRequest((0, 1), message=b"survive", faults=faults)
        )
        assert out.delivered and out.message == b"survive"
        assert len(out.failed_paths) == w - 1
        assert out.alive_paths == (w - 1,)

    def test_fault_tolerant_loses_when_all_paths_die(self, tmp_path):
        svc = self._service(tmp_path)
        spec = cycle_spec(8)
        emb = svc.get_embedding(spec)
        paths = svc.route(spec, RouteRequest((0, 1))).paths
        failed = {emb.host.edge_id(p[0], p[1]) for p in paths}
        out = svc.route_fault_tolerant(
            spec,
            RouteRequest(
                (0, 1), message=b"gone", faults=FaultModel(emb.host, failed)
            ),
        )
        assert not out.delivered and out.message is None
        assert svc.metrics.count("delivery_failures") == 1

    def test_pieces_needed_tradeoff(self, tmp_path):
        svc = self._service(tmp_path)
        spec = cycle_spec(8)
        emb = svc.get_embedding(spec)
        paths = svc.route(spec, RouteRequest((0, 1))).paths
        w = len(paths)
        kill = lambda k: FaultModel(  # noqa: E731
            emb.host,
            {emb.host.edge_id(p[0], p[1]) for p in paths[:k] if len(p) > 1},
        )
        # need m=3 pieces: tolerates w-3 failures, not w-2
        assert svc.route_fault_tolerant(
            spec,
            RouteRequest((0, 1), b"x", faults=kill(w - 3), pieces_needed=3),
        ).delivered
        assert not svc.route_fault_tolerant(
            spec,
            RouteRequest((0, 1), b"x", faults=kill(w - 2), pieces_needed=3),
        ).delivered

    def test_no_faults_default_delivers(self, tmp_path):
        out = self._service(tmp_path).route_fault_tolerant(
            cycle_spec(6), RouteRequest((0, 1), message=b"clear skies")
        )
        assert out.delivered and out.message == b"clear skies"
        assert out.failed_paths == ()

    def test_bad_pieces_needed_rejected(self, tmp_path):
        svc = self._service(tmp_path)
        with pytest.raises(ValueError):
            svc.route_fault_tolerant(
                cycle_spec(6), RouteRequest((0, 1), b"x", pieces_needed=99)
            )

    def test_stats_surface(self, tmp_path):
        svc = self._service(tmp_path)
        svc.route(cycle_spec(6), RouteRequest((0, 1)))
        snap = svc.stats()
        assert snap["counters"]["routes"] == 1
        assert snap["timers"]["get_embedding"]["count"] == 1

    def test_disjoint_paths_single_embedding(self, tmp_path):
        svc = self._service(tmp_path)
        spec = EmbeddingSpec.make("large-cycle", n=4)
        emb = svc.get_embedding(spec)
        edge = next(iter(emb.edge_paths))
        assert len(disjoint_paths(emb, edge)) == 1

    def test_disjoint_paths_skips_copies_missing_the_edge(self):
        # regression: a multi-copy embedding where one copy stores neither
        # orientation used to fail the whole lookup instead of skipping
        from repro.core.embedding import Embedding, MultiCopyEmbedding
        from repro.hypercube.graph import Hypercube

        host = Hypercube(2)
        knows = Embedding(
            host=host, guest=None, vertex_map={0: 0, 1: 1},
            edge_paths={(1, 0): (1, 0)}, name="knows-reverse-only",
        )
        ignorant = Embedding(
            host=host, guest=None, vertex_map={2: 2, 3: 3},
            edge_paths={(2, 3): (2, 3)}, name="other-edges-only",
        )
        emb = MultiCopyEmbedding(
            host=host, guest=None, copies=[knows, ignorant]
        )
        assert disjoint_paths(emb, (0, 1)) == ((0, 1),)
        assert disjoint_paths(emb, (1, 0)) == ((1, 0),)
        with pytest.raises(KeyError):
            disjoint_paths(emb, (0, 2))


class TestBatchRouting:
    def _service(self, tmp_path):
        return RoutingService(registry=EmbeddingRegistry(cache_dir=tmp_path))

    def test_batch_result_surface(self, tmp_path):
        svc = self._service(tmp_path)
        spec = cycle_spec(6)
        batch = svc.route_batch(spec, [(0, 1), RouteRequest((2, 1)), (1, 0)])
        assert isinstance(batch, BatchRouteResult)
        assert len(batch) == 3
        assert batch.total_paths == sum(batch.width(i) for i in range(3))
        assert [r.guest_edge for r in batch.requests] == [(0, 1), (2, 1), (1, 0)]
        first, last = batch[0], batch[-1]
        assert isinstance(first, RouteResponse)
        assert last.paths == tuple(
            tuple(reversed(p)) for p in first.paths
        )
        assert [r.guest_edge for r in batch] == [(0, 1), (2, 1), (1, 0)]

    def test_batch_matches_per_call_fuzzed(self, tmp_path):
        svc = self._service(tmp_path)
        rng = random.Random(11)
        for spec in (cycle_spec(8), EmbeddingSpec.make("ccc", n=4)):
            edges = list(svc.shard_for(spec).csr.edges)
            requests = []
            for _ in range(64):
                u, v = edges[rng.randrange(len(edges))]
                requests.append((v, u) if rng.random() < 0.5 else (u, v))
            batch = svc.route_batch(spec, requests)
            for i, edge in enumerate(requests):
                assert batch.paths(i) == svc.route(spec, RouteRequest(edge)).paths

    def test_batch_unknown_edge_raises(self, tmp_path):
        svc = self._service(tmp_path)
        with pytest.raises(KeyError):
            svc.route_batch(cycle_spec(6), [(0, 1), (0, 5)])

    def test_empty_batch(self, tmp_path):
        svc = self._service(tmp_path)
        batch = svc.route_batch(cycle_spec(6), [])
        assert len(batch) == 0 and batch.total_paths == 0

    def test_batch_observability(self, tmp_path):
        svc = self._service(tmp_path)
        svc.route_batch(cycle_spec(6), [(0, 1), (1, 2)])
        snap = svc.metrics.snapshot()
        assert snap["counters"]["routes"] == 2
        assert snap["counters"]["shard_misses"] == 1
        svc.route_batch(cycle_spec(6), [(2, 3)])
        assert svc.metrics.count("shard_hits") == 1
        assert snap["gauges"]["shards_active"] == 1

    def test_close_unlinks_shards(self, tmp_path):
        svc = self._service(tmp_path)
        svc.route_batch(cycle_spec(6), [(0, 1)])
        assert svc.shards.info() != {}
        svc.close()
        assert svc.shards.info() == {}


class TestMetrics:
    # the service layer now measures through repro.obs.MetricsRegistry;
    # the ServiceMetrics shim itself is covered in test_deprecation_shims
    def test_counters_and_timers(self):
        m = MetricsRegistry()
        m.incr("hits")
        m.incr("hits", 2)
        m.observe("lat", 0.5)
        with m.time("lat"):
            pass
        snap = m.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["timers"]["lat"]["count"] == 2
        assert snap["timers"]["lat"]["max_s"] >= 0.5

    def test_reset(self):
        m = MetricsRegistry()
        m.incr("x")
        m.reset()
        assert m.snapshot()["counters"] == {}
        assert m.snapshot()["timers"] == {}

    def test_service_gauges_record_verified_shape(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        reg.get_or_build(cycle_spec())
        gauges = reg.metrics.snapshot()["gauges"]
        assert gauges["embedding_load{kind=cycle}"] == 1
        assert gauges["embedding_width{kind=cycle}"] >= 3


class _GatedService:
    """Stub service: echoes requests; ``route_batch`` can block on a gate.

    Lets the frontend tests park the drainer thread inside a batch call
    (``gate``) and observe exactly which requests coalesced into which
    batch (``batch_sizes``), with ``entered`` signalling that the drainer
    has actually started resolving.
    """

    def __init__(self, blocked=False):
        self.metrics = MetricsRegistry()
        self.batch_sizes = []
        self.gate = threading.Event()
        self.entered = threading.Event()
        self._lock = threading.Lock()
        if not blocked:
            self.gate.set()

    def shard_for(self, spec):
        return None

    def route_batch(self, spec, requests):
        self.entered.set()
        assert requests, "frontend must never issue an empty batch"
        assert self.gate.wait(timeout=5.0), "gate never released"
        with self._lock:
            self.batch_sizes.append(len(requests))
        return [req.guest_edge for req in requests]


class TestBatchingFrontend:
    # regression tests for the deadline-coalescing fix: max_wait_s bounds
    # how long the drainer *waits*, not how much it coalesces

    def test_zero_deadline_coalesces_queued_requests(self):
        svc = _GatedService(blocked=True)
        with BatchingFrontend(svc, spec=None, max_wait_s=0.0) as frontend:
            first = frontend.submit((0, 1))
            assert svc.entered.wait(timeout=5.0)
            # drainer is parked inside route_batch; these five pile up
            later = [frontend.submit((i, i + 1)) for i in range(1, 6)]
            svc.gate.set()
            assert first.result(timeout=5.0) == (0, 1)
            assert [f.result(timeout=5.0) for f in later] == [
                (i, i + 1) for i in range(1, 6)
            ]
        # one singleton batch (nothing else had arrived), then ONE batch
        # of five — not five batches of one, despite the zero deadline
        assert svc.batch_sizes == [1, 5]
        assert frontend.stats() == {
            "batches": 2, "served": 6, "mean_batch": 3.0,
        }

    def test_zero_deadline_lone_request_flushes_immediately(self):
        svc = _GatedService()
        with BatchingFrontend(svc, spec=None, max_wait_s=0.0) as frontend:
            assert frontend.submit((3, 4)).result(timeout=5.0) == (3, 4)
        assert svc.batch_sizes == [1]

    def test_zero_deadline_respects_max_batch(self):
        svc = _GatedService(blocked=True)
        with BatchingFrontend(
            svc, spec=None, max_batch=2, max_wait_s=0.0
        ) as frontend:
            first = frontend.submit((0, 1))
            assert svc.entered.wait(timeout=5.0)
            later = [frontend.submit((1, 2)) for _ in range(5)]
            svc.gate.set()
            for f in [first, *later]:
                f.result(timeout=5.0)
        assert svc.batch_sizes == [1, 2, 2, 1]

    def test_empty_queue_flush_on_stop(self):
        svc = _GatedService()
        frontend = BatchingFrontend(svc, spec=None).start()
        frontend.stop()
        # nothing was pending: no batch call, clean stats, restartable
        assert svc.batch_sizes == []
        assert frontend.stats() == {
            "batches": 0, "served": 0, "mean_batch": 0.0,
        }
        with frontend:
            assert frontend.submit((0, 1)).result(timeout=5.0) == (0, 1)
        assert svc.batch_sizes == [1]

    def test_stop_flushes_pending_requests(self):
        svc = _GatedService(blocked=True)
        frontend = BatchingFrontend(svc, spec=None, max_wait_s=0.0).start()
        first = frontend.submit((0, 1))
        assert svc.entered.wait(timeout=5.0)
        pending = [frontend.submit((1, 2)) for _ in range(3)]
        svc.gate.set()
        frontend.stop()
        for f in [first, *pending]:
            assert f.result(timeout=5.0) is not None
        assert sum(svc.batch_sizes) == 4
