"""Tests for the generic embedding utilities, Cannon matmul, and adaptive routing."""

import numpy as np
import pytest

from repro.apps.matmul import cannon_communication_steps, cannon_matmul
from repro.core import embed_cycle_load1
from repro.core.generic import shortest_path_embedding, widen_embedding
from repro.hypercube.graph import Hypercube
from repro.networks.cycle import DirectedCycle
from repro.networks.tree import random_binary_tree
from repro.routing.adaptive import adaptive_wormhole_experiment


class TestShortestPathEmbedding:
    def test_cycle_default_placement(self):
        emb = shortest_path_embedding(Hypercube(4), DirectedCycle(16))
        assert emb.load == 1
        assert emb.dilation <= 4

    def test_overloaded_guest_warns_and_reports_load(self):
        with pytest.warns(UserWarning, match="round-robin placement overloads"):
            emb = shortest_path_embedding(Hypercube(3), DirectedCycle(20))
        assert emb.load == 3  # ceil(20/8)
        # the attached verification report records the measured load
        assert emb.verification.ok
        assert emb.verification.metrics["load"] == 3

    def test_explicit_overloaded_placement_does_not_warn(self):
        import warnings

        placement = {i: i % 8 for i in range(20)}
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            emb = shortest_path_embedding(
                Hypercube(3), DirectedCycle(20), placement
            )
        assert emb.load == 3

    def test_arbitrary_guest(self):
        tree = random_binary_tree(30, seed=1)
        emb = shortest_path_embedding(Hypercube(5), tree)
        emb.verify()

    def test_explicit_placement(self):
        placement = {i: 15 - i for i in range(16)}
        emb = shortest_path_embedding(
            Hypercube(4), DirectedCycle(16), placement
        )
        assert emb.vertex_map[0] == 15


class TestWidenEmbedding:
    def test_widen_cycle(self):
        base = shortest_path_embedding(Hypercube(5), DirectedCycle(32))
        wide = widen_embedding(base, 4)
        wide.verify()  # per-edge disjointness certified
        assert wide.width == 4

    def test_widen_preserves_vertex_map(self):
        base = shortest_path_embedding(Hypercube(4), DirectedCycle(16))
        wide = widen_embedding(base, 3)
        assert wide.vertex_map == base.vertex_map

    def test_width_bounds(self):
        base = shortest_path_embedding(Hypercube(4), DirectedCycle(16))
        with pytest.raises(ValueError):
            widen_embedding(base, 5)
        with pytest.raises(ValueError):
            widen_embedding(base, 0)

    def test_colocated_edges_trivial(self):
        tree = random_binary_tree(20, seed=2)
        base = shortest_path_embedding(Hypercube(3), tree)
        wide = widen_embedding(base, 2)
        for (u, v), paths in wide.edge_paths.items():
            if base.vertex_map[u] == base.vertex_map[v]:
                assert paths == ((base.vertex_map[u],),)


class TestCannon:
    @pytest.mark.parametrize("P", [2, 4])
    def test_numerics(self, P):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(16, 16))
        b = rng.normal(size=(16, 16))
        assert np.allclose(cannon_matmul(a, b, P), a @ b)

    def test_identity(self):
        eye = np.eye(8)
        assert np.allclose(cannon_matmul(eye, eye, 4), eye)

    def test_invalid(self):
        with pytest.raises(ValueError):
            cannon_matmul(np.zeros((6, 6)), np.zeros((6, 6)), 4)
        with pytest.raises(ValueError):
            cannon_matmul(np.zeros((4, 4)), np.zeros((4, 6)), 2)

    def test_copy_overlap_halves_communication(self):
        res = cannon_communication_steps(16, 8)
        assert res["overlapped_steps"] == 8
        assert res["single_copy_steps"] == 16


class TestAdaptive:
    def test_adaptive_beats_oblivious(self):
        emb = embed_cycle_load1(8)
        res = adaptive_wormhole_experiment(emb, 128, flits=8, seed=3)
        assert res["adaptive"] <= res["oblivious"]

    def test_deterministic(self):
        emb = embed_cycle_load1(6)
        a = adaptive_wormhole_experiment(emb, 32, flits=4, seed=9)
        b = adaptive_wormhole_experiment(emb, 32, flits=4, seed=9)
        assert a == b
