"""Tests for Lemma 4 and Theorem 3 (CCC embeddings)."""

from collections import Counter

import pytest

from repro.core.ccc_multicopy import (
    ccc_multicopy_embedding,
    ccc_single_embedding,
    level_cycle,
    theorem3_claim,
)


class TestLevelCycle:
    @pytest.mark.parametrize("n,r", [(4, 2), (6, 3), (8, 3), (3, 2), (5, 3), (7, 3)])
    def test_consecutive_distance(self, n, r):
        seq = level_cycle(n, r)
        assert len(seq) == n
        assert len(set(seq)) == n
        for a, b in zip(seq, seq[1:]):
            assert (a ^ b).bit_count() == 1
        wrap = (seq[-1] ^ seq[0]).bit_count()
        assert wrap == (1 if n % 2 == 0 else 2)

    def test_too_many_levels(self):
        with pytest.raises(ValueError):
            level_cycle(9, 3)


class TestLemma4:
    @pytest.mark.parametrize("n", range(2, 9))
    def test_dilation(self, n):
        emb = ccc_single_embedding(n)
        emb.verify(max_load=1)
        expected = 1 if n % 2 == 0 else 2
        assert emb.dilation == expected

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_host_size(self, n):
        emb = ccc_single_embedding(n)
        r = max(1, (n - 1).bit_length())
        assert emb.host.n == n + r

    def test_straight_edges_stay_in_window(self):
        emb = ccc_single_embedding(4)
        # straight edges use only the top r dimensions with this window
        n, r = 4, 2
        for (u, v), path in emb.edge_paths.items():
            if u[1] == v[1]:  # straight edge
                for a, b in zip(path, path[1:]):
                    assert emb.host.dimension_of(a, b) >= n


class TestTheorem3:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_claims(self, n):
        mc = ccc_multicopy_embedding(n)
        mc.verify()
        claim = theorem3_claim(n)
        assert mc.k == claim["copies"]
        assert mc.dilation == claim["dilation"]
        assert mc.edge_congestion <= claim["edge_congestion"]

    def test_edge_congestion_exactly_two(self):
        # dimension-1 links carry two straight edges (levels n/2-1 and n-1)
        assert ccc_multicopy_embedding(4).edge_congestion == 2

    def test_cross_edge_congestion_at_most_one(self):
        # Lemma 7: congestion due to cross-edges alone is at most 1
        mc = ccc_multicopy_embedding(4)
        counts = Counter()
        for copy in mc.copies:
            for (u, v), path in copy.edge_paths.items():
                if u[0] == v[0]:  # cross edge (same level)
                    for a, b in zip(path, path[1:]):
                        counts[copy.host.edge_id(a, b)] += 1
        assert max(counts.values()) == 1

    def test_each_copy_is_a_bijection(self):
        mc = ccc_multicopy_embedding(4)
        for copy in mc.copies:
            images = set(copy.vertex_map.values())
            assert len(images) == copy.host.num_nodes

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ccc_multicopy_embedding(6)

    def test_node_load_is_n(self):
        mc = ccc_multicopy_embedding(4)
        assert mc.node_load == 4


class TestSection54Undirected:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_congestion_at_most_four(self, n):
        mc = ccc_multicopy_embedding(n, undirected=True)
        mc.verify()
        assert mc.edge_congestion <= 4

    def test_exactly_four_at_n4(self):
        assert ccc_multicopy_embedding(4, undirected=True).edge_congestion == 4

    def test_guest_has_reverse_straight_edges(self):
        mc = ccc_multicopy_embedding(4, undirected=True)
        edges = set(mc.guest.edges())
        assert ((1, 0), (0, 0)) in edges  # downward straight edge
