"""Tests for the analysis/reporting utilities and figure reproductions."""

import pytest

from repro.analysis import (
    compare_embeddings,
    congestion_histogram,
    figure1,
    figure2,
    figure3,
    figure4,
    link_utilization,
    report,
)
from repro.core import (
    cycle_multicopy_embedding,
    embed_cycle_load1,
    graycode_cycle_embedding,
    large_cycle_embedding,
)


class TestReport:
    def test_multipath_report(self):
        rep = report(embed_cycle_load1(6))
        assert rep.style == "multiple-path"
        assert rep.load == 1
        assert rep.width == 3
        assert rep.host_dim == 6
        assert 0 < rep.link_utilization <= 1

    def test_singlepath_report(self):
        rep = report(large_cycle_embedding(6))
        assert rep.style == "single-path"
        assert rep.load == 6
        assert rep.link_utilization == 1.0

    def test_multicopy_report(self):
        rep = report(cycle_multicopy_embedding(6))
        assert rep.style == "multiple-copy"
        assert rep.copies == 6
        assert rep.link_utilization == 1.0

    def test_str_contains_metrics(self):
        text = str(report(embed_cycle_load1(6)))
        assert "dilation" in text and "width" in text


class TestComparison:
    def test_table_renders(self):
        table = compare_embeddings(
            {
                "gray": graycode_cycle_embedding(6),
                "multipath": embed_cycle_load1(6),
            }
        )
        assert "gray" in table and "multipath" in table
        assert "dilation" in table

    def test_histogram_sums_to_links(self):
        emb = embed_cycle_load1(6)
        hist = congestion_histogram(emb)
        assert sum(hist.values()) == emb.host.num_edges
        assert max(hist) == emb.congestion

    def test_utilization_range(self):
        assert link_utilization(graycode_cycle_embedding(5)) == pytest.approx(
            2**5 / (5 * 2**5)
        )


class TestFigures:
    def test_figure1_gray_labels(self):
        text = figure1(3)
        assert "dim 0" in text and "dim 2" in text
        assert text.count("-->") == 8

    def test_figure2_fields(self):
        text = figure2(11)
        assert "Row" in text and "Position" in text and "Block" in text
        assert "k=2, r=3" in text

    def test_figure3_columns(self):
        text = figure3(4)
        assert sum(1 for line in text.splitlines() if line.startswith("  column")) == 4
        assert "closes at row 0" in text

    def test_figure4_paths(self):
        text = figure4(8)
        assert text.count("path") == 5
        assert "direct" in text

    def test_figures_run_for_other_sizes(self):
        figure1(4)
        figure2(8)
        figure3(5)
        figure4(9, edge_index=17)


class TestDotExport:
    def test_renders_multipath(self):
        from repro.analysis import embedding_to_dot
        from repro.core import embed_cycle_load1

        emb = embed_cycle_load1(4)
        dot = embedding_to_dot(emb)
        assert dot.startswith("digraph")
        assert dot.count("->") == emb.host.num_edges
        assert "color=red" not in dot

    def test_highlight_edge(self):
        from repro.analysis import embedding_to_dot
        from repro.core import embed_cycle_load1

        emb = embed_cycle_load1(4)
        dot = embedding_to_dot(emb, highlight_edge=(0, 1))
        assert "color=red" in dot

    def test_singlepath_supported(self):
        from repro.analysis import embedding_to_dot
        from repro.core import graycode_cycle_embedding

        dot = embedding_to_dot(graycode_cycle_embedding(3), highlight_edge=(0, 1))
        assert "penwidth=3" in dot

    def test_unknown_edge(self):
        import pytest

        from repro.analysis import embedding_to_dot
        from repro.core import embed_cycle_load1

        with pytest.raises(KeyError):
            embedding_to_dot(embed_cycle_load1(4), highlight_edge=("x", "y"))


class TestGraphMetrics:
    def test_hypercube_closed_forms(self):
        from repro.analysis import hypercube_metrics

        m = hypercube_metrics(6)
        assert m["diameter"] == 6
        assert m["bisection_links"] == 32
        assert m["avg_distance"] == 3.0

    def test_guest_metrics_cycle(self):
        from repro.analysis import guest_metrics
        from repro.networks import DirectedCycle

        m = guest_metrics(DirectedCycle(16))
        assert m["diameter"] == 8  # undirected view
        assert m["nodes"] == 16

    def test_guest_matches_hypercube_closed_form(self):
        from repro.analysis import guest_metrics, hypercube_metrics
        from repro.hypercube.graph import Hypercube
        from repro.networks.base import ExplicitGraph

        q = Hypercube(5)
        guest = ExplicitGraph(range(q.num_nodes), list(q.edges()))
        measured = guest_metrics(guest)
        closed = hypercube_metrics(5)
        assert measured["diameter"] == closed["diameter"]
        assert abs(measured["avg_distance"] - closed["avg_distance"]) < 0.2

    def test_pinout_comparison(self):
        from repro.analysis import pinout_comparison

        row = pinout_comparison(8)
        assert row["hypercube"]["channels"] == 8
        assert row["hypercube"]["wide_message_slowdown"] == 2.0
        assert row["torus"]["diameter"] == 16
        import pytest

        with pytest.raises(ValueError):
            pinout_comparison(7)


class TestDimensionUsage:
    def test_graycode_piles_on_dimension_zero(self):
        from repro.analysis import dimension_usage
        from repro.core import graycode_cycle_embedding

        usage = dimension_usage(graycode_cycle_embedding(6))
        assert usage[0] == 32  # half of all cycle edges
        assert usage[0] == 2 * usage[1]

    def test_theorem2_uses_dimensions_uniformly(self):
        from repro.analysis import dimension_usage
        from repro.core import embed_cycle_load2

        usage = dimension_usage(embed_cycle_load2(8))
        assert max(usage.values()) == min(usage.values())  # perfectly even

    def test_multicopy_uniform(self):
        from repro.analysis import dimension_usage
        from repro.core import cycle_multicopy_embedding

        usage = dimension_usage(cycle_multicopy_embedding(6))
        assert set(usage.values()) == {64}  # every dim class saturated
