"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "6")
        assert "speedup" in out

    def test_grid_relaxation(self):
        out = run_example("grid_relaxation.py", "256", "16")
        assert "blocked_multipath" in out

    def test_fault_tolerant_routing(self):
        out = run_example("fault_tolerant_routing.py", "6")
        assert "delivery rate" in out

    def test_wormhole_routing(self):
        out = run_example("wormhole_routing.py", "2")
        assert "speedup" in out

    def test_fft(self):
        out = run_example("fft_on_hypercube.py", "5")
        assert "error" in out

    def test_tree_reduction(self):
        out = run_example("tree_reduction.py", "2")
        assert "reduce result" in out

    def test_bitonic_sort(self):
        out = run_example("bitonic_sort.py", "5")
        assert "sorted correctly: True" in out
