"""Tests for Section 7: X routing, the dilated butterfly, disjoint paths."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.butterfly_multipath import butterfly_multipath_embedding
from repro.hypercube.graph import Hypercube
from repro.networks.butterfly import Butterfly
from repro.routing.pathutils import edge_disjoint_paths
from repro.routing.permutation import permutation_baseline_time, random_permutation
from repro.routing.x_routing import XRouter, butterfly_route, x_permutation_time


class TestEdgeDisjointPaths:
    @given(
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=0, max_value=511),
        st.integers(min_value=0, max_value=511),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60)
    def test_construction(self, n, u, v, count):
        size = 1 << n
        u, v, count = u % size, v % size, min(count, n)
        if u == v:
            return
        host = Hypercube(n)
        paths = edge_disjoint_paths(n, u, v, count)
        assert len(paths) == count
        seen = set()
        for p in paths:
            assert p[0] == u and p[-1] == v
            assert host.is_path(p)
            ids = {(a, b) for a, b in zip(p, p[1:])}
            assert not (ids & seen)
            seen |= ids

    def test_lengths(self):
        paths = edge_disjoint_paths(6, 0, 0b111, 6)
        lengths = sorted(len(p) - 1 for p in paths)
        assert lengths == [3, 3, 3, 5, 5, 5]  # d rotations + (count-d) detours

    def test_errors(self):
        with pytest.raises(ValueError):
            edge_disjoint_paths(4, 3, 3, 2)
        with pytest.raises(ValueError):
            edge_disjoint_paths(4, 0, 1, 5)


class TestButterflyRoute:
    @given(st.integers(0, 3), st.integers(0, 15), st.integers(0, 3), st.integers(0, 15))
    @settings(max_examples=40)
    def test_route_valid(self, l1, c1, l2, c2):
        m = 4
        bf = Butterfly(m)
        edges = set(bf.edges())
        route = butterfly_route(m, (l1, c1), (l2, c2))
        assert route[0] == (l1, c1) and route[-1] == (l2, c2)
        for a, b in zip(route, route[1:]):
            assert (a, b) in edges
        assert len(route) - 1 <= 2 * m


class TestXRouter:
    def test_routes_and_disjointness(self):
        router = XRouter(2)
        for src, dst in [(0, 63), (12, 33), (1, 0)]:
            paths = router.piece_paths(src, dst)
            assert len(paths) == router.n
            seen = set()
            for p in paths:
                assert p[0] == src and p[-1] == dst
                assert router.host.is_path(p)
                ids = {(a, b) for a, b in zip(p, p[1:])}
                assert not (ids & seen)
                seen |= ids

    def test_self_route(self):
        router = XRouter(2)
        assert router.piece_paths(9, 9) == [(9,)]

    def test_permutation_beats_baseline(self):
        router = XRouter(2)
        perm = random_permutation(64, seed=3)
        base = permutation_baseline_time(6, perm, 64)
        xr = x_permutation_time(2, perm, 64, router=router)
        assert xr < base

    def test_wrong_perm_size(self):
        with pytest.raises(ValueError):
            x_permutation_time(2, list(range(10)), 8)


class TestDilatedButterfly:
    @pytest.mark.parametrize("m", [2, 4])
    def test_structure(self, m):
        emb = butterfly_multipath_embedding(m)
        emb.verify()
        n = emb.info["n"]
        widths = [len(ps) for ps in emb.edge_paths.values() if len(ps[0]) > 1]
        assert min(widths) == n
        assert emb.info["cut_dilation"] <= 2 * n + 2
        assert emb.load <= 2

    def test_high_dilation_confined_to_cut_levels(self):
        m = 4
        emb = butterfly_multipath_embedding(m)
        for (u, v), paths in emb.edge_paths.items():
            level = u[0]
            if level not in (m - 1, 2 * m - 1):
                assert all(len(p) - 1 <= 4 for p in paths)

    def test_guest_is_wrapped_2m_butterfly(self):
        emb = butterfly_multipath_embedding(2)
        assert emb.guest.num_vertices == 4 * 16
        assert set(emb.edge_paths) == set(emb.guest.edges())
