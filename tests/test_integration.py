"""End-to-end integration: actual payloads through embedded structures.

These tests close the loop the unit tests leave open: a full communication
phase is *executed* on the simulator — packets carry identities, travel the
embedding's paths, and must arrive at the right host node.
"""

import pytest

from repro.core import (
    ccc_multicopy_embedding,
    embed_cycle_load1,
    embed_grid_multipath,
    theorem5_embedding,
)
from repro.routing.simulator import StoreForwardSimulator


def deliver_phase(emb) -> None:
    """Run one full phase of the guest on the simulator and check arrivals."""
    sim = StoreForwardSimulator(emb.host)
    tagged = []
    for edge, paths in emb.edge_paths.items():
        for path in paths:
            if len(path) < 2:
                continue
            tagged.append((path, edge))
    res = sim.run([path for path, _ in tagged])
    assert res.delivered == len(tagged)
    for (path, (u, v)), done in zip(tagged, res.done_steps):
        assert done >= 1
        assert path[-1] == emb.vertex_map[v]
        assert path[0] == emb.vertex_map[u]


class TestFullPhases:
    def test_theorem1_phase_delivers_everything(self):
        deliver_phase(embed_cycle_load1(7))

    def test_grid_phase_delivers_everything(self):
        deliver_phase(embed_grid_multipath((16, 16), torus=True))

    def test_tree_phase_delivers_everything(self):
        deliver_phase(theorem5_embedding(2))

    def test_ccc_copies_phase(self):
        mc = ccc_multicopy_embedding(4)
        sim = StoreForwardSimulator(mc.host)
        tagged = []
        for copy in mc.copies:
            for edge, path in copy.edge_paths.items():
                tagged.append((path, copy, edge))
        res = sim.run([path for path, _, _ in tagged])
        for path, copy, (u, v) in tagged:
            assert path[-1] == copy.vertex_map[v]
        # congestion 2 means one phase of ALL copies takes very few steps
        assert res.makespan <= 4


class TestPhaseCostMatchesClaims:
    def test_theorem1_simulated_phase_cost(self):
        # greedy FIFO on the real network completes within the certified 3
        # steps plus FIFO slack bounded by the per-link congestion
        emb = embed_cycle_load1(8)
        sim = StoreForwardSimulator(emb.host)
        sched = [p for paths in emb.edge_paths.values() for p in paths]
        assert sim.run(sched).makespan <= 3 + emb.congestion

    @pytest.mark.parametrize("n", [5, 8])
    def test_theorem2_simulated_phase_cost(self, n):
        from repro.core import embed_cycle_load2

        emb = embed_cycle_load2(n)
        sim = StoreForwardSimulator(emb.host)
        sched = [p for paths in emb.edge_paths.values() for p in paths]
        assert sim.run(sched).makespan <= emb.info["cost"] + emb.congestion
