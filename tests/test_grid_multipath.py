"""Tests for Corollaries 1 and 2 (grid multiple-path embeddings)."""

import pytest

from repro.core.grid_multipath import corollary1_claim, embed_grid_multipath
from repro.routing.schedule import multipath_packet_schedule


class TestEqualPowerOfTwoSides:
    @pytest.mark.parametrize("dims,torus", [
        ((16, 16), True), ((16, 16), False), ((16, 16, 16), True), ((32, 32), True),
    ])
    def test_valid_and_width(self, dims, torus):
        emb = embed_grid_multipath(dims, torus=torus)
        emb.verify()
        claim = corollary1_claim(len(dims), dims[0])
        assert emb.info["width"] >= claim["width"]
        assert emb.load == 1

    @pytest.mark.parametrize("dims,torus", [((16, 16), True), ((16, 16, 16), True)])
    def test_schedule_six_steps_bidirectional(self, dims, torus):
        emb = embed_grid_multipath(dims, torus=torus)
        sched = multipath_packet_schedule(emb)
        sched.verify()
        # cost 3 per direction, both directions phased: makespan 6
        assert sched.makespan == 6

    def test_expansion_one_for_power_of_two_torus(self):
        emb = embed_grid_multipath((16, 16), torus=True)
        assert emb.info["expansion"] == 1.0

    def test_axes_use_disjoint_dimension_fields(self):
        emb = embed_grid_multipath((16, 16), torus=True)
        a = emb.info["axis_bits"]
        for (u, v), paths in emb.edge_paths.items():
            axis = 0 if u[0] != v[0] else 1
            for p in paths:
                for x, y in zip(p, p[1:]):
                    assert emb.host.dimension_of(x, y) // a == axis


class TestCorollary2Unequal:
    @pytest.mark.parametrize("dims", [(5, 9), (3, 20), (7, 3, 5)])
    def test_valid(self, dims):
        emb = embed_grid_multipath(dims)
        emb.verify()
        sched = multipath_packet_schedule(emb)
        sched.verify()

    def test_load_matches_contraction(self):
        emb = embed_grid_multipath((5, 9))
        assert emb.info["load"] == 2  # ceil(5/7)*ceil(9/7) = 2

    def test_small_axis_fallback(self):
        # sides of 4 need only a=2 bits; falls back to width-1 gray embedding
        emb = embed_grid_multipath((4, 4), torus=True)
        emb.verify()
        assert emb.info["width"] == 1


class TestErrors:
    def test_torus_needs_power_of_two(self):
        with pytest.raises(ValueError):
            embed_grid_multipath((5, 5), torus=True)

    def test_empty_dims(self):
        with pytest.raises(ValueError):
            embed_grid_multipath(())
