"""Tests for the directed hypercube model."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hypercube.graph import Hypercube


class TestBasics:
    def test_counts(self):
        for n in range(0, 8):
            q = Hypercube(n)
            assert q.num_nodes == 2**n
            assert q.num_edges == n * 2**n

    def test_neighbor_involution(self):
        q = Hypercube(5)
        for u in range(q.num_nodes):
            for d in range(5):
                assert q.neighbor(q.neighbor(u, d), d) == u

    def test_dimension_of(self):
        q = Hypercube(4)
        assert q.dimension_of(0b0000, 0b0100) == 2
        assert q.dimension_of(0b1010, 0b1000) == 1
        with pytest.raises(ValueError):
            q.dimension_of(0, 3)  # differs in two bits
        with pytest.raises(ValueError):
            q.dimension_of(0, 0)

    def test_is_edge(self):
        q = Hypercube(3)
        assert q.is_edge(0, 4)
        assert q.is_edge(4, 0)
        assert not q.is_edge(0, 3)
        assert not q.is_edge(0, 0)
        assert not q.is_edge(0, 8)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(-1)
        with pytest.raises(ValueError):
            Hypercube(31)

    def test_out_of_range_node(self):
        q = Hypercube(3)
        with pytest.raises(ValueError):
            q.neighbor(8, 0)
        with pytest.raises(ValueError):
            q.neighbor(0, 3)


class TestEdgeIds:
    @given(st.integers(min_value=1, max_value=10))
    def test_edge_id_roundtrip(self, n):
        q = Hypercube(n)
        for u in (0, q.num_nodes // 2, q.num_nodes - 1):
            for d in range(n):
                v = q.neighbor(u, d)
                assert q.edge_from_id(q.edge_id(u, v)) == (u, v)

    def test_edge_ids_unique(self):
        q = Hypercube(4)
        ids = {q.edge_id(u, v) for u, v in q.edges()}
        assert len(ids) == q.num_edges

    def test_edge_array_matches_edges(self):
        q = Hypercube(4)
        arr = q.edge_array()
        assert arr.shape == (q.num_edges, 2)
        assert set(map(tuple, arr.tolist())) == set(q.edges())
        assert arr.dtype == np.int64


class TestPaths:
    def test_distance(self):
        q = Hypercube(6)
        assert q.distance(0, 0b111111) == 6
        assert q.distance(5, 5) == 0
        assert q.distance(0b101, 0b100) == 1

    def test_is_path(self):
        q = Hypercube(4)
        assert q.is_path([0, 1, 3, 7, 15])
        assert not q.is_path([0, 3])
        assert q.is_path([2])

    def test_path_dimensions(self):
        q = Hypercube(4)
        assert q.path_dimensions([0, 1, 3, 7]) == [0, 1, 2]


class TestNetworkxInterop:
    def test_matches_networkx_hypercube(self):
        q = Hypercube(4)
        g = q.to_networkx()
        ref = nx.hypercube_graph(4)
        # relabel tuples -> ints
        mapping = {node: sum(b << i for i, b in enumerate(node)) for node in ref}
        ref = nx.relabel_nodes(ref, mapping)
        assert set(g.nodes) == set(ref.nodes)
        undirected = {frozenset(e) for e in g.edges}
        assert undirected == {frozenset(e) for e in ref.edges}
        # directed graph has both orientations
        assert g.number_of_edges() == 2 * ref.number_of_edges()
