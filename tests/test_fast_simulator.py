"""Tests for the vectorized store-and-forward engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.permutation import dimension_order_path
from repro.routing.simulator import StoreForwardSimulator


class TestBasics:
    def test_single_packet(self):
        sim = FastStoreForward(Hypercube(4))
        assert sim.run([[0, 1, 3, 7]]).makespan == 3

    def test_empty(self):
        assert FastStoreForward(Hypercube(3)).run([]).makespan == 0

    def test_zero_hop(self):
        res = FastStoreForward(Hypercube(3)).run([[5]])
        assert res.makespan == 0
        assert res.done_steps == (0,)

    def test_contention_serializes(self):
        sim = FastStoreForward(Hypercube(3))
        assert sim.run([[0, 1]] * 5).makespan == 5

    def test_release_steps(self):
        sim = FastStoreForward(Hypercube(3))
        assert sim.run([([0, 4], 10)]).makespan == 10

    def test_rejects_bad_path(self):
        sim = FastStoreForward(Hypercube(3))
        with pytest.raises(ValueError):
            sim.run([[0, 3]])  # two-bit jump

    def test_zero_move_hop_raises_cleanly(self):
        # regression: a stationary hop (u == u) used to hit np.log2(0) — a
        # divide-by-zero RuntimeWarning and an undefined float->int cast —
        # instead of the reference engine's ValueError
        import warnings

        sim = FastStoreForward(Hypercube(3))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning -> failure
            with pytest.raises(ValueError, match=r"\(2, 2\) is not a hypercube edge"):
                sim.run([[0, 2, 2]])

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            FastStoreForward(Hypercube(3)).run([[]])

    def test_rejects_service_time(self):
        sim = FastStoreForward(Hypercube(3))
        with pytest.raises(ValueError):
            sim.run([([0, 1], 1, 4)])  # atomic messages need the reference

    def test_priority_arbitration(self):
        # packet 0 wins the step-1 tie on link 0->1; packet 1 crosses at
        # step 2 while packet 0 takes its second hop: both finish at 2
        sim = FastStoreForward(Hypercube(3))
        assert sim.run([[0, 1, 3], [0, 1]]).makespan == 2

    def test_release_gap_skips_idle_steps(self):
        sim = FastStoreForward(Hypercube(3))
        res = sim.run([([0, 1], 1), ([2, 3], 1000)])
        assert res.makespan == 1000


class TestReleaseFastForward:
    """The idle-step fast-forward branch: no packet ready -> jump to the
    next release instead of stepping one tick at a time."""

    def test_all_packets_far_in_future(self):
        sim = FastStoreForward(Hypercube(4))
        sched = [([0, 1, 3], 100_000), ([4, 5, 7], 100_000)]
        # contention-free: both arrive two steps after the joint release
        assert sim.run(sched).makespan == 100_001

    def test_staggered_far_releases_jump_twice(self):
        sim = FastStoreForward(Hypercube(4))
        sched = [([0, 1], 10_000), ([2, 3], 20_000), ([4, 5], 30_000)]
        # three separate idle gaps, each fast-forwarded
        assert sim.run(sched).makespan == 30_000

    def test_fast_forward_lands_on_contention(self):
        # both packets want link 0->1 at the same far-future step: the
        # jump must not skip the arbitration
        sim = FastStoreForward(Hypercube(3))
        sched = [([0, 1], 5_000), ([0, 1, 3], 5_000)]
        assert sim.run(sched).makespan == 5_002  # loser hops again at 5002

    def test_active_packet_blocks_fast_forward(self):
        # a long path keeps the network busy across another packet's
        # pre-release window: no jump may occur while work remains
        sim = FastStoreForward(Hypercube(3))
        sched = [([0, 1, 3, 7, 6], 1), ([0, 1], 3)]
        assert sim.run(sched).makespan == 4

    def test_agreement_with_reference_far_future(self):
        host = Hypercube(4)
        sched = [
            ([0, 1, 3], 4_000),
            ([8, 9, 11], 4_000),
            ([4, 6], 4_500),
        ]
        # contention-free, so the two arbitration policies agree exactly
        a = StoreForwardSimulator(host).run(sched).makespan
        b = FastStoreForward(host).run(sched).makespan
        assert a == b == 4_500

    def test_agreement_with_reference_staggered(self):
        host = Hypercube(4)
        sched = [
            ([4 * i, 4 * i ^ 1, 4 * i ^ 3], rel)
            for i, rel in enumerate((1_000, 2_000, 3_000))
        ]
        a = StoreForwardSimulator(host).run(sched).makespan
        b = FastStoreForward(host).run(sched).makespan
        assert a == b == 3_001


class TestAgreement:
    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 31), st.integers(1, 4)),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_within_envelope_of_reference(self, spec):
        host = Hypercube(5)
        sched = [
            (dimension_order_path(5, u, v), rel)
            for u, v, rel in spec
            if u != v
        ]
        if not sched:
            return
        a = StoreForwardSimulator(host).run(sched).makespan
        b = FastStoreForward(host).run(sched).makespan
        # both are work-conserving link-bound schedules
        assert max(a, b) <= min(a, b) + len(sched)

    def test_contention_free_exact_match(self):
        host = Hypercube(6)
        sched = [[u, u ^ 1, u ^ 3, u ^ 7] for u in range(0, 64, 8)]
        a = StoreForwardSimulator(host).run(sched).makespan
        b = FastStoreForward(host).run(sched).makespan
        assert a == b == 3
