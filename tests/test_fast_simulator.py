"""Tests for the vectorized store-and-forward engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.permutation import dimension_order_path
from repro.routing.simulator import StoreForwardSimulator


class TestBasics:
    def test_single_packet(self):
        sim = FastStoreForward(Hypercube(4))
        sim.inject([0, 1, 3, 7])
        assert sim.run() == 3

    def test_empty(self):
        assert FastStoreForward(Hypercube(3)).run() == 0

    def test_zero_hop(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([5])
        assert sim.run() == 0

    def test_contention_serializes(self):
        sim = FastStoreForward(Hypercube(3))
        for _ in range(5):
            sim.inject([0, 1])
        assert sim.run() == 5

    def test_release_steps(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 4], release_step=10)
        assert sim.run() == 10

    def test_rejects_bad_path(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 3])  # two-bit jump
        with pytest.raises(ValueError):
            sim.run()

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            FastStoreForward(Hypercube(3)).inject([])

    def test_priority_arbitration(self):
        # packet 0 wins the step-1 tie on link 0->1; packet 1 crosses at
        # step 2 while packet 0 takes its second hop: both finish at 2
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1, 3])
        sim.inject([0, 1])
        assert sim.run() == 2

    def test_release_gap_skips_idle_steps(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1], release_step=1)
        sim.inject([2, 3], release_step=1000)
        assert sim.run() == 1000


class TestReleaseFastForward:
    """The idle-step fast-forward branch: no packet ready -> jump to the
    next release instead of stepping one tick at a time."""

    def test_all_packets_far_in_future(self):
        sim = FastStoreForward(Hypercube(4))
        sim.inject([0, 1, 3], release_step=100_000)
        sim.inject([4, 5, 7], release_step=100_000)
        # contention-free: both arrive two steps after the joint release
        assert sim.run() == 100_001

    def test_staggered_far_releases_jump_twice(self):
        sim = FastStoreForward(Hypercube(4))
        sim.inject([0, 1], release_step=10_000)
        sim.inject([2, 3], release_step=20_000)
        sim.inject([4, 5], release_step=30_000)
        # three separate idle gaps, each fast-forwarded
        assert sim.run() == 30_000

    def test_fast_forward_lands_on_contention(self):
        # both packets want link 0->1 at the same far-future step: the
        # jump must not skip the arbitration
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1], release_step=5_000)
        sim.inject([0, 1, 3], release_step=5_000)
        assert sim.run() == 5_002  # loser crosses at 5001, then hops again

    def test_active_packet_blocks_fast_forward(self):
        # a long path keeps the network busy across another packet's
        # pre-release window: no jump may occur while work remains
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1, 3, 7, 6], release_step=1)
        sim.inject([0, 1], release_step=3)
        assert sim.run() == 4

    def test_agreement_with_reference_far_future(self):
        host = Hypercube(4)
        ref = StoreForwardSimulator(host)
        fast = FastStoreForward(host)
        workload = [
            ([0, 1, 3], 4_000),
            ([8, 9, 11], 4_000),
            ([4, 6], 4_500),
        ]
        for path, rel in workload:
            ref.inject(path, release_step=rel)
            fast.inject(path, release_step=rel)
        # contention-free, so the two arbitration policies agree exactly
        assert ref.run() == fast.run() == 4_500

    def test_agreement_with_reference_staggered(self):
        host = Hypercube(4)
        ref = StoreForwardSimulator(host)
        fast = FastStoreForward(host)
        for i, rel in enumerate((1_000, 2_000, 3_000)):
            path = [4 * i, 4 * i ^ 1, 4 * i ^ 3]
            ref.inject(path, release_step=rel)
            fast.inject(path, release_step=rel)
        assert ref.run() == fast.run() == 3_001


class TestAgreement:
    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 31), st.integers(1, 4)),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_within_envelope_of_reference(self, spec):
        host = Hypercube(5)
        ref = StoreForwardSimulator(host)
        fast = FastStoreForward(host)
        count = 0
        for u, v, rel in spec:
            if u == v:
                continue
            p = dimension_order_path(5, u, v)
            ref.inject(p, release_step=rel)
            fast.inject(p, release_step=rel)
            count += 1
        if not count:
            return
        a, b = ref.run(), fast.run()
        # both are work-conserving link-bound schedules
        assert max(a, b) <= min(a, b) + count

    def test_contention_free_exact_match(self):
        host = Hypercube(6)
        ref = StoreForwardSimulator(host)
        fast = FastStoreForward(host)
        for u in range(0, 64, 8):
            p = [u, u ^ 1, u ^ 3, u ^ 7]
            ref.inject(p)
            fast.inject(p)
        assert ref.run() == fast.run() == 3
