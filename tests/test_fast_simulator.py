"""Tests for the vectorized store-and-forward engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.permutation import dimension_order_path
from repro.routing.simulator import StoreForwardSimulator


class TestBasics:
    def test_single_packet(self):
        sim = FastStoreForward(Hypercube(4))
        sim.inject([0, 1, 3, 7])
        assert sim.run() == 3

    def test_empty(self):
        assert FastStoreForward(Hypercube(3)).run() == 0

    def test_zero_hop(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([5])
        assert sim.run() == 0

    def test_contention_serializes(self):
        sim = FastStoreForward(Hypercube(3))
        for _ in range(5):
            sim.inject([0, 1])
        assert sim.run() == 5

    def test_release_steps(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 4], release_step=10)
        assert sim.run() == 10

    def test_rejects_bad_path(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 3])  # two-bit jump
        with pytest.raises(ValueError):
            sim.run()

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            FastStoreForward(Hypercube(3)).inject([])

    def test_priority_arbitration(self):
        # packet 0 wins the step-1 tie on link 0->1; packet 1 crosses at
        # step 2 while packet 0 takes its second hop: both finish at 2
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1, 3])
        sim.inject([0, 1])
        assert sim.run() == 2

    def test_release_gap_skips_idle_steps(self):
        sim = FastStoreForward(Hypercube(3))
        sim.inject([0, 1], release_step=1)
        sim.inject([2, 3], release_step=1000)
        assert sim.run() == 1000


class TestAgreement:
    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 31), st.integers(1, 4)),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_within_envelope_of_reference(self, spec):
        host = Hypercube(5)
        ref = StoreForwardSimulator(host)
        fast = FastStoreForward(host)
        count = 0
        for u, v, rel in spec:
            if u == v:
                continue
            p = dimension_order_path(5, u, v)
            ref.inject(p, release_step=rel)
            fast.inject(p, release_step=rel)
            count += 1
        if not count:
            return
        a, b = ref.run(), fast.run()
        # both are work-conserving link-bound schedules
        assert max(a, b) <= min(a, b) + count

    def test_contention_free_exact_match(self):
        host = Hypercube(6)
        ref = StoreForwardSimulator(host)
        fast = FastStoreForward(host)
        for u in range(0, 64, 8):
            p = [u, u ^ 1, u ^ 3, u ^ 7]
            ref.inject(p)
            fast.inject(p)
        assert ref.run() == fast.run() == 3
