"""Tests for the limited-buffer store-and-forward model."""

import pytest

from repro.hypercube.graph import Hypercube
from repro.routing.bounded_buffers import BoundedBufferSimulator, BufferDeadlock
from repro.routing.permutation import dimension_order_path, random_permutation
from repro.routing.simulator import StoreForwardSimulator


def _permutation_paths(n=6, reps=2, seed=2):
    perm = random_permutation(1 << n, seed=seed)
    return [
        dimension_order_path(n, u, v)
        for u, v in enumerate(perm)
        if u != v
        for _ in range(reps)
    ]


def _permutation_workload(sim, n=6, reps=2, seed=2):
    for p in _permutation_paths(n, reps, seed):
        sim.inject(p)


class TestBasics:
    def test_single_packet(self):
        sim = BoundedBufferSimulator(Hypercube(4), 4)
        sim.inject([0, 1, 3, 7])
        assert sim.run() == 3

    def test_zero_hop(self):
        sim = BoundedBufferSimulator(Hypercube(3), 1)
        sim.inject([5])
        assert sim.run() == 0

    def test_large_buffers_match_unbounded(self):
        ref = StoreForwardSimulator(Hypercube(6))
        bb = BoundedBufferSimulator(Hypercube(6), 64)
        _permutation_workload(bb)
        assert bb.run() == ref.run(_permutation_paths()).makespan

    def test_release_steps(self):
        sim = BoundedBufferSimulator(Hypercube(3), 2)
        sim.inject([0, 1], release_step=7)
        assert sim.run() == 7

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BoundedBufferSimulator(Hypercube(3), 0)
        with pytest.raises(ValueError):
            BoundedBufferSimulator(Hypercube(3), 2, injection_reserve=2)
        sim = BoundedBufferSimulator(Hypercube(3), 2)
        with pytest.raises(ValueError):
            sim.inject([])


class TestBackpressure:
    def test_tiny_buffers_deadlock_without_reserve(self):
        sim = BoundedBufferSimulator(Hypercube(6), 2)
        _permutation_workload(sim, reps=4)
        with pytest.raises(BufferDeadlock):
            sim.run()

    def test_injection_reserve_restores_progress(self):
        sim = BoundedBufferSimulator(Hypercube(6), 4, injection_reserve=2)
        _permutation_workload(sim, reps=4)
        assert sim.run() > 0

    def test_constant_buffers_near_unbounded_speed(self):
        ref = StoreForwardSimulator(Hypercube(6))
        bb = BoundedBufferSimulator(Hypercube(6), 8, injection_reserve=4)
        _permutation_workload(bb, reps=4)
        t_ref = ref.run(_permutation_paths(reps=4)).makespan
        assert bb.run() <= 2 * t_ref

    def test_chain_advance_through_freed_slot(self):
        # two packets in a line: the downstream one frees its slot and the
        # upstream one takes it in the same step
        sim = BoundedBufferSimulator(Hypercube(3), 1)
        sim.inject([1, 3])       # departs immediately
        sim.inject([0, 1, 3])    # follows through node 1's single slot
        assert sim.run() <= 3
