"""Tests for Section 8.1's grid and tree multiple-copy embeddings."""

import pytest

from repro.core.grid_multicopy import grid_multicopy_embedding
from repro.core.tree_multicopy import cbt_multicopy_embedding
from repro.networks.grid import DirectedTorus


class TestDirectedTorus:
    def test_one_orientation_per_link(self):
        t = DirectedTorus((4, 4))
        t.validate()
        edges = set(t.edges())
        assert len(edges) == 2 * 16  # one per axis per vertex
        for (u, v) in edges:
            assert (v, u) not in edges

    def test_degenerate_axis(self):
        t = DirectedTorus((1, 4))
        assert t.num_edges == 4


class TestGridMulticopy:
    @pytest.mark.parametrize("dims", [(16, 16), (16, 16, 16), (64,), (64, 64)])
    def test_claims(self, dims):
        mc = grid_multicopy_embedding(dims)
        mc.verify()
        a = dims[0].bit_length() - 1
        assert mc.k == a
        assert mc.dilation == 1
        assert mc.edge_congestion == 1
        assert mc.node_load == a

    def test_copies_partition_used_links(self):
        mc = grid_multicopy_embedding((16, 16))
        seen = set()
        for copy in mc.copies:
            ids = set(copy.edge_congestion_counts())
            assert not (ids & seen)
            seen |= ids

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            grid_multicopy_embedding((16, 8))  # unequal sides
        with pytest.raises(ValueError):
            grid_multicopy_embedding((12, 12))  # not a power of two
        with pytest.raises(ValueError):
            grid_multicopy_embedding((8, 8))  # a = 3 odd
        with pytest.raises(ValueError):
            grid_multicopy_embedding(())


class TestTreeMulticopy:
    @pytest.mark.parametrize("m", [2, 4])
    def test_structure(self, m):
        mc = cbt_multicopy_embedding(m)
        mc.verify()
        n = m + (m.bit_length() - 1)
        assert mc.k == m
        assert mc.guest.num_vertices == 2**n - 1
        # O(1) constants (measured; recorded in EXPERIMENTS.md)
        assert mc.dilation <= 2 * m
        assert mc.edge_congestion <= 8
        assert mc.copy_load_allowed <= 3

    def test_bidirectional_edges_present(self):
        mc = cbt_multicopy_embedding(2)
        for copy in mc.copies:
            for (u, v) in mc.guest.edges():
                assert (u, v) in copy.edge_paths

    def test_copies_differ(self):
        mc = cbt_multicopy_embedding(4)
        assert mc.copies[0].vertex_map != mc.copies[1].vertex_map

    def test_non_power_of_two(self):
        with pytest.raises(ValueError):
            cbt_multicopy_embedding(3)
