"""Tests for the vectorized verification kernels vs the scalar referee."""

import numbers

import pytest

from repro.core import embed_cycle_load1
from repro.qa import default_space, verification_differential

# mirror of tests/test_qa.py's SMALL_POINTS: one point per construction kind
PARITY_POINTS = [
    ("cycle", {"n": 4}),
    ("cycle2", {"n": 4, "wide": True}),
    ("grid", {"dims": [4, 4], "torus": True}),
    ("ccc", {"n": 2}),
    ("tree", {"m": 2}),
    ("large-cycle", {"n": 2}),
    ("graycode", {"n": 3}),
    ("cycle-multicopy", {"n": 3}),
    ("butterfly-multicopy", {"m": 2, "undirected": True}),
    ("butterfly-multipath", {"m": 2}),
    ("grid-multicopy", {"dims": [4]}),
    ("cbt-multicopy", {"m": 2}),
    ("arbitrary-tree", {"vertices": 9, "tree_seed": 5, "m": 2}),
    ("cross-product", {"m": 2}),
]


def _signature(report):
    return (
        tuple((c.name, c.passed) for c in report.checks),
        tuple(sorted(report.metrics.items())),
    )


class TestPassingParity:
    @pytest.mark.parametrize("kind,params", PARITY_POINTS)
    def test_fast_matches_reference(self, kind, params):
        emb = default_space().get(kind).build(dict(params))
        fast = emb.verify(strict=False)
        reference = emb.verify_reference(strict=False)
        assert fast.ok and reference.ok
        assert _signature(fast) == _signature(reference)
        # deterministic passing reports match detail-for-detail too
        assert [c.detail for c in fast.checks] == [
            c.detail for c in reference.checks
        ]

    @pytest.mark.parametrize("kind,params", PARITY_POINTS)
    def test_referee_helper_agrees(self, kind, params):
        emb = default_space().get(kind).build(dict(params))
        checks = verification_differential(emb)
        assert checks, "every embedding style exposes verify_reference"
        for check in checks:
            assert check.passed, (kind, check.name, check.detail)

    def test_metrics_are_plain_ints(self):
        # json-serializability: no numpy scalars may leak out of the kernels
        report = embed_cycle_load1(6).verify(strict=False)
        for key, value in report.metrics.items():
            assert isinstance(value, numbers.Real), (key, type(value))
            assert not type(value).__module__.startswith("numpy"), key


class TestFailureParity:
    """Sabotaged embeddings: both engines must fail the same check."""

    def _pair(self, emb):
        fast = emb.verify(strict=False)
        reference = emb.verify_reference(strict=False)
        assert not fast.ok and not reference.ok
        assert [(c.name, c.passed) for c in fast.checks] == [
            (c.name, c.passed) for c in reference.checks
        ]
        return fast, reference

    def test_multipath_wrong_endpoint(self):
        emb = embed_cycle_load1(4)
        edge, paths = next(iter(emb.edge_paths.items()))
        bad = (paths[0][:-1] + (paths[0][-1] ^ 1,),) + tuple(paths[1:])
        emb.edge_paths[edge] = bad
        fast, reference = self._pair(emb)
        assert fast.failures[0].detail == reference.failures[0].detail

    def test_multipath_non_edge_hop(self):
        emb = embed_cycle_load1(4)
        edge, paths = next(iter(emb.edge_paths.items()))
        two_hop = next(p for p in paths if len(p) >= 3)
        # 3-bit jump mid-path: not a hypercube edge
        broken = (two_hop[0], two_hop[0] ^ 7, two_hop[-1])
        emb.edge_paths[edge] = (broken,) + tuple(
            p for p in paths if p is not two_hop
        )
        fast, reference = self._pair(emb)
        assert "hypercube edge" in fast.failures[0].detail
        assert fast.failures[0].detail == reference.failures[0].detail

    def test_multipath_duplicate_edge_in_bundle(self):
        emb = embed_cycle_load1(4)
        edge, paths = next(iter(emb.edge_paths.items()))
        dup = next(p for p in paths if len(p) >= 2)
        emb.edge_paths[edge] = tuple(paths) + (dup,)
        fast, reference = self._pair(emb)
        assert fast.failures[0].name == "edge-disjoint"
        assert fast.failures[0].detail == reference.failures[0].detail

    def test_multipath_node_out_of_range(self):
        emb = embed_cycle_load1(4)
        edge, paths = next(iter(emb.edge_paths.items()))
        big = 1 << emb.host.n
        # endpoints stay correct; an interior node escapes the host range
        emb.edge_paths[edge] = (
            (paths[0][0], big, paths[0][-1]),
        ) + tuple(paths[1:])
        fast, reference = self._pair(emb)
        assert "out of host range" in fast.failures[0].detail

    def test_strict_raises_in_both(self):
        emb = embed_cycle_load1(4)
        edge, paths = next(iter(emb.edge_paths.items()))
        emb.edge_paths[edge] = tuple(paths) + (paths[0],)
        with pytest.raises(AssertionError):
            emb.verify(strict=True)
        with pytest.raises(AssertionError):
            emb.verify_reference(strict=True)

    def test_empty_path_raises_like_scalar_indexing(self):
        emb = embed_cycle_load1(4)
        edge = next(iter(emb.edge_paths))
        emb.edge_paths[edge] = ((),)
        with pytest.raises(IndexError):
            emb.verify(strict=False)
        with pytest.raises(IndexError):
            emb.verify_reference(strict=False)

    def test_classical_embedding_bad_path(self):
        from repro.core.cycle_multicopy import graycode_cycle_embedding

        emb = graycode_cycle_embedding(4)
        edge, path = next(iter(emb.edge_paths.items()))
        emb.edge_paths[edge] = path[:-1] + (path[-1] ^ 3,)
        fast = emb.verify(strict=False)
        reference = emb.verify_reference(strict=False)
        assert not fast.ok and not reference.ok
        assert fast.failures[0].name == reference.failures[0].name
