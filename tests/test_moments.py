"""Tests for moment labels (Definition 1 / Lemma 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.hypercube.graph import Hypercube
from repro.hypercube.moments import moment, moment_label_bits, moment_table


class TestMoment:
    def test_moment_of_zero(self):
        assert moment(0) == 0

    def test_single_bits(self):
        # M(2^i) = b(i) = i
        for i in range(12):
            assert moment(1 << i) == i

    def test_xor_of_set_bit_indices(self):
        assert moment(0b101) == 0 ^ 2
        assert moment(0b1101) == 0 ^ 2 ^ 3
        assert moment(0b110) == 1 ^ 2

    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(0, 15))
    def test_flip_property(self, v, i):
        # M(v ^ 2^i) = M(v) ^ b(i)
        assert moment(v ^ (1 << i)) == moment(v) ^ i

    def test_range_check(self):
        with pytest.raises(ValueError):
            moment(8, n=3)
        with pytest.raises(ValueError):
            moment(-1)


class TestLemma2:
    @pytest.mark.parametrize("n", range(2, 11))
    def test_neighbors_have_distinct_moments(self, n):
        q = Hypercube(n)
        for u in range(0, q.num_nodes, max(1, q.num_nodes // 64)):
            ms = [moment(v) for v in q.neighbors(u)]
            assert len(set(ms)) == n

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_power_of_two_moment_alphabet(self, n):
        # when n is a power of two, each neighborhood uses exactly the full
        # alphabet [0, n)
        q = Hypercube(n)
        for u in range(q.num_nodes):
            assert {moment(v) for v in q.neighbors(u)} == set(range(n))


class TestMomentTable:
    @pytest.mark.parametrize("n", range(1, 12))
    def test_matches_scalar(self, n):
        table = moment_table(n)
        assert all(table[v] == moment(v) for v in range(2**n))

    def test_label_bits(self):
        assert moment_label_bits(1) == 1
        assert moment_label_bits(2) == 1
        assert moment_label_bits(3) == 2
        assert moment_label_bits(4) == 2
        assert moment_label_bits(5) == 3
        assert moment_label_bits(8) == 3
        assert moment_label_bits(9) == 4
        with pytest.raises(ValueError):
            moment_label_bits(0)
