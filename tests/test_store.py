"""The memmapped artifact store and the registry tiers built on it.

Covers the instant-start contract end to end: a store file round-trips a
CSR field-identically (packed int edges and JSON tuple edges alike), every
corruption class is caught by the right checksum at the right time,
transient filesystem errors never delete a healthy artifact, legacy JSON
artifacts migrate in place, two racing processes produce exactly one
build, and a fresh service serves its first batch off the mapped file
without rebuilding anything.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import embed_cycle_load1
from repro.core.fast_verify import embedding_csr
from repro.service.registry import (
    EmbeddingRegistry,
    decode_embedding,
    make_artifact,
)
from repro.service.shards import attach_shard
from repro.service.specs import EmbeddingSpec, build_spec
from repro.service.store import (
    EAGER_VERIFY_LIMIT,
    PackedEdges,
    StoreIntegrityError,
    open_store,
    read_store_header,
    write_store,
)


def _csr(n=6):
    return embedding_csr(embed_cycle_load1(n))


def _write(tmp_path, csr, blob="{}", **kw):
    kw.setdefault("spec_key", "k" * 64)
    kw.setdefault("kind", "cycle")
    path = tmp_path / "artifact.rpstore"
    info = write_store(path, csr, blob, **kw)
    return path, info


def _flip_byte(path, offset):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


class TestRoundtrip:
    def test_packed_edges_field_identity(self, tmp_path):
        csr = _csr()
        path, info = _write(tmp_path, csr)
        assert info.edges_mode == "packed"
        view = open_store(path)
        try:
            mapped = view.csr
            assert mapped.host_n == csr.host_n
            for f in ("nodes", "path_offsets", "bundle_offsets", "path_reversed"):
                assert np.array_equal(getattr(mapped, f), getattr(csr, f)), f
            assert list(mapped.edges) == list(csr.edges)
            assert mapped.lookup is not None  # searchsorted path is armed
        finally:
            view.close()

    def test_packed_resolution_matches_fresh(self, tmp_path):
        csr = _csr()
        path, _ = _write(tmp_path, csr)
        view = open_store(path)
        try:
            batch = list(csr.edges[:8]) + [(v, u) for u, v in csr.edges[:8]]
            got = view.csr.take(batch)
            want = csr.take(batch)
            assert all(np.array_equal(g, w) for g, w in zip(got, want))
            with pytest.raises(KeyError):
                view.csr.resolve([(0, 5)])  # not a guest edge
        finally:
            view.close()

    def test_tuple_vertex_edges_fall_back_to_json(self, tmp_path):
        csr = embedding_csr(build_spec(EmbeddingSpec.make("grid", dims=(4, 4))))
        path, info = _write(tmp_path, csr, kind="grid")
        assert info.edges_mode == "json"
        view = open_store(path)
        try:
            assert view.csr.edges == csr.edges  # nested tuples, hashable
            batch = list(csr.edges[:4])
            got = view.csr.take(batch)
            want = csr.take(batch)
            assert all(np.array_equal(g, w) for g, w in zip(got, want))
        finally:
            view.close()

    def test_blob_rides_behind_the_arrays(self, tmp_path):
        blob = json.dumps({"payload": "x" * 2048})
        path, info = _write(tmp_path, _csr(), blob=blob)
        assert info.blob_bytes == len(blob.encode())
        view = open_store(path)
        try:
            assert view.blob_text() == blob
        finally:
            view.close()

    def test_header_metadata(self, tmp_path):
        path, info = _write(
            tmp_path, _csr(), spec_key="s" * 64, kind="cycle",
            params={"n": 6}, package_version="9.9.9", construction="cycle(n=6)",
        )
        header = read_store_header(path)
        assert header["spec_key"] == "s" * 64
        assert header["kind"] == "cycle"
        assert header["params"] == {"n": 6}
        assert header["package_version"] == "9.9.9"
        assert header["sha256"] == info.sha256
        assert header["payload"] == info.nbytes
        # every array offset is 8-aligned so int64 views map directly
        assert all(s["offset"] % 8 == 0 for s in header["arrays"])

    def test_write_leaves_no_temp_files(self, tmp_path):
        _write(tmp_path, _csr())
        assert list(tmp_path.glob("*.tmp")) == []

    def test_closed_view_refuses(self, tmp_path):
        path, _ = _write(tmp_path, _csr())
        view = open_store(path)
        view.close()
        with pytest.raises(StoreIntegrityError):
            view.blob_text()
        with pytest.raises(StoreIntegrityError):
            view.verify_payload()


class TestPackedEdges:
    def test_sequence_surface(self):
        uv = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.int64)
        edges = PackedEdges(uv)
        assert len(edges) == 3
        assert edges[1] == (2, 3)
        assert edges[-1] == (4, 5)
        assert edges[:2] == [(0, 1), (2, 3)]
        assert list(edges) == [(0, 1), (2, 3), (4, 5)]
        assert all(isinstance(x, int) for e in edges for x in e)


class TestIntegrity:
    def test_not_a_store_file(self, tmp_path):
        bogus = tmp_path / "bogus.rpstore"
        bogus.write_bytes(b"not a store" * 10)
        with pytest.raises(StoreIntegrityError):
            open_store(bogus)
        with pytest.raises(StoreIntegrityError):
            read_store_header(bogus)

    def test_truncation_detected(self, tmp_path):
        path, _ = _write(tmp_path, _csr())
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 64)
        with pytest.raises(StoreIntegrityError):
            open_store(path)

    def test_payload_tamper_caught_eagerly_when_small(self, tmp_path):
        path, info = _write(tmp_path, _csr())
        assert info.nbytes <= EAGER_VERIFY_LIMIT  # so "auto" hashes on open
        _flip_byte(path, read_store_header(path)["data_start"])
        with pytest.raises(StoreIntegrityError):
            open_store(path)

    def test_lazy_mode_defers_payload_hash(self, tmp_path):
        path, _ = _write(tmp_path, _csr())
        _flip_byte(path, read_store_header(path)["data_start"])
        view = open_store(path, payload_verify="lazy")  # open succeeds ...
        try:
            with pytest.raises(StoreIntegrityError):
                view.verify_payload()  # ... the on-demand re-hash balks
        finally:
            view.close()

    def test_blob_tamper_caught_on_read_even_in_lazy_mode(self, tmp_path):
        path, _ = _write(tmp_path, _csr(), blob='{"k": "v"}')
        _flip_byte(path, read_store_header(path)["blob_offset"])
        view = open_store(path, payload_verify="lazy")
        try:
            with pytest.raises(StoreIntegrityError):
                view.blob_text()  # blob reads are always digest-checked
        finally:
            view.close()

    def test_expectations_pin_key_and_versions(self, tmp_path):
        path, _ = _write(
            tmp_path, _csr(), spec_key="a" * 64, package_version="1.2.3",
            artifact_version=1,
        )
        open_store(path, expect_key="a" * 64, expect_package_version="1.2.3",
                   expect_artifact_version=1).close()
        with pytest.raises(StoreIntegrityError):
            open_store(path, expect_key="b" * 64)
        with pytest.raises(StoreIntegrityError):
            open_store(path, expect_package_version="9.9.9")
        with pytest.raises(StoreIntegrityError):
            open_store(path, expect_artifact_version=2)

    def test_verify_mode_env_and_validation(self, tmp_path, monkeypatch):
        path, _ = _write(tmp_path, _csr())
        _flip_byte(path, read_store_header(path)["data_start"])
        monkeypatch.setenv("REPRO_STORE_VERIFY", "lazy")
        open_store(path).close()  # env wins: no eager hash, no error
        monkeypatch.setenv("REPRO_STORE_VERIFY", "eager")
        with pytest.raises(StoreIntegrityError):
            open_store(path)
        monkeypatch.setenv("REPRO_STORE_VERIFY", "bogus")
        with pytest.raises(ValueError):
            open_store(path)

    def test_missing_file_raises_oserror_not_integrity(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_store(tmp_path / "absent.rpstore")


def _spec(n=6):
    return EmbeddingSpec.make("cycle", n=n)


class TestRegistryTiers:
    def test_get_store_promotes_to_warm(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path, promote_after=2)
        reg.get_or_build(_spec())
        fresh = EmbeddingRegistry(cache_dir=tmp_path, promote_after=2)
        first = fresh.get_store(_spec())
        assert first is not None
        assert fresh.metrics.count("warm_promotions") == 0
        second = fresh.get_store(_spec())
        assert fresh.metrics.count("warm_promotions") == 1
        third = fresh.get_store(_spec())
        assert third is second  # pinned: no re-open, no header parse
        assert fresh.metrics.count("warm_hits") == 1
        snap = fresh.stats()
        assert snap["warm_entries"] == 1
        assert "cache_hit_rate{tier=warm}" in snap["gauges"]

    def test_warm_eviction_drops_pin_only(self, tmp_path):
        reg = EmbeddingRegistry(
            cache_dir=tmp_path, promote_after=1, warm_capacity=1
        )
        for n in (6, 8):
            reg.get_or_build(_spec(n))
        first = reg.get_store(_spec(6))
        csr = first.csr
        reg.get_store(_spec(8))  # evicts the Q_6 pin
        assert reg.metrics.count("warm_evictions") == 1
        # the evicted view closed, but a holder's arrays stay mapped
        paths = csr.take([(0, 1)])
        assert paths[0].size > 0

    def test_transient_error_spares_the_artifact(self, tmp_path, monkeypatch):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = _spec()
        reg.get_or_build(spec)
        path = reg.path_for(spec)

        import repro.service.registry as registry_mod

        def flaky(*args, **kwargs):
            raise PermissionError("flaky mount")

        monkeypatch.setattr(registry_mod, "open_store", flaky)
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        assert fresh.get_store(spec) is None
        assert fresh.get(spec) is None
        assert path.exists()  # NOT deleted: the file may be perfectly fine
        assert fresh.metrics.count("disk_transient") >= 1
        assert fresh.metrics.count("disk_corrupt") == 0

    def test_corrupt_artifact_is_removed(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = _spec()
        reg.get_or_build(spec)
        path = reg.path_for(spec)
        with open(path, "r+b") as fh:
            fh.truncate(64)
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        assert fresh.get_store(spec) is None
        assert not path.exists()
        assert fresh.metrics.count("disk_corrupt") == 1

    def test_clear_sweeps_tmp_and_lock_orphans(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = _spec()
        reg.get_or_build(spec)
        kind_dir = reg.path_for(spec).parent
        (kind_dir / "deadbeef.rpstore.12345.abcd.tmp").write_bytes(b"orphan")
        (kind_dir / "deadbeef.lock").write_text("99999")
        (tmp_path / "stray.tmp").write_bytes(b"orphan")
        assert reg.clear() == 1  # one artifact, orphans not counted
        assert list(tmp_path.rglob("*.tmp")) == []
        assert list(tmp_path.rglob("*.lock")) == []
        assert reg.metrics.count("orphans_swept") == 3

    def test_legacy_json_fallback_and_migrate(self, tmp_path):
        spec = _spec()
        emb = build_spec(spec)
        emb.verify()
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        legacy = reg.legacy_path_for(spec)
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(make_artifact(spec, emb))
        assert reg.get(spec) is not None  # served off the JSON tier
        assert reg.metrics.count("legacy_hits") == 1
        out = reg.migrate(verify_payload=True)
        assert out == {"migrated": 1, "skipped": 0, "failed": 0}
        assert not legacy.exists()
        assert reg.path_for(spec).exists()
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        assert fresh.get_store(spec) is not None

    def test_migrate_keeps_unreadable_artifacts(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        bad = tmp_path / ("f" * 64 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{ not json")
        out = reg.migrate()
        assert out["failed"] == 1
        assert bad.exists()  # never destroy what cannot be replaced

    def test_migrate_skips_existing_binary(self, tmp_path):
        spec = _spec()
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        emb = reg.get_or_build(spec)
        reg.legacy_path_for(spec).write_text(make_artifact(spec, emb))
        out = reg.migrate()
        assert out == {"migrated": 0, "skipped": 1, "failed": 0}

    def test_ls_reports_both_tiers(self, tmp_path):
        spec = _spec()
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        emb = reg.get_or_build(spec)
        reg.legacy_path_for(spec).write_text(make_artifact(spec, emb))
        tiers = sorted(row["tier"] for row in reg.ls())
        assert tiers == ["legacy-json", "store"]

    def test_multicopy_roundtrip_through_binary_tier(self, tmp_path):
        spec = EmbeddingSpec.make("ccc", n=4)
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        built = reg.get_or_build(spec)
        fresh = EmbeddingRegistry(cache_dir=tmp_path)
        back = fresh.get(spec)  # materialized from the store blob
        assert back.k == built.k
        back.verify()
        view = fresh.get_store(spec)
        want = embedding_csr(built)
        batch = list(want.edges[:6]) + [(v, u) for u, v in want.edges[:6]]
        got = view.csr.take(batch)
        ref = want.take(batch)
        assert all(np.array_equal(g, r) for g, r in zip(got, ref))


def _env():
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return env


_RACE_WORKER = """
import sys
from repro.service.registry import EmbeddingRegistry
from repro.service.specs import EmbeddingSpec

reg = EmbeddingRegistry(cache_dir=sys.argv[1])
spec = EmbeddingSpec.make("cycle", n=8)
emb = reg.get_or_build(spec)
assert emb is not None
print(reg.metrics.count("builds"))
"""


class TestCrossProcess:
    def test_two_processes_build_exactly_once(self, tmp_path):
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _RACE_WORKER, str(tmp_path)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=_env(),
            )
            for _ in range(2)
        ]
        outs = [p.communicate(timeout=120) for p in procs]
        assert all(p.returncode == 0 for p in procs), outs
        builds = [int(out.strip()) for out, _ in outs]
        assert sum(builds) == 1, f"duplicate build: {builds}"
        # whoever won, the artifact on disk is whole and valid
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = EmbeddingSpec.make("cycle", n=8)
        view = reg.get_store(spec)
        assert view is not None
        view.verify_payload()
        assert list(tmp_path.rglob("*.tmp")) == []
        assert list(tmp_path.rglob("*.lock")) == []

    def test_dead_builders_lock_is_stolen(self, tmp_path):
        reg = EmbeddingRegistry(cache_dir=tmp_path)
        spec = _spec()
        lock = reg._lock_path_for(spec)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("999999999")  # a pid that cannot be alive
        emb = reg.get_or_build(spec)  # must not deadlock
        assert emb is not None
        assert reg.metrics.count("builds") == 1
        assert not lock.exists()

    def test_concurrent_admits_do_not_tear(self, tmp_path):
        spec = _spec()
        emb = build_spec(spec)
        emb.verify()
        text = make_artifact(spec, emb)
        import threading

        regs = [EmbeddingRegistry(cache_dir=tmp_path) for _ in range(4)]
        threads = [
            threading.Thread(target=r.admit_artifact, args=(spec, text, emb))
            for r in regs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        view = EmbeddingRegistry(cache_dir=tmp_path).get_store(spec)
        assert view is not None
        view.verify_payload()
        back = decode_embedding(
            json.loads(view.blob_text())["payload"], verify=False
        )
        back.verify()


class TestFileBackedServing:
    def test_cold_service_serves_off_the_file(self, tmp_path):
        from repro.service.api import RoutingService

        spec = _spec(8)
        warm = RoutingService(registry=EmbeddingRegistry(cache_dir=tmp_path))
        want = warm.route_batch(spec, [(0, 1), (3, 2)])
        warm.close()

        cold = RoutingService(registry=EmbeddingRegistry(cache_dir=tmp_path))
        got = cold.route_batch(spec, [(0, 1), (3, 2)])
        assert [got.paths(i) for i in range(2)] == [
            want.paths(i) for i in range(2)
        ]
        shard = cold.shard_for(spec)
        assert shard.info.backend == "file"  # no rebuild, no shm copy
        assert shard.info.name.endswith(".rpstore")
        assert cold.metrics.count("builds") == 0
        cold.close()

    def test_attach_shard_by_store_path(self, tmp_path):
        csr = _csr()
        path, _ = _write(tmp_path, csr, spec_key="w" * 64)
        view = attach_shard(str(path))
        assert view.info.backend == "file"
        assert view.info.spec_key == "w" * 64
        batch = list(csr.edges[:4])
        got = view.csr.take(batch)
        want = csr.take(batch)
        assert all(np.array_equal(g, w) for g, w in zip(got, want))
        view.close()
