"""Tests for the application layer (Sections 2 and 8.3)."""

import numpy as np
import pytest

from repro.apps.broadcast import cycle_neighbor_exchange
from repro.apps.relaxation import GridRelaxation, relaxation_strategy_comparison


class TestCycleExchange:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_multipath_beats_gray(self, n):
        res = cycle_neighbor_exchange(n, m=30)
        assert res["multipath"] < res["graycode"]
        assert res["graycode"] == 30

    def test_lower_bound_respected(self):
        res = cycle_neighbor_exchange(8, m=24)
        assert res["multipath"] >= 3  # at least one 3-step round

    def test_rounds_formula(self):
        res = cycle_neighbor_exchange(8, m=13)
        # packets_per_edge = 6 at n=8 -> ceil(13/6) = 3 rounds of 3 steps
        assert res["rounds"] == 3
        assert res["multipath"] == 9

    def test_single_packet(self):
        res = cycle_neighbor_exchange(4, m=1)
        assert res["multipath"] <= 3
        assert res["graycode"] == 1

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            cycle_neighbor_exchange(4, 0)


class TestRelaxationNumerics:
    def test_converges_toward_harmonic_solution(self):
        relax = GridRelaxation(24)
        first = relax.step()
        for _ in range(400):
            last = relax.step()
        assert last < first
        # interior values bounded by the boundary condition
        assert 0.0 <= relax.values.min() and relax.values.max() <= 1.0

    def test_boundary_preserved(self):
        relax = GridRelaxation(16)
        relax.run(50)
        assert np.allclose(relax.values[0, :], 1.0)

    def test_too_small(self):
        with pytest.raises(ValueError):
            GridRelaxation(2)


class TestStrategyComparison:
    def test_blocking_reduces_total_communication(self):
        table = relaxation_strategy_comparison(256, 16)
        assert (
            table["blocked_multipath"]["total_values"]
            < table["blocked_large_copy"]["total_values"]
            < table["large_copy_points"]["total_values"]
        )

    def test_steps_verified_schedule(self):
        table = relaxation_strategy_comparison(512, 16)
        # steps come from a verified conflict-free schedule
        assert table["blocked_multipath"]["steps"] > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            relaxation_strategy_comparison(256, 10)  # N not a power of two
        with pytest.raises(ValueError):
            relaxation_strategy_comparison(250, 16)  # M not divisible


class TestTotalExchange:
    def test_single_port_closed_form(self):
        from repro.apps.total_exchange import single_port_exchange_steps

        for n in (2, 4, 6):
            assert single_port_exchange_steps(n) == n * 2 ** (n - 1)

    def test_all_port_beats_single_port(self):
        from repro.apps.total_exchange import total_exchange_comparison

        row = total_exchange_comparison(5)
        assert row["all_port"] < row["single_port"]

    def test_ecube_uniform_load(self):
        from repro.apps.total_exchange import ecube_link_load

        assert ecube_link_load(4) == {8: 64}


class TestCannonExport:
    def test_public_api(self):
        from repro.apps import cannon_matmul  # noqa: F401


class TestBitonicSort:
    def test_sorts_random(self):
        import random

        from repro.apps.bitonic import bitonic_sort

        rng = random.Random(7)
        vals = [rng.randint(0, 99) for _ in range(64)]
        out, stats = bitonic_sort(vals)
        assert out == sorted(vals)
        assert stats["stages"] == 21

    def test_sorts_adversarial(self):
        from repro.apps.bitonic import bitonic_sort

        for vals in ([3, 1], list(range(16))[::-1], [5] * 8):
            out, _ = bitonic_sort(vals)
            assert out == sorted(vals)

    def test_stage_count(self):
        from repro.apps.bitonic import bitonic_communication_steps

        assert bitonic_communication_steps(4) == 10
        assert bitonic_communication_steps(10) == 55

    def test_invalid_size(self):
        import pytest

        from repro.apps.bitonic import bitonic_sort

        with pytest.raises(ValueError):
            bitonic_sort([1, 2, 3])

    def test_link_crossings_count(self):
        from repro.apps.bitonic import bitonic_sort

        _, stats = bitonic_sort(list(range(8))[::-1])
        # every stage uses all 2^n directed links of its dimension
        assert stats["link_crossings"] == stats["stages"] * 8
