"""Tests for the one-to-all broadcast module (E14's substrate)."""

import pytest

from repro.apps.one_to_all import (
    binomial_broadcast_time,
    binomial_tree,
    broadcast_comparison,
    hamiltonian_broadcast_time,
)
from repro.hypercube.graph import Hypercube


class TestBinomialTree:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_spanning(self, n):
        parent = binomial_tree(n)
        assert len(parent) == 2**n - 1
        host = Hypercube(n)
        for v, p in parent.items():
            assert host.is_edge(p, v)
        # every node reaches the root
        for v in parent:
            cur, hops = v, 0
            while cur != 0:
                cur = parent[cur]
                hops += 1
                assert hops <= n
            assert hops <= n

    def test_other_root(self):
        parent = binomial_tree(3, root=5)
        assert 5 not in parent
        assert len(parent) == 7

    def test_depth_is_n(self):
        parent = binomial_tree(4)
        depth = {0: 0}
        # heap-free depth computation
        def d(v):
            if v not in depth:
                depth[v] = d(parent[v]) + 1
            return depth[v]

        assert max(d(v) for v in parent) == 4


class TestBroadcastTimes:
    def test_binomial_pipelined_formula(self):
        for n in (3, 5):
            for m in (1, 10, 100):
                assert binomial_broadcast_time(n, m) == m + n - 1

    def test_hamiltonian_formula_shape(self):
        n, m = 6, 60
        expected = (1 << n) - 1 + (-(-m // n) - 1)
        assert abs(hamiltonian_broadcast_time(n, m) - expected) <= n

    def test_single_packet(self):
        assert binomial_broadcast_time(4, 1) == 4
        assert hamiltonian_broadcast_time(4, 1) == 15

    def test_other_root(self):
        t0 = hamiltonian_broadcast_time(4, 16, root=0)
        t5 = hamiltonian_broadcast_time(4, 16, root=5)
        assert t0 == t5  # vertex-transitive

    def test_invalid(self):
        with pytest.raises(ValueError):
            binomial_broadcast_time(4, 0)
        with pytest.raises(ValueError):
            hamiltonian_broadcast_time(5, 8)  # odd n

    def test_comparison_rows(self):
        rows = broadcast_comparison(4, (4, 400))
        assert len(rows) == 2
        assert rows[0][1] < rows[0][2]   # small M: tree wins
        assert rows[1][1] > rows[1][2]   # large M: cycles win
