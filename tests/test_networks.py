"""Tests for the guest graph substrates."""

import math

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.networks import (
    Butterfly,
    CompleteBinaryTree,
    CubeConnectedCycles,
    DirectedCycle,
    DirectedPath,
    FFTGraph,
    Grid,
    Torus,
    random_binary_tree,
    square_grid_map,
)
from repro.networks.butterfly import butterfly_to_ccc_embedding


class TestCycleAndPath:
    def test_cycle_counts(self):
        c = DirectedCycle(8)
        c.validate()
        assert c.num_vertices == 8
        assert c.num_edges == 8
        assert c.max_out_degree == 1

    def test_cycle_wraps(self):
        assert (7, 0) in set(DirectedCycle(8).edges())

    def test_path(self):
        p = DirectedPath(5)
        p.validate()
        assert p.num_edges == 4
        assert (4, 0) not in set(p.edges())

    def test_invalid(self):
        with pytest.raises(ValueError):
            DirectedCycle(1)
        with pytest.raises(ValueError):
            DirectedPath(0)


class TestGrid:
    def test_counts(self):
        g = Grid((3, 4))
        g.validate()
        assert g.num_vertices == 12
        # internal links: 2*(2*4 + 3*3) directed
        assert g.num_edges == 2 * (2 * 4 + 3 * 3)

    def test_torus_wraps(self):
        t = Torus((3, 3))
        t.validate()
        assert ((0, 0), (2, 0)) in set(t.edges())
        assert ((0, 0), (0, 2)) in set(t.edges())

    def test_degenerate_axis(self):
        g = Grid((1, 5))
        g.validate()
        assert g.num_edges == 2 * 4

    def test_torus_size2_axis_not_doubled(self):
        # wrap on a length-2 axis gives a single undirected link (two directed)
        t = Torus((2, 2))
        t.validate()
        assert t.num_edges == 8

    def test_axis_edges(self):
        g = Grid((2, 3))
        axis0 = list(g.axis_edges(0))
        assert all(u[1] == v[1] for u, v in axis0)
        assert len(axis0) == 2 * 3  # 1 link per column * 3 cols * 2 dirs

    def test_matches_networkx(self):
        g = Grid((4, 5)).to_networkx().to_undirected()
        ref = nx.grid_graph(dim=[5, 4])  # networkx reverses dims
        assert nx.is_isomorphic(g, ref)


class TestSquareGridMap:
    def test_already_square(self):
        mapping, dims, load = square_grid_map((4, 4))
        assert dims == (4, 4)
        assert load == 1
        assert all(mapping[v] == v for v in mapping)

    def test_rectangle(self):
        mapping, dims, load = square_grid_map((2, 8))
        assert dims == (4, 4)
        assert load == 2
        assert len(mapping) == 16

    def test_dilation_one(self):
        mapping, dims, load = square_grid_map((3, 27))
        for (u, mu) in mapping.items():
            for v, mv in mapping.items():
                if sum(abs(a - b) for a, b in zip(u, v)) == 1:
                    assert sum(abs(a - b) for a, b in zip(mu, mv)) <= 1

    @given(
        st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=3)
    )
    def test_load_bound(self, dims):
        mapping, sq_dims, load = square_grid_map(dims)
        side = sq_dims[0]
        expected = math.prod(math.ceil(d / side) for d in dims)
        assert load <= expected
        assert len(mapping) == math.prod(dims)


class TestCCC:
    def test_counts(self):
        ccc = CubeConnectedCycles(3)
        ccc.validate()
        assert ccc.num_vertices == 3 * 8
        assert ccc.num_edges == 2 * 3 * 8  # out-degree 2
        assert ccc.max_out_degree == 2

    def test_undirected_adds_reverse_straight(self):
        ccc = CubeConnectedCycles(3, undirected=True)
        ccc.validate()
        assert ccc.num_edges == 3 * 3 * 8

    def test_columns_are_cycles(self):
        ccc = CubeConnectedCycles(4)
        straight = set(ccc.straight_edges())
        for c in range(16):
            for level in range(4):
                assert ((level, c), ((level + 1) % 4, c)) in straight

    def test_cross_edges_paired(self):
        ccc = CubeConnectedCycles(3)
        cross = set(ccc.cross_edges())
        for u, v in cross:
            assert (v, u) in cross

    def test_edge_level(self):
        ccc = CubeConnectedCycles(4)
        assert ccc.edge_level((1, 0), (2, 0)) == 1
        assert ccc.edge_level((3, 0), (0, 0)) == 3
        assert ccc.edge_level((2, 0), (2, 4)) == 2
        with pytest.raises(ValueError):
            ccc.edge_level((0, 0), (2, 0))


class TestButterflyAndFFT:
    def test_butterfly_counts(self):
        bf = Butterfly(3)
        bf.validate()
        assert bf.num_vertices == 3 * 8
        assert bf.num_edges == 2 * 3 * 8

    def test_fft_counts(self):
        fft = FFTGraph(3)
        fft.validate()
        assert fft.num_vertices == 4 * 8
        assert fft.num_edges == 2 * 3 * 8

    def test_fft_is_layered(self):
        fft = FFTGraph(2)
        for (lu, _), (lv, _) in fft.edges():
            assert lv == lu + 1

    def test_butterfly_to_ccc(self):
        n = 3
        vmap, paths = butterfly_to_ccc_embedding(n)
        bf = Butterfly(n)
        # dilation 2
        assert max(len(p) - 1 for p in paths.values()) == 2
        # congestion <= 2 on CCC edges
        cong = {}
        for p in paths.values():
            for e in zip(p, p[1:]):
                cong[e] = cong.get(e, 0) + 1
        assert max(cong.values()) <= 2
        assert set(paths) == set(bf.edges())


class TestTrees:
    def test_cbt_counts(self):
        t = CompleteBinaryTree(4)
        t.validate()
        assert t.num_vertices == 15
        assert t.num_edges == 28
        assert t.max_out_degree == 3

    def test_cbt_levels(self):
        t = CompleteBinaryTree(4)
        assert t.level_of(1) == 0
        assert t.level_of(2) == 1
        assert t.level_of(15) == 3
        assert list(t.leaves()) == list(range(8, 16))

    def test_random_tree_bounded_degree(self):
        t = random_binary_tree(100, seed=3)
        t.validate()
        assert t.num_vertices == 100
        assert t.max_degree <= 3

    def test_random_tree_deterministic(self):
        t1 = random_binary_tree(50, seed=7)
        t2 = random_binary_tree(50, seed=7)
        assert t1.parent == t2.parent

    def test_random_tree_connected(self):
        t = random_binary_tree(64, seed=1)
        g = t.to_networkx().to_undirected()
        assert nx.is_connected(g)
