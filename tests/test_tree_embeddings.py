"""Tests for Theorem 5 and Section 6.2 (tree embeddings)."""

from collections import Counter

import pytest

from repro.core.butterfly_multicopy import butterfly_multicopy_embedding
from repro.core.tree_multipath import (
    arbitrary_tree_embedding,
    cbt_to_butterfly_map,
    theorem5_embedding,
    tree_to_cbt_map,
)
from repro.networks.tree import random_binary_tree


class TestButterflyMulticopy:
    @pytest.mark.parametrize("m", [2, 4])
    def test_directed(self, m):
        mc = butterfly_multicopy_embedding(m)
        mc.verify()
        assert mc.k == m
        assert mc.dilation == 2
        assert mc.edge_congestion <= 4  # CCC congestion 2 x route sharing 2

    @pytest.mark.parametrize("m", [2, 4])
    def test_undirected(self, m):
        mc = butterfly_multicopy_embedding(m, undirected=True)
        mc.verify()
        assert mc.edge_congestion <= 8  # Section 5.4: at most doubled


class TestCBTToButterfly:
    @pytest.mark.parametrize("m", [2, 4])
    def test_shape(self, m):
        vmap, routes = cbt_to_butterfly_map(m)
        n = m + (m.bit_length() - 1)
        assert len(vmap) == 2**n - 1

    @pytest.mark.parametrize("m", [2, 4])
    def test_leaf_injectivity(self, m):
        # Theorem 5 needs each X column to receive at most one row-tree leaf
        vmap, _ = cbt_to_butterfly_map(m)
        n = m + (m.bit_length() - 1)
        leaves = [vmap[v] for v in range(1 << (n - 1), 1 << n)]
        assert len(set(leaves)) == len(leaves)

    @pytest.mark.parametrize("m", [2, 4])
    def test_load_is_constant(self, m):
        vmap, _ = cbt_to_butterfly_map(m)
        assert max(Counter(vmap.values()).values()) <= 3

    @pytest.mark.parametrize("m", [2, 4])
    def test_subtree_edges_have_dilation_one(self, m):
        vmap, routes = cbt_to_butterfly_map(m)
        for (parent, child), route in routes.items():
            if parent >= m:
                assert len(route) == 2

    def test_routes_are_butterfly_walks(self):
        from repro.networks.butterfly import Butterfly

        m = 4
        _, routes = cbt_to_butterfly_map(m)
        bf = Butterfly(m, undirected=True)
        edges = set(bf.edges())
        for route in routes.values():
            for a, b in zip(route, route[1:]):
                assert (a, b) in edges

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            cbt_to_butterfly_map(3)


class TestTheorem5:
    @pytest.mark.parametrize("m", [2, 4])
    def test_valid_and_width(self, m):
        emb = theorem5_embedding(m)
        emb.verify()
        n = m + (m.bit_length() - 1)
        assert emb.host.n == 2 * n
        assert emb.guest.num_vertices == 2 ** (2 * n) - 1
        # every edge with movement carries the full width n
        widths = [
            len(ps) for ps in emb.edge_paths.values() if len(ps[0]) > 1
        ]
        assert min(widths) == n

    @pytest.mark.parametrize("m", [2, 4])
    def test_load_constant(self, m):
        emb = theorem5_embedding(m)
        assert emb.info["load"] <= 4

    def test_bidirectional_edges_present(self):
        emb = theorem5_embedding(2)
        tree = emb.guest
        for (u, v) in tree.edges():
            assert (u, v) in emb.edge_paths
            assert (v, u) in emb.edge_paths


class TestTreeToCBT:
    @pytest.mark.parametrize("size,levels", [(7, 3), (50, 6), (500, 9)])
    def test_mapping_complete(self, size, levels):
        tree = random_binary_tree(size, seed=1)
        mapping = tree_to_cbt_map(tree, levels)
        assert set(mapping) == set(tree.vertices())
        assert all(1 <= h < (1 << levels) for h in mapping.values())

    def test_load_small(self):
        tree = random_binary_tree(500, seed=3)
        mapping = tree_to_cbt_map(tree, 9)
        assert max(Counter(mapping.values()).values()) <= 8

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            tree_to_cbt_map(random_binary_tree(20, seed=0), 4)


class TestArbitraryTrees:
    def test_small(self):
        emb = arbitrary_tree_embedding(random_binary_tree(50, seed=2), 2)
        emb.verify()
        assert emb.load <= 6

    def test_larger(self):
        emb = arbitrary_tree_embedding(random_binary_tree(1000, seed=2), 4)
        emb.verify()
        # width O(n) with a few paths lost to greedy conflicts
        n = emb.info["n"]
        widths = [len(ps) for ps in emb.edge_paths.values() if len(ps[0]) > 1]
        assert min(widths) >= n // 2
