"""Tests for the top-level public API surface."""

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        emb = repro.embed_cycle_load1(6)
        emb.verify()
        assert isinstance(emb, repro.MultiPathEmbedding)
        assert isinstance(emb.host, repro.Hypercube)

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.apps
        import repro.core
        import repro.fault
        import repro.hypercube
        import repro.networks
        import repro.routing

        for mod in (
            repro.analysis,
            repro.apps,
            repro.core,
            repro.fault,
            repro.hypercube,
            repro.networks,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"

    def test_py_typed_marker_present(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()
