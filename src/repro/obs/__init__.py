"""repro.obs — zero-dependency instrumentation for the whole toolkit.

Every quantity the paper claims — width, dilation, congestion, delivery
steps — is *measured* somewhere in this codebase.  This subsystem gives
those measurements one home:

* :mod:`repro.obs.metrics`  — :class:`MetricsRegistry`: counters, gauges
  and histograms with labeled series, thread-safe and dependency-free;
* :mod:`repro.obs.recorder` — per-directed-link congestion/occupancy
  recorders the simulators fill during a run (:class:`LinkRecorder`),
  plus the falsy :class:`NullRecorder` fast path that keeps disabled
  instrumentation off the hot loops entirely;
* :mod:`repro.obs.trace`    — lightweight ``span()`` timing contexts that
  nest into a trace tree;
* :mod:`repro.obs.profile`  — opt-in ``perf_counter`` sampling hooks
  around build/route/simulate hot paths (``REPRO_PROFILE=1`` or
  :func:`enable_profiling`); disabled they cost one attribute load;
* :mod:`repro.obs.export`   — JSON/CSV exporters so EXPERIMENTS.md rows
  and benchmark tables come from recorded metrics, not hand-copied
  prints.

Instrumentation is **off by default**: simulators take ``recorder=None``,
profiling is a no-op until enabled, and the null paths add no per-step
allocations (asserted in ``tests/test_obs.py``).

Quickstart::

    from repro.obs import LinkRecorder, MetricsRegistry, span

    rec = LinkRecorder()
    result = sim.run(schedule, recorder=rec)     # any Simulator
    rec.congestion                                # max packets per link
    rec.step_histogram()                          # arrivals per step

    reg = MetricsRegistry()
    reg.counter("requests", kind="cycle").inc()
    with span("build"):                           # nested trace tree
        ...
"""

from repro.obs.export import (
    collect_snapshot,
    snapshot_to_csv,
    snapshot_to_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
    profile_span,
    profiling_enabled,
    profiling_registry,
    profiling_tracer,
)
from repro.obs.recorder import NULL_RECORDER, LinkRecorder, NullRecorder
from repro.obs.trace import Span, Tracer, get_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LinkRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "Tracer",
    "collect_snapshot",
    "disable_profiling",
    "enable_profiling",
    "get_tracer",
    "profile_span",
    "profiling_enabled",
    "profiling_registry",
    "profiling_tracer",
    "snapshot_to_csv",
    "snapshot_to_json",
    "span",
]
