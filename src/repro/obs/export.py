"""JSON/CSV exporters over recorded observability data.

:func:`collect_snapshot` merges whatever sources a run produced — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.recorder.LinkRecorder`, a
:class:`~repro.obs.trace.Tracer` — into one plain dict;
:func:`snapshot_to_json` / :func:`snapshot_to_csv` render it.  The CSV
form is long/tidy (``section,series,field,value``) so spreadsheet and
pandas consumers need no schema knowledge.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Optional

__all__ = ["collect_snapshot", "snapshot_to_json", "snapshot_to_csv"]


def collect_snapshot(
    registry: Optional[Any] = None,
    recorder: Optional[Any] = None,
    tracer: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge metric/link/trace sources into one export-ready dict."""
    snap: Dict[str, Any] = {}
    if meta:
        snap["meta"] = dict(meta)
    if registry is not None:
        snap["metrics"] = registry.snapshot()
    if recorder is not None and getattr(recorder, "enabled", False):
        snap["links"] = recorder.snapshot()
    if tracer is not None:
        trace = tracer.to_dict()
        if trace.get("spans"):
            snap["trace"] = trace
    return snap


def snapshot_to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _rows(snapshot: Dict[str, Any]):
    for key, value in sorted((snapshot.get("meta") or {}).items()):
        yield ("meta", key, "", value)
    metrics = snapshot.get("metrics") or {}
    for section in ("counters", "gauges"):
        for series, value in sorted((metrics.get(section) or {}).items()):
            yield (section, series, "", value)
    for series, summary in sorted((metrics.get("histograms") or {}).items()):
        for field, value in summary.items():
            if field == "buckets":
                for bucket, count in value.items():
                    yield ("histograms", series, f"le_{bucket}", count)
            else:
                yield ("histograms", series, field, value)
    links = snapshot.get("links") or {}
    for scalar in ("congestion", "delivered", "makespan"):
        if scalar in links:
            yield ("links", scalar, "", links[scalar])
    for eid, entry in sorted(
        (links.get("links") or {}).items(), key=lambda kv: int(kv[0])
    ):
        for field, value in entry.items():
            if field == "edge":
                value = f"{value[0]}->{value[1]}"
            yield ("link", eid, field, value)
    for step, count in sorted(
        (links.get("step_histogram") or {}).items(), key=lambda kv: int(kv[0])
    ):
        yield ("step_histogram", step, "arrivals", count)


def snapshot_to_csv(snapshot: Dict[str, Any]) -> str:
    """Long/tidy CSV: one ``section,series,field,value`` row per datum."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["section", "series", "field", "value"])
    for row in _rows(snapshot):
        writer.writerow(row)
    return out.getvalue()
