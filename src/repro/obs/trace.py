"""Nested ``span()`` timing contexts building a trace tree.

A :class:`Tracer` keeps a per-thread stack of open spans; entering a span
under an open parent nests it, so a build pipeline shows up as::

    build.tree m=4                      2.113s
      cbt-to-butterfly                  0.481s
      butterfly-multipath               1.507s
        verify                          0.194s

Spans cost two ``perf_counter`` calls plus one small object — cheap, but
not free, which is why the library's built-in hot-path spans go through
:mod:`repro.obs.profile` and vanish entirely unless profiling is enabled.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "get_tracer", "span"]


class Span:
    """One timed region: name, wall-clock bounds, attributes, children."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds from entry to exit (to *now* while still open)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": round(self.duration, 6),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Tracer:
    """Collects span trees; thread-safe, one open-span stack per thread."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        s = Span(name, attrs)
        stack = self._stack()
        if stack:
            stack[-1].children.append(s)
        else:
            with self._lock:
                self.roots.append(s)
        stack.append(s)
        try:
            yield s
        finally:
            s.end = time.perf_counter()
            stack.pop()

    def to_dict(self) -> dict:
        with self._lock:
            return {"spans": [s.to_dict() for s in self.roots]}

    def format_tree(self) -> str:
        """Human-readable indented tree of every recorded span."""
        lines: List[str] = []

        def walk(s: Span, depth: int) -> None:
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in s.attrs.items())
                if s.attrs
                else ""
            )
            lines.append(f"{'  ' * depth}{s.name}{attrs}  {s.duration * 1000:.3f}ms")
            for c in s.children:
                walk(c, depth + 1)

        with self._lock:
            for root in self.roots:
                walk(root, 0)
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self.roots.clear()
        self._local = threading.local()


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def span(name: str, **attrs: Any):
    """Open a span on the default tracer (context manager)."""
    return _default_tracer.span(name, **attrs)
