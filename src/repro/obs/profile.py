"""Opt-in profiling hooks around the library's hot paths.

Construction builders, the service facade and the simulators wrap their
hot sections in :func:`profile_span`.  Disabled (the default) that is a
single module-global truth test returning a shared null context — no
timing, no allocation, nothing on the trace.  Enabled (``REPRO_PROFILE=1``
in the environment, or :func:`enable_profiling`), every wrapped section
records a ``perf_counter`` sample into a timer histogram on the profiling
registry *and* a span on the profiling tracer, so one run yields both the
aggregate latency distribution and the nested who-called-what tree
(``repro obs trace`` prints it).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from functools import wraps
from typing import Any, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "profiling_registry",
    "profiling_tracer",
    "profile_span",
    "profiled",
]

_enabled = bool(os.environ.get("REPRO_PROFILE"))
_registry: Optional[MetricsRegistry] = None
_tracer: Optional[Tracer] = None


class _NullContext:
    """Reusable no-op context (``contextlib.nullcontext`` sans allocation)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


def enable_profiling(
    registry: Optional[MetricsRegistry] = None, tracer: Optional[Tracer] = None
) -> MetricsRegistry:
    """Turn the hot-path hooks on; returns the registry samples land in."""
    global _enabled, _registry, _tracer
    _registry = registry if registry is not None else (_registry or MetricsRegistry())
    _tracer = tracer if tracer is not None else (_tracer or Tracer())
    _enabled = True
    return _registry


def disable_profiling() -> None:
    """Turn the hooks back into no-ops (recorded data is kept)."""
    global _enabled
    _enabled = False


def profiling_enabled() -> bool:
    return _enabled


def profiling_registry() -> Optional[MetricsRegistry]:
    """The registry profiling samples land in (None when never enabled)."""
    return _registry


def profiling_tracer() -> Optional[Tracer]:
    """The tracer profiling spans land in (None when never enabled)."""
    return _tracer


@contextmanager
def _recording_span(name: str, attrs: dict) -> Iterator[None]:
    registry, tracer = _registry, _tracer
    if registry is None or tracer is None:
        registry = enable_profiling()
        tracer = _tracer
    with tracer.span(name, **attrs) as s:  # type: ignore[union-attr]
        try:
            yield
        finally:
            registry.observe(name, s.duration)


def profile_span(name: str, **attrs: Any):
    """A span context when profiling is on; a shared no-op otherwise."""
    if not _enabled:
        return _NULL_CONTEXT
    return _recording_span(name, attrs)


def profiled(name: Optional[str] = None):
    """Decorator form of :func:`profile_span` (lazy per-call check)."""

    def deco(fn):
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with _recording_span(label, {}):
                return fn(*args, **kwargs)

        return wrapper

    return deco
