"""Thread-safe metrics registry: counters, gauges, histograms, labels.

One :class:`MetricsRegistry` instance is the measurement substrate for a
component (the service layer threads one through registry/engine/facade).
Metric families are named; each family holds one series per distinct
label set, so ``reg.counter("builds", kind="cycle")`` and
``reg.counter("builds", kind="tree")`` accumulate independently and both
show up in ``snapshot()``.

Histograms store count/sum/min/max plus scale-free power-of-two buckets
(the bucket of ``v`` is the smallest ``2**k >= v``), which keeps a series
O(log range) in memory no matter what it observes.

The legacy :class:`repro.service.metrics.ServiceMetrics` API (``incr`` /
``count`` / ``observe`` / ``time`` / ``snapshot``) is provided directly on
the registry so migrated call sites keep reading naturally; timer-style
histograms (created via ``observe``/``time``) additionally appear under
the legacy ``snapshot()["timers"]`` view.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Tuple

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram"]

LabelKey = Tuple[Tuple[str, Any], ...]


def _series_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += by


class Gauge:
    """A point-in-time value that may move in either direction."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """count/sum/min/max plus power-of-two buckets of observed values."""

    __slots__ = ("_lock", "count", "total", "min", "max", "buckets", "unit")

    def __init__(self, lock: threading.RLock, unit: str = "") -> None:
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets: Dict[float, int] = {}
        self.unit = unit

    @staticmethod
    def bucket_of(value: float) -> float:
        """Smallest power of two >= value (0 for non-positive values)."""
        if value <= 0:
            return 0.0
        b = 1.0
        while b < value:
            b *= 2
        while b / 2 >= value:
            b /= 2
        return b

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            b = self.bucket_of(value)
            self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.min, 6) if self.count else 0.0,
            "max": round(self.max, 6),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named counter/gauge/histogram families with labeled series."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- metric accessors (create on first use) -----------------------------

    @staticmethod
    def _key(name: str, labels: Dict[str, Any]) -> Tuple[str, LabelKey]:
        return name, tuple(sorted(labels.items()))

    def counter(self, name: str, **labels: Any) -> Counter:
        key = self._key(name, labels)
        with self._lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter(self._lock)
            return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = self._key(name, labels)
        with self._lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge(self._lock)
            return g

    def histogram(self, name: str, unit: str = "", **labels: Any) -> Histogram:
        key = self._key(name, labels)
        with self._lock:
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram(self._lock, unit=unit)
            return h

    # -- legacy ServiceMetrics-shaped sugar ---------------------------------

    def incr(self, name: str, by: int = 1) -> None:
        """Increment the unlabeled counter ``name``."""
        self.counter(name).inc(by)

    def count(self, name: str) -> int:
        """Current value of the unlabeled counter ``name`` (0 if absent)."""
        with self._lock:
            c = self._counters.get((name, ()))
            return c.value if c is not None else 0

    def observe(self, name: str, seconds: float) -> None:
        """Record a latency sample into the timer histogram ``name``."""
        self.histogram(name, unit="s").observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording the wall time of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every series.

        ``"timers"`` repeats the seconds-unit histograms in the legacy
        ``ServiceMetrics`` shape (``count``/``total_s``/``mean_s``/…) so
        pre-obs consumers keep working unchanged.
        """
        with self._lock:
            counters = {
                _series_name(n, ls): c.value
                for (n, ls), c in self._counters.items()
            }
            gauges = {
                _series_name(n, ls): g.value
                for (n, ls), g in self._gauges.items()
            }
            histograms = {
                _series_name(n, ls): h.summary()
                for (n, ls), h in self._histograms.items()
            }
            timers = {
                _series_name(n, ls): {
                    "count": h.count,
                    "total_s": round(h.total, 6),
                    "mean_s": round(h.mean, 6),
                    "min_s": round(h.min, 6) if h.count else 0.0,
                    "max_s": round(h.max, 6),
                }
                for (n, ls), h in self._histograms.items()
                if h.unit == "s"
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "timers": timers,
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
