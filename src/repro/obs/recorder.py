"""Per-directed-link congestion and occupancy recorders.

A recorder is the sink a simulator fills while it runs: how many packets
each directed host link carried (the *measured congestion* of the run),
how many steps each link was busy (occupancy), the peak queue depth per
link, and the histogram of arrival steps.

The congestion lens matters beyond reporting: per-link packet counts are
exactly the quantity the embedding-congestion lower bounds reason about
(Rajan et al., arXiv:1807.06787), so a recorded run can be checked
against the *structural* congestion the embedding certifies — see
``analysis/validate.py`` and the ``repro obs report`` CLI.

Two implementations share the interface:

* :class:`NullRecorder` — the disabled default.  It is *falsy*, so hot
  loops guard every hook behind ``if recorder:`` and pay one truth test
  per decision point, no calls, no allocations.  ``NULL_RECORDER`` is the
  shared singleton.
* :class:`LinkRecorder` — plain-dict accumulation, plus bulk methods
  (:meth:`LinkRecorder.add_link_counts`, :meth:`LinkRecorder.add_deliveries`)
  so the vectorized engine can dump numpy arrays once per run instead of
  calling per-packet hooks.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["NullRecorder", "NULL_RECORDER", "LinkRecorder"]


class NullRecorder:
    """Falsy no-op sink: the disabled-instrumentation fast path.

    Simulators test ``if recorder:`` before *any* recording work, so with
    this (or ``None``) the hot loop does no per-step calls or
    allocations.  All hooks exist and do nothing, making the object safe
    to pass anywhere a recorder is accepted.
    """

    __slots__ = ()
    enabled = False

    def __bool__(self) -> bool:
        return False

    def on_transmit(self, eid: int, step: int, service_time: int = 1) -> None:
        pass

    def on_deliver(self, step: int, count: int = 1) -> None:
        pass

    def on_queue_depth(self, eid: int, depth: int) -> None:
        pass

    def add_link_counts(self, eids: Iterable[int], counts: Iterable[int]) -> None:
        pass

    def add_deliveries(self, steps: Iterable[int]) -> None:
        pass


NULL_RECORDER = NullRecorder()


class LinkRecorder:
    """Accumulates per-directed-link usage and arrival statistics.

    ``link_transmissions[eid]`` counts packets (or flits) the link
    carried; ``link_busy_steps[eid]`` counts time steps the link was
    occupied (they differ when a transmission's service time exceeds one
    step); ``queue_peak[eid]`` is the largest FIFO backlog observed; and
    ``deliveries[step]`` histograms packet arrivals by completion step.
    """

    enabled = True

    def __init__(self, host: Optional[Any] = None):
        self.host = host
        self.link_transmissions: _TallyCounter = _TallyCounter()
        self.link_busy_steps: _TallyCounter = _TallyCounter()
        self.queue_peak: Dict[int, int] = {}
        self.deliveries: _TallyCounter = _TallyCounter()

    # -- per-event hooks (scalar engines) -----------------------------------

    def on_transmit(self, eid: int, step: int, service_time: int = 1) -> None:
        """A transmission starts on directed link ``eid`` at ``step``."""
        self.link_transmissions[eid] += 1
        self.link_busy_steps[eid] += service_time

    def on_deliver(self, step: int, count: int = 1) -> None:
        """``count`` packets complete their final hop at ``step``."""
        self.deliveries[step] += count

    def on_queue_depth(self, eid: int, depth: int) -> None:
        """Sample the FIFO backlog waiting on link ``eid``."""
        if depth > self.queue_peak.get(eid, 0):
            self.queue_peak[eid] = depth

    # -- bulk hooks (vectorized engines) ------------------------------------

    def add_link_counts(self, eids: Iterable[int], counts: Iterable[int]) -> None:
        """Merge per-link transmission totals (unit service time)."""
        for eid, c in zip(eids, counts):
            eid, c = int(eid), int(c)
            self.link_transmissions[eid] += c
            self.link_busy_steps[eid] += c

    def add_deliveries(self, steps: Iterable[int]) -> None:
        """Merge one arrival step per delivered packet."""
        self.deliveries.update(int(s) for s in steps)

    # -- derived measurements ------------------------------------------------

    @property
    def congestion(self) -> int:
        """Max packets carried by any one directed link during the run."""
        return max(self.link_transmissions.values(), default=0)

    @property
    def delivered(self) -> int:
        return sum(self.deliveries.values())

    @property
    def makespan(self) -> int:
        return max(self.deliveries, default=0)

    def busiest_links(self, k: int = 10) -> List[Tuple[int, int]]:
        """The ``k`` most-used directed links as ``(edge id, packets)``."""
        return self.link_transmissions.most_common(k)

    def step_histogram(self) -> Dict[int, int]:
        """Arrivals per completion step, as a plain sorted dict."""
        return {s: self.deliveries[s] for s in sorted(self.deliveries)}

    def link_congestion_counts(self) -> Dict[int, int]:
        """Packets per directed link, as a plain dict (export shape)."""
        return dict(self.link_transmissions)

    def snapshot(self) -> dict:
        """Plain-dict view for exporters and the CLI."""
        links = {}
        for eid in sorted(self.link_transmissions):
            entry = {
                "transmissions": self.link_transmissions[eid],
                "busy_steps": self.link_busy_steps[eid],
            }
            if eid in self.queue_peak:
                entry["queue_peak"] = self.queue_peak[eid]
            if self.host is not None:
                u, v = self.host.edge_from_id(eid)
                entry["edge"] = [u, v]
            links[str(eid)] = entry
        return {
            "congestion": self.congestion,
            "delivered": self.delivered,
            "makespan": self.makespan,
            "links": links,
            "step_histogram": {
                str(s): c for s, c in self.step_histogram().items()
            },
        }

    def reset(self) -> None:
        self.link_transmissions.clear()
        self.link_busy_steps.clear()
        self.queue_peak.clear()
        self.deliveries.clear()
