"""R8: dtype/overflow — packed ids narrowed below their worst-case extent.

The repo's scaling point is ``Q_20`` with ``B = 4096`` batched lanes
(see ``EXTENT`` in :mod:`repro.lint.domains`, whose offset floors come
from the declared contract dtypes in ``hypercube/pathcode.py``).  At
that point a ``u * base + v`` packed edge key reaches ``~1.1e12`` and a
lane-major link id ``lane * L + link`` reaches ``~8.6e10`` — both
silently wrap in ``int32``.  This rule flags every site where a value
whose domain has a known extent meets a dtype that cannot hold it:

* ``.astype(np.int32)`` / ``np.asarray(x, dtype=...)`` / ``np.int32(x)``
  casts of packed or offset values;
* pack arithmetic carried out *in* a narrow dtype (the multiply itself
  overflows before any store);
* stores into arrays created with a declared narrow dtype.

Values that provably fit stay silent: a plain ``LinkId`` tops out at
``20 * 2^20`` and a ``FlitPos`` at ``2^20``, which is exactly why the
``int32`` flit tensors in ``routing/batched.py`` are sound.  Waive with
``# lint: dtype-ok(reason)`` when a site's real bound is tighter than
the domain's worst case.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.lint.engine import LintConfig, LintModule, register_rule
from repro.lint.findings import Finding
from repro.lint.flow import analyze

__all__ = ["dtype_overflow"]


@register_rule("R8", "dtype-overflow", scope="project")
def dtype_overflow(
    modules: Sequence[LintModule], config: LintConfig
) -> Iterator[Finding]:
    """Array dtypes must hold their domain's worst-case extent at Q_20/B=4096."""
    for module, observations in analyze(modules, config):
        for ob in observations:
            if ob.kind != "dtype":
                continue
            if module.waived("dtype-ok", ob.line):
                continue
            yield Finding(
                "R8", "error", module.rel, ob.line, ob.col,
                ob.detail,
                suggestion="use int64 (the pathcode.py contract dtype for "
                "packed ids and offsets) or waive with "
                "# lint: dtype-ok(reason) if this site's bound is "
                "provably tighter",
            )
