"""repro.lint — domain-aware static analysis for this repository.

Generic linters don't know that randomness must flow through
:func:`repro._compat.resolve_rng`, that every public builder owes the QA
fuzzer a construction entry and a paper oracle, or that the service
layer's shared state is lock-guarded.  This package encodes those
repo-specific invariants as AST passes over a pluggable rule registry:

========  =====================  ==========================================
rule      name                   waiver pragma
========  =====================  ==========================================
R1        rng-discipline         ``# lint: rng-ok(reason)``
R2        deprecation            ``# lint: deprecated-ok(reason)``
R3        construction-contract  ``# lint: no-oracle(reason)``
R4        simulator-protocol     ``# lint: protocol-exempt(reason)``
R5        determinism            ``# lint: nondet-ok(reason)``
R6        service-races          ``# lint: race-ok(reason)``
R7        domain-confusion       ``# lint: domain-ok(reason)``
R8        dtype-overflow         ``# lint: dtype-ok(reason)``
R9        kernel-parity          ``# lint: no-parity(reason)``
========  =====================  ==========================================

R7 and R8 run a shared abstract interpretation over the index-domain
lattice in :mod:`repro.lint.domains` (NodeId, LinkId, LaneLinkId,
PackedEdgeKey, CsrOffset, ByteOffset, FlitPos) — see
``docs/architecture.md`` for the lattice and its pack/unpack algebra.
R9 makes the fast-kernel/QA-differential pairing structural the same way
R3 ties builders to oracles.

Run via ``repro lint [--fix] [--format json|text|sarif] [--changed
[BASE]] [--output FILE] [paths]``, or programmatically::

    from repro.lint import run_lint
    report = run_lint(["src/repro"])
    assert report.ok, report.summary()
"""

from repro.lint.engine import (
    KNOWN_PRAGMAS,
    LintConfig,
    LintModule,
    Rule,
    all_rules,
    apply_fixes,
    discover_files,
    parse_module,
    register_rule,
    run_lint,
)
from repro.lint.findings import LINT_OUTPUT_VERSION, Finding, LintReport

__all__ = [
    "Finding",
    "LintReport",
    "LintConfig",
    "LintModule",
    "Rule",
    "KNOWN_PRAGMAS",
    "LINT_OUTPUT_VERSION",
    "all_rules",
    "apply_fixes",
    "discover_files",
    "parse_module",
    "register_rule",
    "run_lint",
]
