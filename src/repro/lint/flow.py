"""Per-function abstract interpretation over index domains.

This is the engine under rules R7 (domain confusion) and R8
(dtype/overflow).  For every function in the scanned module set it runs
a structural abstract interpreter over the function's control flow —
statements in order, both arms of an ``if`` joined afterwards, loop
bodies iterated to a fixpoint — tracking, per local variable, an
:class:`AbstractValue`: which index domain the value inhabits (see
:mod:`repro.lint.domains`), which domain indexes it when it is an
array, and its numpy dtype when one was declared.

Domains enter the analysis at the seed tables (attribute loads like
``host.num_edges``, header-field subscripts, calls to ``gather_paths``
and friends) and propagate through the packing algebra
(``lane * L + link`` is a ``LaneLinkId``; ``x % L`` recovers the
``LinkId``).  The interpreter never *reports* anything itself — it emits
:class:`Observation` records at consumption sites (call arguments,
comparisons, subscripts, ``searchsorted``, dtype narrowings) and the
rules decide which observations are findings.

Cross-function reasoning is one level deep, as two passes:

* **pass 1** gives every parameter a fresh anonymous value tagged with
  its name; when such an untouched parameter flows straight into a
  seeded consumer slot the function's *summary* records the requirement
  (``_record(recorder, eids, ...)`` forwarding ``eids`` into
  ``add_link_counts`` makes ``eids: LinkId`` part of the signature), and
  return statements record the returned domains;
* **pass 2** re-interprets every function with the summary table
  available, so a call site handing a lane-major id to ``_record`` is
  an observation even though ``_record`` itself is polymorphic.

False-positive discipline: INT (unknown) is compatible with everything,
joins of disagreeing branches degrade to INT, and comparisons against
count/stride domains are bounds checks, never findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.lint import domains as D
from repro.lint.engine import LintConfig, LintModule, import_tables, resolve_call

__all__ = ["AbstractValue", "Observation", "Summary", "analyze"]


@dataclass(frozen=True)
class AbstractValue:
    """What the interpreter knows about one value."""

    domain: str = D.INT
    index: Optional[str] = None  # domain of the first-axis index, arrays only
    dtype: Optional[str] = None  # numpy dtype name when declared
    param: Optional[str] = None  # set while the value IS an untouched param

    def named(self) -> bool:
        return self.domain in D.NAMED


BOTTOM = AbstractValue()


@dataclass(frozen=True)
class Observation:
    """One consumption site the rules may turn into a finding.

    kinds: ``arg`` (call argument vs declared domain), ``compare``
    (two distinct named domains compared), ``index`` (subscript index
    domain vs the array's index domain), ``searchsorted`` (needle vs
    haystack), ``dtype`` (named domain flowing into a too-narrow dtype).
    """

    kind: str
    line: int
    col: int
    detail: str
    expected: str = ""
    actual: str = ""
    callee: str = ""


@dataclass
class Summary:
    """One function's one-level call summary."""

    params: Dict[int, str]  # positional index -> required domain
    returns: Optional[Tuple[Tuple[str, Optional[str]], ...]]
    name: str = ""


# numpy constructors whose dtype= kw declares the array dtype
_NP_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "fromiter", "asarray",
     "array", "ascontiguousarray", "zeros_like", "ones_like", "full_like",
     "empty_like"}
)
# numpy scalar-type calls: np.int32(x) both casts and declares
_NP_SCALARS = {
    "int8": "int8", "int16": "int16", "int32": "int32", "int64": "int64",
    "uint8": "uint8", "uint16": "uint16", "uint32": "uint32",
    "uint64": "uint64", "intp": "int64",
}
# unary passthroughs: result has arg0's domain
_PASSTHROUGH = frozenset(
    {"sort", "unique", "ravel", "flatten", "copy", "abs", "minimum",
     "maximum", "ascontiguousarray", "asarray", "array", "repeat", "tile",
     "int", "atleast_1d"}
)


def _dtype_name(node: ast.AST) -> Optional[str]:
    """Resolve a dtype expression to a numpy dtype name, best effort."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Attribute):
        if node.attr in _NP_SCALARS:
            return _NP_SCALARS[node.attr]
        # module-level contract constants: pathcode.CSR_OFFSET_DTYPE etc.
        if node.attr.endswith("_DTYPE"):
            return _contract_dtype(node.attr)
    if isinstance(node, ast.Name):
        if node.id in _NP_SCALARS:
            return _NP_SCALARS[node.id]
        if node.id.endswith("_DTYPE"):
            return _contract_dtype(node.id)
    if isinstance(node, ast.Call):
        # np.dtype(np.int64)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "dtype"
            and node.args
        ):
            return _dtype_name(node.args[0])
    return None


def _contract_dtype(name: str) -> Optional[str]:
    from repro.hypercube import pathcode

    value = getattr(pathcode, name, None)
    return value.name if isinstance(value, np.dtype) else None


def _wider(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Approximate numpy promotion: the wider of two integer dtypes."""
    if a is None:
        return b
    if b is None:
        return a
    try:
        return a if np.iinfo(a).max >= np.iinfo(b).max else b
    except ValueError:
        return None


def _join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    return AbstractValue(
        domain=a.domain if a.domain == b.domain else D.INT,
        index=a.index if a.index == b.index else None,
        dtype=a.dtype if a.dtype == b.dtype else None,
        param=a.param if a.param == b.param else None,
    )


def _join_env(a: Dict[str, AbstractValue], b: Dict[str, AbstractValue]):
    out: Dict[str, AbstractValue] = {}
    for key in a.keys() & b.keys():
        out[key] = _join(a[key], b[key])
    return out


class _FunctionFlow:
    """Interprets one function body; shared by both analysis passes."""

    def __init__(
        self,
        func: ast.AST,
        module: LintModule,
        mod_aliases: Dict[str, str],
        member_aliases: Dict[str, str],
        summaries: Dict[str, Summary],
        collect: Optional[Summary],
    ) -> None:
        self.func = func
        self.module = module
        self.mod_aliases = mod_aliases
        self.member_aliases = member_aliases
        self.summaries = summaries
        self.collect = collect  # pass 1: requirements land here, no obs
        self.obs: List[Observation] = []
        self.env: Dict[str, AbstractValue] = {}
        args = func.args
        params = list(args.posonlyargs) + list(args.args)
        self.param_index = {
            a.arg: i for i, a in enumerate(params) if a.arg != "self"
        }
        for a in params + list(args.kwonlyargs):
            if a.arg != "self":
                self.env[a.arg] = AbstractValue(param=a.arg)

    def run(self) -> List[Observation]:
        self._stmts(self.func.body)
        return self.obs

    # -- statements ------------------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self._eval(node.value)
            for target in node.targets:
                self._bind(target, value, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._eval(node.value), node.value)
        elif isinstance(node, ast.AugAssign):
            current = self._target_value(node.target)
            value = self._binop_value(
                node.op, current, self._eval(node.value), node
            )
            self._bind(node.target, value, node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._record_return(self._eval(node.value), node.value)
        elif isinstance(node, ast.If):
            self._eval(node.test)
            before = dict(self.env)
            self._stmts(node.body)
            after_body = self.env
            self.env = dict(before)
            self._stmts(node.orelse)
            self.env = _join_env(after_body, self.env)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind(node.target, self._iter_element(node.iter), node.iter)
            self._fixpoint(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, ast.While):
            self._eval(node.test)
            self._fixpoint(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, item.context_expr)
            self._stmts(node.body)
        elif isinstance(node, ast.Try):
            before = dict(self.env)
            self._stmts(node.body)
            merged = self.env
            for handler in node.handlers:
                self.env = dict(before)
                self._stmts(handler.body)
                merged = _join_env(merged, self.env)
            self.env = merged
            self._stmts(node.orelse)
            self._stmts(node.finalbody)
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs analyzed separately (closures untracked)
        elif isinstance(node, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)

    def _fixpoint(self, body: Sequence[ast.stmt]) -> None:
        """Iterate a loop body until the env stabilizes (bounded)."""
        emitted = len(self.obs)
        for _ in range(4):
            before = dict(self.env)
            self._stmts(body)
            self.env = _join_env(before, self.env) | {
                k: v for k, v in self.env.items() if k not in before
            }
            if self.env == before:
                break
            del self.obs[emitted:]  # only keep the stable iteration's obs
            emitted = len(self.obs)
        # re-run once on the stable env so observations reflect it
        self._stmts(body)
        dedup = {
            (o.kind, o.line, o.col, o.detail): o for o in self.obs
        }
        self.obs = list(dedup.values())

    # -- binding and lookup ----------------------------------------------------

    def _bind(self, target: ast.AST, value: AbstractValue, src: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Attribute):
            key = self._attr_key(target)
            if key is not None:
                self.env[key] = value
        elif isinstance(target, ast.Starred):
            self._bind(target.value, BOTTOM, src)
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts = self._tuple_parts(value, src, len(target.elts))
            for elt, part in zip(target.elts, parts):
                self._bind(elt, part, src)
        elif isinstance(target, ast.Subscript):
            container = self._eval(target.value)
            self._check_subscript(container, target)
            if (
                container.dtype is not None
                and value.named()
                and not D.fits(value.domain, container.dtype)
            ):
                self._observe(
                    "dtype", target,
                    f"storing a {value.domain} into a {container.dtype} "
                    f"array (max extent {D.EXTENT[value.domain]:,})",
                    expected=value.domain, actual=container.dtype,
                )

    def _tuple_parts(
        self, value: AbstractValue, src: ast.AST, count: int
    ) -> List[AbstractValue]:
        if isinstance(src, ast.Tuple) and len(src.elts) == count:
            return [self._eval(e) for e in src.elts]
        if isinstance(src, ast.Call):
            returns = self._call_returns(src)
            if returns is not None and len(returns) == count:
                return [
                    AbstractValue(domain=dom, index=idx)
                    for dom, idx in returns
                ]
        return [BOTTOM] * count

    def _attr_key(self, node: ast.Attribute) -> Optional[str]:
        if isinstance(node.value, ast.Name):
            return f"{node.value.id}.{node.attr}"
        return None

    def _target_value(self, target: ast.AST) -> AbstractValue:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, BOTTOM)
        if isinstance(target, ast.Attribute):
            return self._eval(target)
        return BOTTOM

    # -- expressions -----------------------------------------------------------

    def _eval(self, node: ast.AST) -> AbstractValue:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, BOTTOM)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._binop(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            return replace(self._eval(node.operand), param=None)
        if isinstance(node, ast.Compare):
            self._eval_compare(node)
            return BOTTOM
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return BOTTOM
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _join(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List)):
            values = [self._eval(e) for e in node.elts]
            if values and all(v.domain == values[0].domain for v in values):
                return AbstractValue(domain=values[0].domain)
            return BOTTOM
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._bind(node.target, value, node.value)
            return value
        if isinstance(node, ast.Constant):
            return BOTTOM
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return BOTTOM

    def _eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        key = self._attr_key(node)
        if key is not None and key in self.env:
            return self.env[key]
        self._eval(node.value)
        info = D.ATTR_INFO.get(node.attr)
        if info is not None:
            domain, index = info
            return AbstractValue(domain=domain, index=index)
        return BOTTOM

    def _eval_subscript(self, node: ast.Subscript) -> AbstractValue:
        container = self._eval(node.value)
        index_node = node.slice
        if (
            isinstance(index_node, ast.Constant)
            and isinstance(index_node.value, str)
        ):
            if index_node.value in D.HEADER_FIELDS:
                return AbstractValue(domain=D.BYTE_OFFSET)
            return BOTTOM
        self._check_subscript(container, node)
        return AbstractValue(domain=container.domain, dtype=container.dtype)

    def _check_subscript(
        self, container: AbstractValue, node: ast.Subscript
    ) -> None:
        """Flag a named index domain that disagrees with the array's."""
        index_node = node.slice
        bounds: List[ast.expr] = []
        if isinstance(index_node, ast.Slice):
            bounds = [b for b in (index_node.lower, index_node.upper) if b]
        elif isinstance(index_node, ast.Tuple):
            bounds = [e for e in index_node.elts if not isinstance(e, ast.Slice)][:1]
        elif isinstance(index_node, ast.expr):
            bounds = [index_node]
        for bound in bounds:
            value = self._eval(bound)
            if (
                container.index in D.NAMED
                and value.domain in D.NAMED
                and value.domain != container.index
                and D.INDEX_OF.get(value.domain, value.domain)
                != container.index
            ):
                self._observe(
                    "index", bound,
                    f"{value.domain} used to index a "
                    f"{container.index}-indexed array",
                    expected=container.index, actual=value.domain,
                )

    def _eval_compare(self, node: ast.Compare) -> None:
        left = self._eval(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator)
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE,
                                   ast.Gt, ast.GtE)):
                left = right
                continue
            ld, rd = left.domain, right.domain
            if (
                ld in D.NAMED and rd in D.NAMED and ld != rd
                and ld not in D.SCALES and rd not in D.SCALES
            ):
                self._observe(
                    "compare", node,
                    f"comparing a {ld} to a {rd}",
                    expected=ld, actual=rd,
                )
            left = right

    def _binop(
        self,
        op: ast.operator,
        left: AbstractValue,
        right: AbstractValue,
        node: ast.AST,
    ) -> AbstractValue:
        return self._binop_value(op, left, right, node)

    def _binop_value(
        self,
        op: ast.operator,
        left: AbstractValue,
        right: AbstractValue,
        node: ast.AST,
    ) -> AbstractValue:
        dtype = _wider(left.dtype, right.dtype)
        if isinstance(op, ast.Mult):
            product = D.SCALE_PRODUCT.get((left.domain, right.domain))
            if product is not None:
                return AbstractValue(domain=product, dtype=dtype)
            scale = None
            if left.domain in D.PACK:
                scale = left.domain
            elif right.domain in D.PACK:
                scale = right.domain
            if scale is not None:
                packed = D.PACK[scale]
                value = AbstractValue(domain=packed, dtype=dtype)
                self._check_pack_dtype(value, node)
                return value
            return AbstractValue(dtype=dtype)
        if isinstance(op, ast.Add):
            domain = D.add_domains(left.domain, right.domain)
            value = AbstractValue(domain=domain, dtype=dtype)
            if domain in (D.LANE_LINK, D.PACKED_EDGE):
                self._check_pack_dtype(value, node)
            return value
        if isinstance(op, ast.Sub):
            return AbstractValue(
                domain=D.sub_domains(left.domain, right.domain), dtype=dtype
            )
        if isinstance(op, ast.Mod):
            if right.domain in D.MOD_UNPACK:
                return AbstractValue(
                    domain=D.MOD_UNPACK[right.domain], dtype=dtype
                )
            return AbstractValue(dtype=dtype)
        if isinstance(op, ast.FloorDiv):
            result = D.DIV_UNPACK.get((left.domain, right.domain))
            if result is not None:
                return AbstractValue(domain=result, dtype=dtype)
            if right.domain == D.INT and left.named():
                # alignment arithmetic keeps the domain: (x + 7) // 8 * 8
                return AbstractValue(domain=left.domain, dtype=dtype)
            return AbstractValue(dtype=dtype)
        if isinstance(op, (ast.BitOr, ast.BitXor, ast.BitAnd,
                           ast.LShift, ast.RShift)):
            return AbstractValue(
                domain=D.add_domains(left.domain, right.domain), dtype=dtype
            )
        return AbstractValue(dtype=dtype)

    def _check_pack_dtype(self, value: AbstractValue, node: ast.AST) -> None:
        if value.dtype is not None and not D.fits(value.domain, value.dtype):
            self._observe(
                "dtype", node,
                f"{value.domain} arithmetic in {value.dtype} — worst-case "
                f"extent {D.EXTENT[value.domain]:,} overflows",
                expected=value.domain, actual=value.dtype,
            )

    def _eval_comprehension(self, node: ast.AST) -> AbstractValue:
        saved = dict(self.env)
        for gen in node.generators:
            self._bind(gen.target, self._iter_element(gen.iter), gen.iter)
            for cond in gen.ifs:
                self._eval(cond)
        element = self._eval(node.elt)
        self.env = saved
        return AbstractValue(domain=element.domain, index=D.INT)

    def _iter_element(self, iter_node: ast.AST) -> AbstractValue:
        if isinstance(iter_node, ast.Call):
            name = _call_attr_or_name(iter_node.func)
            if name == "range" and iter_node.args:
                stop = self._eval(iter_node.args[-1 if len(iter_node.args) == 1 else 1])
                domain = D.INDEX_OF.get(stop.domain, D.INT)
                return AbstractValue(domain=domain)
            if name == "enumerate" and iter_node.args:
                return BOTTOM  # tuple target handled imprecisely
            return self._eval_call(iter_node)
        value = self._eval(iter_node)
        return AbstractValue(domain=value.domain, dtype=value.dtype)

    # -- calls -----------------------------------------------------------------

    def _call_sig(self, node: ast.Call) -> Tuple[Optional[D.Sig], str]:
        dotted = resolve_call(node.func, self.mod_aliases, self.member_aliases)
        if dotted is not None and dotted in D.FUNC_SIGS:
            return D.FUNC_SIGS[dotted], dotted.rsplit(".", 1)[-1]
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in D.METHOD_SIGS:
                return D.METHOD_SIGS[attr], attr
        return None, ""

    def _call_summary(self, node: ast.Call) -> Optional[Summary]:
        dotted = resolve_call(node.func, self.mod_aliases, self.member_aliases)
        if dotted is not None and dotted in self.summaries:
            return self.summaries[dotted]
        name = _call_attr_or_name(node.func)
        if name:
            return self.summaries.get(f"{self.module.rel}::{name}")
        return None

    def _call_returns(
        self, node: ast.Call
    ) -> Optional[Tuple[Tuple[str, Optional[str]], ...]]:
        sig, _ = self._call_sig(node)
        if sig is not None and sig.returns is not None:
            return sig.returns
        summary = self._call_summary(node)
        if summary is not None and summary.returns is not None:
            return summary.returns
        return None

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        args = [self._eval(a) for a in node.args]
        kwargs = {kw.arg: self._eval(kw.value) for kw in node.keywords}
        name = _call_attr_or_name(node.func)

        # seeded consumers and one-level summaries
        sig, callee = self._call_sig(node)
        if sig is not None:
            self._check_args(sig.params, args, node, callee)
            if sig.returns is not None:
                dom, idx = sig.returns[0]
                if len(sig.returns) == 1:
                    return AbstractValue(domain=dom, index=idx)
                return BOTTOM  # tuple returns materialize at unpack sites
        else:
            summary = self._call_summary(node)
            if summary is not None:
                params = tuple(
                    summary.params.get(i, D.INT) for i in range(len(args))
                )
                self._check_args(params, args, node, summary.name or name)
                if summary.returns is not None and len(summary.returns) == 1:
                    dom, idx = summary.returns[0]
                    return AbstractValue(domain=dom, index=idx)

        # numpy / builtin modelling
        if name in _NP_SCALARS:
            base = args[0] if args else BOTTOM
            value = AbstractValue(
                domain=base.domain, index=base.index, dtype=_NP_SCALARS[name]
            )
            self._check_cast(value, node)
            return value
        if name == "astype" and isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)
            dtype = _dtype_name(node.args[0]) if node.args else None
            if dtype is None and "dtype" in {k.arg for k in node.keywords}:
                dtype = _first_kw_dtype(node)
            value = AbstractValue(
                domain=receiver.domain, index=receiver.index, dtype=dtype
            )
            self._check_cast(value, node)
            return value
        if name in _NP_CTORS:
            return self._eval_np_ctor(name, node, args, kwargs)
        if name == "where" and len(args) == 3:
            return _join(args[1], args[2])
        if name == "searchsorted" or (
            isinstance(node.func, ast.Attribute) and name == "searchsorted"
        ):
            return self._eval_searchsorted(node, args)
        if name == "nonzero":
            target = args[0] if args else (
                self._eval(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else BOTTOM
            )
            if target.index in D.NAMED:
                return AbstractValue(domain=target.index, index=D.INT)
            return BOTTOM
        if name == "concatenate" and args:
            return AbstractValue(domain=args[0].domain)
        if name in _PASSTHROUGH:
            if args:
                return replace(args[0], param=None)
            if isinstance(node.func, ast.Attribute):
                receiver = self._eval(node.func.value)
                return replace(receiver, param=None)
        if name == "len":
            return BOTTOM
        return BOTTOM

    def _eval_np_ctor(
        self,
        name: str,
        node: ast.Call,
        args: List[AbstractValue],
        kwargs: Dict[Optional[str], AbstractValue],
    ) -> AbstractValue:
        dtype: Optional[str] = None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype = _dtype_name(kw.value)
        if dtype is None and name in ("asarray", "array", "fromiter") and len(
            node.args
        ) > 1:
            dtype = _dtype_name(node.args[1])
        index: Optional[str] = None
        domain = D.INT
        if name in ("zeros", "ones", "empty", "full", "arange"):
            shape = args[0] if args else BOTTOM
            if isinstance(node.args[0] if node.args else None, ast.Tuple):
                first = self._eval(node.args[0].elts[0]) if node.args[0].elts else BOTTOM
                shape = first
            index = D.INDEX_OF.get(shape.domain)
            if name == "arange":
                domain = D.INDEX_OF.get(shape.domain, D.INT)
                index = domain if domain != D.INT else None
            if name == "full" and len(args) > 1:
                domain = args[1].domain
        elif name in ("asarray", "array", "ascontiguousarray", "fromiter"):
            base = args[0] if args else BOTTOM
            domain, index = base.domain, base.index
        elif name.endswith("_like"):
            base = args[0] if args else BOTTOM
            domain, index = base.domain, base.index
            if dtype is None:
                dtype = base.dtype
        value = AbstractValue(domain=domain, index=index, dtype=dtype)
        self._check_cast(value, node)
        return value

    def _eval_searchsorted(
        self, node: ast.Call, args: List[AbstractValue]
    ) -> AbstractValue:
        if isinstance(node.func, ast.Attribute) and not _is_np(
            node.func.value, self.mod_aliases
        ):
            haystack = self._eval(node.func.value)
            needle = args[0] if args else BOTTOM
        else:
            haystack = args[0] if args else BOTTOM
            needle = args[1] if len(args) > 1 else BOTTOM
        hd, nd = haystack.domain, needle.domain
        if hd in D.NAMED and nd in D.NAMED and hd != nd:
            self._observe(
                "searchsorted", node,
                f"searchsorted over {hd} keys with {nd} needles",
                expected=hd, actual=nd,
            )
        elif (
            nd in D.NAMED
            and nd not in D.SCALES
            and hd == D.INT
            and needle.param is None
        ):
            # needles carry a domain the haystack provably lacks only when
            # the haystack is known; stay silent on unknown haystacks
            pass
        if haystack.index in D.NAMED:
            return AbstractValue(domain=haystack.index)
        return BOTTOM

    def _check_args(
        self,
        params: Sequence[str],
        args: List[AbstractValue],
        node: ast.Call,
        callee: str,
    ) -> None:
        for i, (expected, actual) in enumerate(zip(params, args)):
            if expected == D.INT or expected not in D.NAMED:
                continue
            if (
                self.collect is not None
                and actual.param is not None
                and actual.domain == D.INT
            ):
                # pass 1: an untouched param forwarded into a seeded slot
                # becomes a requirement of *this* function's signature
                pos = self.param_index.get(actual.param)
                if pos is not None:
                    self.collect.params[pos] = expected
                continue
            if actual.domain in D.NAMED and actual.domain != expected:
                arg_node = node.args[i]
                self._observe(
                    "arg", arg_node,
                    f"{actual.domain} passed to {callee}() where "
                    f"{expected} is consumed (argument {i + 1})",
                    expected=expected, actual=actual.domain, callee=callee,
                )

    def _check_cast(self, value: AbstractValue, node: ast.AST) -> None:
        if (
            value.dtype is not None
            and value.named()
            and not D.fits(value.domain, value.dtype)
        ):
            self._observe(
                "dtype", node,
                f"{value.domain} values narrowed to {value.dtype} — "
                f"worst-case extent {D.EXTENT[value.domain]:,} overflows",
                expected=value.domain, actual=value.dtype,
            )

    def _record_return(self, value: AbstractValue, node: ast.AST) -> None:
        if self.collect is None:
            return
        if isinstance(node, ast.Tuple):
            spec = tuple(
                (v.domain, v.index) for v in (self._eval(e) for e in node.elts)
            )
        else:
            spec = ((value.domain, value.index),)
        if self.collect.returns is None:
            self.collect.returns = spec
        elif self.collect.returns != spec:
            joined = []
            for (ad, ai), (bd, bi) in zip(self.collect.returns, spec):
                joined.append((ad if ad == bd else D.INT, ai if ai == bi else None))
            if len(self.collect.returns) == len(spec):
                self.collect.returns = tuple(joined)
            else:
                self.collect.returns = None

    def _observe(self, kind: str, node: ast.AST, detail: str, **fields) -> None:
        if self.collect is not None:
            return  # pass 1 collects summaries, never observations
        self.obs.append(
            Observation(
                kind=kind,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                detail=detail,
                **fields,
            )
        )


def _call_attr_or_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_np(node: ast.AST, mod_aliases: Dict[str, str]) -> bool:
    return (
        isinstance(node, ast.Name)
        and mod_aliases.get(node.id, "").startswith("numpy")
    )


# -- module drivers ------------------------------------------------------------


def _functions(module: LintModule) -> Iterable[Tuple[str, ast.AST]]:
    """(qualified-ish name, node) for every def, methods included."""
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item.name, item


def _dotted_module(rel: str) -> Optional[str]:
    """``src/repro/core/x.py`` -> ``repro.core.x`` (None off-tree)."""
    parts = rel.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    tail = parts[parts.index("repro"):]
    if not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


_CACHE: List[Tuple[Tuple, List]] = []  # single-entry memo across R7/R8


def analyze(
    modules: Sequence[LintModule], config: LintConfig
) -> List[Tuple[LintModule, List[Observation]]]:
    """Two-pass domain analysis over the whole scanned module set."""
    key = tuple((m.rel, m.source) for m in modules)
    if _CACHE and _CACHE[0][0] == key:
        return _CACHE[0][1]

    # pass 1: summaries
    summaries: Dict[str, Summary] = {}
    ambiguous: set = set()
    for module in modules:
        mod_aliases, member_aliases = import_tables(module.tree)
        dotted = _dotted_module(module.rel)
        for name, func in _functions(module):
            summary = Summary(params={}, returns=None, name=name)
            flow = _FunctionFlow(
                func, module, mod_aliases, member_aliases, {}, summary
            )
            flow.run()
            if not summary.params and summary.returns is None:
                continue
            local_key = f"{module.rel}::{name}"
            summaries[local_key] = summary
            if dotted is not None:
                full = f"{dotted}.{name}"
                if full in summaries or full in ambiguous:
                    ambiguous.add(full)
                    summaries.pop(full, None)
                else:
                    summaries[full] = summary

    # pass 2: observations, with summaries in scope
    out: List[Tuple[LintModule, List[Observation]]] = []
    for module in modules:
        mod_aliases, member_aliases = import_tables(module.tree)
        collected: Dict[Tuple[str, int, int, str], Observation] = {}
        for _, func in _functions(module):
            flow = _FunctionFlow(
                func, module, mod_aliases, member_aliases, summaries, None
            )
            for ob in flow.run():
                collected.setdefault((ob.kind, ob.line, ob.col, ob.detail), ob)
        out.append((module, list(collected.values())))

    _CACHE.clear()
    _CACHE.append((key, out))
    return out
