"""R1 (RNG discipline) and R5 (determinism): seeded randomness only.

Every theorem-level experiment in this package must replay byte-identical
from a seed (the QA corpus depends on it), so randomness may only enter
through :func:`repro._compat.resolve_rng`:

* **R1** — any call into the ``random`` / ``numpy.random`` modules outside
  ``_compat`` is an error (``rng.random()`` on a shared stream object is
  fine; ``random.random()`` on the module is not), and a public function
  taking *both* ``seed`` and ``rng`` parameters must arbitrate them with
  ``resolve_rng`` (or forward both to a callee that does).  Waive with
  ``# lint: rng-ok(reason)``.
* **R5** — ``core/``, ``routing/`` and ``scenarios/`` kernels must be
  pure functions of their inputs: wall-clock and entropy reads (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``, ``secrets.*``) are
  errors there.  Waive with ``# lint: nondet-ok(reason)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.engine import (
    LintConfig,
    LintModule,
    import_tables,
    register_rule,
    resolve_call,
)
from repro.lint.findings import Finding

__all__ = ["rng_discipline", "determinism"]

_RNG_PREFIXES = ("random.", "numpy.random.")

_NONDET_EXACT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)
_NONDET_PREFIXES = ("secrets.",)


def _param_names(fn: ast.AST) -> List[str]:
    args = fn.args  # type: ignore[attr-defined]
    params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    return [a.arg for a in params]


@register_rule("R1", "rng-discipline")
def rng_discipline(module: LintModule, config: LintConfig) -> Iterator[Finding]:
    """Randomness must flow through ``repro._compat.resolve_rng``."""
    if module.matches(config.rng_exempt):
        return
    mod_aliases, member_aliases = import_tables(module.tree)

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            dotted = resolve_call(node.func, mod_aliases, member_aliases)
            if dotted is None:
                continue
            if any(dotted.startswith(p) for p in _RNG_PREFIXES) or dotted in (
                "random.Random",
                "numpy.random.default_rng",
            ):
                if module.waived("rng-ok", node.lineno):
                    continue
                yield Finding(
                    "R1", "error", module.rel, node.lineno, node.col_offset + 1,
                    f"direct call to {dotted}() bypasses the seeded-stream "
                    f"discipline",
                    suggestion="take (seed, rng) and call "
                    "repro._compat.resolve_rng, or accept an rng argument",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _check_seed_routing(module, node)


def _check_seed_routing(
    module: LintModule, fn: ast.AST
) -> Iterator[Finding]:
    """A public ``(seed, rng)`` API must arbitrate through resolve_rng."""
    name = fn.name  # type: ignore[attr-defined]
    if name.startswith("_"):
        return
    params = _param_names(fn)
    if "seed" not in params or "rng" not in params:
        return
    if module.waived("rng-ok", fn.lineno):  # type: ignore[attr-defined]
        return

    uses_resolver = False
    forwards_seed = forwards_rng = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == "resolve_rng":
            uses_resolver = True
        if isinstance(node, ast.Attribute) and node.attr == "resolve_rng":
            uses_resolver = True
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "seed":
                    forwards_seed = True
                if kw.arg == "rng":
                    forwards_rng = True
    if uses_resolver or (forwards_seed and forwards_rng):
        return
    yield Finding(
        "R1", "error", module.rel,
        fn.lineno, fn.col_offset + 1,  # type: ignore[attr-defined]
        f"public function {name}() takes both seed and rng but never "
        f"routes them through resolve_rng",
        suggestion="rng = resolve_rng(seed, rng) arbitrates the pair "
        "(passing both raises)",
    )


@register_rule("R5", "determinism")
def determinism(module: LintModule, config: LintConfig) -> Iterator[Finding]:
    """``core/``/``routing/``/``scenarios/`` kernels may not read
    wall-clock or entropy."""
    if not module.in_dirs(config.kernel_dirs):
        return
    mod_aliases, member_aliases = import_tables(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = resolve_call(node.func, mod_aliases, member_aliases)
        if dotted is None:
            continue
        if dotted in _NONDET_EXACT or any(
            dotted.startswith(p) for p in _NONDET_PREFIXES
        ):
            if module.waived("nondet-ok", node.lineno):
                continue
            yield Finding(
                "R5", "error", module.rel, node.lineno, node.col_offset + 1,
                f"nondeterministic call {dotted}() in a kernel module",
                suggestion="kernels must be pure functions of their inputs; "
                "take the value as a parameter or move the read to the "
                "caller",
            )
