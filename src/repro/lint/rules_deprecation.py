"""R2: no new call sites of ``ReproDeprecationWarning``-shimmed APIs.

The migration shims (PR 2) keep old code importable while warning at
runtime; this rule stops *new* code from adopting them, at review time:

* imports of :mod:`repro.service.metrics` / ``ServiceMetrics`` — the
  metrics layer moved to :class:`repro.obs.metrics.MetricsRegistry`.
  These findings carry an autofix (``repro lint --fix`` rewrites the
  import); renaming the uses is left to the author.
* the pre-obs ``sim.inject(...); sim.run() -> int`` style on the two
  store-and-forward engines — pass a schedule to ``run()`` instead.
  (The wormhole engines' ``inject`` is their current flit API, not a
  shim, and is not flagged.)
* imports of the retired ``FaultSet`` alias from the service layer — the
  fault model's one true home is :class:`repro.fault.faults.FaultModel`.
  The plain single-name import form carries an autofix.

Waive with ``# lint: deprecated-ok(reason)`` — the shim's own re-export
surface and its dedicated tests are the legitimate users.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.lint.engine import LintConfig, LintModule, register_rule
from repro.lint.findings import Finding

__all__ = ["deprecation"]

_SHIM_MODULE = "repro.service.metrics"
_SHIM_NAME = "ServiceMetrics"
_FAULTSET_NAME = "FaultSet"
# modules whose FaultSet attribute is the deprecated alias
_FAULTSET_MODULES = frozenset({"repro", "repro.service", "repro.service.api"})
# constructors whose inject() is the deprecated pre-obs surface
_SHIMMED_SIMULATORS = frozenset({"StoreForwardSimulator", "FastStoreForward"})


@register_rule("R2", "deprecation")
def deprecation(module: LintModule, config: LintConfig) -> Iterator[Finding]:
    """Flag shimmed-API call sites, with autofix suggestions."""
    if module.matches(config.deprecation_exempt):
        return
    yield from _check_imports(module)
    yield from _check_inject_style(module)


def _check_imports(module: LintModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == _SHIM_MODULE:
            if module.waived("deprecated-ok", node.lineno):
                continue
            fix = None
            old_line = module.lines[node.lineno - 1]
            if (
                old_line.strip()
                == f"from {_SHIM_MODULE} import {_SHIM_NAME}"
            ):
                indent = old_line[: len(old_line) - len(old_line.lstrip())]
                fix = (
                    old_line,
                    f"{indent}from repro.obs.metrics import MetricsRegistry",
                )
            yield Finding(
                "R2", "error", module.rel, node.lineno, node.col_offset + 1,
                f"import from deprecated shim {_SHIM_MODULE}",
                suggestion="use repro.obs.metrics.MetricsRegistry "
                "(same incr/count/observe/time API, richer snapshot)",
                fix=fix,
            )
        elif isinstance(node, ast.ImportFrom) and node.module in (
            "repro.service",
            "repro",
        ):
            for alias in node.names:
                if alias.name == _SHIM_NAME and not module.waived(
                    "deprecated-ok", node.lineno
                ):
                    yield Finding(
                        "R2", "error", module.rel, node.lineno,
                        node.col_offset + 1,
                        f"import of deprecated {_SHIM_NAME} "
                        f"(shim over MetricsRegistry)",
                        suggestion="instantiate repro.obs.metrics."
                        "MetricsRegistry directly",
                    )
        if isinstance(node, ast.ImportFrom) and node.module in _FAULTSET_MODULES:
            for alias in node.names:
                if alias.name != _FAULTSET_NAME or module.waived(
                    "deprecated-ok", node.lineno
                ):
                    continue
                fix = None
                old_line = module.lines[node.lineno - 1]
                if (
                    old_line.strip()
                    == f"from {node.module} import {_FAULTSET_NAME}"
                ):
                    indent = old_line[: len(old_line) - len(old_line.lstrip())]
                    fix = (
                        old_line,
                        f"{indent}from repro.fault.faults import FaultModel",
                    )
                yield Finding(
                    "R2", "error", module.rel, node.lineno,
                    node.col_offset + 1,
                    f"import of retired {_FAULTSET_NAME} alias from "
                    f"{node.module}",
                    suggestion="use repro.fault.faults.FaultModel "
                    "(same class; the alias only warns and forwards)",
                    fix=fix,
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == _SHIM_MODULE and not module.waived(
                    "deprecated-ok", node.lineno
                ):
                    yield Finding(
                        "R2", "error", module.rel, node.lineno,
                        node.col_offset + 1,
                        f"import of deprecated shim module {_SHIM_MODULE}",
                        suggestion="use repro.obs.metrics.MetricsRegistry",
                    )


def _check_inject_style(module: LintModule) -> Iterator[Finding]:
    """Trace names bound to shimmed simulator constructors; flag .inject()."""
    # scope-by-scope: module body and each function body independently, so
    # a binding in one function never taints a same-named variable elsewhere
    scopes = [module.tree] + [
        n
        for n in ast.walk(module.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        sim_names = _simulator_bindings(scope)
        if not sim_names:
            continue
        for node in _scope_local(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "inject"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in sim_names
            ):
                if module.waived("deprecated-ok", node.lineno):
                    continue
                cls = sim_names[node.func.value.id]
                yield Finding(
                    "R2", "error", module.rel, node.lineno,
                    node.col_offset + 1,
                    f"pre-obs {cls}.inject() call (deprecated shim; "
                    f"run() -> int follows)",
                    suggestion="pass a schedule to run() and read "
                    "SimResult.makespan",
                )


def _scope_local(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function bodies."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _scope_local(child)


def _simulator_bindings(scope: ast.AST) -> Dict[str, str]:
    """Names assigned from shimmed simulator constructors in this scope."""
    out: Dict[str, str] = {}
    for node in _scope_local(scope):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        func = node.value.func
        cls = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if cls not in _SHIMMED_SIMULATORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out[target.id] = cls
    return out
