"""R9: kernel-parity coverage — every fast kernel owes QA a differential.

The repo's performance story rests on optimized kernels (``fast-*`` and
``batched-*`` engines, the CSR/serving kernels) being *proven* equal to
their reference implementations by the QA differential stages.  PR 4/8/9
each shipped that pairing by hand; this rule makes it structural, the
same cross-file way R3 ties builders to oracles:

* every class in a kernel directory advertising ``engine = "fast-…"`` or
  ``engine = "batched-…"`` must be referenced by the QA differential
  module (``qa/differential.py``) — an unreferenced engine has no parity
  harness at all;
* every serving kernel named in ``parity_kernels`` (the CSR resolver
  ``embedding_csr`` and the mapped-store opener ``open_store``) must be
  referenced there too;
* every public differential check *defined* in the differential module
  must be referenced by the fuzzer (``qa/fuzzer.py``) — a check that is
  never registered as a stage runs only when a human remembers to.

Like R3, the rule is silent when the QA modules are outside the scanned
set (partial scans must not fabricate findings).  Waive with
``# lint: no-parity(reason)`` on the class or def header — legitimate
for engines whose parity is proven indirectly (e.g. via a wrapper the
differential module does reference).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Tuple

from repro.lint.engine import LintConfig, LintModule, register_rule
from repro.lint.findings import Finding
from repro.lint.rules_contract import _find, _referenced_names
from repro.lint.rules_protocol import _engine_attr

__all__ = ["kernel_parity"]

_COVERED_PREFIXES = ("fast-", "batched-")


def _kernel_engines(
    modules: Sequence[LintModule], config: LintConfig
) -> List[Tuple[LintModule, ast.ClassDef, str]]:
    out = []
    for module in modules:
        if not module.in_dirs(config.kernel_dirs):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            engine = _engine_attr(node)
            if engine and engine.startswith(_COVERED_PREFIXES):
                out.append((module, node, engine))
    return out


def _serving_kernels(
    modules: Sequence[LintModule], config: LintConfig
) -> List[Tuple[LintModule, ast.AST, str]]:
    wanted = set(config.parity_kernels)
    out = []
    for module in modules:
        for node in module.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in wanted
            ):
                out.append((module, node, node.name))
    return out


def _differential_defs(differential: LintModule) -> List[ast.AST]:
    return [
        node
        for node in differential.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and "differential" in node.name
        and not node.name.startswith("_")
    ]


@register_rule("R9", "kernel-parity", scope="project")
def kernel_parity(
    modules: Sequence[LintModule], config: LintConfig
) -> Iterator[Finding]:
    """Every fast/batched kernel entry point needs a registered differential."""
    differential = _find(modules, config.parity_differential)
    if differential is None:
        return  # partial scan — cannot reason about coverage
    referenced = _referenced_names(differential)

    for module, cls, engine in _kernel_engines(modules, config):
        if cls.name in referenced:
            continue
        if module.waived("no-parity", cls.lineno):
            continue
        yield Finding(
            "R9", "error", module.rel, cls.lineno, cls.col_offset + 1,
            f"engine {cls.name} ({engine!r}) has no QA differential: "
            f"it is never referenced by {config.parity_differential}",
            suggestion="add a differential check pairing it against its "
            "reference engine (see qa/differential.py), or waive with "
            "# lint: no-parity(reason)",
        )

    for module, node, name in _serving_kernels(modules, config):
        if name in referenced:
            continue
        if module.waived("no-parity", node.lineno):
            continue
        yield Finding(
            "R9", "error", module.rel, node.lineno, node.col_offset + 1,
            f"serving kernel {name}() is never referenced by "
            f"{config.parity_differential}",
            suggestion="cover it in a differential stage or waive with "
            "# lint: no-parity(reason)",
        )

    fuzzer = _find(modules, config.parity_fuzzer)
    if fuzzer is None:
        return
    staged = _referenced_names(fuzzer)
    for node in _differential_defs(differential):
        if node.name in staged:
            continue
        if differential.waived("no-parity", node.lineno):
            continue
        yield Finding(
            "R9", "error", differential.rel, node.lineno,
            node.col_offset + 1,
            f"differential check {node.name}() is not registered as a "
            f"fuzzer stage: {config.parity_fuzzer} never references it",
            suggestion="wire it into Fuzzer's stage table so the nightly "
            "quota runs it, or waive with # lint: no-parity(reason)",
        )
