"""R3: the construction contract between ``core/`` and the QA fuzzer.

Every builder the public API exports (an ``__all__`` entry of
``core/__init__.py`` named ``embed_*`` or ``*_embedding``) must be

1. **fuzzable** — referenced by the construction table
   (``qa/constructions.py``), so ``repro qa fuzz`` exercises it, and
2. **oracled** — its fuzz kind carries a ``@register_oracle`` in
   ``qa/oracles.py``, so fuzzing checks the paper's claimed numbers,
   not just well-formedness.

The same contract extends to the traffic-scenario registry
(``scenarios/generators.py``): every ``@register_scenario("name")``
generator must carry a ``@register_oracle("scenario:<name>")`` so fuzzing
over adversarial traffic checks the pattern's closed form, not just
schedule well-formedness.

A builder that legitimately has neither (a thin rewrapping, say) is
waived in place: ``# lint: no-oracle(reason)`` on its ``__all__`` entry
line, on the ``FuzzConstruction(...)`` line for a kind without an
oracle, or on the ``@register_scenario`` decorator line.  The rule
reasons across files, so each leg only runs when the files it needs are
in the scanned set — linting a lone module never produces spurious
contract findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.lint.engine import LintConfig, LintModule, register_rule
from repro.lint.findings import Finding

__all__ = ["construction_contract"]


def _find(modules: Sequence[LintModule], suffix: str) -> Optional[LintModule]:
    for m in modules:
        if m.rel.endswith(suffix):
            return m
    return None


def _is_builder(name: str) -> bool:
    return name.startswith("embed_") or name.endswith("_embedding")


def _exported_builders(api: LintModule) -> Dict[str, int]:
    """``__all__`` builder names of the API module, with their lines."""
    out: Dict[str, int] = {}
    for node in api.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, str
                ):
                    if _is_builder(elt.value):
                        out[elt.value] = elt.lineno
    return out


def _referenced_names(table: LintModule) -> Set[str]:
    """Every identifier the construction table mentions (imports + uses)."""
    names: Set[str] = set()
    for node in ast.walk(table.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _registered_kinds(table: LintModule) -> Dict[str, int]:
    """Fuzz kind -> line of its ``FuzzConstruction("kind", ...)`` call."""
    out: Dict[str, int] = {}
    for node in ast.walk(table.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name != "FuzzConstruction" or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            out[first.value] = node.lineno
    return out


def _registered_scenarios(scenarios: LintModule) -> Dict[str, int]:
    """Scenario name -> line of its ``@register_scenario("name")``."""
    out: Dict[str, int] = {}
    for node in ast.walk(scenarios.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call) or not deco.args:
                continue
            func = deco.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            first = deco.args[0]
            if (
                name == "register_scenario"
                and isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                out[first.value] = deco.lineno
    return out


def _oracle_kinds(oracles: LintModule) -> Set[str]:
    """Kinds decorated ``@register_oracle("kind")``."""
    out: Set[str] = set()
    for node in ast.walk(oracles.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call) or not deco.args:
                continue
            func = deco.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            first = deco.args[0]
            if (
                name == "register_oracle"
                and isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                out.add(first.value)
    return out


@register_rule("R3", "construction-contract", scope="project")
def construction_contract(
    modules: Sequence[LintModule], config: LintConfig
) -> Iterator[Finding]:
    """Public builders must be fuzzable and their fuzz kinds oracled."""
    api = _find(modules, config.contract_api)
    table = _find(modules, config.contract_table)
    oracles = _find(modules, config.contract_oracles)
    scenarios = _find(modules, config.contract_scenarios)
    if oracles is not None and scenarios is not None:
        oracled_kinds = _oracle_kinds(oracles)
        for name, line in sorted(_registered_scenarios(scenarios).items()):
            if f"scenario:{name}" in oracled_kinds:
                continue
            if scenarios.waived("no-oracle", line):
                continue
            yield Finding(
                "R3", "error", scenarios.rel, line, 1,
                f"scenario {name!r} has no pattern oracle",
                suggestion=f"add @register_oracle('scenario:{name}') to "
                f"{config.contract_oracles} certifying the traffic "
                f"pattern's closed form, or waive with "
                f"# lint: no-oracle(reason)",
            )
    if api is None or table is None or oracles is None:
        return  # partial scan: the builder contract can't be evaluated

    builders = _exported_builders(api)
    referenced = _referenced_names(table)
    kinds = _registered_kinds(table)
    oracled = _oracle_kinds(oracles)

    unregistered: List[str] = [
        name for name in builders if name not in referenced
    ]
    for name in unregistered:
        line = builders[name]
        if api.waived("no-oracle", line):
            continue
        yield Finding(
            "R3", "error", api.rel, line, 1,
            f"public builder {name}() is not registered with the QA "
            f"construction table",
            suggestion=f"add a FuzzConstruction to {config.contract_table} "
            f"(sampler + builder + shrinker), or waive with "
            f"# lint: no-oracle(reason) on its __all__ entry",
        )

    for kind, line in sorted(kinds.items()):
        if kind in oracled:
            continue
        if table.waived("no-oracle", line):
            continue
        yield Finding(
            "R3", "error", table.rel, line, 1,
            f"fuzz kind {kind!r} has no paper oracle",
            suggestion=f"add @register_oracle({kind!r}) to "
            f"{config.contract_oracles} comparing measured metrics to the "
            f"theorem's claim, or waive with # lint: no-oracle(reason)",
        )
