"""Finding and report data model for the domain-aware linter.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintReport` is the outcome of one run over a file set.  Both
serialize to the stable JSON shape documented in EXPERIMENTS.md (appendix
"repro lint JSON output") and consumed by ``benchmarks/lint_summary.py``
— bump :data:`LINT_OUTPUT_VERSION` when the shape changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Finding", "LintReport", "LINT_OUTPUT_VERSION"]

LINT_OUTPUT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation: where, what, and (optionally) how to fix it.

    ``fix`` — when the violation is mechanically fixable — is the exact
    current text of the offending line and its replacement; ``repro lint
    --fix`` applies it only while the file text still matches.
    """

    rule: str
    severity: str  # "error" | "warning"
    path: str  # posix-style path as scanned
    line: int
    col: int
    message: str
    suggestion: str = ""
    fix: Optional[Tuple[str, str]] = None  # (exact old line, replacement)

    @property
    def fixable(self) -> bool:
        return self.fix is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suggestion": self.suggestion,
            "fixable": self.fixable,
        }

    def format(self) -> str:
        tail = f"  [{self.suggestion}]" if self.suggestion else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}{tail}"
        )


@dataclass
class LintReport:
    """Everything one lint run found, plus scan bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived."""
        return self.errors == 0

    def counts(self) -> Dict[str, int]:
        """Finding count per rule id, including zero for every rule run."""
        out: Dict[str, int] = {rule: 0 for rule in self.rules_run}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": LINT_OUTPUT_VERSION,
            "tool": "repro-lint",
            "files_scanned": self.files_scanned,
            "errors": self.errors,
            "warnings": self.warnings,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def summary(self) -> str:
        return (
            f"{self.files_scanned} file(s) scanned, "
            f"{self.errors} error(s), {self.warnings} warning(s)"
        )

    def to_sarif(self) -> Dict[str, Any]:
        """SARIF 2.1.0 log for CI annotation / code-scanning upload.

        Rule ids come from the run (so a ``--select`` run advertises only
        what it checked, plus any ad-hoc ids like ``pragma``/``parse``
        that produced findings).
        """
        rule_ids = sorted(set(self.rules_run) | {f.rule for f in self.findings})
        results = [
            {
                "ruleId": f.rule,
                "level": "error" if f.severity == "error" else "warning",
                "message": {
                    "text": f.message + (f"\n{f.suggestion}" if f.suggestion else "")
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col,
                            },
                        }
                    }
                ],
            }
            for f in self.findings
        ]
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "version": str(LINT_OUTPUT_VERSION),
                            "rules": [{"id": rid} for rid in rule_ids],
                        }
                    },
                    "results": results,
                }
            ],
        }
