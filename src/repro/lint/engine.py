"""The lint engine: file discovery, pragmas, rule registry, fix application.

Rules are AST passes registered with :func:`register_rule`; the engine
parses each target file once into a :class:`LintModule` (source + tree +
pragma index + scope map) and hands it to every selected module-scoped
rule, then hands the whole module set to the project-scoped rules (the
construction contract and the race detector reason across files).

Pragmas waive one rule at one site::

    # lint: rng-ok(fuzz sampler shares the harness stream)

The token names the rule's waiver (each rule documents its own); the
parenthesized reason is mandatory — an unexplained waiver is itself a
finding.  A pragma on a ``def``/``class`` line (or the line above it)
waives the rule for that whole scope.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.findings import Finding, LintReport

__all__ = [
    "LintConfig",
    "LintModule",
    "Rule",
    "register_rule",
    "all_rules",
    "run_lint",
    "apply_fixes",
]

# the "lint:" marker inside a comment; tokens and reasons are parsed by
# hand after it so reasons may contain balanced parentheses and one line
# may carry several pragmas (see _parse_pragmas)
_PRAGMA_HEAD_RE = re.compile(r"lint:\s*")
_PRAGMA_TOKEN_RE = re.compile(r"[a-z][a-z0-9-]*")

# every waiver token a rule may consult; unknown tokens are findings
KNOWN_PRAGMAS = frozenset(
    {
        "rng-ok",  # R1
        "deprecated-ok",  # R2
        "no-oracle",  # R3
        "protocol-exempt",  # R4
        "nondet-ok",  # R5
        "race-ok",  # R6
        "domain-ok",  # R7
        "dtype-ok",  # R8
        "no-parity",  # R9
    }
)


@dataclass(frozen=True)
class LintConfig:
    """What to lint and which repo contracts to enforce where.

    Paths in the tuples are suffix-matched against posix relative paths,
    so the defaults work both on the real tree (``src/repro/...``) and on
    fixture trees that mirror the layout under another root.
    """

    select: Optional[Tuple[str, ...]] = None  # rule ids; None = all
    # R1: modules allowed to use the random modules directly
    rng_exempt: Tuple[str, ...] = ("_compat.py",)
    # R2: the deprecation shims themselves
    deprecation_exempt: Tuple[str, ...] = ("service/metrics.py",)
    # R5: directory names whose modules are deterministic kernels
    kernel_dirs: Tuple[str, ...] = ("core", "routing", "scenarios")
    # R6: modules whose lock discipline is checked
    race_modules: Tuple[str, ...] = (
        "service/registry.py",
        "service/engine.py",
        "service/shards.py",
        "service/frontend.py",
        "service/store.py",
    )
    # R3: the files defining the construction contract
    contract_api: str = "core/__init__.py"
    contract_table: str = "qa/constructions.py"
    contract_oracles: str = "qa/oracles.py"
    # R3: the scenario registry; every @register_scenario kind needs an oracle
    contract_scenarios: str = "scenarios/generators.py"
    # R9: the QA modules that prove kernel parity, and the serving kernels
    # (beyond engine classes) that must appear in the differential module
    parity_differential: str = "qa/differential.py"
    parity_fuzzer: str = "qa/fuzzer.py"
    parity_kernels: Tuple[str, ...] = ("embedding_csr", "open_store")


@dataclass
class LintModule:
    """One parsed source file plus the derived indices rules consult."""

    path: Path
    rel: str  # posix-style path as reported in findings
    source: str
    lines: List[str]
    tree: ast.Module
    pragmas: Dict[int, Dict[str, str]]  # line -> {token: reason}
    scope_lines: Dict[int, Tuple[int, ...]]  # line -> enclosing def/class lines

    def waived(self, token: str, lineno: int) -> bool:
        """True when ``token`` is waived at ``lineno`` or an enclosing scope.

        A pragma waives the line it sits on, the line below it (comment-
        above-the-statement style), and — when it sits on a ``def`` or
        ``class`` header — everything inside that scope.
        """
        for line in (lineno,) + self.scope_lines.get(lineno, ()):
            if token in self.pragmas.get(line, {}):
                return True
            if token in self.pragmas.get(line - 1, {}):
                return True
        return False

    def matches(self, suffixes: Sequence[str]) -> bool:
        return any(self.rel.endswith(s) for s in suffixes)

    def in_dirs(self, dirs: Sequence[str]) -> bool:
        return any(part in dirs for part in Path(self.rel).parts[:-1])


RuleFn = Callable[..., Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: id, human name, scope, and its pass."""

    id: str
    name: str
    scope: str  # "module" | "project"
    severity: str
    doc: str
    fn: RuleFn


_RULES: Dict[str, Rule] = {}


def register_rule(
    rule_id: str,
    name: str,
    *,
    scope: str = "module",
    severity: str = "error",
) -> Callable[[RuleFn], RuleFn]:
    """Register a rule pass under ``rule_id`` (e.g. ``"R1"``).

    Module-scoped passes are called ``fn(module, config)`` once per file;
    project-scoped passes are called ``fn(modules, config)`` once per run.
    """
    if scope not in ("module", "project"):
        raise ValueError(f"scope must be module or project, got {scope!r}")

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in _RULES and _RULES[rule_id].fn is not fn:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _RULES[rule_id] = Rule(
            rule_id, name, scope, severity, (fn.__doc__ or "").strip(), fn
        )
        return fn

    return decorate


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in id order (importing the rule modules)."""
    _load_builtin_rules()
    return tuple(_RULES[k] for k in sorted(_RULES))


def _load_builtin_rules() -> None:
    # registration happens at import; keep in one place so run_lint and
    # the CLI agree on the rule set
    from repro.lint import races  # noqa: F401
    from repro.lint import rules_contract  # noqa: F401
    from repro.lint import rules_deprecation  # noqa: F401
    from repro.lint import rules_domain  # noqa: F401
    from repro.lint import rules_dtype  # noqa: F401
    from repro.lint import rules_parity  # noqa: F401
    from repro.lint import rules_protocol  # noqa: F401
    from repro.lint import rules_rng  # noqa: F401


# -- parsing -------------------------------------------------------------------


def _parse_pragmas(text: str) -> List[Tuple[int, str, Optional[str], str]]:
    """Parse every pragma on one line: ``(col, token, reason, problem)``.

    ``reason`` is ``None`` when missing/empty, and ``problem`` names what
    went wrong (``""`` when well-formed).  The parser is a single cursor
    walk so that reasons containing balanced parentheses — or the text
    ``lint:`` itself — never confuse later pragmas, and one comment may
    stack several pragmas: ``# lint: race-ok(drain() owns it) dtype-ok(…)``.
    """
    hash_pos = text.find("#")
    if hash_pos < 0:
        return []
    out: List[Tuple[int, str, Optional[str], str]] = []
    pos = hash_pos
    while True:
        head = _PRAGMA_HEAD_RE.search(text, pos)
        if head is None:
            return out
        pos = head.end()
        first = True
        while True:
            while pos < len(text) and text[pos] in " \t,":
                pos += 1
            token_match = _PRAGMA_TOKEN_RE.match(text, pos)
            if token_match is None:
                break
            token = token_match.group(0)
            after = token_match.end()
            if after >= len(text) or text[after] != "(":
                # a bare token right after "lint:" is a malformed pragma;
                # later bare words are just prose trailing a pragma
                if first:
                    out.append((token_match.start(), token, None, "no-reason"))
                    pos = after
                break
            depth, cursor = 1, after + 1
            while cursor < len(text) and depth:
                if text[cursor] == "(":
                    depth += 1
                elif text[cursor] == ")":
                    depth -= 1
                cursor += 1
            if depth:
                out.append(
                    (token_match.start(), token, None, "unterminated")
                )
                return out
            reason = text[after + 1:cursor - 1].strip()
            out.append(
                (token_match.start(), token, reason or None,
                 "" if reason else "no-reason")
            )
            pos = cursor
            first = False


def _collect_pragmas(
    lines: List[str], rel: str
) -> Tuple[Dict[int, Dict[str, str]], List[Finding]]:
    pragmas: Dict[int, Dict[str, str]] = {}
    problems: List[Finding] = []
    for i, text in enumerate(lines, start=1):
        if "lint:" not in text:
            continue
        for col, token, reason, problem in _parse_pragmas(text):
            if token not in KNOWN_PRAGMAS:
                problems.append(
                    Finding(
                        "pragma", "error", rel, i, col + 1,
                        f"unknown lint pragma {token!r}",
                        suggestion=f"known: {', '.join(sorted(KNOWN_PRAGMAS))}",
                    )
                )
                continue
            if problem == "unterminated":
                problems.append(
                    Finding(
                        "pragma", "error", rel, i, col + 1,
                        f"pragma {token!r} has an unterminated reason: "
                        f"missing ')'",
                    )
                )
                continue
            if reason is None:
                problems.append(
                    Finding(
                        "pragma", "error", rel, i, col + 1,
                        f"pragma {token!r} needs a reason: # lint: {token}(why)",
                    )
                )
                continue
            pragmas.setdefault(i, {})[token] = reason
    return pragmas, problems


def _scope_map(tree: ast.Module) -> Dict[int, Tuple[int, ...]]:
    """Map every line to the header lines of its enclosing defs/classes."""
    out: Dict[int, Tuple[int, ...]] = {}

    def visit(node: ast.AST, stack: Tuple[int, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                header = child.lineno
                end = getattr(child, "end_lineno", header) or header
                for line in range(header, end + 1):
                    out[line] = (header,) + stack
                visit(child, (header,) + stack)
            else:
                visit(child, stack)

    visit(tree, ())
    return out


def parse_module(path: Union[str, Path], rel: Optional[str] = None) -> LintModule:
    """Parse one file into a :class:`LintModule` (raises ``SyntaxError``)."""
    path = Path(path)
    rel_str = rel if rel is not None else path.as_posix()
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    pragmas, _ = _collect_pragmas(lines, rel_str)
    return LintModule(
        path, rel_str, source, lines, tree, pragmas, _scope_map(tree)
    )


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for p in paths:
        p = Path(p)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            if "__pycache__" in c.parts or c.suffix != ".py":
                continue
            key = c.resolve()
            if key not in seen:
                seen.add(key)
                out.append(c)
    return out


# -- running -------------------------------------------------------------------


def run_lint(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
    *,
    focus: Optional[Iterable[Union[str, Path]]] = None,
) -> LintReport:
    """Run every selected rule over ``paths``; returns a :class:`LintReport`.

    Unparseable files surface as ``parse`` errors rather than crashing the
    run — a syntax error in one module must not hide findings in others.

    ``focus`` (``repro lint --changed``) restricts the *reported* findings
    to the given files while every rule still reasons over the full module
    set — project-scoped rules like the construction contract and kernel
    parity are only sound with the whole picture in front of them.
    """
    config = config or LintConfig()
    focus_set: Optional[Set[Path]] = None
    if focus is not None:
        focus_set = {Path(p).resolve() for p in focus}
    rules = [
        r
        for r in all_rules()
        if config.select is None or r.id in config.select
    ]
    findings: List[Finding] = []
    modules: List[LintModule] = []
    files = discover_files(paths)
    for path in files:
        rel = path.as_posix()
        try:
            module = parse_module(path, rel)
        except SyntaxError as err:
            findings.append(
                Finding(
                    "parse", "error", rel, err.lineno or 1, err.offset or 1,
                    f"syntax error: {err.msg}",
                )
            )
            continue
        _, pragma_problems = _collect_pragmas(module.lines, rel)
        findings.extend(pragma_problems)
        modules.append(module)

    for rule in rules:
        if rule.scope == "module":
            for module in modules:
                findings.extend(rule.fn(module, config))
        else:
            findings.extend(rule.fn(modules, config))

    if focus_set is not None:
        findings = [
            f for f in findings if Path(f.path).resolve() in focus_set
        ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(
        findings=findings,
        files_scanned=len(files),
        rules_run=tuple(r.id for r in rules),
    )


def apply_fixes(report: LintReport) -> Tuple[int, LintReport]:
    """Apply every finding's ``fix`` whose line text still matches.

    Returns ``(applied_count, remaining_report)`` where the remaining
    report drops the findings that were fixed.  Fixes are exact-line
    replacements, applied bottom-up per file so earlier line numbers stay
    valid.
    """
    by_path: Dict[str, List[Finding]] = {}
    for f in report.findings:
        if f.fix is not None:
            by_path.setdefault(f.path, []).append(f)

    applied: Set[Finding] = set()
    for path, fixes in by_path.items():
        file_path = Path(path)
        lines = file_path.read_text().splitlines(keepends=True)
        changed = False
        for f in sorted(fixes, key=lambda f: -f.line):
            if f.fix is None or f.line > len(lines):
                continue
            old, new = f.fix
            current = lines[f.line - 1].rstrip("\n")
            if current == old:
                ending = lines[f.line - 1][len(current):]
                lines[f.line - 1] = new + ending
                applied.add(f)
                changed = True
        if changed:
            file_path.write_text("".join(lines))

    remaining = [f for f in report.findings if f not in applied]
    return len(applied), replace_report(report, remaining)


def replace_report(report: LintReport, findings: List[Finding]) -> LintReport:
    return LintReport(
        findings=findings,
        files_scanned=report.files_scanned,
        rules_run=report.rules_run,
    )


# -- shared AST helpers used by several rules ---------------------------------


def import_tables(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Resolve local names to dotted origins.

    Returns ``(module_aliases, member_aliases)``: ``import numpy as np``
    binds ``np -> numpy``; ``from numpy import random as nr`` binds
    ``nr -> numpy.random`` (members land in the second table whether they
    are modules, classes or functions — resolution treats both alike).
    """
    mod_aliases: Dict[str, str] = {}
    member_aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mod_aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                member_aliases[local] = f"{node.module}.{alias.name}"
    return mod_aliases, member_aliases


def resolve_call(
    func: ast.AST,
    mod_aliases: Dict[str, str],
    member_aliases: Dict[str, str],
) -> Optional[str]:
    """Dotted origin of a call target, or None when it isn't import-rooted."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.reverse()
    if node.id in member_aliases:
        return ".".join([member_aliases[node.id]] + parts)
    if node.id in mod_aliases:
        return ".".join([mod_aliases[node.id]] + parts)
    return None
