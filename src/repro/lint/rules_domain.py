"""R7: index-domain confusion — ids from one domain consumed as another.

Built on :mod:`repro.lint.flow`: every function is abstractly
interpreted over the index-domain lattice in :mod:`repro.lint.domains`,
and four kinds of consumption-site mismatch become findings:

* a call argument whose inferred domain contradicts the seeded (or
  one-level-summarized) signature — the motivating bug is a lane-major
  ``lane * L + link`` id handed to a scalar-link API like
  ``LinkRecorder.add_link_counts``;
* a comparison between two distinct named domains (a ``PackedEdgeKey``
  against a ``NodeId`` can only be coincidentally equal);
* a subscript whose index domain contradicts the array's — a
  ``LaneLinkId`` into a ``num_edges``-sized per-link array reads lane 0's
  tail as other lanes' data;
* ``searchsorted`` needles from a different domain than the sorted keys.

Unknown (INT) values are always compatible, so the rule only speaks when
both sides of a site carry evidence.  Waive with
``# lint: domain-ok(reason)`` — the legitimate cases are deliberate
reinterpretations (e.g. disjointness keys built *like* lane ids purely
for uniqueness).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.lint.engine import LintConfig, LintModule, register_rule
from repro.lint.findings import Finding
from repro.lint.flow import analyze

__all__ = ["domain_confusion"]

_KINDS = frozenset({"arg", "compare", "index", "searchsorted"})


@register_rule("R7", "domain-confusion", scope="project")
def domain_confusion(
    modules: Sequence[LintModule], config: LintConfig
) -> Iterator[Finding]:
    """Ids must stay in their index domain from producer to consumer."""
    for module, observations in analyze(modules, config):
        for ob in observations:
            if ob.kind not in _KINDS:
                continue
            if module.waived("domain-ok", ob.line):
                continue
            yield Finding(
                "R7", "error", module.rel, ob.line, ob.col,
                ob.detail,
                suggestion="unpack first (e.g. '% num_edges' recovers the "
                "LinkId from a LaneLinkId) or waive with "
                "# lint: domain-ok(reason) for a deliberate "
                "reinterpretation",
            )
