"""R4: structural check of the Simulator protocol, without importing.

The unified simulator API (PR 3) fixed the engine surface: any class
advertising itself as an engine (an ``engine = "<name>"`` class attribute
plus a ``run`` method) must satisfy::

    run(self, schedule=None, *, max_steps=..., recorder=None) -> SimResult

This rule checks that shape purely from the AST — no import, so a broken
or heavy module still gets checked, and fixture trees never execute.
Engines with a deliberately different surface (the flit-level wormhole
kernel) carry ``# lint: protocol-exempt(reason)`` on the class header.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import LintConfig, LintModule, register_rule
from repro.lint.findings import Finding

__all__ = ["simulator_protocol"]


def _engine_attr(cls: ast.ClassDef) -> Optional[str]:
    """The value of a string-valued ``engine = ...`` class attribute."""
    for node in cls.body:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AnnAssign) and node.value is not None
            else []
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "engine":
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return value.value
    return None


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _builds_sim_result(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if name == "SimResult":
                return True
    return False


@register_rule("R4", "simulator-protocol")
def simulator_protocol(
    module: LintModule, config: LintConfig
) -> Iterator[Finding]:
    """Engine classes must expose the unified ``run`` surface."""
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        engine = _engine_attr(cls)
        if engine is None:
            continue
        if module.waived("protocol-exempt", cls.lineno):
            continue

        run = _find_method(cls, "run")
        if run is None:
            yield Finding(
                "R4", "error", module.rel, cls.lineno, cls.col_offset + 1,
                f"class {cls.name} declares engine={engine!r} but has no "
                f"run() method",
                suggestion="implement run(schedule=None, *, max_steps=..., "
                "recorder=None) -> SimResult",
            )
            continue

        problems = []
        positional = [a.arg for a in run.args.args[1:]]  # drop self
        defaults = run.args.defaults
        if positional[:1] != ["schedule"]:
            problems.append("first parameter after self must be 'schedule'")
        elif len(defaults) < len(positional):
            problems.append("'schedule' needs a default (None)")
        kwonly = {a.arg for a in run.args.kwonlyargs}
        for required in ("max_steps", "recorder"):
            if required not in kwonly:
                problems.append(f"missing keyword-only parameter '{required}'")
        missing_kw_defaults = {
            a.arg
            for a, d in zip(run.args.kwonlyargs, run.args.kw_defaults)
            if d is None and a.arg in ("max_steps", "recorder")
        }
        for name in sorted(missing_kw_defaults):
            problems.append(f"keyword-only parameter '{name}' needs a default")
        if not _builds_sim_result(cls):
            problems.append("class never constructs a SimResult")

        for problem in problems:
            yield Finding(
                "R4", "error", module.rel, run.lineno, run.col_offset + 1,
                f"engine {engine!r} ({cls.name}.run) breaks the simulator "
                f"protocol: {problem}",
                suggestion="conform to run(schedule=None, *, max_steps=..., "
                "recorder=None) -> SimResult, or waive with "
                "# lint: protocol-exempt(reason) on the class line",
            )
