"""The index-domain lattice and seed tables for the dataflow rules.

The paper's constructions juggle half a dozen integer *domains* that
python's type system cannot tell apart: vertex ids in ``Q_n``, directed
link ids ``head * n + dim``, lane-major link ids ``lane * L + link``
(``routing/batched.py``), packed edge keys ``u * base + v``
(``core/fast_verify.py``), CSR offsets, byte offsets into mapped stores
(``service/store.py``), and flit positions.  Mixing them is silent until
a differential fuzzer trips over the corruption.  This module names the
domains, declares which repo APIs produce and consume which domain (the
*seed tables*), and records each domain's worst-case extent at the
scaling point the repo benchmarks against (``Q_20``, batch ``B = 4096``)
so the dtype rule can prove an ``int32`` too small before anything runs.

:mod:`repro.lint.flow` interprets functions over these tables;
``rules_domain`` (R7) and ``rules_dtype`` (R8) turn the resulting
observations into findings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.hypercube.pathcode import CSR_OFFSET_DTYPE

__all__ = [
    "NODE", "DIM", "LINK", "LANE_LINK", "PACKED_EDGE", "CSR_OFFSET",
    "BYTE_OFFSET", "FLIT_POS", "INT",
    "NODE_COUNT", "LINK_COUNT", "DIM_COUNT", "VERTEX_BASE",
    "NAMED", "SCALES", "ATTR_INFO", "HEADER_FIELDS",
    "PACK", "SCALE_PRODUCT", "MOD_UNPACK", "DIV_UNPACK", "INDEX_OF",
    "EXTENT", "fits", "add_domains", "sub_domains",
    "FUNC_SIGS", "METHOD_SIGS", "Sig",
]

# -- value domains -------------------------------------------------------------

NODE = "NodeId"  # vertex id in Q_n: 0 .. 2^n - 1
DIM = "DimId"  # hypercube dimension: 0 .. n - 1
LINK = "LinkId"  # directed link id: head * n + dim
LANE_LINK = "LaneLinkId"  # lane-major link id: lane * L + link
PACKED_EDGE = "PackedEdgeKey"  # u * base + v lookup key
CSR_OFFSET = "CsrOffset"  # index into a CSR nodes vector
BYTE_OFFSET = "ByteOffset"  # byte position in a mapped store segment
FLIT_POS = "FlitPos"  # flit index within one worm
INT = "int"  # plain / unknown integer — compatible with everything

# -- scale domains (multipliers and counts, not ids) ---------------------------

NODE_COUNT = "NodeCount"  # .num_nodes
LINK_COUNT = "LinkCount"  # .num_edges — the lane stride
DIM_COUNT = "DimCount"  # .n — the link-id stride
VERTEX_BASE = "VertexBase"  # .base — the packed-edge stride

#: domains that carry meaning — INT is the anonymous bottom element
NAMED: FrozenSet[str] = frozenset(
    {
        NODE, DIM, LINK, LANE_LINK, PACKED_EDGE, CSR_OFFSET, BYTE_OFFSET,
        FLIT_POS, NODE_COUNT, LINK_COUNT, DIM_COUNT, VERTEX_BASE,
    }
)

#: counts/strides — comparing an id against these is a bounds check, not a bug
SCALES: FrozenSet[str] = frozenset(
    {NODE_COUNT, LINK_COUNT, DIM_COUNT, VERTEX_BASE}
)


# -- seed table: attribute loads ----------------------------------------------
# attr name -> (element domain, index domain of the array's first axis).
# Suffix-free on purpose: these names are the repo-wide vocabulary
# (Hypercube.num_edges, EdgeLookup.base, PathCSR.nodes, ...).

ATTR_INFO: Dict[str, Tuple[str, Optional[str]]] = {
    "num_nodes": (NODE_COUNT, None),
    "num_edges": (LINK_COUNT, None),
    "base": (VERTEX_BASE, None),
    "n": (DIM_COUNT, None),
    "nodes": (NODE, CSR_OFFSET),  # PathCSR.nodes — indexed by CsrOffset
    "path_offsets": (CSR_OFFSET, INT),
    "bundle_offsets": (CSR_OFFSET, INT),
    "keys": (PACKED_EDGE, INT),  # EdgeLookup.keys — sorted pack keys
    "data_start": (BYTE_OFFSET, None),
    "num_flits": (FLIT_POS, None),
}

# -- seed table: mapped-store header fields (string subscripts) ----------------
# header["data_start"], spec["offset"], ... are byte offsets by contract
# (service/store.py and service/shards.py share the layout vocabulary).

HEADER_FIELDS: FrozenSet[str] = frozenset(
    {"data_start", "payload", "offset", "blob_offset", "nbytes"}
)

# -- packing algebra -----------------------------------------------------------
# ``x * scale + y`` produces the packed domain of the scale; ``% scale``
# recovers the minor component, ``// scale`` the major one.

PACK: Dict[str, str] = {
    LINK_COUNT: LANE_LINK,  # lane * L + link
    VERTEX_BASE: PACKED_EDGE,  # u * base + v
    NODE_COUNT: PACKED_EDGE,  # u * num_nodes + v (base == num_nodes)
    DIM_COUNT: LINK,  # head * n + dim
}

#: a product of two *counts* is itself a count, not a packed id —
#: ``num_nodes * n`` sizes the directed-link mask, so it is a LinkCount
SCALE_PRODUCT: Dict[Tuple[str, str], str] = {
    (NODE_COUNT, DIM_COUNT): LINK_COUNT,
    (DIM_COUNT, NODE_COUNT): LINK_COUNT,
    (VERTEX_BASE, DIM_COUNT): LINK_COUNT,
    (DIM_COUNT, VERTEX_BASE): LINK_COUNT,
}

MOD_UNPACK: Dict[str, str] = {
    LINK_COUNT: LINK,
    VERTEX_BASE: NODE,
    NODE_COUNT: NODE,
    DIM_COUNT: DIM,
}

DIV_UNPACK: Dict[Tuple[str, str], str] = {
    (LANE_LINK, LINK_COUNT): INT,  # the lane index
    (PACKED_EDGE, VERTEX_BASE): NODE,
    (PACKED_EDGE, NODE_COUNT): NODE,
    (LINK, DIM_COUNT): NODE,  # the head vertex
}

#: count domain -> the domain that indexes an array of that length
INDEX_OF: Dict[str, str] = {
    NODE_COUNT: NODE,
    LINK_COUNT: LINK,
    DIM_COUNT: DIM,
    VERTEX_BASE: NODE,
    LANE_LINK: LANE_LINK,  # np.zeros(B * L) is lane-major-indexed
    PACKED_EDGE: PACKED_EDGE,
}


def add_domains(left: str, right: str) -> str:
    """Domain of ``left + right`` (also used for | ^ & and shifts).

    Adding a plain int shifts within the domain; adding the minor
    component completes a pack; anything else degrades to INT.
    """
    if left == right:
        return left
    if right == INT:
        return left
    if left == INT:
        return right
    completes = {
        (LANE_LINK, LINK): LANE_LINK,
        (PACKED_EDGE, NODE): PACKED_EDGE,
        (LINK, DIM): LINK,
    }
    return completes.get((left, right), completes.get((right, left), INT))


def sub_domains(left: str, right: str) -> str:
    """Domain of ``left - right``: same - same is a delta, named - int shifts."""
    if left == right:
        return INT
    if right == INT:
        return left
    return INT


# -- worst-case extents at the benchmark scaling point -------------------------
# Q_20 (2^20 vertices, 20 dims) with batch B = 4096 lanes; offsets take
# their floor from the declared contract dtypes in hypercube/pathcode.py
# (CSR vectors are int64 by contract, so narrowing one is always a bug).

_Q20_NODES = 1 << 20
_Q20_DIMS = 20
_BATCH = 4096
_CONTRACT_MAX = int(np.iinfo(CSR_OFFSET_DTYPE).max)

EXTENT: Dict[str, int] = {
    NODE: _Q20_NODES - 1,
    DIM: _Q20_DIMS - 1,
    LINK: _Q20_DIMS * _Q20_NODES - 1,  # ~2.1e7 — int32 is fine
    LANE_LINK: _BATCH * _Q20_DIMS * _Q20_NODES - 1,  # ~8.6e10 — needs int64
    PACKED_EDGE: _Q20_NODES * _Q20_NODES + _Q20_NODES,  # ~1.1e12 — int64
    CSR_OFFSET: _CONTRACT_MAX,  # int64 by pathcode contract
    BYTE_OFFSET: _CONTRACT_MAX,  # mapped stores address > 4 GiB
    FLIT_POS: (1 << 20),  # fits int32 — why batched.py's int32 flits are sound
    NODE_COUNT: _Q20_NODES,
    LINK_COUNT: _Q20_DIMS * _Q20_NODES,
    DIM_COUNT: _Q20_DIMS,
    VERTEX_BASE: _Q20_NODES,
}


def fits(domain: str, dtype_name: str) -> bool:
    """True when ``dtype_name`` can hold ``domain``'s worst-case extent.

    Unknown domains or non-integer dtypes never produce a claim.
    """
    extent = EXTENT.get(domain)
    if extent is None:
        return True
    try:
        info = np.iinfo(dtype_name)
    except ValueError:
        return True  # floats etc. — not this rule's business
    return extent <= int(info.max)


# -- seed table: function and method signatures --------------------------------


class Sig:
    """Declared domains for one callable: positional params and returns.

    ``params[i]`` is the domain consumed at position ``i`` (INT means
    unchecked); ``returns`` is a tuple of ``(domain, index_domain)``
    pairs, one per element of the returned tuple (length 1 for a single
    return).  ``None`` returns mean "nothing known".
    """

    __slots__ = ("params", "returns")

    def __init__(
        self,
        params: Tuple[str, ...],
        returns: Optional[Tuple[Tuple[str, Optional[str]], ...]] = None,
    ) -> None:
        self.params = params
        self.returns = returns


#: import-resolved dotted call targets (see engine.resolve_call)
FUNC_SIGS: Dict[str, Sig] = {
    "repro.hypercube.pathcode.flatten_paths": Sig(
        (INT,), ((NODE, CSR_OFFSET), (CSR_OFFSET, INT))
    ),
    "repro.hypercube.pathcode.gather_paths": Sig(
        (NODE, CSR_OFFSET, INT, INT), ((NODE, CSR_OFFSET), (CSR_OFFSET, INT))
    ),
    "repro.hypercube.pathcode.hop_endpoints": Sig(
        (NODE, CSR_OFFSET), ((NODE, INT), (NODE, INT))
    ),
    "repro.hypercube.pathcode.hop_edge_ids": Sig(
        (DIM_COUNT, NODE, CSR_OFFSET),
        ((LINK, INT), (NODE, INT), (NODE, INT)),
    ),
    "repro.hypercube.pathcode.path_edge_matrix": Sig(
        (DIM_COUNT, INT), ((LINK, INT), (INT, INT))
    ),
    "repro.hypercube.pathcode.hop_dimensions": Sig(
        (NODE, NODE, DIM_COUNT), ((DIM, INT),)
    ),
    "repro.core.fast_verify.build_edge_lookup": Sig((NODE,)),
}

#: method calls matched by attribute name on any receiver
METHOD_SIGS: Dict[str, Sig] = {
    "edge_id": Sig((NODE, NODE), ((LINK, None),)),
    "edge_from_id": Sig((LINK,), ((NODE, None), (NODE, None))),
    "dimension_of": Sig((NODE, NODE), ((DIM, None),)),
    "neighbor": Sig((NODE, DIM), ((NODE, None),)),
    "add_link_counts": Sig((LINK, INT)),
    "resolve_packed": Sig((NODE, NODE)),
}
