"""R6: lockset-style race detection for the service layer.

The concurrent modules (``service/registry.py``, ``service/engine.py``)
follow one discipline: shared mutable state is touched only under the
instance lock.  This pass infers that discipline per class and reports
the holes, statically:

* **locks** — attributes assigned a ``Lock``/``RLock``/``Condition``/
  ``Semaphore`` constructor in ``__init__``;
* **guarded attributes** — instance attributes written at least once
  inside ``with self.<lock>:`` in any non-``__init__`` method (a write
  the author bothered to lock is a declaration that the attribute is
  shared);
* **violations** — any read or write of a guarded attribute outside the
  lock in a non-``__init__`` method (``__init__`` runs before the object
  escapes, so unlocked writes there are fine).

One delegation idiom is recognized as synchronized: a call that receives
*both* the lock and the guarded attribute (``teardown(self._lock,
self._shards)``, positionally or by keyword) hands synchronization to
the callee — the shard lifecycle's ``weakref.finalize`` teardown helper
is the motivating case, since the finalizer must own the map without
keeping the manager alive.

``async def`` methods are analyzed exactly like threads: the batching
frontend's asyncio paths (``serve()`` handing work to the drain loop
through the queue) share instance state with the drain thread, so an
await point between a guarded read and write is the same hazard as a
thread switch.

This is deliberately intraprocedural: a private helper that relies on
*its caller* holding the lock is flagged, because nothing stops a future
caller from skipping the lock.  Such helpers either take the lock
(RLock makes that cheap) or carry ``# lint: race-ok(reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.engine import LintConfig, LintModule, register_rule
from repro.lint.findings import Finding

__all__ = ["service_races"]

_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)
# method calls that mutate their receiver: self.x.append(...) is a write
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "move_to_end",
        "appendleft", "popleft", "sort", "reverse",
    }
)


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes bound to lock constructors in ``__init__``."""
    out: Set[str] = set()
    for node in cls.body:
        if not (
            isinstance(node, ast.FunctionDef) and node.name == "__init__"
        ):
            continue
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign):
                continue
            if not (
                isinstance(stmt.value, ast.Call)
                and _call_name(stmt.value.func) in _LOCK_CONSTRUCTORS
            ):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.add(target.attr)
    return out


def _self_attr(node: ast.AST) -> str:
    """``x`` when ``node`` is exactly ``self.x``, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


_MethodDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _write_targets(method: ast.AST) -> Set[int]:
    """ids of ``self.x`` Attribute nodes that are writes in this method."""
    writes: Set[int] = set()

    def mark(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                mark(elt)
        elif isinstance(target, ast.Starred):
            mark(target.value)
        elif isinstance(target, ast.Subscript):
            if _self_attr(target.value):  # self.x[k] = v mutates self.x
                writes.add(id(target.value))
        elif _self_attr(target):
            writes.add(id(target))

    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                mark(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
            mark(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                mark(target)
        elif isinstance(node, ast.Call):
            if _call_name(node.func) in _MUTATORS and isinstance(
                node.func, ast.Attribute
            ):
                if _self_attr(node.func.value):
                    writes.add(id(node.func.value))
    return writes


# (attr, kind, lineno, col, method name, under lock?)
_Access = Tuple[str, str, int, int, str, bool]


def _accesses(
    method: ast.AST, locks: Set[str]
) -> List[_Access]:
    writes = _write_targets(method)
    out: List[_Access] = []

    def scan(node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            takes_lock = any(
                _self_attr(item.context_expr) in locks
                for item in node.items
            )
            for item in node.items:
                scan(item.context_expr, locked)
            for stmt in node.body:
                scan(stmt, locked or takes_lock)
            return
        if isinstance(node, ast.Call):
            # lock handoff: a callee given the lock itself is trusted to
            # synchronize the guarded arguments it receives alongside it
            # (whether the lock travels positionally or as a keyword)
            hands_lock = any(
                _self_attr(arg) in locks for arg in node.args
            ) or any(
                _self_attr(kw.value) in locks for kw in node.keywords
            )
            scan(node.func, locked)
            for arg in node.args:
                scan(arg, locked or hands_lock)
            for kw in node.keywords:
                scan(kw.value, locked or hands_lock)
            return
        attr = _self_attr(node)
        if attr and attr not in locks:
            kind = "write" if id(node) in writes else "read"
            out.append(
                (attr, kind, node.lineno, node.col_offset, method.name, locked)
            )
        for child in ast.iter_child_nodes(node):
            scan(child, locked)

    for stmt in method.body:
        scan(stmt, False)
    return out


@register_rule("R6", "service-races")
def service_races(module: LintModule, config: LintConfig) -> Iterator[Finding]:
    """Guarded shared state must only be touched under the instance lock."""
    if not module.matches(config.race_modules):
        return
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attrs(cls)
        if not locks:
            continue
        methods = [
            n
            for n in cls.body
            if isinstance(n, _MethodDef) and n.name != "__init__"
        ]
        per_method: Dict[str, List[_Access]] = {
            m.name: _accesses(m, locks) for m in methods
        }
        guarded: Set[str] = {
            attr
            for accesses in per_method.values()
            for (attr, kind, _, _, _, locked) in accesses
            if kind == "write" and locked
        }
        if not guarded:
            continue
        lock_name = sorted(locks)[0]
        for accesses in per_method.values():
            for attr, kind, lineno, col, name, locked in accesses:
                if attr not in guarded or locked:
                    continue
                if module.waived("race-ok", lineno):
                    continue
                yield Finding(
                    "R6", "error", module.rel, lineno, col + 1,
                    f"unsynchronized {kind} of self.{attr} in "
                    f"{cls.name}.{name}() — written under self.{lock_name} "
                    f"elsewhere",
                    suggestion=f"wrap the access in 'with self.{lock_name}:' "
                    f"(or waive with # lint: race-ok(reason) if the access "
                    f"is provably single-threaded)",
                )
