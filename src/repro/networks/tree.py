"""Binary trees (paper Sections 6.1, 6.2).

Complete binary trees use heap indexing: the root is vertex 1, and vertex
``v`` has children ``2v`` and ``2v + 1``.  Edges are directed both ways
(parent <-> child), since one phase of a tree computation exchanges messages
along every tree link; the maximum out-degree is therefore 3.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro._compat import resolve_rng
from repro.networks.base import GuestGraph

__all__ = ["CompleteBinaryTree", "random_binary_tree", "ArbitraryTree"]


class CompleteBinaryTree(GuestGraph):
    """The complete binary tree with ``levels`` levels (``2**levels - 1`` nodes)."""

    def __init__(self, levels: int):
        if levels < 1:
            raise ValueError(f"tree needs >= 1 level, got {levels}")
        self.levels = levels

    def vertices(self) -> Iterable[int]:
        return range(1, 1 << self.levels)

    def edges(self) -> Iterator[Tuple[int, int]]:
        for v in range(1, 1 << (self.levels - 1)):
            for child in (2 * v, 2 * v + 1):
                yield v, child
                yield child, v

    @property
    def num_vertices(self) -> int:
        return (1 << self.levels) - 1

    @property
    def num_edges(self) -> int:
        return 2 * (self.num_vertices - 1)

    def level_of(self, v: int) -> int:
        """Level of vertex ``v`` (root at level 0)."""
        if not 1 <= v < (1 << self.levels):
            raise ValueError(f"vertex {v} out of range")
        return v.bit_length() - 1

    def leaves(self) -> Iterator[int]:
        return iter(range(1 << (self.levels - 1), 1 << self.levels))

    def __repr__(self) -> str:
        return f"CompleteBinaryTree(levels={self.levels})"


class ArbitraryTree(GuestGraph):
    """An arbitrary rooted tree given by a parent map (edges both ways)."""

    def __init__(self, parent: Dict[int, int], root: int):
        self.root = root
        self.parent = dict(parent)
        verts = set(parent) | {root}
        for child, par in parent.items():
            if par not in verts:
                raise ValueError(f"parent {par} of {child} is not a vertex")
            if child == root:
                raise ValueError("root cannot have a parent")
        self._vertices = sorted(verts)
        self.children: Dict[int, List[int]] = {v: [] for v in self._vertices}
        for child, par in parent.items():
            self.children[par].append(child)

    def vertices(self) -> Iterable[int]:
        return iter(self._vertices)

    def edges(self) -> Iterator[Tuple[int, int]]:
        for child, par in self.parent.items():
            yield par, child
            yield child, par

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return 2 * len(self.parent)

    @property
    def max_degree(self) -> int:
        deg = {v: len(self.children[v]) for v in self._vertices}
        for child in self.parent:
            deg[child] += 1
        return max(deg.values())

    def __repr__(self) -> str:
        return f"ArbitraryTree(n={self.num_vertices})"


def random_binary_tree(
    num_vertices: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> ArbitraryTree:
    """A uniformly grown random binary tree on ``num_vertices`` vertices.

    Each new vertex attaches to a uniformly chosen existing vertex that still
    has fewer than 2 children, so the result has maximum degree 3 — the
    bounded-degree setting of Section 6.2.  Deterministic given ``seed``
    (default 0); pass ``rng`` instead to draw from a shared stream.
    """
    if num_vertices < 1:
        raise ValueError(f"need >= 1 vertex, got {num_vertices}")
    rng = resolve_rng(seed, rng)
    parent: Dict[int, int] = {}
    open_slots: List[int] = [0, 0]  # root can take two children
    for v in range(1, num_vertices):
        idx = rng.randrange(len(open_slots))
        p = open_slots.pop(idx)
        parent[v] = p
        open_slots.extend([v, v])
    return ArbitraryTree(parent, root=0)
