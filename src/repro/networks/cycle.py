"""Directed cycles and paths — the simplest guest graphs (paper Sections 2, 4)."""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.networks.base import GuestGraph

__all__ = ["DirectedCycle", "DirectedPath"]


class DirectedCycle(GuestGraph):
    """The directed cycle on ``length`` vertices ``0 -> 1 -> ... -> 0``."""

    def __init__(self, length: int):
        if length < 2:
            raise ValueError(f"cycle length must be >= 2, got {length}")
        self.length = length

    def vertices(self) -> Iterable[int]:
        return range(self.length)

    def edges(self) -> Iterator[Tuple[int, int]]:
        for i in range(self.length):
            yield i, (i + 1) % self.length

    @property
    def num_vertices(self) -> int:
        return self.length

    @property
    def num_edges(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"DirectedCycle({self.length})"


class DirectedPath(GuestGraph):
    """The directed path on ``length`` vertices ``0 -> 1 -> ... -> length-1``."""

    def __init__(self, length: int):
        if length < 1:
            raise ValueError(f"path length must be >= 1, got {length}")
        self.length = length

    def vertices(self) -> Iterable[int]:
        return range(self.length)

    def edges(self) -> Iterator[Tuple[int, int]]:
        for i in range(self.length - 1):
            yield i, i + 1

    @property
    def num_vertices(self) -> int:
        return self.length

    @property
    def num_edges(self) -> int:
        return self.length - 1

    def __repr__(self) -> str:
        return f"DirectedPath({self.length})"
