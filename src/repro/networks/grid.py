"""k-axis grids and tori (paper Sections 2, 4.5) and grid squaring.

Grids/tori are cross products of paths/cycles.  Vertices are coordinate
tuples; every undirected link is modeled as two directed edges (matching the
directed-hypercube host model).

``square_grid_map`` implements the squaring step of Corollary 2.  The paper
cites Aleliunas–Rosenberg / Kosaraju–Atallah for load-1, O(1)-dilation
squaring; we substitute *contraction squaring* — each axis is contracted by
an integer factor, giving dilation 1 and load ``prod(ceil(L_i / side))``,
which is O(1) for fixed k.  Corollary 2 only needs O(1) load, dilation and
cost, so the substitution preserves the claim being reproduced (recorded in
DESIGN.md).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Iterator, Sequence, Tuple

from repro.networks.base import GuestGraph

__all__ = ["Grid", "Torus", "DirectedTorus", "square_grid_map"]

Coord = Tuple[int, ...]


class Grid(GuestGraph):
    """The ``L_1 x ... x L_k`` grid; links along each axis, no wraparound."""

    wrap = False

    def __init__(self, dims: Sequence[int]):
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"grid dims must be positive, got {dims}")
        self.dims = dims
        self.k = len(dims)

    def vertices(self) -> Iterable[Coord]:
        return itertools.product(*(range(d) for d in self.dims))

    def _axis_neighbors(self, v: Coord, axis: int) -> Iterator[Coord]:
        d = self.dims[axis]
        if d == 1:
            return
        x = v[axis]
        if self.wrap:
            steps = {(x + 1) % d, (x - 1) % d}
        else:
            steps = {x + dx for dx in (-1, 1) if 0 <= x + dx < d}
        for nx in steps:
            if nx != x:
                yield v[:axis] + (nx,) + v[axis + 1 :]

    def edges(self) -> Iterator[Tuple[Coord, Coord]]:
        for v in self.vertices():
            for axis in range(self.k):
                for w in self._axis_neighbors(v, axis):
                    yield v, w

    def axis_edges(self, axis: int) -> Iterator[Tuple[Coord, Coord]]:
        """Directed edges along one axis only (used for per-axis phases)."""
        for v in self.vertices():
            for w in self._axis_neighbors(v, axis):
                yield v, w

    @property
    def num_vertices(self) -> int:
        return math.prod(self.dims)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({'x'.join(map(str, self.dims))})"


class Torus(Grid):
    """The ``L_1 x ... x L_k`` torus: a grid with wraparound links."""

    wrap = True


class DirectedTorus(Grid):
    """The torus with one orientation per link: ``+1`` along every axis.

    The cross product of directed cycles — the guest for the Section 8.1
    multiple-copy grid embeddings (the directed analog of Lemma 1's cycles).
    """

    wrap = True

    def _axis_neighbors(self, v: Coord, axis: int):
        d = self.dims[axis]
        if d == 1:
            return
        nx = (v[axis] + 1) % d
        yield v[:axis] + (nx,) + v[axis + 1 :]


def square_grid_map(
    dims: Sequence[int], side: int | None = None
) -> Tuple[Dict[Coord, Coord], Tuple[int, ...], int]:
    """Map a k-axis grid with unequal sides onto a grid with equal sides.

    Returns ``(mapping, squared_dims, load)`` where ``mapping`` sends each
    original coordinate to a coordinate of the ``side^k`` grid,
    ``squared_dims = (side,) * k``, and ``load`` is the maximum number of
    original vertices per squared cell.

    Each axis ``i`` is contracted by ``f_i = ceil(L_i / side)``; neighbors
    land in the same or adjacent cells, so the map has dilation 1; the load
    is ``prod(f_i)``.  The default ``side`` is the ceiling of the geometric
    mean of the side lengths (the paper's ``L``), so the load is bounded by
    ``2^k`` plus rounding.
    """
    dims = tuple(int(d) for d in dims)
    k = len(dims)
    if side is None:
        side = math.ceil(math.prod(dims) ** (1.0 / k))
    if side < 1:
        raise ValueError(f"side must be positive, got {side}")
    factors = [math.ceil(d / side) for d in dims]
    mapping: Dict[Coord, Coord] = {}
    counts: Dict[Coord, int] = {}
    for v in itertools.product(*(range(d) for d in dims)):
        cell = tuple(x // f for x, f in zip(v, factors))
        mapping[v] = cell
        counts[cell] = counts.get(cell, 0) + 1
    load = max(counts.values()) if counts else 0
    return mapping, (side,) * k, load
