"""Common protocol for guest graphs.

A guest graph models a parallel computation: vertices are processes, directed
edges are communications (paper Section 3).  The embedding machinery in
:mod:`repro.core.embedding` consumes this protocol only — any directed graph
with hashable vertex ids can be embedded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Iterable, List, Tuple

__all__ = ["GuestGraph", "ExplicitGraph"]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class GuestGraph(ABC):
    """A directed guest graph with hashable vertex ids."""

    @abstractmethod
    def vertices(self) -> Iterable[Vertex]:
        """Iterate over all vertices."""

    @abstractmethod
    def edges(self) -> Iterable[Edge]:
        """Iterate over all directed edges ``(u, v)``."""

    @property
    @abstractmethod
    def num_vertices(self) -> int:
        """Number of vertices."""

    @property
    def num_edges(self) -> int:
        """Number of directed edges (default: counts :meth:`edges`)."""
        return sum(1 for _ in self.edges())

    def out_degrees(self) -> Dict[Vertex, int]:
        """Out-degree of every vertex."""
        deg: Dict[Vertex, int] = {v: 0 for v in self.vertices()}
        for u, _ in self.edges():
            deg[u] += 1
        return deg

    @property
    def max_out_degree(self) -> int:
        """Maximum out-degree (the paper's ``delta`` in Theorem 4)."""
        degs = self.out_degrees()
        return max(degs.values()) if degs else 0

    def adjacency(self) -> Dict[Vertex, List[Vertex]]:
        """Successor lists."""
        adj: Dict[Vertex, List[Vertex]] = {v: [] for v in self.vertices()}
        for u, v in self.edges():
            adj[u].append(v)
        return adj

    def to_networkx(self):
        """Export as a ``networkx.DiGraph``."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        return g

    def validate(self) -> None:
        """Raise if edges reference unknown vertices or repeat."""
        verts = set(self.vertices())
        if len(verts) != self.num_vertices:
            raise AssertionError("num_vertices disagrees with vertices()")
        seen = set()
        for u, v in self.edges():
            if u not in verts or v not in verts:
                raise AssertionError(f"edge ({u}, {v}) references unknown vertex")
            if (u, v) in seen:
                raise AssertionError(f"duplicate edge ({u}, {v})")
            seen.add((u, v))


class ExplicitGraph(GuestGraph):
    """A guest graph given by explicit vertex and edge lists.

    Used for derived structures (e.g. the induced cross products of
    Section 6) that have no closed-form generator.
    """

    def __init__(self, vertices, edges, name: str = ""):
        self._vertices = list(vertices)
        self._edges = list(edges)
        self.name = name

    def vertices(self):
        return iter(self._vertices)

    def edges(self):
        return iter(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"<ExplicitGraph{tag} |V|={self.num_vertices} |E|={self.num_edges}>"
