"""Butterfly and FFT graphs (paper Sections 5.4, 6, 7).

* The *n-level (wrapped) butterfly* has vertices ``(level, column)`` with
  ``0 <= level < n``, ``0 <= column < 2**n``, and directed edges
  ``(l, c) -> ((l+1) mod n, c)`` (straight) and
  ``(l, c) -> ((l+1) mod n, c XOR 2**l)`` (cross).  Out-degree 2.
* The *FFT graph* is the unwrapped variant with ``n + 1`` ranks: edges go
  from rank ``l`` to rank ``l + 1`` for ``0 <= l < n``.

The paper notes (Section 5.4) that FFTs and butterflies embed in CCCs with
dilation 2 and congestion 2; :func:`butterfly_to_ccc_embedding` provides
that classical map — a butterfly vertex is a CCC vertex, a butterfly cross
edge ``(l, c) -> (l+1, c ^ 2^l)`` routes as the CCC cross edge at level ``l``
followed by the straight edge to level ``l + 1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.networks.base import GuestGraph
from repro.networks.ccc import CubeConnectedCycles

__all__ = ["Butterfly", "FFTGraph", "butterfly_to_ccc_embedding"]

BFVertex = Tuple[int, int]


class Butterfly(GuestGraph):
    """The n-level wrapped butterfly network.

    Directed with out-degree 2 by default; with ``undirected=True`` every
    edge also appears in the reverse orientation (out-degree 4), the form
    tree embeddings need (tree links carry traffic both ways).
    """

    def __init__(self, n: int, undirected: bool = False):
        if n < 2:
            raise ValueError(f"butterfly needs n >= 2 levels, got {n}")
        self.n = n
        self.num_columns = 1 << n
        self.undirected = undirected

    def vertices(self) -> Iterable[BFVertex]:
        for level in range(self.n):
            for column in range(self.num_columns):
                yield level, column

    def straight_edges(self) -> Iterator[Tuple[BFVertex, BFVertex]]:
        for level in range(self.n):
            nxt = (level + 1) % self.n
            for column in range(self.num_columns):
                yield (level, column), (nxt, column)
                if self.undirected:
                    yield (nxt, column), (level, column)

    def cross_edges(self) -> Iterator[Tuple[BFVertex, BFVertex]]:
        for level in range(self.n):
            nxt = (level + 1) % self.n
            bit = 1 << level
            for column in range(self.num_columns):
                yield (level, column), (nxt, column ^ bit)
                if self.undirected:
                    yield (nxt, column ^ bit), (level, column)

    def edges(self) -> Iterator[Tuple[BFVertex, BFVertex]]:
        yield from self.straight_edges()
        yield from self.cross_edges()

    def out_neighbors(self, v: BFVertex) -> Tuple[BFVertex, BFVertex]:
        """The straight and cross successors of ``v`` (forward direction)."""
        level, column = v
        nxt = (level + 1) % self.n
        return (nxt, column), (nxt, column ^ (1 << level))

    @property
    def num_vertices(self) -> int:
        return self.n * self.num_columns

    @property
    def num_edges(self) -> int:
        base = 2 * self.n * self.num_columns
        return 2 * base if self.undirected else base

    def __repr__(self) -> str:
        kind = ", undirected" if self.undirected else ""
        return f"Butterfly(n={self.n}{kind})"


class FFTGraph(GuestGraph):
    """The n-stage FFT dataflow graph: ``n + 1`` ranks, unwrapped."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"FFT graph needs n >= 1 stages, got {n}")
        self.n = n
        self.num_columns = 1 << n

    def vertices(self) -> Iterable[BFVertex]:
        for rank in range(self.n + 1):
            for column in range(self.num_columns):
                yield rank, column

    def edges(self) -> Iterator[Tuple[BFVertex, BFVertex]]:
        for rank in range(self.n):
            bit = 1 << rank
            for column in range(self.num_columns):
                yield (rank, column), (rank + 1, column)
                yield (rank, column), (rank + 1, column ^ bit)

    @property
    def num_vertices(self) -> int:
        return (self.n + 1) * self.num_columns

    @property
    def num_edges(self) -> int:
        return 2 * self.n * self.num_columns

    def __repr__(self) -> str:
        return f"FFTGraph(n={self.n})"


def butterfly_to_ccc_embedding(
    n: int,
) -> Tuple[Dict[BFVertex, BFVertex], Dict[Tuple[BFVertex, BFVertex], List[BFVertex]]]:
    """Embed the n-level butterfly in the n-level CCC (dilation 2, congestion 2).

    Returns ``(vertex_map, edge_paths)``.  The vertex map is the identity;
    a straight butterfly edge uses the CCC straight edge (dilation 1), and a
    cross butterfly edge ``(l, c) -> (l+1, c ^ 2^l)`` uses the CCC cross edge
    at level ``l`` followed by the straight edge up from ``(l, c ^ 2^l)``
    (dilation 2).  Each CCC straight edge is then shared by at most one
    straight and one cross image (congestion 2); each CCC cross edge by one.
    """
    bf = Butterfly(n)
    ccc = CubeConnectedCycles(n)
    vertex_map = {v: v for v in bf.vertices()}
    edge_paths: Dict[Tuple[BFVertex, BFVertex], List[BFVertex]] = {}
    for u, v in bf.straight_edges():
        edge_paths[(u, v)] = [u, v]
    for u, v in bf.cross_edges():
        (level, column) = u
        mid = (level, column ^ (1 << level))
        edge_paths[(u, v)] = [u, mid, v]
        assert mid[0] == level and v == ((level + 1) % n, mid[1])
    # sanity: all hops are CCC edges
    for path in edge_paths.values():
        for a, b in zip(path, path[1:]):
            ccc.edge_level(a, b)
    return vertex_map, edge_paths
