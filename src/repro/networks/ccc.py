"""Cube-connected-cycles networks (paper Section 5.1, after Preparata–Vuillemin).

The *n*-stage directed CCC has ``n * 2**n`` vertices ``(level, column)`` with
``0 <= level < n`` and ``0 <= column < 2**n``.  Its edges split into

* straight edges ``S``: ``(l, c) -> ((l+1) mod n, c)`` — the ``n`` vertices
  of a column form a directed cycle;
* cross edges ``C``: ``(l, c) -> (l, c XOR 2**l)`` — oppositely oriented
  pairs between columns.

The directed CCC thus has out-degree 2.  The undirected variant (Section 5.4)
additionally contains the reversed straight edges.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.networks.base import GuestGraph

__all__ = ["CubeConnectedCycles"]

CCCVertex = Tuple[int, int]


class CubeConnectedCycles(GuestGraph):
    """The n-level cube-connected-cycles network."""

    def __init__(self, n: int, undirected: bool = False):
        if n < 2:
            raise ValueError(f"CCC needs n >= 2 levels, got {n}")
        self.n = n
        self.num_columns = 1 << n
        self.undirected = undirected

    def vertices(self) -> Iterable[CCCVertex]:
        for level in range(self.n):
            for column in range(self.num_columns):
                yield level, column

    def straight_edges(self) -> Iterator[Tuple[CCCVertex, CCCVertex]]:
        """The set ``S`` (plus reversals when undirected)."""
        for level in range(self.n):
            nxt = (level + 1) % self.n
            for column in range(self.num_columns):
                yield (level, column), (nxt, column)
                if self.undirected:
                    yield (nxt, column), (level, column)

    def cross_edges(self) -> Iterator[Tuple[CCCVertex, CCCVertex]]:
        """The set ``C`` — already contains both orientations."""
        for level in range(self.n):
            bit = 1 << level
            for column in range(self.num_columns):
                yield (level, column), (level, column ^ bit)

    def edges(self) -> Iterator[Tuple[CCCVertex, CCCVertex]]:
        yield from self.straight_edges()
        yield from self.cross_edges()

    def edge_level(self, u: CCCVertex, v: CCCVertex) -> int:
        """The paper's *level* of an edge: cross edges at level ``l`` and
        straight edges from ``l`` to ``(l+1) mod n`` are level-``l`` edges."""
        (lu, cu), (lv, cv) = u, v
        if cu == cv and lv == (lu + 1) % self.n:
            return lu
        if cu == cv and lu == (lv + 1) % self.n:
            return lv
        if lu == lv and cu ^ cv == 1 << lu:
            return lu
        raise ValueError(f"({u}, {v}) is not a CCC edge")

    @property
    def num_vertices(self) -> int:
        return self.n * self.num_columns

    @property
    def num_edges(self) -> int:
        straight = self.n * self.num_columns * (2 if self.undirected else 1)
        return straight + self.n * self.num_columns

    def __repr__(self) -> str:
        kind = "undirected" if self.undirected else "directed"
        return f"CubeConnectedCycles(n={self.n}, {kind})"
