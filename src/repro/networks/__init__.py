"""Guest graphs: the communication structures the paper embeds in hypercubes.

Vertices of a guest graph represent processes; directed edges connect
processes that communicate (paper Section 3).  Each class exposes the
minimal protocol the embedding machinery needs (:class:`GuestGraph`) plus
structure-specific helpers.
"""

from repro.networks.cycle import DirectedCycle, DirectedPath
from repro.networks.base import ExplicitGraph, GuestGraph
from repro.networks.grid import DirectedTorus, Grid, Torus, square_grid_map
from repro.networks.ccc import CubeConnectedCycles
from repro.networks.butterfly import Butterfly, FFTGraph
from repro.networks.tree import CompleteBinaryTree, random_binary_tree

__all__ = [
    "GuestGraph",
    "ExplicitGraph",
    "DirectedTorus",
    "DirectedCycle",
    "DirectedPath",
    "Grid",
    "Torus",
    "square_grid_map",
    "CubeConnectedCycles",
    "Butterfly",
    "FFTGraph",
    "CompleteBinaryTree",
    "random_binary_tree",
]
