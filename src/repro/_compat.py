"""Deprecation machinery for the pre-obs APIs.

Everything deprecated in this package warns with
:class:`ReproDeprecationWarning`, a distinct :class:`DeprecationWarning`
subclass, so CI can harden *our* migration specifically::

    python -m pytest -W error::repro._compat.ReproDeprecationWarning

without tripping on unrelated DeprecationWarnings from third-party
packages.  The shims themselves are exercised only in
``tests/test_deprecation_shims.py``, which captures the warnings.
"""

from __future__ import annotations

import random
import warnings
from typing import Optional, Union

__all__ = ["ReproDeprecationWarning", "warn_deprecated", "resolve_rng"]


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro API was used; see the message for the new one."""


def warn_deprecated(message: str, stacklevel: int = 3) -> None:
    """Emit one :class:`ReproDeprecationWarning` pointing at the caller."""
    warnings.warn(message, ReproDeprecationWarning, stacklevel=stacklevel)


def resolve_rng(
    seed: Optional[Union[int, str]] = None,
    rng: Optional[random.Random] = None,
    default_seed: int = 0,
) -> random.Random:
    """The one way every randomized API turns ``(seed, rng)`` into a stream.

    Callers pass *either* a ``seed`` (a fresh ``random.Random(seed)`` is
    returned, so fixed seeds give byte-identical runs) *or* an existing
    ``rng`` to share a stream across calls; passing both is ambiguous and
    raises.  With neither, ``default_seed`` keeps the historical
    deterministic default of each call site.  String seeds are for derived
    streams (``f"{seed}:diff:{i}"``) — namespacing one integer seed into
    many independent, individually replayable streams.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either seed or rng, not both")
        return rng
    return random.Random(default_seed if seed is None else seed)
