"""Deprecation machinery for the pre-obs APIs.

Everything deprecated in this package warns with
:class:`ReproDeprecationWarning`, a distinct :class:`DeprecationWarning`
subclass, so CI can harden *our* migration specifically::

    python -m pytest -W error::repro._compat.ReproDeprecationWarning

without tripping on unrelated DeprecationWarnings from third-party
packages.  The shims themselves are exercised only in
``tests/test_deprecation_shims.py``, which captures the warnings.
"""

from __future__ import annotations

import warnings

__all__ = ["ReproDeprecationWarning", "warn_deprecated"]


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro API was used; see the message for the new one."""


def warn_deprecated(message: str, stacklevel: int = 3) -> None:
    """Emit one :class:`ReproDeprecationWarning` pointing at the caller."""
    warnings.warn(message, ReproDeprecationWarning, stacklevel=stacklevel)
