"""repro — Routing Multiple Paths in Hypercubes (Greenberg & Bhatt, SPAA 1990).

A complete executable reproduction: multiple-path, multiple-copy and
large-copy embeddings of cycles, grids, trees, CCCs and butterflies in
hypercubes, with every claimed invariant verified mechanically and every
claimed cost measured on a link-bound simulator.

Subpackages:

* :mod:`repro.hypercube` — the host substrate (``Q_n``, gray codes,
  moments, Hamiltonian decompositions);
* :mod:`repro.networks`  — guest graphs;
* :mod:`repro.core`      — the paper's embeddings (Theorems 1–5, the
  corollaries and lemmas);
* :mod:`repro.routing`   — schedules and simulators (the cost model);
* :mod:`repro.fault`     — GF(256), Rabin IDA, link-fault experiments;
* :mod:`repro.apps`      — the motivating applications (Sections 2, 8.3);
* :mod:`repro.analysis`  — reports, comparisons, and the paper's figures;
* :mod:`repro.service`   — cached embedding registry + concurrent
  routing-request engine (the serving layer).

Quickstart::

    from repro import embed_cycle_load1
    emb = embed_cycle_load1(8)
    emb.verify()
"""

from repro.core import (
    Embedding,
    MultiCopyEmbedding,
    MultiPathEmbedding,
    ccc_multicopy_embedding,
    ccc_single_embedding,
    cycle_multicopy_embedding,
    embed_cycle_load1,
    embed_cycle_load2,
    embed_grid_multipath,
    graycode_cycle_embedding,
    induced_cross_product_embedding,
    large_cycle_embedding,
    theorem5_embedding,
)
from repro.hypercube import Hypercube

__version__ = "1.0.0"

__all__ = [
    "Embedding",
    "MultiCopyEmbedding",
    "MultiPathEmbedding",
    "Hypercube",
    "ccc_multicopy_embedding",
    "ccc_single_embedding",
    "cycle_multicopy_embedding",
    "embed_cycle_load1",
    "embed_cycle_load2",
    "embed_grid_multipath",
    "graycode_cycle_embedding",
    "induced_cross_product_embedding",
    "large_cycle_embedding",
    "theorem5_embedding",
    "__version__",
]
