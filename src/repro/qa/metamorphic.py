"""Metamorphic testing: everything must be automorphism-invariant.

``Aut(Q_n)`` (dimension permutations composed with XOR translations) acts
on embeddings and schedules without changing anything the paper measures:
load, dilation, congestion, width, and every simulated delivery quantity.
The metamorphic layer exploits that as a free oracle — push a fuzzed
embedding through random automorphisms and demand

* the relabeled embedding's non-strict :meth:`verify` report lists the
  same invariants with the same outcomes and *identical* metrics, and
* a schedule drawn from the embedding's own paths, mapped hop by hop
  through the automorphism, produces a field-for-field identical
  :class:`~repro.routing.api.SimResult` and the same measured link
  congestion.

The simulation side uses :class:`~repro.routing.fast_simulator.FastStoreForward`,
whose static-priority tie-break depends only on packet order — never on
link *labels* — so its outcome is exactly isomorphism-invariant (the
reference engine's FIFO tie-break is not: same-step re-enqueue order
follows edge-id order, which relabeling permutes).
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.core.verification import InvariantCheck, VerificationReport
from repro.hypercube.automorphisms import HypercubeAutomorphism, relabel_embedding
from repro.obs.recorder import LinkRecorder
from repro.qa.schedules import Schedule, embedding_schedule
from repro.routing.fast_simulator import FastStoreForward

__all__ = ["metamorphic_check", "map_schedule"]


def map_schedule(schedule: Schedule, auto: HypercubeAutomorphism) -> Schedule:
    """Push every packet path of ``schedule`` through ``auto`` hop by hop."""
    return [(tuple(auto(v) for v in path), release) for path, release in schedule]


def _report_signature(report: VerificationReport) -> Tuple:
    """What must survive relabeling: check names+outcomes and all metrics."""
    return (
        tuple((c.name, c.passed) for c in report.checks),
        tuple(sorted(report.metrics.items())),
    )


def metamorphic_check(
    emb: Any,
    rng: random.Random,
    images: int = 8,
    simulate: bool = True,
    max_packets: int = 60,
) -> List[InvariantCheck]:
    """Verify ``images`` random automorphism images of ``emb``.

    Returns one :class:`InvariantCheck` per image per property (report
    equality, sim-result equality, congestion equality); the caller treats
    any failed check as a fuzzing finding.  ``simulate=False`` skips the
    simulation side (used when shrinking report-level failures).
    """
    checks: List[InvariantCheck] = []
    base_report = emb.verify(strict=False)
    base_sig = _report_signature(base_report)

    schedule: Optional[Schedule] = None
    base_sim = None
    base_congestion = None
    if simulate:
        schedule = embedding_schedule(emb, rng, max_packets=max_packets)
        recorder = LinkRecorder(host=emb.host)
        base_sim = FastStoreForward(emb.host).run(schedule, recorder=recorder)
        base_congestion = recorder.congestion

    for i in range(images):
        auto = HypercubeAutomorphism.random(emb.host.n, rng)
        try:
            image = relabel_embedding(emb, auto, verify=False)
        except Exception as err:  # noqa: BLE001 - a finding, not a crash
            checks.append(
                InvariantCheck(
                    f"meta:image{i}:relabel",
                    False,
                    f"relabeling raised {type(err).__name__}: {err}",
                )
            )
            continue
        sig = _report_signature(image.verify(strict=False))
        checks.append(
            InvariantCheck(
                f"meta:image{i}:report",
                sig == base_sig,
                "report invariants/metrics changed under automorphism"
                if sig != base_sig
                else f"report invariant under {auto}",
            )
        )
        if not simulate or sig != base_sig:
            continue
        recorder = LinkRecorder(host=emb.host)
        image_sim = FastStoreForward(emb.host).run(
            map_schedule(schedule, auto), recorder=recorder
        )
        diff = base_sim.diff_fields(image_sim)
        checks.append(
            InvariantCheck(
                f"meta:image{i}:sim",
                not diff,
                f"SimResult fields {diff} changed under automorphism"
                if diff
                else "simulated metrics invariant",
            )
        )
        checks.append(
            InvariantCheck(
                f"meta:image{i}:congestion",
                recorder.congestion == base_congestion,
                f"measured congestion {recorder.congestion} != {base_congestion}"
                if recorder.congestion != base_congestion
                else "measured congestion invariant",
            )
        )
    return checks
