"""The fuzzable construction space: every ``core/`` builder as a sampler.

A :class:`FuzzConstruction` packages one paper construction for the QA
harness: a ``sample`` function drawing a random valid parameter point, a
``build`` function turning a parameter dict into an embedding, and a
``shrink`` function proposing strictly smaller parameter points (used to
minimize failing cases before they enter the corpus).

Parameter dicts are JSON-round-trippable on purpose — they are exactly
what the corpus persists — so ``build`` re-coerces shapes JSON flattens
(tuples become lists).  Samplers only draw points the builders accept;
a builder exception is therefore itself a finding, never noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, Tuple

__all__ = ["FuzzConstruction", "ConstructionSpace", "default_space"]

Params = Dict[str, Any]


@dataclass(frozen=True)
class FuzzConstruction:
    """One fuzzable construction: sampler, builder, shrinker."""

    kind: str
    sample: Callable[[random.Random], Params]
    build: Callable[[Params], Any]
    shrink: Callable[[Params], Iterable[Params]]


class ConstructionSpace:
    """An ordered collection of fuzz constructions, keyed by kind."""

    def __init__(self, constructions: Iterable[FuzzConstruction]):
        self._by_kind: Dict[str, FuzzConstruction] = {}
        for c in constructions:
            if c.kind in self._by_kind:
                raise ValueError(f"duplicate construction kind {c.kind!r}")
            self._by_kind[c.kind] = c

    def kinds(self) -> Tuple[str, ...]:
        return tuple(self._by_kind)

    def get(self, kind: str) -> FuzzConstruction:
        if kind not in self._by_kind:
            raise KeyError(
                f"unknown construction kind {kind!r}; known: {sorted(self._by_kind)}"
            )
        return self._by_kind[kind]

    def choose(self, rng: random.Random) -> FuzzConstruction:
        return self._by_kind[rng.choice(list(self._by_kind))]

    def __iter__(self) -> Iterator[FuzzConstruction]:
        return iter(self._by_kind.values())

    def __len__(self) -> int:
        return len(self._by_kind)


# -- shrink helpers -----------------------------------------------------------


def _shrunk(params: Params, **overrides: Any) -> Params:
    out = dict(params)
    out.update(overrides)
    return out


def _int_down(params: Params, key: str, minimum: int, step: int = 1):
    """Candidates lowering ``params[key]`` toward ``minimum``: first the
    minimum itself (the biggest jump), then one step down."""
    value = params[key]
    if value - step >= minimum:
        if minimum < value - step:
            yield _shrunk(params, **{key: minimum})
        yield _shrunk(params, **{key: value - step})


def _halve_down(params: Params, key: str, minimum: int):
    value = params[key]
    if value // 2 >= minimum:
        yield _shrunk(params, **{key: value // 2})


# -- the default space --------------------------------------------------------


def _build_cycle(p: Params):
    from repro.core import embed_cycle_load1

    return embed_cycle_load1(p["n"])


def _build_cycle2(p: Params):
    from repro.core import embed_cycle_load2

    return embed_cycle_load2(p["n"], prefer_width=p.get("wide", False))


def _build_grid(p: Params):
    from repro.core import embed_grid_multipath

    return embed_grid_multipath(tuple(p["dims"]), torus=p.get("torus", False))


def _build_ccc(p: Params):
    from repro.core import ccc_multicopy_embedding

    return ccc_multicopy_embedding(p["n"])


def _build_tree(p: Params):
    from repro.core import theorem5_embedding

    return theorem5_embedding(p["m"])


def _build_large_cycle(p: Params):
    from repro.core import large_cycle_embedding

    return large_cycle_embedding(p["n"])


def _build_graycode(p: Params):
    from repro.core import graycode_cycle_embedding

    return graycode_cycle_embedding(p["n"])


def _build_cycle_multicopy(p: Params):
    from repro.core import cycle_multicopy_embedding

    return cycle_multicopy_embedding(p["n"])


def _build_butterfly_multicopy(p: Params):
    from repro.core import butterfly_multicopy_embedding

    return butterfly_multicopy_embedding(
        p["m"], undirected=p.get("undirected", False)
    )


def _build_butterfly_multipath(p: Params):
    from repro.core import butterfly_multipath_embedding

    return butterfly_multipath_embedding(p["m"])


def _build_grid_multicopy(p: Params):
    from repro.core import grid_multicopy_embedding

    return grid_multicopy_embedding(tuple(p["dims"]))


def _build_cbt_multicopy(p: Params):
    from repro.core import cbt_multicopy_embedding

    return cbt_multicopy_embedding(p["m"])


def _build_arbitrary_tree(p: Params):
    from repro.core import arbitrary_tree_embedding
    from repro.networks.tree import random_binary_tree

    tree = random_binary_tree(p["vertices"], seed=p["tree_seed"])
    return arbitrary_tree_embedding(tree, p["m"])


def _build_cross_product(p: Params):
    from repro.core import butterfly_multicopy_embedding, induced_cross_product_embedding

    return induced_cross_product_embedding(
        butterfly_multicopy_embedding(p["m"], undirected=True)
    )


def _build_ccc_single(p: Params):
    from repro.core import ccc_single_embedding

    return ccc_single_embedding(p["n"])


def _build_large_ccc(p: Params):
    from repro.core import large_ccc_embedding

    return large_ccc_embedding(p["n"])


def _build_large_butterfly(p: Params):
    from repro.core import large_butterfly_embedding

    return large_butterfly_embedding(p["n"])


def _build_large_fft(p: Params):
    from repro.core import large_fft_embedding

    return large_fft_embedding(p["n"])


def _grid_shrink(p: Params) -> Iterator[Params]:
    dims = list(p["dims"])
    if p.get("torus"):
        # tori need equal power-of-two sides >= 4, so shrink moves that
        # leave the torus domain drop the wrap or halve every side together
        yield _shrunk(p, torus=False)
        if len(dims) > 1:
            yield _shrunk(p, dims=dims[:-1])
        if dims[0] // 2 >= 4:
            yield _shrunk(p, dims=[d // 2 for d in dims])
        return
    if len(dims) > 1:
        yield _shrunk(p, dims=dims[:-1])
    for i, d in enumerate(dims):
        if d > 2:
            yield _shrunk(p, dims=dims[:i] + [d // 2] + dims[i + 1 :])


def _grid_mc_shrink(p: Params) -> Iterator[Params]:
    # multicopy grids need equal sides 2^a with a even: 4, 16, ...
    dims = list(p["dims"])
    if len(dims) > 1:
        yield _shrunk(p, dims=dims[:-1])
    if dims[0] > 4:
        yield _shrunk(p, dims=[4] * len(dims))


def _cycle2_shrink(p: Params) -> Iterator[Params]:
    yield from _int_down(p, "n", 4)
    if p.get("wide"):
        yield _shrunk(p, wide=False)


def _bf_mc_shrink(p: Params) -> Iterator[Params]:
    yield from _halve_down(p, "m", 2)
    if p.get("undirected"):
        yield _shrunk(p, undirected=False)


def _arb_tree_shrink(p: Params) -> Iterator[Params]:
    if p["vertices"] > 1:
        yield _shrunk(p, vertices=max(1, p["vertices"] // 2))
        yield _shrunk(p, vertices=p["vertices"] - 1)


def default_space() -> ConstructionSpace:
    """Every ``core/`` builder at fuzz-practical sizes.

    Sizes keep one build+verify well under a second (measured; the CI smoke
    quota runs dozens of points) while still crossing the interesting
    parameter classes: ``n mod 4`` for Theorem 2, odd/even ``n`` for
    Theorem 3, equal/unequal and wrapped/unwrapped grids, directed and
    undirected butterflies.
    """
    return ConstructionSpace(
        [
            FuzzConstruction(
                "cycle",
                lambda rng: {"n": rng.randint(4, 9)},
                _build_cycle,
                lambda p: _int_down(p, "n", 4),
            ),
            FuzzConstruction(
                "cycle2",
                lambda rng: {"n": rng.randint(4, 9), "wide": rng.random() < 0.5},
                _build_cycle2,
                _cycle2_shrink,
            ),
            FuzzConstruction(
                "grid",
                # tori need equal power-of-two sides >= 4: the wrap edge
                # must be a guest cycle edge (axis bits are floored at 2)
                # and unequal sides take the Corollary 2 squaring path,
                # which has no wrap edges
                lambda rng: (
                    lambda torus: {
                        "dims": [rng.choice([4, 8])] * rng.randint(1, 2)
                        if torus
                        else [
                            rng.choice([2, 4, 8])
                            for _ in range(rng.randint(1, 2))
                        ],
                        "torus": torus,
                    }
                )(rng.random() < 0.5),
                _build_grid,
                _grid_shrink,
            ),
            FuzzConstruction(
                "ccc",
                lambda rng: {"n": rng.choice([2, 4, 8])},
                _build_ccc,
                lambda p: _halve_down(p, "n", 2),
            ),
            FuzzConstruction(
                "tree",
                lambda rng: {"m": 2},
                _build_tree,
                lambda p: iter(()),
            ),
            FuzzConstruction(
                "large-cycle",
                lambda rng: {"n": rng.choice([2, 4, 6, 8, 10])},
                _build_large_cycle,
                lambda p: _int_down(p, "n", 2, step=2),
            ),
            FuzzConstruction(
                "graycode",
                lambda rng: {"n": rng.randint(1, 9)},
                _build_graycode,
                lambda p: _int_down(p, "n", 1),
            ),
            FuzzConstruction(
                "cycle-multicopy",
                lambda rng: {"n": rng.randint(2, 9)},
                _build_cycle_multicopy,
                lambda p: _int_down(p, "n", 2),
            ),
            FuzzConstruction(
                "butterfly-multicopy",
                lambda rng: {
                    "m": rng.choice([2, 4]),
                    "undirected": rng.random() < 0.5,
                },
                _build_butterfly_multicopy,
                _bf_mc_shrink,
            ),
            FuzzConstruction(
                "butterfly-multipath",
                lambda rng: {"m": rng.choice([2, 4])},
                _build_butterfly_multipath,
                lambda p: _halve_down(p, "m", 2),
            ),
            FuzzConstruction(
                "grid-multicopy",
                lambda rng: {
                    "dims": [4] * rng.randint(1, 2)
                    if rng.random() < 0.8
                    else [16],
                },
                _build_grid_multicopy,
                _grid_mc_shrink,
            ),
            FuzzConstruction(
                "cbt-multicopy",
                lambda rng: {"m": rng.choice([2, 4])},
                _build_cbt_multicopy,
                lambda p: _halve_down(p, "m", 2),
            ),
            FuzzConstruction(
                "arbitrary-tree",
                lambda rng: {
                    "vertices": rng.randint(1, 25),
                    "tree_seed": rng.randrange(2**16),
                    "m": 2,
                },
                _build_arbitrary_tree,
                _arb_tree_shrink,
            ),
            FuzzConstruction(
                "cross-product",
                lambda rng: {"m": 2},
                _build_cross_product,
                lambda p: iter(()),
            ),
            FuzzConstruction(
                "ccc-single",
                # odd and even n take different correction-path shapes
                lambda rng: {"n": rng.randint(2, 8)},
                _build_ccc_single,
                lambda p: _int_down(p, "n", 2),
            ),
            FuzzConstruction(
                "large-ccc",
                lambda rng: {"n": rng.randint(2, 5)},
                _build_large_ccc,
                lambda p: _int_down(p, "n", 2),
            ),
            FuzzConstruction(
                "large-butterfly",
                lambda rng: {"n": rng.randint(2, 5)},
                _build_large_butterfly,
                lambda p: _int_down(p, "n", 2),
            ),
            FuzzConstruction(
                "large-fft",
                lambda rng: {"n": rng.randint(2, 5)},
                _build_large_fft,
                lambda p: _int_down(p, "n", 2),
            ),
            *_scenario_constructions(),
        ]
    )


def _build_scenario(name: str, p: Params) -> Any:
    from repro.scenarios.subject import scenario_subject

    return scenario_subject(
        name,
        int(p["n"]),
        load=float(p["load"]),
        horizon=int(p["horizon"]),
        seed=p["scenario_seed"],
    )


def _scenario_shrink(p: Params) -> Iterator[Params]:
    if p["n"] > 2:
        yield _shrunk(p, n=p["n"] - 1)
    if p["horizon"] > 1:
        yield _shrunk(p, horizon=p["horizon"] // 2)
    if p["load"] > 0.25:
        yield _shrunk(p, load=0.25)


def _scenario_constructions() -> Iterator[FuzzConstruction]:
    """One fuzz construction per registered traffic scenario.

    The adversarial generators ride the same pipeline as the paper
    constructions: each point builds a
    :class:`repro.scenarios.ScenarioSubject`, so verification,
    metamorphic relabeling and the engine differential all run over
    adversarial traffic.  Kinds are ``scenario:<name>``; the lint
    contract rule cross-checks them against ``@register_scenario``.
    """
    from repro.scenarios.registry import scenario_names

    def sampler(rng: random.Random) -> Params:
        return {
            "n": rng.randint(3, 6),
            "load": rng.choice([0.25, 0.5, 1.0]),
            "horizon": rng.randint(2, 6),
            "scenario_seed": rng.randrange(2**16),
        }

    for name in scenario_names():
        yield FuzzConstruction(
            f"scenario:{name}",
            sampler,
            (lambda p, _name=name: _build_scenario(_name, p)),
            _scenario_shrink,
        )
