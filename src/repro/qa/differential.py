"""Differential testing: two engines, one answer — plus a max-flow referee.

The reference :class:`~repro.routing.simulator.StoreForwardSimulator`
(run with the ``"priority"`` tie-break) and the vectorized
:class:`~repro.routing.fast_simulator.FastStoreForward` implement the
same synchronous link-bound model with the same winner rule (lowest
injection index per link per step), so on any unit-service schedule they
must return *field-for-field identical* :class:`~repro.routing.api.SimResult`s.
:func:`differential_check` asserts exactly that and, on divergence,
shrinks the schedule to a minimal reproducer before reporting.

The same contract holds at flit granularity: the reference
:class:`~repro.routing.wormhole.WormholeSimulator` and the vectorized
:class:`~repro.routing.fast_wormhole.FastWormhole` implement identical
two-phase step semantics, so :func:`wormhole_differential_check` demands
identical makespans, per-worm final states, link ownership *and* recorder
snapshots — and identical deadlocks, since a schedule that deadlocks one
engine must deadlock the other at the same step.

:func:`verification_differential` referees the third fast/reference pair:
the vectorized ``verify()`` kernels against the scalar
``verify_reference()`` walk, compared signature-for-signature (check
names + outcomes, all metrics).

:func:`route_batch_differential` referees the serving layer's fourth
fast/reference pair: the flat CSR gather behind
:meth:`repro.service.api.RoutingService.route_batch` against per-call
:func:`repro.service.api.disjoint_paths`, on a fuzzed batch of guest
edges drawn in both orientations — the batch answer must be
*field-identical*, path for path, node for node.

Independently, :func:`max_flow_width_check` cross-examines claimed
edge-disjoint widths with an algorithm that shares no code with the
verifier: networkx max-flow over the directed hypercube with unit
capacities.  For a width-w bundle between host images u, v the whole
host must admit a u->v flow of at least w, and the subgraph of *only*
the bundle's own directed edges must admit exactly ``len(paths)`` —
anything less means the paths were not truly disjoint, anything more
means the bundle double-counted an edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.verification import InvariantCheck
from repro.obs.recorder import LinkRecorder
from repro.qa.schedules import (
    Schedule,
    WormSchedule,
    shrink_batch,
    shrink_schedule,
    shrink_worm_schedule,
)
from repro.routing.api import SimResult
from repro.routing.batched import BatchedStoreForward, BatchedWormhole
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.fast_wormhole import FastWormhole
from repro.routing.simulator import StoreForwardSimulator
from repro.routing.wormhole import WormholeDeadlock, WormholeSimulator

__all__ = [
    "Divergence",
    "WormDivergence",
    "run_pair",
    "differential_check",
    "run_wormhole_pair",
    "wormhole_differential_check",
    "BatchDivergence",
    "batched_differential_check",
    "batched_wormhole_differential_check",
    "verification_differential",
    "route_batch_differential",
    "cold_start_differential",
    "max_flow_width_check",
]


@dataclass
class Divergence:
    """A schedule on which the two engines disagree, minimized."""

    host_n: int
    schedule: Schedule
    fields: Tuple[str, ...]
    reference: SimResult
    fast: SimResult

    def describe(self) -> str:
        ref = {f: getattr(self.reference, f) for f in self.fields}
        fst = {f: getattr(self.fast, f) for f in self.fields}
        return (
            f"engines diverge on Q_{self.host_n} with {len(self.schedule)} "
            f"packet(s): reference {ref} vs fast {fst}"
        )


def run_pair(host: Any, schedule: Schedule) -> Tuple[SimResult, SimResult]:
    """Run ``schedule`` through both engines under the shared winner rule."""
    reference = StoreForwardSimulator(host, tie_break="priority").run(schedule)
    fast = FastStoreForward(host).run(schedule)
    return reference, fast


def differential_check(host: Any, schedule: Schedule) -> Optional[Divergence]:
    """None when the engines agree; otherwise a *shrunken* :class:`Divergence`.

    Shrinking is greedy over :func:`repro.qa.schedules.shrink_schedule`:
    keep any smaller schedule that still diverges, restart from it, stop at
    a local minimum (every candidate agrees).
    """
    diverging = _diverging_fields(host, schedule)
    if diverging is None:
        return None
    current = [(tuple(p), int(r)) for p, r in schedule]
    shrinking = True
    while shrinking:
        shrinking = False
        for candidate in shrink_schedule(current):
            if _diverging_fields(host, candidate) is not None:
                current = candidate
                shrinking = True
                break
    reference, fast = run_pair(host, current)
    return Divergence(
        host.n, current, reference.diff_fields(fast), reference, fast
    )


def _diverging_fields(host: Any, schedule: Schedule) -> Optional[Tuple[str, ...]]:
    reference, fast = run_pair(host, schedule)
    fields = reference.diff_fields(fast)
    return fields or None


# -- wormhole engines --------------------------------------------------------


@dataclass
class WormDivergence:
    """A worm schedule on which the two wormhole engines disagree, minimized."""

    host_n: int
    buffer_capacity: int
    schedule: WormSchedule
    fields: Tuple[str, ...]
    reference: Dict[str, Any]
    fast: Dict[str, Any]

    def describe(self) -> str:
        ref = {f: self.reference[f] for f in self.fields}
        fst = {f: self.fast[f] for f in self.fields}
        return (
            f"wormhole engines diverge on Q_{self.host_n} "
            f"(buffers={self.buffer_capacity}) with {len(self.schedule)} "
            f"worm(s): reference {ref} vs fast {fst}"
        )


def _run_worm_engine(
    engine_cls, host: Any, schedule: WormSchedule, buffer_capacity: int
) -> Dict[str, Any]:
    """One engine's complete observable outcome on a worm schedule.

    Covers every surface the engines share: the returned makespan (or the
    deadlock message), each worm's final ``(done_step, head_link,
    flits_crossed)``, the surviving link-ownership map, and the recorder
    snapshot (per-link flit counts + delivery histogram).
    """
    sim = engine_cls(host, buffer_capacity=buffer_capacity)
    worms = [
        sim.inject(tuple(path), int(flits), int(release))
        for path, flits, release in schedule
    ]
    recorder = LinkRecorder(host=host)
    makespan: Optional[int] = None
    deadlock: Optional[str] = None
    try:
        makespan = sim.run(recorder=recorder)
    except WormholeDeadlock as err:
        deadlock = str(err)
    return {
        "makespan": makespan,
        "deadlock": deadlock,
        "worms": tuple(
            (w.done_step, w.head_link, tuple(w.flits_crossed)) for w in worms
        ),
        "owner": dict(sim._owner),
        "recorder": recorder.snapshot(),
    }


def run_wormhole_pair(
    host: Any, schedule: WormSchedule, buffer_capacity: int = 1
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run a worm schedule through both wormhole engines."""
    reference = _run_worm_engine(
        WormholeSimulator, host, schedule, buffer_capacity
    )
    fast = _run_worm_engine(FastWormhole, host, schedule, buffer_capacity)
    return reference, fast


def _worm_diverging_fields(
    host: Any, schedule: WormSchedule, buffer_capacity: int
) -> Optional[Tuple[str, ...]]:
    reference, fast = run_wormhole_pair(host, schedule, buffer_capacity)
    fields = tuple(k for k in reference if reference[k] != fast[k])
    return fields or None


def wormhole_differential_check(
    host: Any, schedule: WormSchedule, buffer_capacity: int = 1
) -> Optional[WormDivergence]:
    """None when the wormhole engines agree; else a shrunken divergence.

    Agreement is total: makespan, deadlock-or-not (and the deadlock
    message's step), per-worm final state, link ownership and recorder
    snapshot must all match.  Shrinking mirrors :func:`differential_check`
    over :func:`repro.qa.schedules.shrink_worm_schedule`.
    """
    if _worm_diverging_fields(host, schedule, buffer_capacity) is None:
        return None
    current = [(tuple(p), int(m), int(r)) for p, m, r in schedule]
    shrinking = True
    while shrinking:
        shrinking = False
        for candidate in shrink_worm_schedule(current):
            if _worm_diverging_fields(host, candidate, buffer_capacity) is not None:
                current = candidate
                shrinking = True
                break
    reference, fast = run_wormhole_pair(host, current, buffer_capacity)
    fields = tuple(k for k in reference if reference[k] != fast[k])
    return WormDivergence(
        host.n, buffer_capacity, current, fields, reference, fast
    )


# -- batched tensor engines --------------------------------------------------


@dataclass
class BatchDivergence:
    """A batch on which the batched engine disagrees with the scalar one.

    ``lane`` is the index of the first diverging lane in the (already
    minimized) ``schedules``; ``reference``/``fast`` are that lane's two
    outcomes — ``SimResult``-like for store-and-forward, observable dicts
    for wormhole.  ``fields`` names what differs ("recorder" covers the
    per-lane congestion snapshot).
    """

    host_n: int
    engine: str
    schedules: List[List]
    faults: Optional[List[Any]]
    lane: int
    fields: Tuple[str, ...]
    reference: Any
    fast: Any

    def describe(self) -> str:
        sizes = [len(lane) for lane in self.schedules]
        return (
            f"{self.engine} batch diverges on Q_{self.host_n} "
            f"(lanes={sizes}, faults={'yes' if self.faults else 'no'}) at "
            f"lane {self.lane} on {self.fields}: "
            f"reference {self.reference} vs batched {self.fast}"
        )


def _batch_diverging_lane(
    host: Any,
    batch: List[Schedule],
    faults: Optional[List[Any]],
    batched_cls: Optional[type] = None,
) -> Optional[Tuple[int, Tuple[str, ...], SimResult, SimResult]]:
    """First lane where run_many() differs from per-lane FastStoreForward.

    Identity is total per lane: every ``SimResult`` measured field
    (makespan, delivered, injected, steps, ``done_steps`` including the
    ``-1`` fault-drop sentinel) plus the recorder snapshot.
    """
    if batched_cls is None:
        # resolved at call time so tests can swap in a sabotaged engine
        batched_cls = BatchedStoreForward
    batch_recs = [LinkRecorder(host=host) for _ in batch]
    results = batched_cls(host).run_many(
        batch, recorders=batch_recs, faults=faults
    )
    for i, schedule in enumerate(batch):
        scalar_rec = LinkRecorder(host=host)
        scalar = FastStoreForward(host).run(
            schedule,
            recorder=scalar_rec,
            faults=faults[i] if faults else None,
        )
        fields = scalar.diff_fields(results[i])
        if fields:
            return i, fields, scalar, results[i]
        if scalar_rec.snapshot() != batch_recs[i].snapshot():
            return i, ("recorder",), scalar, results[i]
    return None


def batched_differential_check(
    host: Any,
    batch: List[Schedule],
    faults: Optional[List[Any]] = None,
    batched_cls: Optional[type] = None,
) -> Optional[BatchDivergence]:
    """None when every lane matches the scalar engine; else a minimized
    :class:`BatchDivergence`.

    Shrinking is greedy over :func:`repro.qa.schedules.shrink_batch`
    (drop lane halves, drop single lanes, then shrink one lane at a
    time), interleaved with dropping the fault models entirely — the
    minimal reproducer is usually a single short lane, often fault-free.
    """
    found = _batch_diverging_lane(host, batch, faults, batched_cls)
    if found is None:
        return None
    current = [[(tuple(p), int(r)) for p, r in lane] for lane in batch]
    cur_faults = list(faults) if faults else None

    def lanes_and_faults(candidate):
        # lane-drop candidates shorten the batch; faults must follow.
        # shrink_batch preserves lane order, so align by lane identity.
        if cur_faults is None or len(candidate) == len(current):
            return cur_faults
        kept, j = [], 0
        for lane in candidate:
            while j < len(current) and current[j] is not lane:
                j += 1
            if j < len(current):
                kept.append(cur_faults[j])
                j += 1
            else:
                return None  # rewritten lane: keep faults positionally
        return kept

    shrinking = True
    while shrinking:
        shrinking = False
        if cur_faults is not None:
            if _batch_diverging_lane(host, current, None, batched_cls) is not None:
                cur_faults = None
                shrinking = True
                continue
        for candidate in shrink_batch(current, shrink_schedule):
            cand_faults = lanes_and_faults(candidate)
            if cand_faults is None and cur_faults is not None:
                cand_faults = cur_faults[: len(candidate)] if len(
                    candidate
                ) == len(current) else None
                if cand_faults is None:
                    continue
            if _batch_diverging_lane(
                host, candidate, cand_faults, batched_cls
            ) is not None:
                current = candidate
                cur_faults = cand_faults
                shrinking = True
                break
    found = _batch_diverging_lane(host, current, cur_faults, batched_cls)
    assert found is not None
    lane, fields, reference, fast = found
    return BatchDivergence(
        host.n,
        "store-forward",
        current,
        cur_faults,
        lane,
        fields,
        reference.measured(),
        fast.measured(),
    )


def _batched_worm_lane(
    host: Any, batch: List[WormSchedule], buffer_capacity: int
) -> Optional[Tuple[int, Tuple[str, ...], Dict[str, Any], Dict[str, Any]]]:
    """First lane where BatchedWormhole differs from FastWormhole."""
    recs = [LinkRecorder(host=host) for _ in batch]
    outs = BatchedWormhole(host, buffer_capacity=buffer_capacity).run_many(
        batch, recorders=recs
    )
    for i, schedule in enumerate(batch):
        scalar = _run_worm_engine(FastWormhole, host, schedule, buffer_capacity)
        out = outs[i]
        got = {
            "makespan": None if out.deadlocked else out.makespan,
            "deadlock": out.deadlock,
            "worms": tuple(
                (w.done_step, w.head_link, tuple(w.flits_crossed))
                for w in out.worms
            ),
            "owner": out.owner,
            "recorder": recs[i].snapshot(),
        }
        fields = tuple(k for k in scalar if scalar[k] != got[k])
        if fields:
            return i, fields, scalar, got
    return None


def batched_wormhole_differential_check(
    host: Any, batch: List[WormSchedule], buffer_capacity: int = 1
) -> Optional[BatchDivergence]:
    """None when every wormhole lane matches FastWormhole; else minimized.

    Agreement is the full wormhole observable per lane — makespan or the
    deadlock message (same step, same worm count), per-worm final state,
    surviving link ownership, recorder snapshot.  A deadlocked lane must
    freeze in the batched engine exactly where the scalar engine raised.
    """
    if _batched_worm_lane(host, batch, buffer_capacity) is None:
        return None
    current = [
        [(tuple(p), int(m), int(r)) for p, m, r in lane] for lane in batch
    ]
    shrinking = True
    while shrinking:
        shrinking = False
        for candidate in shrink_batch(current, shrink_worm_schedule):
            if _batched_worm_lane(host, candidate, buffer_capacity) is not None:
                current = candidate
                shrinking = True
                break
    found = _batched_worm_lane(host, current, buffer_capacity)
    assert found is not None
    lane, fields, reference, fast = found
    return BatchDivergence(
        host.n,
        "wormhole",
        current,
        None,
        lane,
        fields,
        {k: reference[k] for k in fields},
        {k: fast[k] for k in fields},
    )


# -- verification kernels ----------------------------------------------------


def verification_differential(emb: Any) -> List[InvariantCheck]:
    """Referee the vectorized verify against the scalar reference walk.

    Both must produce the same check names with the same outcomes in the
    same order, and identical metrics.  Failure *details* are allowed to
    differ when several invariants are broken at once (batch checking may
    pick a different offender than the per-hop walk), so details are
    compared only on fully passing reports, where they are deterministic.
    Embeddings without a ``verify_reference`` contribute no checks.
    """
    if not hasattr(emb, "verify_reference"):
        return []
    fast = emb.verify(strict=False)
    reference = emb.verify_reference(strict=False)
    checks: List[InvariantCheck] = []
    fast_sig = tuple((c.name, c.passed) for c in fast.checks)
    ref_sig = tuple((c.name, c.passed) for c in reference.checks)
    checks.append(
        InvariantCheck(
            "diff:verify:checks",
            fast_sig == ref_sig,
            f"vectorized checks {fast_sig} != reference {ref_sig}"
            if fast_sig != ref_sig
            else f"{len(fast_sig)} checks agree with the scalar referee",
        )
    )
    fast_metrics = tuple(sorted(fast.metrics.items()))
    ref_metrics = tuple(sorted(reference.metrics.items()))
    checks.append(
        InvariantCheck(
            "diff:verify:metrics",
            fast_metrics == ref_metrics,
            f"vectorized metrics {fast_metrics} != reference {ref_metrics}"
            if fast_metrics != ref_metrics
            else "metrics agree with the scalar referee",
        )
    )
    if fast.ok and reference.ok:
        fast_details = tuple(c.detail for c in fast.checks)
        ref_details = tuple(c.detail for c in reference.checks)
        checks.append(
            InvariantCheck(
                "diff:verify:details",
                fast_details == ref_details,
                "passing-report details differ from the scalar referee"
                if fast_details != ref_details
                else "passing details agree with the scalar referee",
            )
        )
    return checks


def route_batch_differential(
    emb: Any, rng: random.Random, requests: int = 32
) -> List[InvariantCheck]:
    """Referee the batched CSR gather against per-call path lookup.

    Draws ``requests`` guest edges from the embedding (each served in a
    random orientation), resolves them all in one
    :meth:`~repro.core.fast_verify.PathCSR.take`, and demands the slice
    each request owns equals :func:`repro.service.api.disjoint_paths` for
    that edge — same bundle order, same path order, same nodes.  Subjects
    that are not embeddings (simulation scenarios route by packet id, not
    guest edge) contribute no checks.
    """
    from repro.core.embedding import (
        Embedding,
        MultiCopyEmbedding,
        MultiPathEmbedding,
    )
    from repro.core.fast_verify import embedding_csr
    from repro.service.api import disjoint_paths

    if not isinstance(emb, (Embedding, MultiCopyEmbedding, MultiPathEmbedding)):
        return []
    csr = embedding_csr(emb)
    if not csr.edges:
        return []
    batch = []
    for _ in range(requests):
        u, v = csr.edges[rng.randrange(len(csr.edges))]
        batch.append((v, u) if rng.random() < 0.5 else (u, v))
    nodes, path_offsets, request_offsets = csr.take(batch)
    checks: List[InvariantCheck] = []
    for i, edge in enumerate(batch):
        expected = tuple(tuple(p) for p in disjoint_paths(emb, edge))
        lo, hi = int(request_offsets[i]), int(request_offsets[i + 1])
        got = tuple(
            tuple(nodes[path_offsets[j] : path_offsets[j + 1]].tolist())
            for j in range(lo, hi)
        )
        if got != expected:
            checks.append(
                InvariantCheck(
                    f"diff:batch:{edge}",
                    False,
                    f"batched gather returned {got} but per-call routing "
                    f"returned {expected}",
                )
            )
    checks.append(
        InvariantCheck(
            "diff:batch",
            not checks,
            f"{len(checks)} of {len(batch)} batched request(s) diverge "
            f"from per-call routing"
            if checks
            else f"{len(batch)} batched request(s) agree with per-call routing",
        )
    )
    return checks


def cold_start_differential(
    emb: Any, rng: random.Random, requests: int = 16
) -> List[InvariantCheck]:
    """Referee the memmapped store tier against the freshly built CSR.

    Serializes the embedding's CSR through a real store file (tmp
    directory, full write/fsync/rename path), re-opens it with eager
    payload verification, and demands the hydrated
    :class:`~repro.core.fast_verify.PathCSR` be **field-identical** to
    the in-memory export — every contract array byte-for-byte, the edge
    table, and the resolved answer for a fuzzed batch of requests in
    both orientations.  This is the proof obligation behind the
    instant-start tier: serving off the file must be indistinguishable
    from serving off a fresh build.  Non-embedding subjects contribute
    no checks.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.core.embedding import (
        Embedding,
        MultiCopyEmbedding,
        MultiPathEmbedding,
    )
    from repro.core.fast_verify import embedding_csr
    from repro.service.store import open_store, write_store

    if not isinstance(emb, (Embedding, MultiCopyEmbedding, MultiPathEmbedding)):
        return []
    fresh = embedding_csr(emb)
    if not len(fresh.edges):
        return []
    checks: List[InvariantCheck] = []
    with tempfile.TemporaryDirectory(prefix="repro-coldstart-") as tmp:
        path = Path(tmp) / "subject.rpstore"
        write_store(
            path, fresh, "{}", spec_key="cold-start-qa", kind="qa"
        )
        view = open_store(path, payload_verify="eager")
        try:
            mapped = view.csr
            fields = ("nodes", "path_offsets", "bundle_offsets", "path_reversed")
            identical = mapped.host_n == fresh.host_n and all(
                np.array_equal(getattr(mapped, f), getattr(fresh, f))
                for f in fields
            )
            checks.append(
                InvariantCheck(
                    "diff:coldstart:fields",
                    identical,
                    "memmapped CSR fields diverge from the fresh export"
                    if not identical
                    else "memmapped CSR is field-identical to the fresh export",
                )
            )
            edges_equal = list(mapped.edges) == list(fresh.edges)
            checks.append(
                InvariantCheck(
                    "diff:coldstart:edges",
                    edges_equal,
                    "memmapped edge table diverges from the fresh export"
                    if not edges_equal
                    else f"{len(fresh.edges)} edge(s) round-tripped exactly",
                )
            )
            batch = []
            for _ in range(requests):
                u, v = fresh.edges[rng.randrange(len(fresh.edges))]
                batch.append((v, u) if rng.random() < 0.5 else (u, v))
            got = mapped.take(batch)
            want = fresh.take(batch)
            routed = all(np.array_equal(g, w) for g, w in zip(got, want))
            checks.append(
                InvariantCheck(
                    "diff:coldstart:routing",
                    routed,
                    "memmapped resolve diverges from the fresh CSR"
                    if not routed
                    else f"{len(batch)} request(s) resolve identically off the file",
                )
            )
        finally:
            view.close()
    return checks


def _flow_value(graph, source: int, sink: int) -> int:
    import networkx as nx

    return int(nx.maximum_flow_value(graph, source, sink, capacity="capacity"))


def max_flow_width_check(
    emb: Any, rng: random.Random, samples: int = 2
) -> List[InvariantCheck]:
    """Cross-check ``samples`` random bundles of a multipath embedding.

    Silently returns no checks for non-multipath embeddings (nothing claims
    a width) and when networkx is unavailable (the check is a referee, not
    a dependency).
    """
    if not hasattr(emb, "width") or not getattr(emb, "edge_paths", None):
        return []
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - networkx is a test-env staple
        return []

    host_graph = nx.DiGraph()
    for u in range(emb.host.num_nodes):
        for d in range(emb.host.n):
            host_graph.add_edge(u, u ^ (1 << d), capacity=1)

    checks: List[InvariantCheck] = []
    edges = [e for e, ps in emb.edge_paths.items() if len(ps[0]) > 1]
    rng.shuffle(edges)
    for edge in edges[:samples]:
        paths = emb.edge_paths[edge]
        u, v = paths[0][0], paths[0][-1]
        w = len(paths)
        host_flow = _flow_value(host_graph, u, v)
        checks.append(
            InvariantCheck(
                f"flow:host:{edge}",
                host_flow >= w,
                f"host max-flow {host_flow} < claimed width {w}"
                if host_flow < w
                else f"host admits {host_flow} >= {w} disjoint paths",
            )
        )
        bundle = nx.DiGraph()
        for path in paths:
            for a, b in zip(path, path[1:]):
                bundle.add_edge(a, b, capacity=1)
        bundle_flow = _flow_value(bundle, u, v)
        checks.append(
            InvariantCheck(
                f"flow:bundle:{edge}",
                bundle_flow == w,
                f"bundle max-flow {bundle_flow} != path count {w} "
                f"(paths are not edge-disjoint)"
                if bundle_flow != w
                else f"bundle carries exactly {w} disjoint paths",
            )
        )
    return checks
