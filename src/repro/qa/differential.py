"""Differential testing: two engines, one answer — plus a max-flow referee.

The reference :class:`~repro.routing.simulator.StoreForwardSimulator`
(run with the ``"priority"`` tie-break) and the vectorized
:class:`~repro.routing.fast_simulator.FastStoreForward` implement the
same synchronous link-bound model with the same winner rule (lowest
injection index per link per step), so on any unit-service schedule they
must return *field-for-field identical* :class:`~repro.routing.api.SimResult`s.
:func:`differential_check` asserts exactly that and, on divergence,
shrinks the schedule to a minimal reproducer before reporting.

Independently, :func:`max_flow_width_check` cross-examines claimed
edge-disjoint widths with an algorithm that shares no code with the
verifier: networkx max-flow over the directed hypercube with unit
capacities.  For a width-w bundle between host images u, v the whole
host must admit a u->v flow of at least w, and the subgraph of *only*
the bundle's own directed edges must admit exactly ``len(paths)`` —
anything less means the paths were not truly disjoint, anything more
means the bundle double-counted an edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.verification import InvariantCheck
from repro.qa.schedules import Schedule, shrink_schedule
from repro.routing.api import SimResult
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.simulator import StoreForwardSimulator

__all__ = ["Divergence", "run_pair", "differential_check", "max_flow_width_check"]


@dataclass
class Divergence:
    """A schedule on which the two engines disagree, minimized."""

    host_n: int
    schedule: Schedule
    fields: Tuple[str, ...]
    reference: SimResult
    fast: SimResult

    def describe(self) -> str:
        ref = {f: getattr(self.reference, f) for f in self.fields}
        fst = {f: getattr(self.fast, f) for f in self.fields}
        return (
            f"engines diverge on Q_{self.host_n} with {len(self.schedule)} "
            f"packet(s): reference {ref} vs fast {fst}"
        )


def run_pair(host: Any, schedule: Schedule) -> Tuple[SimResult, SimResult]:
    """Run ``schedule`` through both engines under the shared winner rule."""
    reference = StoreForwardSimulator(host, tie_break="priority").run(schedule)
    fast = FastStoreForward(host).run(schedule)
    return reference, fast


def differential_check(host: Any, schedule: Schedule) -> Optional[Divergence]:
    """None when the engines agree; otherwise a *shrunken* :class:`Divergence`.

    Shrinking is greedy over :func:`repro.qa.schedules.shrink_schedule`:
    keep any smaller schedule that still diverges, restart from it, stop at
    a local minimum (every candidate agrees).
    """
    diverging = _diverging_fields(host, schedule)
    if diverging is None:
        return None
    current = [(tuple(p), int(r)) for p, r in schedule]
    shrinking = True
    while shrinking:
        shrinking = False
        for candidate in shrink_schedule(current):
            if _diverging_fields(host, candidate) is not None:
                current = candidate
                shrinking = True
                break
    reference, fast = run_pair(host, current)
    return Divergence(
        host.n, current, reference.diff_fields(fast), reference, fast
    )


def _diverging_fields(host: Any, schedule: Schedule) -> Optional[Tuple[str, ...]]:
    reference, fast = run_pair(host, schedule)
    fields = reference.diff_fields(fast)
    return fields or None


def _flow_value(graph, source: int, sink: int) -> int:
    import networkx as nx

    return int(nx.maximum_flow_value(graph, source, sink, capacity="capacity"))


def max_flow_width_check(
    emb: Any, rng: random.Random, samples: int = 2
) -> List[InvariantCheck]:
    """Cross-check ``samples`` random bundles of a multipath embedding.

    Silently returns no checks for non-multipath embeddings (nothing claims
    a width) and when networkx is unavailable (the check is a referee, not
    a dependency).
    """
    if not hasattr(emb, "width") or not getattr(emb, "edge_paths", None):
        return []
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - networkx is a test-env staple
        return []

    host_graph = nx.DiGraph()
    for u in range(emb.host.num_nodes):
        for d in range(emb.host.n):
            host_graph.add_edge(u, u ^ (1 << d), capacity=1)

    checks: List[InvariantCheck] = []
    edges = [e for e, ps in emb.edge_paths.items() if len(ps[0]) > 1]
    rng.shuffle(edges)
    for edge in edges[:samples]:
        paths = emb.edge_paths[edge]
        u, v = paths[0][0], paths[0][-1]
        w = len(paths)
        host_flow = _flow_value(host_graph, u, v)
        checks.append(
            InvariantCheck(
                f"flow:host:{edge}",
                host_flow >= w,
                f"host max-flow {host_flow} < claimed width {w}"
                if host_flow < w
                else f"host admits {host_flow} >= {w} disjoint paths",
            )
        )
        bundle = nx.DiGraph()
        for path in paths:
            for a, b in zip(path, path[1:]):
                bundle.add_edge(a, b, capacity=1)
        bundle_flow = _flow_value(bundle, u, v)
        checks.append(
            InvariantCheck(
                f"flow:bundle:{edge}",
                bundle_flow == w,
                f"bundle max-flow {bundle_flow} != path count {w} "
                f"(paths are not edge-disjoint)"
                if bundle_flow != w
                else f"bundle carries exactly {w} disjoint paths",
            )
        )
    return checks
