"""The seeded construction fuzzer: sample, check, shrink, persist, replay.

One fuzzing *point* is ``(construction kind, parameter dict, point seed)``.
For each point the fuzzer runs, in order:

1. **build** — the construction builder itself (a sampler only draws
   points the builder accepts, so an exception is a finding);
2. **verify** — the embedding's own non-strict :meth:`verify` report,
   plus the fast/reference verification referee
   (:func:`repro.qa.differential.verification_differential`);
3. **oracle** — the registered per-construction paper oracles
   (:mod:`repro.qa.oracles` via :mod:`repro.core.verification`);
4. **metamorphic** — random automorphism images must preserve the
   verification report and simulated metrics (:mod:`repro.qa.metamorphic`);
5. **differential** — both store-and-forward engines must agree
   field-for-field on a schedule drawn from the embedding's paths
   (:mod:`repro.qa.differential`), which also shrinks any divergence,
   the wormhole pair (reference vs :class:`FastWormhole`) must agree on
   a random e-cube worm schedule
   (:func:`repro.qa.differential.wormhole_differential_check`),
   and the serving layer's batched CSR gather must be field-identical
   to per-call routing on a fuzzed request batch
   (:func:`repro.qa.differential.route_batch_differential`);
6. **batched_differential** — the batched tensor engines
   (:mod:`repro.routing.batched`) must reproduce the scalar fast
   engines lane-for-lane on fuzzed schedule batches: every ``SimResult``
   field (including ``done_steps=-1`` fault drops under per-lane
   ``FaultModel``s) and the full wormhole observable (including
   per-lane deadlock state), with shrinking to a minimal failing batch;
7. **cold_start_differential** — the embedding's CSR serialized through
   a real memmapped store file must hydrate field-identical to the
   fresh in-memory export and resolve fuzzed requests identically
   (:func:`repro.qa.differential.cold_start_differential`);
8. **flow** — networkx max-flow cross-examination of claimed widths.

A failing point is shrunk against the construction's own ``shrink``
candidates (greedily, preserving the failing stage) and saved to the
:class:`~repro.qa.corpus.Corpus` as a replayable reproducer.  Every draw
derives from the point seed alone, so ``replay`` reruns the exact
automorphisms and schedules the original finding saw.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro._compat import resolve_rng
from repro.core.verification import run_oracles
from repro.qa import oracles as _oracles  # noqa: F401 - importing registers them
from repro.qa.constructions import ConstructionSpace, default_space
from repro.qa.corpus import Corpus, CorpusEntry
from repro.fault.faults import FaultModel
from repro.qa.differential import (
    batched_differential_check,
    batched_wormhole_differential_check,
    cold_start_differential,
    differential_check,
    max_flow_width_check,
    route_batch_differential,
    verification_differential,
    wormhole_differential_check,
)
from repro.qa.metamorphic import metamorphic_check
from repro.qa.schedules import (
    embedding_schedule,
    random_worm_schedule,
    random_worm_schedule_batch,
    schedule_from_jsonable,
    schedule_to_jsonable,
)

__all__ = ["FuzzFailure", "FuzzReport", "Fuzzer"]

STAGES = (
    "build",
    "verify",
    "oracle",
    "metamorphic",
    "differential",
    "batched_differential",
    "cold_start_differential",
    "flow",
)


@dataclass
class FuzzFailure:
    """One failing point (possibly already shrunken)."""

    kind: str
    params: Dict
    stage: str
    detail: str
    schedule: Optional[List] = None

    def to_entry(self, point_seed: str) -> CorpusEntry:
        return CorpusEntry(
            kind=self.kind,
            params=dict(self.params),
            stage=self.stage,
            detail=self.detail,
            point_seed=point_seed,
            schedule=self.schedule,
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    points: int = 0
    failures: List[CorpusEntry] = field(default_factory=list)
    elapsed_s: float = 0.0
    per_kind: Dict[str, int] = field(default_factory=dict)
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} failure(s)"
        extra = " (budget exhausted)" if self.budget_exhausted else ""
        return (
            f"fuzzed {self.points} point(s) across {len(self.per_kind)} "
            f"construction kind(s) in {self.elapsed_s:.1f}s{extra}: {verdict}"
        )


class Fuzzer:
    """Drives the sample -> check -> shrink -> persist loop.

    ``images`` automorphism images and ``flow_samples`` max-flow probes run
    per point; ``checks`` restricts the stages (mostly for tests and for
    ``repro qa diff``, which wants the differential stage alone).
    """

    def __init__(
        self,
        space: Optional[ConstructionSpace] = None,
        corpus: Optional[Corpus] = None,
        seed: int = 0,
        images: int = 4,
        max_packets: int = 60,
        flow_samples: int = 2,
        checks: Sequence[str] = STAGES,
    ):
        unknown = set(checks) - set(STAGES)
        if unknown:
            raise ValueError(f"unknown check stage(s): {sorted(unknown)}")
        self.space = space if space is not None else default_space()
        self.corpus = corpus
        self.seed = seed
        self.images = images
        self.max_packets = max_packets
        self.flow_samples = flow_samples
        self.checks = tuple(checks)

    # -- one point ----------------------------------------------------------

    def check_point(
        self, kind: str, params: Dict, point_seed: str
    ) -> Optional[FuzzFailure]:
        """Run every enabled stage on one point; None means all passed."""
        construction = self.space.get(kind)
        rng = resolve_rng(point_seed)
        try:
            subject = construction.build(params)
        except Exception as err:  # noqa: BLE001 - builder crash IS the finding
            if "build" not in self.checks:
                return None
            return FuzzFailure(
                kind, params, "build", f"{type(err).__name__}: {err}"
            )

        if "verify" in self.checks:
            report = subject.verify(strict=False)
            if not report.ok:
                first = report.failures[0]
                return FuzzFailure(
                    kind, params, "verify", f"{first.name}: {first.detail}"
                )
            # referee: the vectorized kernels must agree with the scalar walk
            for check in verification_differential(subject):
                if not check.passed:
                    return FuzzFailure(
                        kind, params, "verify", f"{check.name}: {check.detail}"
                    )

        if "oracle" in self.checks:
            for check in run_oracles(kind, subject, params):
                if not check.passed:
                    return FuzzFailure(
                        kind, params, "oracle", f"{check.name}: {check.detail}"
                    )

        if "metamorphic" in self.checks:
            for check in metamorphic_check(
                subject, rng, images=self.images, max_packets=self.max_packets
            ):
                if not check.passed:
                    return FuzzFailure(
                        kind, params, "metamorphic", f"{check.name}: {check.detail}"
                    )

        if "differential" in self.checks:
            schedule = embedding_schedule(
                subject, rng, max_packets=self.max_packets
            )
            divergence = differential_check(subject.host, schedule)
            if divergence is not None:
                return FuzzFailure(
                    kind,
                    params,
                    "differential",
                    divergence.describe(),
                    schedule=schedule_to_jsonable(divergence.schedule),
                )
            for check in route_batch_differential(subject, rng):
                if not check.passed:
                    return FuzzFailure(
                        kind, params, "differential",
                        f"{check.name}: {check.detail}",
                    )
            worm_schedule = random_worm_schedule(subject.host, rng)
            worm_divergence = wormhole_differential_check(
                subject.host, worm_schedule
            )
            if worm_divergence is not None:
                return FuzzFailure(
                    kind, params, "differential",
                    worm_divergence.describe(),
                )

        if "batched_differential" in self.checks:
            lanes = rng.randint(2, 4)
            batch = [
                embedding_schedule(
                    subject, rng, max_packets=max(4, self.max_packets // 2)
                )
                for _ in range(lanes)
            ]
            faults = None
            # tiny hosts (Q_1 has a single undirected link) cap the kill
            # count below the 1-2 links the mix otherwise draws
            max_kill = min(2, subject.host.num_edges // 2)
            if max_kill >= 1 and rng.random() < 0.5:
                faults = [
                    FaultModel.random_links(
                        subject.host,
                        k=rng.randint(1, max_kill),
                        rng=rng,
                        active_from=rng.choice([0, 1, 3]),
                    )
                    if rng.random() < 0.5
                    else None
                    for _ in range(lanes)
                ]
            divergence = batched_differential_check(
                subject.host, batch, faults=faults
            )
            if divergence is not None:
                return FuzzFailure(
                    kind,
                    params,
                    "batched_differential",
                    divergence.describe(),
                    schedule=schedule_to_jsonable(
                        divergence.schedules[divergence.lane]
                    ),
                )
            worm_batch = random_worm_schedule_batch(subject.host, rng)
            worm_divergence = batched_wormhole_differential_check(
                subject.host, worm_batch
            )
            if worm_divergence is not None:
                return FuzzFailure(
                    kind,
                    params,
                    "batched_differential",
                    worm_divergence.describe(),
                )

        if "cold_start_differential" in self.checks:
            for check in cold_start_differential(subject, rng):
                if not check.passed:
                    return FuzzFailure(
                        kind, params, "cold_start_differential",
                        f"{check.name}: {check.detail}",
                    )

        if "flow" in self.checks:
            for check in max_flow_width_check(
                subject, rng, samples=self.flow_samples
            ):
                if not check.passed:
                    return FuzzFailure(
                        kind, params, "flow", f"{check.name}: {check.detail}"
                    )
        return None

    # -- shrinking ----------------------------------------------------------

    def shrink(self, failure: FuzzFailure, point_seed: str) -> FuzzFailure:
        """Greedily minimize a failing point, preserving its stage.

        Tries the construction's shrink candidates in order; any candidate
        that still fails at the same stage becomes the new point, until no
        candidate does (a local minimum).  Differential schedules shrink
        separately inside :func:`differential_check`.
        """
        construction = self.space.get(failure.kind)
        improved = True
        while improved:
            improved = False
            for candidate in construction.shrink(failure.params):
                smaller = self.check_point(failure.kind, candidate, point_seed)
                if smaller is not None and smaller.stage == failure.stage:
                    failure = smaller
                    improved = True
                    break
        return failure

    # -- the loop -----------------------------------------------------------

    def run(
        self,
        seeds: int = 200,
        budget_s: Optional[float] = None,
        kinds: Optional[Sequence[str]] = None,
        on_point=None,
    ) -> FuzzReport:
        """Fuzz up to ``seeds`` points within ``budget_s`` wall seconds.

        ``kinds`` restricts sampling to a subset of the space;
        ``on_point(index, kind, failure_or_none)`` is a progress hook.
        Every finding is shrunk and (when the fuzzer has a corpus) saved.
        """
        allowed = list(kinds) if kinds else list(self.space.kinds())
        for kind in allowed:
            self.space.get(kind)  # validate early
        report = FuzzReport()
        start = time.monotonic()
        for index in range(seeds):
            if budget_s is not None and time.monotonic() - start > budget_s:
                report.budget_exhausted = True
                break
            sample_rng = resolve_rng(f"{self.seed}:sample:{index}")
            point_seed = f"{self.seed}:point:{index}"
            kind = allowed[sample_rng.randrange(len(allowed))]
            params = self.space.get(kind).sample(sample_rng)
            report.points += 1
            report.per_kind[kind] = report.per_kind.get(kind, 0) + 1
            failure = self.check_point(kind, params, point_seed)
            if failure is not None:
                failure = self.shrink(failure, point_seed)
                entry = failure.to_entry(point_seed)
                if self.corpus is not None:
                    self.corpus.save(entry)
                report.failures.append(entry)
            if on_point is not None:
                on_point(index, kind, failure)
        report.elapsed_s = time.monotonic() - start
        return report

    # -- replay -------------------------------------------------------------

    def replay(self, entry: CorpusEntry) -> Optional[FuzzFailure]:
        """Re-run a corpus entry's point; None means it no longer fails.

        The stored point seed reproduces the original run's automorphism
        and schedule draws exactly.  For differential entries the saved
        minimal schedule is re-checked directly as well, so a reproducer
        stays meaningful even if the embedding-derived schedule drifts.
        """
        failure = self.check_point(entry.kind, dict(entry.params), entry.point_seed)
        if failure is not None:
            return failure
        if entry.stage == "differential" and entry.schedule:
            construction = self.space.get(entry.kind)
            try:
                subject = construction.build(dict(entry.params))
            except Exception as err:  # noqa: BLE001
                return FuzzFailure(
                    entry.kind, dict(entry.params), "build",
                    f"{type(err).__name__}: {err}",
                )
            divergence = differential_check(
                subject.host, schedule_from_jsonable(entry.schedule)
            )
            if divergence is not None:
                return FuzzFailure(
                    entry.kind,
                    dict(entry.params),
                    "differential",
                    divergence.describe(),
                    schedule=schedule_to_jsonable(divergence.schedule),
                )
        return None
