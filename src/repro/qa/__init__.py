"""repro.qa — fuzzing, metamorphic and differential QA for the reproduction.

The paper's theorems are checked mechanically by ``verify()`` and the
oracle registry; this package makes those checks *adversarial*:

* :mod:`repro.qa.constructions` — every ``core/`` builder as a seeded
  sampler with shrink candidates;
* :mod:`repro.qa.oracles` — the paper's claimed numbers registered as
  per-kind oracles;
* :mod:`repro.qa.metamorphic` — automorphism-invariance of verification
  reports and simulated metrics;
* :mod:`repro.qa.differential` — field-for-field agreement of the two
  simulator engines plus networkx max-flow width cross-checks;
* :mod:`repro.qa.fuzzer` — the sample/check/shrink loop;
* :mod:`repro.qa.corpus` — replayable on-disk reproducers.

CLI: ``repro qa {fuzz,diff,replay,corpus}``.
"""

from repro.qa.constructions import ConstructionSpace, FuzzConstruction, default_space
from repro.qa.corpus import Corpus, CorpusEntry, default_corpus_dir
from repro.qa.differential import (
    Divergence,
    WormDivergence,
    cold_start_differential,
    differential_check,
    max_flow_width_check,
    route_batch_differential,
    run_pair,
    run_wormhole_pair,
    verification_differential,
    wormhole_differential_check,
)
from repro.qa.fuzzer import Fuzzer, FuzzFailure, FuzzReport
from repro.qa.metamorphic import map_schedule, metamorphic_check
from repro.qa.schedules import (
    all_host_paths,
    embedding_schedule,
    random_schedule,
    random_worm_schedule,
    schedule_from_jsonable,
    schedule_to_jsonable,
    shrink_schedule,
    shrink_worm_schedule,
)

__all__ = [
    "ConstructionSpace",
    "FuzzConstruction",
    "default_space",
    "Corpus",
    "CorpusEntry",
    "default_corpus_dir",
    "Divergence",
    "WormDivergence",
    "cold_start_differential",
    "differential_check",
    "max_flow_width_check",
    "route_batch_differential",
    "run_pair",
    "run_wormhole_pair",
    "verification_differential",
    "wormhole_differential_check",
    "Fuzzer",
    "FuzzFailure",
    "FuzzReport",
    "map_schedule",
    "metamorphic_check",
    "all_host_paths",
    "embedding_schedule",
    "random_schedule",
    "random_worm_schedule",
    "schedule_from_jsonable",
    "schedule_to_jsonable",
    "shrink_schedule",
    "shrink_worm_schedule",
]
