"""Random packet schedules and schedule shrinking for the QA harness.

Two schedule sources feed the differential and metamorphic layers:

* :func:`random_schedule` — synthetic traffic between random node pairs of
  a hypercube, each packet on a (randomly rotated) dimension-order path;
* :func:`embedding_schedule` — a sample of the host paths an embedding
  actually provides, which is the traffic the paper's cost claims are
  about.

Schedules here are plain ``(path, release_step)`` tuples — the least
structured shape :func:`repro.routing.api.normalize_schedule` accepts — so
they JSON-round-trip through the corpus unchanged.

:func:`shrink_schedule` proposes strictly smaller schedules for failure
minimization: drop halves (delta-debugging style), drop single packets,
then normalize release steps to 1.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, List, Sequence, Tuple

__all__ = [
    "all_host_paths",
    "random_schedule",
    "random_worm_schedule",
    "embedding_schedule",
    "shrink_schedule",
    "shrink_worm_schedule",
    "random_schedule_batch",
    "random_worm_schedule_batch",
    "shrink_batch",
    "schedule_to_jsonable",
    "schedule_from_jsonable",
]

Schedule = List[Tuple[Tuple[int, ...], int]]
# wormhole traffic: (path, num_flits, release_step) per worm
WormSchedule = List[Tuple[Tuple[int, ...], int, int]]


def all_host_paths(emb: Any) -> List[Tuple[int, ...]]:
    """Every host path an embedding provides, flattened across styles.

    Multicopy embeddings contribute one path per guest edge per copy;
    multipath embeddings contribute every path of every bundle; classical
    embeddings contribute their single path per guest edge.
    """
    if hasattr(emb, "copies"):
        return [
            tuple(p) for c in emb.copies for p in c.edge_paths.values()
        ]
    paths: List[Tuple[int, ...]] = []
    for entry in emb.edge_paths.values():
        if entry and isinstance(entry[0], (tuple, list)):
            paths.extend(tuple(p) for p in entry)
        else:
            paths.append(tuple(entry))
    return paths


def _dimension_order_path(n: int, u: int, v: int, start: int) -> Tuple[int, ...]:
    """The e-cube path from ``u`` to ``v`` fixing dimensions from ``start``."""
    path = [u]
    cur = u
    for i in range(n):
        d = (start + i) % n
        if (cur ^ v) >> d & 1:
            cur ^= 1 << d
            path.append(cur)
    return tuple(path)


def random_schedule(
    host: Any,
    rng: random.Random,
    max_packets: int = 40,
    max_release: int = 5,
) -> Schedule:
    """Random traffic on ``host``: up to ``max_packets`` packets between
    random pairs, each on a randomly rotated dimension-order path with a
    random release step in ``[1, max_release]``.

    Rotating the dimension order varies which links collide without ever
    producing a non-hypercube hop, so every generated schedule is valid for
    both engines.
    """
    schedule: Schedule = []
    for _ in range(rng.randint(0, max_packets)):
        u = rng.randrange(host.num_nodes)
        v = rng.randrange(host.num_nodes)
        path = _dimension_order_path(host.n, u, v, rng.randrange(max(1, host.n)))
        schedule.append((path, rng.randint(1, max_release)))
    return schedule


def random_worm_schedule(
    host: Any,
    rng: random.Random,
    max_worms: int = 12,
    max_flits: int = 8,
    max_release: int = 4,
    rotate: bool = False,
) -> WormSchedule:
    """Random wormhole traffic: ``(path, num_flits, release_step)`` worms.

    With ``rotate=False`` (the default) every worm follows the plain
    dimension-order (e-cube) route, which is deadlock-free — the schedule
    exercises blocking, pipelining and buffer slack without tripping
    :class:`~repro.routing.wormhole.WormholeDeadlock`.  ``rotate=True``
    rotates each worm's dimension order randomly, which *can* produce
    cyclic link waits — useful for checking that two engines deadlock on
    exactly the same schedules.
    """
    schedule: WormSchedule = []
    for _ in range(rng.randint(1, max_worms)):
        u = rng.randrange(host.num_nodes)
        v = rng.randrange(host.num_nodes)
        while v == u:
            v = rng.randrange(host.num_nodes)
        start = rng.randrange(max(1, host.n)) if rotate else 0
        path = _dimension_order_path(host.n, u, v, start)
        schedule.append(
            (path, rng.randint(1, max_flits), rng.randint(1, max_release))
        )
    return schedule


def shrink_worm_schedule(schedule: Sequence[Tuple[Tuple[int, ...], int, int]]) -> Iterator[WormSchedule]:
    """Strictly smaller/simpler worm schedules, biggest cuts first.

    Same shape as :func:`shrink_schedule`: drop halves, drop single worms,
    then flatten every release step to 1 and every flit count toward 1.
    """
    items = [(tuple(p), int(m), int(r)) for p, m, r in schedule]
    n = len(items)
    if n > 1:
        half = n // 2
        yield items[half:]
        yield items[:half]
    if n > 1:
        for i in range(n):
            yield items[:i] + items[i + 1 :]
    if any(r != 1 for _, _, r in items):
        yield [(p, m, 1) for p, m, _ in items]
    if any(m > 1 for _, m, _ in items):
        yield [(p, max(1, m // 2), r) for p, m, r in items]


def random_schedule_batch(
    host: Any,
    rng: random.Random,
    max_lanes: int = 4,
    max_packets: int = 12,
    max_release: int = 5,
) -> List[Schedule]:
    """A batch of independent random schedules — one lane per simulation.

    The batched engines advance every lane in the same tensor step loop;
    the batched differential replays each lane through the scalar fast
    engine and demands identical results, so a batch is the natural fuzz
    subject for cross-lane interference bugs (a lane's packets leaking
    into another lane's arbitration).
    """
    lanes = rng.randint(1, max_lanes)
    return [
        random_schedule(
            host, rng, max_packets=max_packets, max_release=max_release
        )
        for _ in range(lanes)
    ]


def random_worm_schedule_batch(
    host: Any,
    rng: random.Random,
    max_lanes: int = 3,
    max_worms: int = 8,
    max_flits: int = 6,
) -> List[WormSchedule]:
    """A batch of independent worm schedules, some deadlock-prone.

    Roughly half the lanes draw rotated (cyclically dependent) routes so
    batched per-lane deadlock freezing gets exercised next to lanes that
    run to completion.
    """
    lanes = rng.randint(1, max_lanes)
    return [
        random_worm_schedule(
            host,
            rng,
            max_worms=max_worms,
            max_flits=max_flits,
            rotate=bool(rng.random() < 0.5),
        )
        for _ in range(lanes)
    ]


def shrink_batch(
    batch: Sequence[Sequence],
    shrink_lane: Callable[[Sequence], Iterator[List]],
) -> Iterator[List[List]]:
    """Strictly smaller/simpler batches, biggest cuts first.

    Mirrors :func:`shrink_schedule` one level up: drop half the lanes,
    drop single lanes, then shrink one lane at a time with the supplied
    per-lane shrinker (:func:`shrink_schedule` or
    :func:`shrink_worm_schedule`).  Lane order is preserved throughout so
    a diverging lane index stays meaningful while shrinking.
    """
    lanes = [list(lane) for lane in batch]
    n = len(lanes)
    if n > 1:
        half = n // 2
        yield lanes[half:]
        yield lanes[:half]
        for i in range(n):
            yield lanes[:i] + lanes[i + 1 :]
    for i in range(n):
        for candidate in shrink_lane(lanes[i]):
            yield lanes[:i] + [list(candidate)] + lanes[i + 1 :]


def embedding_schedule(
    emb: Any,
    rng: random.Random,
    max_packets: int = 60,
    max_release: int = 3,
) -> Schedule:
    """A random sample of the embedding's own host paths as a schedule.

    Zero-hop (co-located) paths are kept with small probability — they
    exercise the step-0 delivery corner without dominating the schedule.
    """
    paths = all_host_paths(emb)
    rng.shuffle(paths)
    schedule: Schedule = []
    for path in paths:
        if len(schedule) >= max_packets:
            break
        if len(path) == 1 and rng.random() > 0.1:
            continue
        schedule.append((tuple(path), rng.randint(1, max_release)))
    return schedule


def shrink_schedule(schedule: Sequence[Tuple[Tuple[int, ...], int]]) -> Iterator[Schedule]:
    """Strictly smaller (or simpler) candidate schedules, biggest cuts first.

    Order: drop the first/second half, drop each packet individually, then
    flatten every release step to 1 (same packets, simpler timing).  The
    caller keeps any candidate on which its failure still reproduces and
    re-shrinks from there, so greedy iteration reaches a local minimum.
    """
    items = [(tuple(p), int(r)) for p, r in schedule]
    n = len(items)
    if n > 1:
        half = n // 2
        yield items[half:]
        yield items[:half]
    if n > 0:
        for i in range(n):
            yield items[:i] + items[i + 1 :]
    if any(r != 1 for _, r in items):
        yield [(p, 1) for p, _ in items]


def schedule_to_jsonable(schedule: Sequence[Tuple[Tuple[int, ...], int]]) -> list:
    """A JSON-safe form of a ``(path, release)`` schedule."""
    return [[list(p), int(r)] for p, r in schedule]


def schedule_from_jsonable(data: Sequence) -> Schedule:
    """Invert :func:`schedule_to_jsonable` (lists back to tuples)."""
    return [(tuple(int(x) for x in p), int(r)) for p, r in data]
