"""The replayable failure corpus: every finding becomes a JSON reproducer.

A corpus is a directory of small JSON files, one per (shrunken) fuzzing
failure.  Each entry carries everything :func:`repro.qa.fuzzer.replay`
needs to reproduce the finding bit-for-bit: the construction kind, the
minimized parameter point, the derived RNG seed the checks ran under, the
failing stage, and (for differential findings) the minimized schedule.

Entry ids are content hashes, so re-finding the same minimal reproducer
is idempotent — a fuzz job that trips over a known bug a hundred times
writes one file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["CorpusEntry", "Corpus", "default_corpus_dir"]

_FORMAT_VERSION = 1


def default_corpus_dir() -> str:
    """``$REPRO_QA_CORPUS`` or ``~/.cache/repro/qa-corpus``."""
    return os.environ.get(
        "REPRO_QA_CORPUS",
        os.path.join(
            os.environ.get(
                "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache")
            ),
            "repro",
            "qa-corpus",
        ),
    )


@dataclass
class CorpusEntry:
    """One minimized reproducer.

    ``stage`` names the failing check layer (``build``, ``verify``,
    ``oracle``, ``metamorphic``, ``differential``, ``flow``); ``point_seed``
    is the exact RNG seed the per-point checks ran under, so a replay
    draws the same automorphisms and schedules the original run did.
    """

    kind: str
    params: Dict[str, Any]
    stage: str
    detail: str
    point_seed: str
    schedule: Optional[List] = None
    version: int = _FORMAT_VERSION
    entry_id: str = field(default="")

    def __post_init__(self):
        if not self.entry_id:
            digest = hashlib.sha256(
                json.dumps(
                    [self.kind, self.params, self.stage, self.schedule],
                    sort_keys=True,
                ).encode()
            ).hexdigest()
            self.entry_id = f"{self.stage}-{self.kind}-{digest[:12]}"

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        data = json.loads(text)
        if data.get("version", 0) > _FORMAT_VERSION:
            raise ValueError(
                f"corpus entry format v{data['version']} is newer than "
                f"this package understands (v{_FORMAT_VERSION})"
            )
        data.pop("version", None)
        return cls(**data)


class Corpus:
    """A directory of :class:`CorpusEntry` JSON files."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_corpus_dir()

    def _path(self, entry_id: str) -> str:
        return os.path.join(self.directory, f"{entry_id}.json")

    def save(self, entry: CorpusEntry) -> str:
        """Write ``entry`` (idempotent by content hash); returns its path."""
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(entry.entry_id)
        with open(path, "w") as fp:
            fp.write(entry.to_json())
        return path

    def entries(self) -> List[CorpusEntry]:
        """All saved reproducers, sorted by entry id."""
        if not os.path.isdir(self.directory):
            return []
        out = []
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".json"):
                with open(os.path.join(self.directory, name)) as fp:
                    out.append(CorpusEntry.from_json(fp.read()))
        return out

    def load(self, ref: str) -> CorpusEntry:
        """Load by entry id or by file path."""
        path = ref if os.path.sep in ref or ref.endswith(".json") else self._path(ref)
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"no corpus entry {ref!r} under {self.directory}"
            )
        with open(path) as fp:
            return CorpusEntry.from_json(fp.read())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            os.remove(self._path(entry.entry_id))
            removed += 1
        return removed

    def __len__(self) -> int:
        return len(self.entries())
