"""Per-construction oracles: the paper's numbers as fuzzing invariants.

``verify()`` certifies well-formedness; the oracles here certify that a
*built* construction achieves the quantities its theorem claims — width,
load, dilation, edge-congestion — at every fuzzed parameter point, not
just the points the hand-written tests pick.  Each oracle registers with
:func:`repro.core.verification.register_oracle` under the fuzz kind
(see :mod:`repro.qa.constructions`) and compares the *measured* metrics
of a non-strict :meth:`verify` report against the claim functions
(``theorem1_claim`` etc.) the constructions themselves export.

Importing this module performs the registrations (idempotently); the
fuzzer imports it, so ``repro qa fuzz`` always runs with the paper's
oracles armed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.core.verification import InvariantCheck, register_oracle

__all__ = ["claim_check"]


def claim_check(name: str, actual: Any, expected: Any, op: str = "==") -> InvariantCheck:
    """One measured-vs-claimed comparison as an :class:`InvariantCheck`."""
    if op == "==":
        ok = actual == expected
    elif op == "<=":
        ok = actual <= expected
    elif op == ">=":
        ok = actual >= expected
    else:
        raise ValueError(f"unknown op {op!r}")
    return InvariantCheck(
        name, ok, f"measured {actual} {op} claimed {expected}"
    )


def _metrics(subject: Any) -> Dict[str, Any]:
    return subject.verify(strict=False).metrics


@register_oracle("cycle")
def theorem1_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 1: the 2^n-cycle at load 1 with width floor(n/2), cost 3."""
    from repro.core import theorem1_claim

    claim = theorem1_claim(params["n"])
    m = _metrics(emb)
    # the theorem promises floor(n/2); the detour construction often finds
    # more (a+1 paths when 2k is not a power of two) — a guarantee, not equality
    yield claim_check("thm1:width", m["width"], claim["width"], ">=")
    yield claim_check("thm1:load", m["load"], claim["load"])
    # cost 3 comes from length-3 detour paths, so no path may be longer
    yield claim_check("thm1:dilation", m["dilation"], claim["cost"], "<=")


@register_oracle("cycle2")
def theorem2_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 2: the 2^{n+1}-cycle at load 2; width/cost depend on n mod 4."""
    from repro.core import theorem2_claim

    claim = theorem2_claim(params["n"], params.get("wide", False))
    m = _metrics(emb)
    yield claim_check("thm2:width", m["width"], claim["width"])
    yield claim_check("thm2:load", m["load"], claim["load"], "<=")
    yield claim_check("thm2:dilation", m["dilation"], claim["cost"], "<=")


@register_oracle("grid")
def corollary1_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Corollaries 1/2: grids and tori; the builder records its exact claim."""
    import math

    info = emb.info
    m = _metrics(emb)
    yield claim_check("cor1:width", m["width"], info["width"])
    yield claim_check("cor1:load", m["load"], info["load"])
    yield claim_check("cor1:dilation", m["dilation"], info["cost"], "<=")
    # the builder floors axis bits at 2 (a 2-node axis cycle would be
    # degenerate), so sides < 4 pad each axis beyond the side the paper's
    # expansion bound was stated for; loosen the k+1 bound by exactly that
    # documented padding and by nothing else
    claimed_bits = max(1, math.ceil(math.log2(max(2, max(params["dims"])))))
    pad_bits = max(0, info["axis_bits"] - claimed_bits)
    bound = info["claim"]["expansion_upper"] * (1 << (info["k"] * pad_bits))
    yield claim_check("cor1:expansion", m["expansion"], bound, "<=")


@register_oracle("ccc")
def theorem3_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 3: n CCC copies, edge-congestion 2, dilation 1 (even n)."""
    from repro.core import theorem3_claim

    claim = theorem3_claim(params["n"])
    m = _metrics(emb)
    yield claim_check("thm3:copies", m["k"], claim["copies"])
    yield claim_check("thm3:edge-congestion", m["edge_congestion"], claim["edge_congestion"], "<=")
    yield claim_check("thm3:dilation", m["dilation"], claim["dilation"])


@register_oracle("graycode")
def graycode_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """The gray-code baseline is a perfect single-track cycle embedding."""
    m = _metrics(emb)
    yield claim_check("gray:load", m["load"], 1)
    yield claim_check("gray:dilation", m["dilation"], 1)
    yield claim_check("gray:congestion", m["congestion"], 1)


@register_oracle("cycle-multicopy")
def lemma1_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Lemma 1: 2*floor(n/2) edge-disjoint Hamiltonian cycle copies."""
    m = _metrics(emb)
    yield claim_check("lem1:copies", m["k"], 2 * (params["n"] // 2))
    yield claim_check("lem1:dilation", m["dilation"], 1)
    yield claim_check("lem1:edge-congestion", m["edge_congestion"], 1)


@register_oracle("large-cycle")
def corollary3_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Corollary 3 (large copy): dilation-1, congestion-1, balanced load."""
    m = _metrics(emb)
    yield claim_check("cor3:dilation", m["dilation"], 1)
    yield claim_check("cor3:congestion", m["congestion"], 1)
    expected_load = -(-emb.guest.num_vertices // emb.host.num_nodes)
    yield claim_check("cor3:load", m["load"], expected_load)


@register_oracle("tree")
def theorem5_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 5: the X-tree at the builder's recorded constant load.

    The builder records the load it achieved (the theorem only promises
    O(1)); the measured per-edge width can sit below ``info["width"]``
    because that counts X-containers, not edge-disjoint paths per tree
    edge — so width is checked as a floor, not equality.
    """
    info = emb.info
    m = _metrics(emb)
    yield claim_check("thm5:load", m["load"], info["load"])
    yield claim_check("thm5:width", m["width"], 1, ">=")
    # every container path stays within the recursive construction's
    # 2n-step budget
    yield claim_check("thm5:dilation", m["dilation"], 2 * info["n"], "<=")


@register_oracle("butterfly-multicopy")
def theorem4_bf_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 4 (butterflies): m copies at dilation 2, bounded congestion."""
    m = _metrics(emb)
    yield claim_check("thm4bf:copies", m["k"], params["m"])
    yield claim_check("thm4bf:dilation", m["dilation"], 2, "<=")
    # doubling every butterfly edge (undirected) doubles the worst case
    bound = 8 if params.get("undirected") else 4
    yield claim_check("thm4bf:edge-congestion", m["edge_congestion"], bound, "<=")
    yield claim_check("thm4bf:node-load", m["node_load"], params["m"])


@register_oracle("butterfly-multipath")
def theorem6_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 6: width-(n/2) butterfly containers within the cut-dilation cap."""
    info = emb.info
    m = _metrics(emb)
    yield claim_check("thm6:width", m["width"], info["width"])
    yield claim_check("thm6:load", m["load"], 2, "<=")
    yield claim_check(
        "thm6:cut-dilation",
        info["cut_dilation"],
        info["claim"]["cut_dilation_upper"],
        "<=",
    )
    yield claim_check(
        "thm6:dilation", m["dilation"], info["claim"]["cut_dilation_upper"], "<="
    )


@register_oracle("grid-multicopy")
def grid_multicopy_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 4 (grids): a = log2(side) perfect copies per dimension split."""
    import math

    m = _metrics(emb)
    side = max(2, max(params["dims"]))
    yield claim_check("thm4grid:copies", m["k"], int(math.log2(side)))
    yield claim_check("thm4grid:dilation", m["dilation"], 1)
    yield claim_check("thm4grid:edge-congestion", m["edge_congestion"], 1)


@register_oracle("cbt-multicopy")
def cbt_multicopy_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 4 (complete binary trees): m copies, constant congestion."""
    m = _metrics(emb)
    yield claim_check("thm4cbt:copies", m["k"], params["m"])
    yield claim_check("thm4cbt:edge-congestion", m["edge_congestion"], 6, "<=")
    yield claim_check("thm4cbt:dilation", m["dilation"], 2 * params["m"], "<=")


@register_oracle("arbitrary-tree")
def arbitrary_tree_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 5 corollary: any tree routes at load <= 2 through the X-tree."""
    m = _metrics(emb)
    yield claim_check("arb:load", m["load"], 2, "<=")
    if params["vertices"] >= 2:
        yield claim_check("arb:width", m["width"], 1, ">=")


@register_oracle("cross-product")
def cross_product_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Lemma 2: induced product keeps the claimed width within cost c*delta."""
    info = emb.info
    m = _metrics(emb)
    yield claim_check("lem2:width", m["width"], info["claim"]["width"])
    yield claim_check(
        "lem2:congestion", m["congestion"], info["claim"]["cost_upper"], "<="
    )


@register_oracle("ccc-single")
def ccc_single_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Theorem 3 (one copy): load-1 CCC; odd n pays one correction hop."""
    m = _metrics(emb)
    yield claim_check("ccc1:load", m["load"], 1)
    yield claim_check("ccc1:congestion", m["congestion"], 1)
    yield claim_check("ccc1:dilation", m["dilation"], 1 if params["n"] % 2 == 0 else 2)


@register_oracle("large-ccc")
def large_ccc_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Corollary 3 (CCC): an n-times-larger CCC at perfect dilation/congestion."""
    m = _metrics(emb)
    yield claim_check("cor3ccc:load", m["load"], params["n"])
    yield claim_check("cor3ccc:dilation", m["dilation"], 1)
    yield claim_check("cor3ccc:congestion", m["congestion"], 1)


@register_oracle("large-butterfly")
def large_butterfly_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Corollary 3 (butterfly): n-times-larger butterfly, dilation 1."""
    m = _metrics(emb)
    yield claim_check("cor3bf:load", m["load"], params["n"])
    yield claim_check("cor3bf:dilation", m["dilation"], 1)
    yield claim_check("cor3bf:congestion", m["congestion"], 1)


@register_oracle("large-fft")
def large_fft_oracle(emb: Any, params: Dict[str, Any]) -> Iterator[InvariantCheck]:
    """Corollary 3 (FFT): the (n+1)-level FFT network costs one extra level."""
    m = _metrics(emb)
    yield claim_check("cor3fft:load", m["load"], params["n"] + 1)
    yield claim_check("cor3fft:dilation", m["dilation"], 1)
    yield claim_check("cor3fft:congestion", m["congestion"], 1)


# -- scenario oracles -------------------------------------------------------
#
# Traffic generators have no theorem claim; their oracles certify the
# *pattern* instead: the schedule replays byte-identical from its seed,
# every path is the e-cube path of its endpoints, destinations follow the
# closed form (bit reversal, rotation, offset, sink...), and the injection
# count respects the load knob.  Determinism lives here and not in
# ScenarioSubject.verify() on purpose: the metamorphic stage compares
# verify reports between a base subject and its relabeled image, and an
# image cannot be regenerated from a seed.


def _scenario_common(
    tag: str, subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    from repro.routing.permutation import dimension_order_path
    from repro.scenarios.subject import scenario_subject

    rebuilt = scenario_subject(
        subject.name,
        params["n"],
        load=params["load"],
        horizon=params["horizon"],
        seed=params["scenario_seed"],
    )
    yield claim_check(f"{tag}:deterministic", subject.digest(), rebuilt.digest())
    ecube = all(
        path
        == tuple(dimension_order_path(params["n"], path[0], path[-1]))
        for path, _release in subject.schedule
    )
    yield InvariantCheck(
        f"{tag}:ecube-paths", ecube, "every path is the dimension-order path"
    )
    horizon = params["horizon"]
    yield InvariantCheck(
        f"{tag}:release-window",
        all(1 <= r <= horizon for _, r in subject.schedule),
        f"releases within [1, {horizon}]",
    )
    cap = subject.host.num_nodes * horizon * (int(params["load"]) + 1)
    yield claim_check(f"{tag}:injection-cap", len(subject.schedule), cap, "<=")


def _scenario_pairs(subject: Any) -> Iterator[Any]:
    for path, _release in subject.schedule:
        yield path[0], path[-1]


@register_oracle("scenario:bit-reversal")
def scenario_bit_reversal_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """Every packet targets the bit-reversed address of its source."""
    from repro.routing.permutation import bit_reversal_permutation

    yield from _scenario_common("scn:bitrev", subject, params)
    table = bit_reversal_permutation(params["n"])
    yield InvariantCheck(
        "scn:bitrev:pattern",
        all(dst == table[src] for src, dst in _scenario_pairs(subject)),
        "dst == reverse(src) for every packet",
    )


@register_oracle("scenario:transpose")
def scenario_transpose_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """Every packet's destination is its source rotated by n//2 bits."""
    yield from _scenario_common("scn:transpose", subject, params)
    n = params["n"]
    rot, mask = n // 2, (1 << n) - 1
    yield InvariantCheck(
        "scn:transpose:pattern",
        all(
            dst == (((src << rot) | (src >> (n - rot))) & mask)
            for src, dst in _scenario_pairs(subject)
        ),
        "dst == rotate(src, n//2) for every packet",
    )


@register_oracle("scenario:shuffle")
def scenario_shuffle_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """Every packet's destination is its source rotated left by one bit."""
    yield from _scenario_common("scn:shuffle", subject, params)
    n = params["n"]
    mask = (1 << n) - 1
    yield InvariantCheck(
        "scn:shuffle:pattern",
        all(
            dst == (((src << 1) | (src >> (n - 1))) & mask)
            for src, dst in _scenario_pairs(subject)
        ),
        "dst == rotate-left-1(src) for every packet",
    )


@register_oracle("scenario:tornado")
def scenario_tornado_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """Every packet's destination sits at the tornado offset."""
    yield from _scenario_common("scn:tornado", subject, params)
    size = 1 << params["n"]
    offset = size // 2 - 1
    yield InvariantCheck(
        "scn:tornado:pattern",
        all(
            dst == (src + offset) % size
            for src, dst in _scenario_pairs(subject)
        ),
        f"dst == src + {offset} mod {size} for every packet",
    )


@register_oracle("scenario:hot-spot")
def scenario_hot_spot_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """The hot node receives at least half its configured traffic share.

    Statistical, so gated: with hot_fraction 0.25 and >= 256 packets a
    share below 1/8 has probability < e^-20 (Chernoff) — far rarer than a
    real regression; smaller samples skip the check.
    """
    yield from _scenario_common("scn:hotspot", subject, params)
    total = len(subject.schedule)
    if total >= 256:
        hot_share = (
            sum(1 for _src, dst in _scenario_pairs(subject) if dst == 0) / total
        )
        yield claim_check("scn:hotspot:share", hot_share, 0.125, ">=")


@register_oracle("scenario:many-to-one")
def scenario_many_to_one_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """Every packet drains into the single sink."""
    yield from _scenario_common("scn:incast", subject, params)
    yield InvariantCheck(
        "scn:incast:pattern",
        all(dst == 0 for _src, dst in _scenario_pairs(subject)),
        "every destination is the sink (node 0)",
    )


@register_oracle("scenario:poisson")
def scenario_poisson_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """Open-loop uniform traffic: only the common structural checks apply."""
    yield from _scenario_common("scn:poisson", subject, params)


@register_oracle("scenario:permutation")
def scenario_permutation_oracle(
    subject: Any, params: Dict[str, Any]
) -> Iterator[InvariantCheck]:
    """One fixed permutation per run: the source->destination map is a
    consistent injective function across the whole schedule."""
    yield from _scenario_common("scn:perm", subject, params)
    mapping: Dict[int, int] = {}
    consistent = True
    for src, dst in _scenario_pairs(subject):
        if mapping.setdefault(src, dst) != dst:
            consistent = False
            break
    injective = len(set(mapping.values())) == len(mapping)
    yield InvariantCheck(
        "scn:perm:function", consistent, "each source keeps one destination"
    )
    yield InvariantCheck(
        "scn:perm:injective", injective, "destinations do not collide"
    )
