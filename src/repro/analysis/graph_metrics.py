"""Structural metrics of guests and hosts (the constant-pinout discussion).

Section 1 compares networks under a constant pinout: N nodes as a hypercube
(many narrow channels) versus a grid (few wide ones), arguing the narrow
hypercube can simulate the wide grid at O(1) slowdown while retaining its
low diameter.  These helpers compute the quantities that comparison turns
on — diameter, average distance, bisection width — for the graphs in this
package (via networkx for the generic cases, closed forms for ``Q_n``).
"""

from __future__ import annotations

from typing import Dict

from repro.networks.base import GuestGraph

__all__ = [
    "hypercube_metrics",
    "guest_metrics",
    "pinout_comparison",
]


def hypercube_metrics(n: int) -> Dict[str, float]:
    """Closed-form structural metrics of ``Q_n``."""
    return {
        "nodes": 1 << n,
        "directed_links": n * (1 << n),
        "degree": n,
        "diameter": n,
        "avg_distance": n / 2,
        "bisection_links": 1 << (n - 1) if n else 0,
    }


def guest_metrics(guest: GuestGraph) -> Dict[str, float]:
    """Measured metrics of a guest graph (undirected view, networkx)."""
    import networkx as nx

    g = guest.to_networkx().to_undirected()
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    dists = [
        d for src, row in lengths.items() for t, d in row.items() if t != src
    ]
    return {
        "nodes": g.number_of_nodes(),
        "links": g.number_of_edges(),
        "degree": max(dict(g.degree).values()),
        "diameter": max(dists) if dists else 0,
        "avg_distance": sum(dists) / len(dists) if dists else 0.0,
    }


def pinout_comparison(n: int, channel_pins: int = 64) -> Dict[str, Dict[str, float]]:
    """Section 1's constant-pinout trade-off, quantified for ``2^n`` nodes.

    With ``W = channel_pins`` pins per node: the hypercube splits them over
    ``n`` channels of width ``W/n``; the 2-D torus keeps 4 channels of width
    ``W/4``.  Rows report channel width, diameter, and the product
    (diameter x transfer slowdown) that the multiple-path results equalize.
    """
    if n % 2:
        raise ValueError("need even n for a square torus of equal size")
    side = 1 << (n // 2)
    cube_width = channel_pins / n
    grid_width = channel_pins / 4
    return {
        "hypercube": {
            "channels": n,
            "channel_width": cube_width,
            "diameter": n,
            "wide_message_slowdown": grid_width / cube_width,
        },
        "torus": {
            "channels": 4,
            "channel_width": grid_width,
            "diameter": 2 * (side // 2),
            "wide_message_slowdown": 1.0,
        },
    }
