"""Runnable reproductions of the paper's Figures 1-4.

The paper's figures are diagrams, not data plots; these functions rebuild
each one as an ASCII rendering *derived from the actual constructions*, so
they double as sanity checks (e.g. Figure 1's edge labels come from the
real gray code, Figure 4's paths from the real Theorem 1 embedding).
"""

from __future__ import annotations


from repro.core.cycle_multipath import embed_cycle_load1
from repro.hypercube.graph import Hypercube
from repro.hypercube.graycode import gray_node_sequence, transitions
from repro.hypercube.moments import moment

__all__ = ["figure1", "figure2", "figure3", "figure4"]


def figure1(n: int = 3) -> str:
    """Figure 1: the binary reflected gray code embedding of the cycle.

    Each cycle edge is annotated with the hypercube dimension of its image
    ("The label on an edge (u, v) corresponds to the dimension of the image
    of (u, v) in the hypercube").
    """
    seq = gray_node_sequence(n)
    dims = transitions(n)
    lines = [f"Figure 1: gray code embedding of the {2**n}-cycle in Q_{n}"]
    for i, d in enumerate(dims):
        u, v = seq[i], seq[(i + 1) % len(seq)]
        lines.append(f"  {u:0{n}b} --dim {d}--> {v:0{n}b}")
    per_dim = {d: dims.count(d) for d in sorted(set(dims))}
    lines.append(f"  dimension usage: {per_dim}  (dimension 0 carries half "
                 "of all edges -- the bottleneck of Section 2)")
    return "\n".join(lines)


def figure2(n: int = 11) -> str:
    """Figure 2: dividing addresses into three fields (Theorem 1).

    ``n = 4k + r``: the high 2k bits name a grid row; the low ``2k + r``
    bits name the column, itself split into position (2k bits) and block
    (r bits).
    """
    k, r = divmod(n, 4)
    cells = [("Row", f"{2 * k} bits"), ("Position", f"{2 * k} bits"),
             ("Block", f"{r} bits")]
    widths = [max(len(a), len(b)) for a, b in cells]
    top = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    names = "|" + "|".join(f" {a.center(w)} " for (a, _), w in zip(cells, widths)) + "|"
    bits = "|" + "|".join(f" {b.center(w)} " for (_, b), w in zip(cells, widths)) + "|"
    brace_width = widths[1] + widths[2] + 5
    brace = " " * (widths[0] + 3) + "'" + " column name ".center(brace_width, "-") + "'"
    return "\n".join([
        f"Figure 2: address fields of Q_{n} (n = 4k+r with k={k}, r={r})",
        top, names, bits, top, brace,
    ])


def figure3(n: int = 4) -> str:
    """Figure 3: forming the length-2^n cycle C from column special cycles.

    Lists, in gray-code visiting order, each column's special cycle number
    (the moment of its position) and the rows at which C enters and exits —
    exiting at pred(entry) after traversing all rows.
    """
    emb = embed_cycle_load1(n)
    info = emb.info
    q, p = info["q"], info["p"]
    nodes = [emb.vertex_map[i] for i in range(emb.guest.num_vertices)]
    size_col = 1 << p
    lines = [
        f"Figure 3: threading C through column special cycles (Q_{n}: "
        f"{1 << q} columns of {size_col} rows)"
    ]
    for c in range(1 << q):
        seg = nodes[c * size_col : (c + 1) * size_col]
        col = seg[0] & ((1 << q) - 1)
        entry, exit_ = seg[0] >> q, seg[-1] >> q
        label = moment((col >> info["r"]) & ((1 << info["a"]) - 1))
        lines.append(
            f"  column {col:0{q}b}: special cycle #{label}, "
            f"enter row {entry:0{p}b}, exit row {exit_:0{p}b}"
        )
    lines.append("  (C closes at row 0 -- certified during construction)")
    return "\n".join(lines)


def figure4(n: int = 8, edge_index: int = 0) -> str:
    """Figure 4: the length-three paths widening one edge of C.

    Shows a real cycle edge's direct image plus its detour paths, which
    cross into a neighboring column, follow the projection, and cross back.
    """
    emb = embed_cycle_load1(n)
    host: Hypercube = emb.host
    edge = (edge_index, (edge_index + 1) % emb.guest.num_vertices)
    paths = emb.edge_paths[edge]
    hu, hv = emb.vertex_map[edge[0]], emb.vertex_map[edge[1]]
    lines = [
        f"Figure 4: the width-{len(paths)} image of cycle edge {edge} "
        f"({hu:0{n}b} -> {hv:0{n}b}, dimension "
        f"{host.dimension_of(hu, hv)}) in Q_{n}"
    ]
    for i, path in enumerate(paths):
        hops = " -> ".join(f"{x:0{n}b}" for x in path)
        kind = "direct" if len(path) == 2 else (
            f"detour via dim {host.dimension_of(path[0], path[1])}"
        )
        lines.append(f"  path {i} ({kind}): {hops}")
    return "\n".join(lines)
