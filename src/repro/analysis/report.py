"""Structured metric reports for embeddings.

Quantifies the Section 8.2 trade-off discussion: load (time-slicing),
dilation (forwarding), congestion, width (parallel throughput), expansion,
and link utilization, for any of the three embedding styles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.embedding import Embedding, MultiCopyEmbedding, MultiPathEmbedding

__all__ = [
    "EmbeddingReport",
    "report",
    "compare_embeddings",
    "congestion_histogram",
    "dimension_usage",
    "link_utilization",
]

AnyEmbedding = Union[Embedding, MultiPathEmbedding, MultiCopyEmbedding]


@dataclass
class EmbeddingReport:
    """A snapshot of every standard metric of an embedding."""

    name: str
    style: str
    guest_vertices: int
    host_dim: int
    load: int
    dilation: int
    congestion: int
    width: Optional[int] = None
    copies: Optional[int] = None
    expansion: Optional[float] = None
    links_used: int = 0
    links_total: int = 0

    @property
    def link_utilization(self) -> float:
        return self.links_used / self.links_total if self.links_total else 0.0

    def rows(self) -> List[tuple]:
        out = [
            ("style", self.style),
            ("guest vertices", self.guest_vertices),
            ("host", f"Q_{self.host_dim}"),
            ("load", self.load),
            ("dilation", self.dilation),
            ("congestion", self.congestion),
        ]
        if self.width is not None:
            out.append(("width", self.width))
        if self.copies is not None:
            out.append(("copies", self.copies))
        if self.expansion is not None:
            out.append(("expansion", round(self.expansion, 3)))
        out.append(("links used", f"{self.links_used}/{self.links_total} "
                                  f"({self.link_utilization:.0%})"))
        return out

    def __str__(self) -> str:
        body = "\n".join(f"  {k:<16}{v}" for k, v in self.rows())
        return f"EmbeddingReport({self.name})\n{body}"


def _links_used(emb: AnyEmbedding) -> int:
    if isinstance(emb, MultiCopyEmbedding):
        used = set()
        for copy in emb.copies:
            used.update(copy.edge_congestion_counts())
        return len(used)
    return len(emb.edge_congestion_counts())


def report(emb: AnyEmbedding, name: str = "") -> EmbeddingReport:
    """Build an :class:`EmbeddingReport` for any embedding style."""
    name = name or getattr(emb, "name", "") or type(emb).__name__
    if isinstance(emb, MultiCopyEmbedding):
        return EmbeddingReport(
            name=name,
            style="multiple-copy",
            guest_vertices=emb.guest.num_vertices,
            host_dim=emb.host.n,
            load=emb.node_load,
            dilation=emb.dilation,
            congestion=emb.edge_congestion,
            copies=emb.k,
            links_used=_links_used(emb),
            links_total=emb.host.num_edges,
        )
    if isinstance(emb, MultiPathEmbedding):
        return EmbeddingReport(
            name=name,
            style="multiple-path",
            guest_vertices=emb.guest.num_vertices,
            host_dim=emb.host.n,
            load=emb.load,
            dilation=emb.dilation,
            congestion=emb.congestion,
            width=emb.width,
            expansion=emb.expansion,
            links_used=_links_used(emb),
            links_total=emb.host.num_edges,
        )
    return EmbeddingReport(
        name=name,
        style="single-path",
        guest_vertices=emb.guest.num_vertices,
        host_dim=emb.host.n,
        load=emb.load,
        dilation=emb.dilation,
        congestion=emb.congestion,
        expansion=emb.expansion,
        links_used=_links_used(emb),
        links_total=emb.host.num_edges,
    )


def compare_embeddings(embeddings: Dict[str, AnyEmbedding]) -> str:
    """Render a side-by-side comparison table (Section 8.2 style)."""
    reports = {name: report(e, name) for name, e in embeddings.items()}
    metrics = ["style", "load", "dilation", "congestion", "width", "copies",
               "links used"]
    lines = []
    name_w = max(len(n) for n in reports)
    header = "metric".ljust(14) + "  ".join(n.ljust(max(name_w, 14)) for n in reports)
    lines.append(header)
    lines.append("-" * len(header))
    for metric in metrics:
        row = [metric.ljust(14)]
        for rep in reports.values():
            value = dict(rep.rows()).get(
                metric if metric != "links used" else "links used", "-"
            )
            row.append(str(value).ljust(max(name_w, 14)))
        lines.append("  ".join(row))
    return "\n".join(lines)


def congestion_histogram(emb: AnyEmbedding) -> Dict[int, int]:
    """Histogram: congestion value -> number of directed host links.

    Links carrying nothing are reported under key 0.
    """
    if isinstance(emb, MultiCopyEmbedding):
        counts: Counter = Counter()
        for copy in emb.copies:
            counts.update(copy.edge_congestion_counts())
    else:
        counts = emb.edge_congestion_counts()
    hist = Counter(counts.values())
    hist[0] = emb.host.num_edges - len(counts)
    return dict(sorted(hist.items()))


def link_utilization(emb: AnyEmbedding) -> float:
    """Fraction of directed host links carrying at least one image edge."""
    return _links_used(emb) / emb.host.num_edges


def dimension_usage(emb: AnyEmbedding) -> Dict[int, int]:
    """Image-edge count per hypercube dimension.

    Quantifies Section 2's bottleneck story: the gray-code cycle piles half
    its edges onto dimension 0, while Theorem 1's moment-spread detours use
    all dimensions nearly uniformly (see bench E1/E3).
    """
    host = emb.host
    if isinstance(emb, MultiCopyEmbedding):
        counts = Counter()
        for copy in emb.copies:
            for eid, c in copy.edge_congestion_counts().items():
                counts[eid] += c
    else:
        counts = emb.edge_congestion_counts()
    by_dim: Dict[int, int] = {d: 0 for d in range(host.n)}
    for eid, c in counts.items():
        by_dim[eid % host.n] += c
    return by_dim
