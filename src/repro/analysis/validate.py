"""One-call validation: re-certify every theorem claim programmatically.

``validate_claims()`` rebuilds each paper construction at a representative
size and checks its claim the same way the benches do — useful as a smoke
test after environment changes (``python -m repro validate``) and as the
programmatic answer to "does this install actually reproduce the paper?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ClaimResult", "validate_claims"]


@dataclass
class ClaimResult:
    claim: str
    ok: bool
    detail: str = ""


def _checks() -> List[tuple]:
    def lemma1():
        from repro.hypercube.hamiltonian import hamiltonian_decomposition

        dec = hamiltonian_decomposition(8)
        return len(dec.cycles) == 4, f"{len(dec.cycles)} cycles"

    def theorem1():
        from repro.core import embed_cycle_load1
        from repro.routing.schedule import multipath_packet_schedule

        emb = embed_cycle_load1(8)
        report = emb.verify(strict=False)
        sched = multipath_packet_schedule(emb, extra_direct_at=3)
        sched.verify()
        width = report.metrics.get("width", 0)
        return (
            report.ok and width >= 4 and sched.makespan == 3,
            f"width {width}, cost {sched.makespan}",
        )

    def theorem2():
        from repro.core import embed_cycle_load2
        from repro.routing.schedule import multipath_packet_schedule

        emb = embed_cycle_load2(8)
        report = emb.verify(strict=False)
        sched = multipath_packet_schedule(emb)
        sched.verify()
        busy = sched.busy_link_fraction()
        width = report.metrics.get("width", 0)
        return (
            report.ok and width == 4 and sched.makespan == 3 and busy == 1.0,
            f"width {width}, cost {sched.makespan}, busy {busy:.2f}",
        )

    def lemma3():
        from repro.core import max_width_for_cost3, verify_no_two_hop_paths

        return (
            verify_no_two_hop_paths(4) and max_width_for_cost3(8) == 4,
            "path census + counting bound",
        )

    def corollary1():
        from repro.core import embed_grid_multipath
        from repro.routing.schedule import multipath_packet_schedule

        emb = embed_grid_multipath((16, 16), torus=True)
        report = emb.verify(strict=False)
        sched = multipath_packet_schedule(emb)
        sched.verify()
        return (
            report.ok and sched.makespan == 6,
            f"bidirectional phase {sched.makespan}",
        )

    def theorem3():
        from repro.core import ccc_multicopy_embedding

        mc = ccc_multicopy_embedding(4)
        report = mc.verify(strict=False)
        congestion = report.metrics.get("edge_congestion")
        return (
            report.ok
            and report.metrics.get("k") == 4
            and report.metrics.get("dilation") == 1
            and congestion == 2,
            f"{report.metrics.get('k')} copies, congestion {congestion}",
        )

    def theorem4():
        from repro.core import (
            cycle_multicopy_embedding,
            induced_cross_product_embedding,
        )
        from repro.routing.schedule import measured_multipath_cost

        x = induced_cross_product_embedding(cycle_multicopy_embedding(4))
        report = x.verify(strict=False)
        cost = measured_multipath_cost(x)
        width = report.metrics.get("width", 0)
        return (
            report.ok and width == 4 and cost == 3,
            f"width {width}, cost {cost}",
        )

    def theorem5():
        from repro.core import theorem5_embedding

        emb = theorem5_embedding(2)
        emb.verify()
        widths = [
            len(ps) for ps in emb.edge_paths.values() if len(ps[0]) > 1
        ]
        return (
            min(widths) == 3 and emb.info["load"] <= 4,
            f"width {min(widths)}, load {emb.info['load']}",
        )

    def corollary3():
        from repro.core import large_cycle_embedding

        emb = large_cycle_embedding(6)
        report = emb.verify(strict=False)
        return (
            report.ok
            and report.metrics.get("dilation") == 1
            and report.metrics.get("congestion") == 1,
            "dilation 1, congestion 1",
        )

    def ida():
        from repro.fault.ida import disperse, reconstruct

        msg = b"routing multiple paths"
        pieces = disperse(msg, 5, 3)
        return reconstruct(pieces[2:], 5, 3) == msg, "5 pieces, any 3 rebuild"

    def instrumentation():
        # a simulated one-packet-per-path delivery must measure exactly the
        # structural congestion the embedding certifies: the recorder's
        # per-link transmission counts equal edge_congestion_counts()
        from repro.core import embed_cycle_load1
        from repro.obs import LinkRecorder
        from repro.routing.simulator import StoreForwardSimulator

        emb = embed_cycle_load1(8)
        schedule = [p for paths in emb.edge_paths.values() for p in paths]
        rec = LinkRecorder(host=emb.host)
        res = StoreForwardSimulator(emb.host).run(schedule, recorder=rec)
        counts_match = rec.link_congestion_counts() == dict(
            emb.edge_congestion_counts()
        )
        arrivals = sum(rec.step_histogram().values())
        return (
            counts_match
            and rec.congestion == emb.congestion
            and arrivals == res.delivered == len(schedule)
            and rec.makespan == res.makespan,
            f"recorded congestion {rec.congestion} == structural "
            f"{emb.congestion}, {arrivals} arrivals",
        )

    return [
        ("Lemma 1 (Hamiltonian decomposition)", lemma1),
        ("Theorem 1 (load-1 cycle, cost 3)", theorem1),
        ("Theorem 2 (load-2 cycle, full links)", theorem2),
        ("Lemma 3 (lower bounds)", lemma3),
        ("Corollary 1 (grids)", corollary1),
        ("Theorem 3 (CCC copies)", theorem3),
        ("Theorem 4 (general transform)", theorem4),
        ("Theorem 5 (binary trees)", theorem5),
        ("Corollary 3 (large cycle)", corollary3),
        ("Section 1 (IDA)", ida),
        ("Instrumentation (measured == structural congestion)", instrumentation),
    ]


def validate_claims() -> List[ClaimResult]:
    """Run every claim check; returns one :class:`ClaimResult` per claim."""
    results = []
    for name, check in _checks():
        try:
            ok, detail = check()
            results.append(ClaimResult(name, bool(ok), detail))
        except Exception as err:  # noqa: BLE001 - report, don't crash
            results.append(ClaimResult(name, False, f"error: {err}"))
    return results
