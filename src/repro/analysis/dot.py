"""Graphviz DOT export for embeddings (inspection/debugging aid).

Renders the host hypercube with the embedding's traffic painted on: edge
color encodes congestion, and an optional guest edge's path bundle is
highlighted — handy for eyeballing why a construction behaves the way it
does (``dot -Tsvg`` or any Graphviz viewer renders the output).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.core.embedding import Embedding, MultiPathEmbedding

__all__ = ["embedding_to_dot"]

_PALETTE = ["gray80", "black", "blue", "orange", "red", "purple"]


def embedding_to_dot(
    emb: Union[Embedding, MultiPathEmbedding],
    highlight_edge: Optional[Tuple] = None,
) -> str:
    """Render the embedding as a Graphviz digraph string.

    Host nodes are labeled with their binary address; used links are colored
    by congestion (gray = idle through the palette to purple = 5+).  With
    ``highlight_edge`` (a guest edge), that edge's path(s) are drawn bold
    red with per-path style annotations.
    """
    host = emb.host
    counts = emb.edge_congestion_counts()
    lines = [
        "digraph embedding {",
        f'  label="{emb.name or "embedding"} in Q_{host.n}";',
        "  node [shape=circle, fontsize=10];",
    ]
    for v in range(host.num_nodes):
        lines.append(f'  n{v} [label="{v:0{host.n}b}"];')

    highlight_ids = set()
    if highlight_edge is not None:
        if highlight_edge not in emb.edge_paths:
            raise KeyError(f"guest edge {highlight_edge!r} not in embedding")
        paths = emb.edge_paths[highlight_edge]
        if not isinstance(paths[0], tuple):
            paths = (paths,)
        for path in paths:
            for a, b in zip(path, path[1:]):
                highlight_ids.add(host.edge_id(a, b))

    for u in range(host.num_nodes):
        for d in range(host.n):
            v = u ^ (1 << d)
            eid = u * host.n + d
            c = counts.get(eid, 0)
            if eid in highlight_ids:
                style = 'color=red, penwidth=3'
            elif c == 0:
                style = 'color=gray90, style=dotted'
            else:
                color = _PALETTE[min(c, len(_PALETTE) - 1)]
                style = f'color={color}'
            lines.append(f"  n{u} -> n{v} [{style}];")
    lines.append("}")
    return "\n".join(lines)
