"""Parameter sweeps: the paper's scaling claims as measured series.

Each sweep returns a list of row dicts (one per parameter value) so callers
can print tables, assert shapes, or feed plotting tools.  These are the
"series" behind the Theta(n) statements: speedup vs n, utilization vs
n mod 4, delivery vs fault rate, and broadcast crossover vs message size.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = [
    "cycle_speedup_sweep",
    "utilization_sweep",
    "fault_tolerance_sweep",
    "broadcast_crossover_sweep",
    "format_rows",
]

Row = Dict[str, object]


def cycle_speedup_sweep(ns: Iterable[int], m: int = 60) -> List[Row]:
    """Section 2's headline series: gray vs Theorem 1 speedup as n grows."""
    from repro.apps.broadcast import cycle_neighbor_exchange

    rows: List[Row] = []
    for n in ns:
        res = cycle_neighbor_exchange(n, m)
        rows.append(
            {
                "n": n,
                "m": m,
                "gray_steps": res["graycode"],
                "multipath_steps": res["multipath"],
                "speedup": round(res["graycode"] / res["multipath"], 3),
                "width": res["width"],
            }
        )
    return rows


def utilization_sweep(ns: Iterable[int]) -> List[Row]:
    """Theorem 2's link-busy fraction per n (1.0 exactly when n % 4 == 0)."""
    from repro.core.cycle_multipath import embed_cycle_load2
    from repro.routing.schedule import multipath_packet_schedule

    rows: List[Row] = []
    for n in ns:
        emb = embed_cycle_load2(n)
        sched = multipath_packet_schedule(emb)
        sched.verify()
        rows.append(
            {
                "n": n,
                "n_mod_4": n % 4,
                "width": emb.width,
                "cost": sched.makespan,
                "busy_fraction": round(sched.busy_link_fraction(), 4),
            }
        )
    return rows


def fault_tolerance_sweep(
    n: int,
    probs: Iterable[float],
    trials: int = 3,
    scenario: str = "permutation",
) -> List[Row]:
    """Delivery rate vs link fault probability (multipath+IDA vs single).

    Runs through the :mod:`repro.scenarios` campaign engine: each trial
    replays the scenario's traffic through the simulators under a static
    random fault set, once as single dimension-order packets and once
    IDA-dispersed over the ``n`` edge-disjoint paths.
    """
    from repro.scenarios.campaign import CampaignConfig, run_campaign

    rows: List[Row] = []
    for prob in probs:
        multi = single = 0.0
        for seed in range(trials):
            rep = run_campaign(
                CampaignConfig(
                    n=n,
                    scenario=scenario,
                    fault_prob=prob,
                    kill_step=0,
                    seed=f"sweep:{seed}",
                )
            )
            multi += rep.ida.delivered_fraction
            single += rep.single.delivered_fraction
        rows.append(
            {
                "fault_prob": prob,
                "multipath_ida": round(multi / trials, 4),
                "single_path": round(single / trials, 4),
            }
        )
    return rows


def broadcast_crossover_sweep(n: int, packet_counts: Iterable[int]) -> List[Row]:
    """E14's series: binomial tree vs Hamiltonian-cycle pipelines vs M."""
    from repro.apps.one_to_all import (
        binomial_broadcast_time,
        hamiltonian_broadcast_time,
    )

    rows: List[Row] = []
    for m in packet_counts:
        tree = binomial_broadcast_time(n, m)
        cyc = hamiltonian_broadcast_time(n, m)
        rows.append(
            {
                "M": m,
                "tree_steps": tree,
                "cycle_steps": cyc,
                "winner": "cycles" if cyc < tree else "tree",
            }
        )
    return rows


def format_rows(rows: List[Row]) -> str:
    """Render a row-dict series as an aligned text table."""
    if not rows:
        return "(empty sweep)"
    headers = list(rows[0])
    widths = [
        max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers
    ]
    out = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("-" * len(out[0]))
    for r in rows:
        out.append(
            "  ".join(str(r[h]).ljust(w) for h, w in zip(headers, widths))
        )
    return "\n".join(out)
