"""Recorded performance trajectory: fast engines timed against their references.

The repo carries five fast/reference pairs — vectorized verification vs
the scalar ``verify_reference`` walk, :class:`FastStoreForward` vs
:class:`StoreForwardSimulator`, :class:`FastWormhole` vs
:class:`WormholeSimulator`, the service's batched
``route_batch()`` vs its per-call ``route()``, and the cold start of a
fresh service over a memmapped store artifact vs a full rebuild of the
same embedding.  This module times both sides of each pair on
fixed named workloads and writes the result as machine-readable *points*
(``workload``, ``engine``, ``wall_s``, ``speedup``) to ``BENCH_perf.json``.

The committed ``BENCH_perf.json`` at the repo root is the performance
trajectory to date; :func:`compare_to_baseline` gates CI on it.  The gate
compares *speedup ratios*, not wall times — ratios are what the vectorized
layer promises and they transfer across machines, where absolute times do
not.  Each workload also cross-checks that the two engines still agree on
the answer, so a "fast" engine cannot buy its speedup with a wrong result.

Run via ``repro bench`` or ``python benchmarks/trajectory.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "Workload",
    "default_workloads",
    "run_trajectory",
    "write_trajectory",
    "load_trajectory",
    "compare_to_baseline",
    "format_points",
]

SCHEMA_VERSION = 1


@dataclass
class Workload:
    """One named fast-vs-reference timing subject.

    ``build()`` constructs the shared input once (untimed); ``fast(ctx)``
    and ``reference(ctx)`` each run one engine to completion and return its
    answer.  ``agree(ref_out, fast_out)`` decides whether the answers
    match; ``reference=None`` marks a scale probe timed on the fast engine
    alone (e.g. the Q_20 verification, where the scalar walk is the point
    of the exercise to avoid).  ``quick`` workloads form the CI smoke
    subset; ``repeats=1`` opts heavyweight probes out of repetition.
    """

    name: str
    description: str
    build: Callable[[], Any]
    fast: Callable[[Any], Any]
    reference: Optional[Callable[[Any], Any]] = None
    agree: Optional[Callable[[Any, Any], bool]] = None
    quick: bool = False
    repeats: Optional[int] = None


def _verify_signature(report: Any) -> tuple:
    return (
        tuple((c.name, c.passed) for c in report.checks),
        tuple(sorted(report.metrics.items())),
    )


def _verify_workload(name: str, n: int, quick: bool, scale_only: bool = False,
                     repeats: Optional[int] = None) -> Workload:
    def build():
        from repro.core import embed_cycle_load1

        return embed_cycle_load1(n)

    return Workload(
        name=name,
        description=(
            f"multipath-cycle verification on Q_{n} "
            f"({'vectorized kernels only' if scale_only else 'vectorized kernels vs scalar walk'})"
        ),
        build=build,
        fast=lambda emb: emb.verify(strict=False),
        reference=None if scale_only else (
            lambda emb: emb.verify_reference(strict=False)
        ),
        agree=lambda ref, fast: _verify_signature(ref) == _verify_signature(fast),
        quick=quick,
        repeats=repeats,
    )


def _worm_work(n: int, num_flits: int, overlays: int) -> tuple:
    from repro.hypercube.graph import Hypercube
    from repro.routing.permutation import dimension_order_path, random_permutation

    work = []
    for s in range(overlays):
        perm = random_permutation(1 << n, seed=s + 1)
        work += [
            (dimension_order_path(n, u, v), num_flits, s + 1)
            for u, v in enumerate(perm)
            if u != v
        ]
    return Hypercube(n), work


def _run_worms(engine_cls, ctx) -> int:
    host, work = ctx
    sim = engine_cls(host)
    for path, flits, release in work:
        sim.inject(path, flits, release)
    return sim.run()


def _wormhole_workload(name: str, n: int, num_flits: int, overlays: int,
                       quick: bool) -> Workload:
    from repro.routing.fast_wormhole import FastWormhole
    from repro.routing.wormhole import WormholeSimulator

    return Workload(
        name=name,
        description=(
            f"Section-7 wormhole traffic on Q_{n}: {overlays} overlaid "
            f"random permutations, M={num_flits} flits, e-cube routes"
        ),
        build=lambda: _worm_work(n, num_flits, overlays),
        fast=lambda ctx: _run_worms(FastWormhole, ctx),
        reference=lambda ctx: _run_worms(WormholeSimulator, ctx),
        agree=lambda ref, fast: ref == fast,
        quick=quick,
    )


def _batched_worm_work(n: int, lanes: int, worms: int, num_flits: int) -> tuple:
    from repro.hypercube.graph import Hypercube
    from repro.routing.permutation import dimension_order_path, random_permutation

    comp = (1 << n) - 1
    batches = []
    for b in range(lanes):
        srcs = random_permutation(1 << n, seed=b + 1)[:worms]
        batches.append(
            [
                (dimension_order_path(n, u, u ^ comp), num_flits, 1 + (i % 4))
                for i, u in enumerate(srcs)
            ]
        )
    return Hypercube(n), batches


def _lane_outcome(makespan, recorder) -> tuple:
    return (
        makespan,
        tuple(
            sorted(
                (int(e), int(c))
                for e, c in recorder.link_transmissions.items()
            )
        ),
    )


def _batched_wormhole_workload(name: str, n: int, lanes: int, worms: int,
                               num_flits: int, quick: bool) -> Workload:
    from repro.obs import LinkRecorder
    from repro.routing.batched import BatchedWormhole
    from repro.routing.wormhole import WormholeSimulator

    def fast(ctx):
        host, batches = ctx
        recs = [LinkRecorder(host=host) for _ in batches]
        outs = BatchedWormhole(host).run_many(batches, recorders=recs)
        return [
            _lane_outcome(o.makespan, r) for o, r in zip(outs, recs)
        ]

    def reference(ctx):
        host, batches = ctx
        res = []
        for sched in batches:
            sim = WormholeSimulator(host)
            rec = LinkRecorder(host=host)
            for path, flits, release in sched:
                sim.inject(path, flits, release)
            res.append(_lane_outcome(sim.run(recorder=rec), rec))
        return res

    return Workload(
        name=name,
        description=(
            f"{lanes} independent Q_{n} wormhole runs in one batched call: "
            f"{worms} complement-traffic worms per lane, M={num_flits} "
            f"flits, per-lane congestion recorders vs the scalar loop"
        ),
        build=lambda: _batched_worm_work(n, lanes, worms, num_flits),
        fast=fast,
        reference=reference,
        agree=lambda ref, fast_out: ref == fast_out,
        quick=quick,
        repeats=1,
    )


def _storeforward_workload(name: str, n: int, reps: int, quick: bool) -> Workload:
    from repro.hypercube.graph import Hypercube
    from repro.routing.fast_simulator import FastStoreForward
    from repro.routing.permutation import dimension_order_path, random_permutation
    from repro.routing.simulator import StoreForwardSimulator

    def build():
        perm = random_permutation(1 << n, seed=1)
        paths = [
            dimension_order_path(n, u, v) for u, v in enumerate(perm) if u != v
        ]
        work = [(p, r + 1) for p in paths for r in range(reps)]
        return Hypercube(n), work

    return Workload(
        name=name,
        description=(
            f"store-and-forward permutation traffic on Q_{n}, "
            f"{reps} staggered waves (priority tie-break on both engines)"
        ),
        build=build,
        fast=lambda ctx: FastStoreForward(ctx[0]).run(ctx[1]).makespan,
        reference=lambda ctx: StoreForwardSimulator(
            ctx[0], tie_break="priority"
        ).run(ctx[1]).makespan,
        agree=lambda ref, fast: ref == fast,
        quick=quick,
    )


def _service_workload(name: str, n: int, requests: int, quick: bool) -> Workload:
    def build():
        import tempfile

        from repro._compat import resolve_rng
        from repro.service.api import RoutingService
        from repro.service.registry import EmbeddingRegistry
        from repro.service.specs import EmbeddingSpec, RouteRequest

        registry = EmbeddingRegistry(
            cache_dir=tempfile.mkdtemp(prefix="repro-bench-")
        )
        service = RoutingService(registry=registry)
        spec = EmbeddingSpec.make("cycle", n=n)
        shard = service.shard_for(spec)  # build + publish outside the timer
        edges = shard.csr.edges
        stream = resolve_rng(0)
        batch = []
        for _ in range(requests):
            u, v = edges[stream.randrange(len(edges))]
            batch.append((v, u) if stream.random() < 0.5 else (u, v))
        service.route_batch(spec, batch[:1])  # warm the resolve path
        return service, spec, [RouteRequest(edge) for edge in batch]

    def agree(ref, fast_out):
        if len(ref) != len(fast_out.requests):
            return False
        return all(
            resp.paths == fast_out.paths(i) for i, resp in enumerate(ref)
        )

    return Workload(
        name=name,
        description=(
            f"one route_batch() vs {requests} per-call route()s on the "
            f"Q_{n} multipath cycle (both orientations, shared-memory shard)"
        ),
        build=build,
        fast=lambda ctx: ctx[0].route_batch(ctx[1], ctx[2]),
        reference=lambda ctx: [ctx[0].route(ctx[1], r) for r in ctx[2]],
        agree=agree,
        quick=quick,
    )


def _cold_start_workload(name: str, n: int, requests: int, quick: bool) -> Workload:
    def build():
        import tempfile

        from repro._compat import resolve_rng
        from repro.service.registry import EmbeddingRegistry
        from repro.service.specs import EmbeddingSpec

        cache_dir = tempfile.mkdtemp(prefix="repro-coldstart-")
        spec = EmbeddingSpec.make("cycle", n=n)
        # warm the on-disk store artifact once, outside the timer: build +
        # verify + admit is exactly the cost the cold start must not pay
        registry = EmbeddingRegistry(cache_dir=cache_dir)
        registry.get_or_build(spec)
        view = registry.get_store(spec)
        edges = view.csr.edges
        stream = resolve_rng(0)
        batch = []
        for _ in range(requests):
            u, v = edges[stream.randrange(len(edges))]
            batch.append((v, u) if stream.random() < 0.5 else (u, v))
        view.close()
        return cache_dir, spec, batch

    def _serve(cache_dir, spec, batch):
        from repro.service.api import RoutingService
        from repro.service.registry import EmbeddingRegistry

        svc = RoutingService(registry=EmbeddingRegistry(cache_dir=cache_dir))
        out = svc.route_batch(spec, batch)
        return out.nodes, out.path_offsets, out.request_offsets

    def fast(ctx):
        # a fresh service over the warm cache dir: registry open + memmap
        # hydrate + one batched resolve, i.e. process start -> first answer
        cache_dir, spec, batch = ctx
        return _serve(cache_dir, spec, batch)

    def reference(ctx):
        # the same first answer without the store tier: full rebuild
        import tempfile

        _, spec, batch = ctx
        return _serve(tempfile.mkdtemp(prefix="repro-coldref-"), spec, batch)

    def agree(ref, fast_out):
        import numpy as np

        return all(np.array_equal(r, f) for r, f in zip(ref, fast_out))

    return Workload(
        name=name,
        description=(
            f"cold start on the Q_{n} multipath cycle: fresh service over "
            f"the memmapped store artifact vs full rebuild, each serving "
            f"one route_batch() of {requests} requests"
        ),
        build=build,
        fast=fast,
        reference=reference,
        agree=agree,
        quick=quick,
        repeats=1,
    )


def default_workloads() -> List[Workload]:
    """The recorded trajectory: quick CI subset plus the full-scale probes.

    The full set carries the acceptance anchors: Q_16 multipath-cycle
    verification (claimed >= 5x), the Q_12 Section-7 wormhole workload
    (claimed >= 3x), and the Q_20 verification completing at all.
    """
    return [
        _verify_workload("verify:cycle-multipath:q12", 12, quick=True),
        _verify_workload("verify:cycle-multipath:q16", 16, quick=False),
        _verify_workload(
            "verify:cycle-multipath:q20", 20, quick=False,
            scale_only=True, repeats=1,
        ),
        _storeforward_workload("storeforward:q10:perm-x4", 10, reps=4, quick=True),
        _service_workload("service:route-batch:q12", 12, requests=16384, quick=True),
        _cold_start_workload(
            "service:cold-start:q20", 20, requests=16384, quick=True,
        ),
        _wormhole_workload("wormhole:q10:m16x2", 10, num_flits=16, overlays=2, quick=True),
        _wormhole_workload("wormhole:q12:m16x4", 12, num_flits=16, overlays=4, quick=False),
        _batched_wormhole_workload(
            "batched:q12:wormhole-x100", 12,
            lanes=100, worms=64, num_flits=128, quick=True,
        ),
    ]


def _best_time(fn: Callable[[Any], Any], ctx: Any, repeats: int) -> tuple:
    best = None
    out = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        out = fn(ctx)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, out


def run_trajectory(
    workloads: Optional[Sequence[Workload]] = None,
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeats: int = 3,
    on_workload: Optional[Callable[[Workload, List[Dict]], None]] = None,
) -> Dict:
    """Time the selected workloads; returns the ``BENCH_perf.json`` payload.

    ``quick=True`` restricts to the CI smoke subset; ``names`` restricts to
    an explicit list (checked against the known names).  Each workload
    yields one point per engine; the fast point carries the measured
    speedup (``None`` for scale probes with no reference side).  An
    engine-disagreement turns into a failed point (``agree: false``) rather
    than an exception, so the regression gate can report it.
    """
    selected = list(workloads) if workloads is not None else default_workloads()
    if names:
        known = {w.name for w in selected}
        unknown = [n for n in names if n not in known]
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; known: {sorted(known)}"
            )
        selected = [w for w in selected if w.name in names]
    elif quick:
        selected = [w for w in selected if w.quick]

    points: List[Dict] = []
    for w in selected:
        ctx = w.build()
        runs = w.repeats if w.repeats is not None else repeats
        fast_s, fast_out = _best_time(w.fast, ctx, runs)
        ref_s = None
        agree = None
        if w.reference is not None:
            ref_s, ref_out = _best_time(w.reference, ctx, runs)
            agree = bool(w.agree(ref_out, fast_out)) if w.agree else None
            points.append(
                {
                    "workload": w.name,
                    "engine": "reference",
                    "wall_s": round(ref_s, 6),
                    "speedup": None,
                }
            )
        fast_point = {
            "workload": w.name,
            "engine": "fast",
            "wall_s": round(fast_s, 6),
            "speedup": round(ref_s / fast_s, 3) if ref_s is not None else None,
        }
        if agree is not None:
            fast_point["agree"] = agree
        points.append(fast_point)
        if on_workload is not None:
            on_workload(w, points[-2 if ref_s is not None else -1:])
    return {
        "schema": SCHEMA_VERSION,
        "quick": bool(quick),
        "repeats": repeats,
        "workloads": {w.name: w.description for w in selected},
        "points": points,
    }


def write_trajectory(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def load_trajectory(path: str) -> Dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def compare_to_baseline(
    current: Dict, baseline: Dict, max_regression: float = 0.25
) -> List[str]:
    """Problems in ``current`` relative to ``baseline``; empty means pass.

    A fast point regresses when its speedup drops more than
    ``max_regression`` below the baseline speedup for the same workload
    (ratios transfer across machines; wall times do not).  Disagreeing
    engines and workloads that lost their speedup entirely are always
    problems.  Baseline workloads missing from the current run are ignored
    — the quick CI subset checks only what it measures.
    """
    problems: List[str] = []
    base_speedup = {
        p["workload"]: p["speedup"]
        for p in baseline.get("points", [])
        if p.get("engine") == "fast" and p.get("speedup") is not None
    }
    for p in current.get("points", []):
        if p.get("engine") != "fast":
            continue
        name = p["workload"]
        if p.get("agree") is False:
            problems.append(f"{name}: engines disagree on the answer")
        base = base_speedup.get(name)
        if base is None:
            continue
        cur = p.get("speedup")
        if cur is None:
            problems.append(f"{name}: no speedup measured (baseline {base}x)")
            continue
        floor = base * (1.0 - max_regression)
        if cur < floor:
            problems.append(
                f"{name}: speedup {cur}x fell below {floor:.2f}x "
                f"(baseline {base}x, max regression {max_regression:.0%})"
            )
    return problems


def format_points(payload: Dict) -> str:
    """Human-readable table of a trajectory payload."""
    rows = []
    by_workload: Dict[str, Dict[str, Dict]] = {}
    for p in payload.get("points", []):
        by_workload.setdefault(p["workload"], {})[p["engine"]] = p
    for name, engines in by_workload.items():
        ref = engines.get("reference")
        fast = engines.get("fast", {})
        speedup = fast.get("speedup")
        rows.append(
            (
                name,
                f"{ref['wall_s']:.3f}s" if ref else "-",
                f"{fast.get('wall_s', float('nan')):.3f}s",
                f"{speedup}x" if speedup is not None else "-",
                {True: "yes", False: "NO", None: "-"}[fast.get("agree")],
            )
        )
    headers = ("workload", "reference", "fast", "speedup", "agree")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
