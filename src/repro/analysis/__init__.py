"""Analysis and reporting utilities.

* :mod:`repro.analysis.report` — structured metric reports and comparisons
  of embeddings (the Section 8.2 trade-off, quantified);
* :mod:`repro.analysis.figures` — runnable reproductions of the paper's
  Figures 1–4 as ASCII diagrams built from the real constructions;
* :mod:`repro.analysis.trajectory` — the recorded fast-vs-reference perf
  trajectory (``BENCH_perf.json``) and its CI regression gate.
"""

from repro.analysis.report import (
    EmbeddingReport,
    compare_embeddings,
    congestion_histogram,
    dimension_usage,
    link_utilization,
    report,
)
from repro.analysis.dot import embedding_to_dot
from repro.analysis.figures import figure1, figure2, figure3, figure4
from repro.analysis.graph_metrics import guest_metrics, hypercube_metrics, pinout_comparison
from repro.analysis.validate import ClaimResult, validate_claims
from repro.analysis.trajectory import (
    Workload,
    compare_to_baseline,
    default_workloads,
    run_trajectory,
)
from repro.analysis.sweep import (
    broadcast_crossover_sweep,
    cycle_speedup_sweep,
    fault_tolerance_sweep,
    format_rows,
    utilization_sweep,
)

__all__ = [
    "EmbeddingReport",
    "compare_embeddings",
    "congestion_histogram",
    "dimension_usage",
    "link_utilization",
    "report",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "embedding_to_dot",
    "broadcast_crossover_sweep",
    "cycle_speedup_sweep",
    "fault_tolerance_sweep",
    "format_rows",
    "utilization_sweep",
    "ClaimResult",
    "validate_claims",
    "guest_metrics",
    "hypercube_metrics",
    "pinout_comparison",
    "Workload",
    "compare_to_baseline",
    "default_workloads",
    "run_trajectory",
]
