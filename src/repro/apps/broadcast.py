"""Section 2 illustration: m-packet neighbor exchange along an embedded cycle.

Every node of the ``2**n``-cycle sends ``m`` packets to its successor.

* Classical gray code: each node owns exactly one outgoing link of the
  cycle image, so the m packets serialize — cost exactly ``m`` (and no
  strategy confined to those links beats ``m/2``, the paper's dimension-0
  counting argument).
* Theorem 1: each guest edge owns ``a + 1`` edge-disjoint paths (cost-3
  schedule, plus the double-loaded direct edge), so ``m`` packets ship in
  ``3 * ceil(m / (a + 2))`` steps — the claimed Theta(n) speedup.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cycle_multicopy import graycode_cycle_embedding
from repro.core.cycle_multipath import embed_cycle_load1
from repro.routing.schedule import (
    ScheduledPacket,
    PacketSchedule,
    p_packet_cost_singlepath,
)

__all__ = ["cycle_neighbor_exchange"]


def cycle_neighbor_exchange(n: int, m: int) -> Dict[str, int]:
    """Measured cost of the m-packet cycle exchange, both embeddings.

    Returns ``{"graycode": steps, "multipath": steps, "lower_bound": m/2}``.
    The multipath schedule repeats Theorem 1's verified 3-step round
    ``ceil(m / packets_per_round)`` times.
    """
    if m < 1:
        raise ValueError(f"need m >= 1 packets, got {m}")
    gray_emb = graycode_cycle_embedding(n)
    gray_cost = p_packet_cost_singlepath(gray_emb, m)

    emb = embed_cycle_load1(n)
    per_round = emb.info["packets_per_edge"]  # a + 2
    rounds = -(-m // per_round)

    # build the repeated schedule explicitly and verify it end to end
    packets = []
    for edge, paths in emb.edge_paths.items():
        steps_per_path = emb.step_of[edge]
        sent = 0
        for r in range(rounds):
            base = 3 * r
            for path, st in zip(paths, steps_per_path):
                if sent >= m:
                    break
                packets.append(
                    ScheduledPacket(tuple(path), tuple(s + base for s in st))
                )
                sent += 1
            if sent < m:  # the extra packet on the direct edge, step 3
                direct = paths[-1]
                packets.append(ScheduledPacket(tuple(direct), (base + 3,)))
                sent += 1
    sched = PacketSchedule(emb.host, packets)
    sched.verify()
    return {
        "graycode": gray_cost,
        "multipath": sched.makespan,
        "lower_bound": -(-m // 2),
        "rounds": rounds,
        "width": emb.width,
    }
