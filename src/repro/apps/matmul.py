"""Matrix multiplication on embedded tori (Section 8.1's [15, 16] citation).

"Johnsson and Ho have used large-copy embeddings of grids to speed matrix
operations."  This module runs Cannon's algorithm on a ``P x P`` process
torus embedded in the hypercube, with real numpy blocks and measured
communication:

* the torus rides the multiple-copy embedding of
  :func:`repro.core.grid_multicopy.grid_multicopy_embedding` — the A-shift
  and B-shift of every Cannon step travel on *different* edge-disjoint
  torus copies, so both shifts overlap perfectly (congestion 1 each);
* the numerical result is checked against ``A @ B``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.grid_multicopy import grid_multicopy_embedding
from repro.routing.simulator import StoreForwardSimulator

__all__ = ["cannon_matmul", "cannon_communication_steps"]


def cannon_matmul(a: np.ndarray, b: np.ndarray, P: int) -> np.ndarray:
    """Multiply ``a @ b`` with Cannon's algorithm on a P x P process torus.

    ``P`` must divide the (square) matrix size.  Blocks move exactly as the
    algorithm prescribes — A-blocks shift left along torus rows, B-blocks up
    along torus columns — and the block motion is what the embedded torus
    copies carry (see :func:`cannon_communication_steps`).
    """
    size = a.shape[0]
    if a.shape != b.shape or a.shape != (size, size):
        raise ValueError("need square matrices of equal size")
    if size % P:
        raise ValueError("P must divide the matrix size")
    blk = size // P

    def block(m: np.ndarray, i: int, j: int) -> np.ndarray:
        return m[i * blk : (i + 1) * blk, j * blk : (j + 1) * blk]

    # initial skew
    a_blocks: Dict[Tuple[int, int], np.ndarray] = {
        (i, j): block(a, i, (j + i) % P).copy() for i in range(P) for j in range(P)
    }
    b_blocks = {
        (i, j): block(b, (i + j) % P, j).copy() for i in range(P) for j in range(P)
    }
    c_blocks = {
        (i, j): np.zeros((blk, blk)) for i in range(P) for j in range(P)
    }
    for _ in range(P):
        for key in c_blocks:
            c_blocks[key] += a_blocks[key] @ b_blocks[key]
        a_blocks = {
            (i, j): a_blocks[(i, (j + 1) % P)] for i in range(P) for j in range(P)
        }
        b_blocks = {
            (i, j): b_blocks[((i + 1) % P, j)] for i in range(P) for j in range(P)
        }
    out = np.zeros_like(a)
    for (i, j), blk_val in c_blocks.items():
        out[i * blk : (i + 1) * blk, j * blk : (j + 1) * blk] = blk_val
    return out


def cannon_communication_steps(P: int, block_packets: int) -> Dict[str, int]:
    """Measured steps for one Cannon shift round on the embedded torus.

    The A-shift (row direction) rides torus copy 0 and the B-shift (column
    direction) rides copy 1 of the multiple-copy embedding — edge-disjoint,
    so both shifts of ``block_packets`` packets complete concurrently in
    ``block_packets`` steps (plus pipelining latency 0: dilation 1).
    """
    mc = grid_multicopy_embedding((P, P))
    host = mc.host
    copy_a, copy_b = mc.copies[0], mc.copies[1]
    overlapped = []
    for (u, v), path in copy_a.edge_paths.items():
        if u[0] == v[0]:  # row-direction edge: the A shift
            overlapped.extend((path, t + 1) for t in range(block_packets))
    for (u, v), path in copy_b.edge_paths.items():
        if u[1] == v[1]:  # column-direction edge: the B shift
            overlapped.extend((path, t + 1) for t in range(block_packets))
    both = StoreForwardSimulator(host).run(overlapped).makespan

    # baseline: both shifts forced onto a single copy's links
    forced = []
    for (u, v), path in copy_a.edge_paths.items():
        for t in range(block_packets):
            forced.append((path, t + 1))
            forced.append((path, t + 1))  # second shift, same links
    single = StoreForwardSimulator(host).run(forced).makespan
    return {
        "overlapped_steps": both,
        "single_copy_steps": single,
        "block_packets": block_packets,
    }
