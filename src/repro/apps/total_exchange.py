"""All-to-all personalized communication (Section 1's Stout–Wagar theme).

Every node sends a distinct packet to every other node.  Two regimes:

* **single-port dimension exchange** — the classical algorithm: ``n``
  rounds, round ``d`` forwards everything whose destination differs in bit
  ``d`` over the one dimension-``d`` link; each round ships ``2^{n-1}``
  packets per node sequentially, so the total is ``n * 2^{n-1}`` steps;
* **all-port e-cube** — the paper's model (every node drives all ``n``
  links each step): all ``2^n * (2^n - 1)`` packets go at once on their
  dimension-order paths.  E-cube spreads them perfectly evenly —
  ``2^{n-1}`` packets per directed link — so the measured completion is
  ``~2^{n-1} + n``: the Theta(n) "use every link" dividend again.
"""

from __future__ import annotations

from typing import Dict

from repro.hypercube.graph import Hypercube
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.permutation import dimension_order_path

__all__ = [
    "single_port_exchange_steps",
    "all_port_exchange_steps",
    "ecube_link_load",
    "total_exchange_comparison",
]


def single_port_exchange_steps(n: int, measured: bool = True) -> int:
    """Steps for the single-port all-to-all exchange.

    ``measured=True`` simulates it (every node may start one send per step,
    e-cube paths); the result coincides exactly with the dimension-exchange
    closed form ``n * 2^{n-1}`` (asserted at small n in the tests).
    """
    if not measured:
        return n * (1 << (n - 1))
    from repro.routing.simulator import StoreForwardSimulator

    host = Hypercube(n)
    schedule = [
        dimension_order_path(n, s, t)
        for s in range(host.num_nodes)
        for t in range(host.num_nodes)
        if s != t
    ]
    return StoreForwardSimulator(host, port_limit=1).run(schedule).makespan


def ecube_link_load(n: int) -> Dict[int, int]:
    """Packets per directed link under e-cube all-pairs routing.

    Returns the histogram {load: count}; the classical fact is a perfectly
    uniform ``2^{n-1}`` on every directed link.
    """
    from collections import Counter

    host = Hypercube(n)
    counts: Counter = Counter()
    for s in range(host.num_nodes):
        for t in range(host.num_nodes):
            if s == t:
                continue
            path = dimension_order_path(n, s, t)
            for a, b in zip(path, path[1:]):
                counts[host.edge_id(a, b)] += 1
    return dict(Counter(counts.values()))


def all_port_exchange_steps(n: int) -> int:
    """Measured completion of the all-port exchange on the simulator."""
    host = Hypercube(n)
    schedule = [
        dimension_order_path(n, s, t)
        for s in range(host.num_nodes)
        for t in range(host.num_nodes)
        if s != t
    ]
    return FastStoreForward(host).run(schedule).makespan


def total_exchange_comparison(n: int) -> Dict[str, int]:
    """One row of the E15 table."""
    return {
        "n": n,
        "single_port": single_port_exchange_steps(n),
        "all_port": all_port_exchange_steps(n),
        "bandwidth_bound": 1 << (n - 1),
    }
