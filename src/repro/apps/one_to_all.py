"""One-to-all broadcast: a large-message application of Lemma 1 (Section 1).

The paper cites Ho–Johnsson [14] and Stout–Wagar [26] for multiple-copy
spanning-tree broadcast.  This module reproduces the *throughput* side of
that comparison with the paper's own substrate:

* **binomial-tree broadcast** (baseline): the M-packet message flows down a
  single spanning binomial tree; the root's ``n`` sequential child-sends
  make the time grow like ``n + M * ...`` even with pipelining;
* **Hamiltonian-cycle broadcast**: split the message into ``n`` pieces and
  pipeline piece ``k`` around the k-th directed Hamiltonian cycle of
  Lemma 1.  All ``n`` pieces move simultaneously on disjoint links, so the
  time is ``(2^n - 1) + ceil(M/n) - 1`` — latency Theta(2^n) but optimal
  throughput ``M/n``, the better choice once ``M`` exceeds ~``2^n``.

Both are measured with step-accurate simulations (one packet per directed
link per step).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hypercube.graph import Hypercube
from repro.hypercube.hamiltonian import directed_hamiltonian_decomposition
from repro.routing.simulator import StoreForwardSimulator

__all__ = [
    "binomial_tree",
    "binomial_broadcast_time",
    "hamiltonian_broadcast_time",
    "broadcast_comparison",
]


def binomial_tree(n: int, root: int = 0) -> Dict[int, int]:
    """The spanning binomial tree of ``Q_n``: parent = clear the lowest set
    bit (relative to the root)."""
    host = Hypercube(n)
    parent = {}
    for v in range(host.num_nodes):
        if v == root:
            continue
        rel = v ^ root
        parent[v] = (rel & (rel - 1)) ^ root  # clear lowest set bit of rel
    return parent


def binomial_broadcast_time(n: int, packets: int, root: int = 0) -> int:
    """Simulated broadcast of ``packets`` packets down the binomial tree.

    Every tree node forwards each packet to its children over its outgoing
    links, one packet per link per step; a node can feed different children
    in the same step (one packet each), but each child link carries one
    packet per step.  Packets become available at a node one step after
    arriving.
    """
    if packets < 1:
        raise ValueError("need at least one packet")
    parent = binomial_tree(n, root)
    children: Dict[int, List[int]] = {}
    for v, p in parent.items():
        children.setdefault(p, []).append(v)
    # arrival[v][p] = step packet p becomes available at node v
    size = 1 << n
    # BFS order by tree depth
    from collections import deque

    arrive = {root: [0] * packets}
    queue = deque([root])
    finish = 0
    while queue:
        u = queue.popleft()
        for child in children.get(u, []):
            # the link u->child sends packet p at the earliest free step
            # after the packet is available at u
            times = []
            link_free = 0
            for p in range(packets):
                step = max(arrive[u][p] + 1, link_free + 1)
                times.append(step)
                link_free = step
            arrive[child] = times
            finish = max(finish, times[-1])
            queue.append(child)
    assert len(arrive) == size
    return finish


def hamiltonian_broadcast_time(n: int, packets: int, root: int = 0) -> int:
    """Broadcast by pipelining n message pieces around the Lemma 1 cycles.

    Piece ``k`` (``ceil(packets/n)`` packets) is forwarded around directed
    Hamiltonian cycle ``k`` starting at ``root``; after ``2^n - 1`` hops the
    last node has it.  All cycles are edge-disjoint, so the pieces never
    contend.  Measured with the store-and-forward simulator.
    """
    if packets < 1:
        raise ValueError("need at least one packet")
    if n % 2:
        raise ValueError("Lemma 1's directed form needs even n")
    cycles = directed_hamiltonian_decomposition(n)
    per_piece = -(-packets // len(cycles))
    schedule = []
    for cyc in cycles:
        start = cyc.index(root)
        path = [cyc[(start + t) % len(cyc)] for t in range(len(cyc))]
        schedule.extend((path, t + 1) for t in range(per_piece))
    return StoreForwardSimulator(Hypercube(n)).run(schedule).makespan


def broadcast_comparison(n: int, packet_counts) -> List[Tuple[int, int, int]]:
    """Rows of (M, binomial steps, Hamiltonian-cycles steps)."""
    return [
        (m, binomial_broadcast_time(n, m), hamiltonian_broadcast_time(n, m))
        for m in packet_counts
    ]
