"""Grid relaxation on a hypercube (paper Sections 2 and 8.3).

A Jacobi relaxation on an ``M x M`` grid runs on a hypercube with ``N**2``
processors.  Section 8.3 compares three process-to-processor mappings:

1. **large-copy, point per process** — every grid point is a process; the
   large-copy grid embedding gives each processor ``M**2 / N**2`` points and
   ships ``O(M**2)`` boundary values per phase;
2. **blocked + multiple-path** — ``M/N x M/N`` blocks, one per processor;
   the multiple-path torus embedding ships the ``O(M/N)``-value block
   boundaries over ``floor(log N)``-wide path bundles: per-phase time
   ``Theta(M / (N log N))`` instead of the gray code's ``Theta(M/N)``;
3. **blocked large-copy** — ``N log N x N log N`` blocks with the
   large-copy embedding: ``log^2 N`` processes per processor, boundary
   ``M/(N log N)`` values each.

``GridRelaxation`` also runs the actual numerical Jacobi iteration (numpy)
so the communication schedule corresponds to a real computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.grid_multipath import embed_grid_multipath
from repro.routing.schedule import (
    PacketSchedule,
    ScheduledPacket,
)

__all__ = ["GridRelaxation", "relaxation_strategy_comparison"]


@dataclass
class GridRelaxation:
    """A Jacobi relaxation on an ``M x M`` grid with Dirichlet boundary."""

    M: int

    def __post_init__(self):
        if self.M < 3:
            raise ValueError("grid too small")
        self.values = np.zeros((self.M, self.M))
        # boundary condition: hot top edge
        self.values[0, :] = 1.0

    def step(self) -> float:
        """One Jacobi sweep; returns the max update delta."""
        v = self.values
        new = v.copy()
        new[1:-1, 1:-1] = 0.25 * (
            v[:-2, 1:-1] + v[2:, 1:-1] + v[1:-1, :-2] + v[1:-1, 2:]
        )
        delta = float(np.max(np.abs(new - v)))
        self.values = new
        return delta

    def run(self, iterations: int) -> float:
        delta = math.inf
        for _ in range(iterations):
            delta = self.step()
        return delta


def _blocked_multipath_phase_cost(N: int, boundary_packets: int) -> int:
    """Measured steps for one boundary-exchange phase on the N x N process
    torus embedded with multiple paths (strategy 2)."""
    emb = embed_grid_multipath((N, N), torus=True)
    width = max(1, emb.width)
    rounds = -(-boundary_packets // width)
    packets = []
    period = 6  # bidirectional two-phase schedule
    for edge, paths in emb.edge_paths.items():
        steps_per_path = emb.step_of[edge]
        sent = 0
        for r in range(rounds):
            base = period * r
            for path, st in zip(paths, steps_per_path):
                if sent >= boundary_packets:
                    break
                packets.append(
                    ScheduledPacket(tuple(path), tuple(s + base for s in st))
                )
                sent += 1
    sched = PacketSchedule(emb.host, packets)
    sched.verify()
    return sched.makespan


def _graycode_blocked_phase_cost(N: int, boundary_packets: int) -> int:
    """Strategy 2 with the classical embedding: each torus edge is one link,
    so the boundary serializes: ``boundary_packets`` steps per direction."""
    # per-axis gray code: each directed guest edge owns one link; all guest
    # edges ship concurrently, so the phase costs exactly boundary_packets
    return boundary_packets


def _measured_interleaved_block_steps(
    N: int, S: int, boundary_packets: int
) -> int:
    """Measured phase cost for an ``S x S`` block grid, interleaved onto the
    ``N x N`` processor torus (block ``(bx, by)`` on processor
    ``(bx mod N, by mod N)``, gray-coded per axis — the large-copy style
    placement where grid neighbors are processor neighbors but never
    co-located).  Every block edge ships ``boundary_packets`` packets; one
    phase is simulated on the vectorized link-bound engine.

    ``S = M`` with one packet per edge is Section 8.3's strategy 1
    (point per process); ``S = N log N`` with ``M/S`` packets is strategy 3.
    """
    from repro.hypercube.graph import Hypercube
    from repro.hypercube.graycode import gray_node_sequence
    from repro.routing.fast_simulator import FastStoreForward

    a = N.bit_length() - 1
    host = Hypercube(2 * a)
    seq = gray_node_sequence(a)

    def proc(x: int, y: int) -> int:
        return (seq[x % N] << a) | seq[y % N]

    schedule = []
    for x in range(S):
        for y in range(S):
            here = proc(x, y)
            for nx, ny in ((x + 1, y), (x, y + 1)):
                if nx >= S or ny >= S:
                    continue
                there = proc(nx, ny)
                for t in range(boundary_packets):
                    schedule.append(([here, there], t + 1))
                    schedule.append(([there, here], t + 1))
    return FastStoreForward(host).run(schedule).makespan


def relaxation_strategy_comparison(M: int, N: int) -> Dict[str, Dict[str, float]]:
    """Reproduce Section 8.3's three-way comparison for an M x M grid on
    ``N**2`` processors (``N`` a power of two).

    Returns, per strategy: total values communicated per phase, values per
    processor per phase, and the measured (or closed-form) per-phase steps.
    """
    if N & (N - 1) or N < 2:
        raise ValueError("N must be a power of two >= 2")
    if M % N:
        raise ValueError("M must be divisible by N")
    log_n = max(1, int(math.log2(N)))

    # 1. point per process with interleaved placement: every grid edge
    # crosses processors.  Measured by simulation up to moderate sizes,
    # closed-form beyond.
    total_1 = 4 * M * M
    per_proc_1 = total_1 / (N * N)
    if M <= 256:
        steps_1 = _measured_interleaved_block_steps(N, M, 1)
    else:
        steps_1 = math.ceil(per_proc_1 / (2 * 2 * log_n))

    # 2. blocked + multiple path: boundary of M/N values per side
    boundary = M // N
    total_2 = 4 * boundary * N * N
    steps_2 = _blocked_multipath_phase_cost(N, boundary)
    steps_2_gray = _graycode_blocked_phase_cost(N, boundary)

    # 3. blocked large-copy: (N log N)^2 blocks of side M/(N log N)
    side3 = N * log_n
    boundary3 = max(1, M // side3)
    total_3 = 4 * boundary3 * side3 * side3
    if side3 <= 256:
        steps_3 = _measured_interleaved_block_steps(N, side3, boundary3)
    else:
        # log^2 N processes per processor, log N paths per link
        steps_3 = math.ceil(4 * boundary3 * log_n)

    return {
        "large_copy_points": {
            "total_values": total_1,
            "per_processor": per_proc_1,
            "steps": steps_1,
        },
        "blocked_multipath": {
            "total_values": total_2,
            "per_processor": total_2 / (N * N),
            "steps": steps_2,
            "steps_graycode": steps_2_gray,
        },
        "blocked_large_copy": {
            "total_values": total_3,
            "per_processor": total_3 / (N * N),
            "steps": steps_3,
        },
    }
