"""Bitonic sort on the hypercube (the butterfly-pattern workload of §1).

The paper motivates its embeddings with grid, tree and FFT/butterfly
communication patterns from scientific and signal processing codes.
Bitonic sort is the classic butterfly-pattern computation that runs
*natively* on the hypercube: stage ``(k, j)`` compare-exchanges every node
with its dimension-``j`` neighbor, so one stage costs exactly one step of
the paper's model (every dimension-``j`` link carries one key) and a full
sort costs ``n(n+1)/2`` steps of communication.

``bitonic_sort`` really sorts (verified against ``sorted``) while counting
the link traffic; ``bitonic_communication_steps`` returns the exact stage
count.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["bitonic_sort", "bitonic_communication_steps"]


def bitonic_communication_steps(n: int) -> int:
    """Stages of the hypercube bitonic sort: n(n+1)/2, one step each."""
    return n * (n + 1) // 2


def bitonic_sort(values: Sequence[float]) -> Tuple[List[float], Dict[str, int]]:
    """Sort ``2**n`` keys, one per hypercube node, by compare-exchange.

    Returns ``(sorted_values, stats)`` with the measured communication:
    every stage moves one key across every directed link of its dimension
    (the exchange sends both partners' keys simultaneously — the full-duplex
    link model of Section 3).
    """
    size = len(values)
    n = size.bit_length() - 1
    if size != 1 << n or n < 1:
        raise ValueError("need 2**n keys with n >= 1")
    keys = list(values)
    stages = 0
    link_crossings = 0
    for k in range(1, n + 1):
        for j in range(k - 1, -1, -1):
            bit = 1 << j
            direction_bit = 1 << k
            for u in range(size):
                partner = u ^ bit
                if u > partner:
                    continue
                ascending = (u & direction_bit) == 0 if k < n else True
                a, b = keys[u], keys[partner]
                if (a > b) == ascending:
                    keys[u], keys[partner] = b, a
                link_crossings += 2  # both directions of the link carry a key
            stages += 1
    assert stages == bitonic_communication_steps(n)
    stats = {
        "n": n,
        "stages": stages,
        "link_crossings": link_crossings,
        "steps": stages,  # one step per stage: all dim-j links in parallel
    }
    return keys, stats
