"""Applications from the paper's motivating sections.

* :mod:`repro.apps.broadcast` — the Section 2 illustration: every cycle node
  ships ``m`` packets to its successor, classical gray code vs Theorem 1;
* :mod:`repro.apps.relaxation` — Sections 2 & 8.3: grid relaxation on a
  hypercube, comparing the large-copy, blocked multiple-path, and blocked
  large-copy mappings.
"""

from repro.apps.bitonic import bitonic_communication_steps, bitonic_sort
from repro.apps.broadcast import cycle_neighbor_exchange
from repro.apps.one_to_all import (
    binomial_broadcast_time,
    broadcast_comparison,
    hamiltonian_broadcast_time,
)
from repro.apps.matmul import cannon_communication_steps, cannon_matmul
from repro.apps.relaxation import (
    GridRelaxation,
    relaxation_strategy_comparison,
)

__all__ = [
    "bitonic_communication_steps",
    "bitonic_sort",
    "cycle_neighbor_exchange",
    "binomial_broadcast_time",
    "broadcast_comparison",
    "hamiltonian_broadcast_time",
    "cannon_communication_steps",
    "cannon_matmul",
    "GridRelaxation",
    "relaxation_strategy_comparison",
]
