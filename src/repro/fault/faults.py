"""Link/node faults and fault-tolerant delivery over multipath embeddings (§1).

``FaultModel`` marks a subset of directed hypercube links and/or nodes as
dead, optionally only from a given simulation step onward (``active_from``
— the "kill k components mid-run" campaigns in :mod:`repro.scenarios`).
``multipath_delivery_experiment`` sends an IDA-dispersed message down the
``w`` edge-disjoint paths of each guest edge and reports, per edge, whether
enough pieces survived to reconstruct — the experiment behind bench E13.

``FaultyLinkModel`` is the historical name for the link-only form and
remains an alias.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro._compat import resolve_rng
from repro.core.embedding import MultiPathEmbedding
from repro.fault.ida import disperse, reconstruct
from repro.hypercube.graph import Hypercube

__all__ = [
    "FaultModel",
    "FaultyLinkModel",
    "multipath_delivery_experiment",
    "DeliveryReport",
]


@dataclass
class FaultModel:
    """Failed directed links and failed nodes of a hypercube.

    ``failed`` holds directed edge ids, ``failed_nodes`` node ids.  A hop
    ``u -> v`` is dead when its directed link failed or either endpoint
    failed.  ``active_from`` is the first simulation step at which the
    faults apply (0 = from the start, the static model); the simulators
    consult it via :meth:`active`, so a mid-run kill leaves packets that
    cleared the faulty region untouched.
    """

    host: Hypercube
    failed: Set[int] = field(default_factory=set)  # directed edge ids
    failed_nodes: Set[int] = field(default_factory=set)
    active_from: int = 0

    @classmethod
    def random(
        cls, host: Hypercube, failure_prob: float, seed: Optional[int] = None,
        symmetric: bool = True, rng: Optional[random.Random] = None,
    ) -> "FaultModel":
        """Fail each (undirected) link independently with ``failure_prob``.

        Deterministic given ``seed`` (default 0); pass ``rng`` instead to
        draw from a shared stream.
        """
        if not 0 <= failure_prob <= 1:
            raise ValueError("failure probability must be in [0, 1]")
        rng = resolve_rng(seed, rng)
        failed: Set[int] = set()
        for u in range(host.num_nodes):
            for d in range(host.n):
                v = u ^ (1 << d)
                if u < v and rng.random() < failure_prob:
                    failed.add(u * host.n + d)
                    if symmetric:
                        failed.add(v * host.n + d)
        return cls(host, failed)

    @classmethod
    def random_links(
        cls, host: Hypercube, k: int, seed: Optional[int] = None,
        rng: Optional[random.Random] = None, symmetric: bool = True,
        active_from: int = 0,
    ) -> "FaultModel":
        """Kill exactly ``k`` distinct undirected links, chosen uniformly.

        ``symmetric`` (the default) kills both directions of each link —
        the fail-stop model of the paper's reliability discussion.
        """
        total = host.num_edges // 2
        if not 0 <= k <= total:
            raise ValueError(f"need 0 <= k <= {total} undirected links, got {k}")
        rng = resolve_rng(seed, rng)
        undirected = [
            (u, d)
            for u in range(host.num_nodes)
            for d in range(host.n)
            if u < u ^ (1 << d)
        ]
        failed: Set[int] = set()
        for u, d in rng.sample(undirected, k):
            failed.add(u * host.n + d)
            if symmetric:
                failed.add((u ^ (1 << d)) * host.n + d)
        return cls(host, failed, active_from=active_from)

    @classmethod
    def random_nodes(
        cls, host: Hypercube, k: int, seed: Optional[int] = None,
        rng: Optional[random.Random] = None, active_from: int = 0,
    ) -> "FaultModel":
        """Kill exactly ``k`` distinct nodes, chosen uniformly."""
        if not 0 <= k <= host.num_nodes:
            raise ValueError(f"need 0 <= k <= {host.num_nodes} nodes, got {k}")
        rng = resolve_rng(seed, rng)
        nodes = set(rng.sample(range(host.num_nodes), k))
        return cls(host, set(), nodes, active_from=active_from)

    def merged(self, other: "FaultModel") -> "FaultModel":
        """Union of two fault sets on the same host (earliest activation)."""
        if other.host.n != self.host.n:
            raise ValueError("fault models live on different hosts")
        return FaultModel(
            self.host,
            self.failed | other.failed,
            self.failed_nodes | other.failed_nodes,
            min(self.active_from, other.active_from),
        )

    def active(self, step: int) -> bool:
        """True when the faults apply at simulation step ``step``."""
        return step >= self.active_from

    def hop_dead(self, eid: int) -> bool:
        """True when directed link ``eid`` or either endpoint has failed."""
        if eid in self.failed:
            return True
        if not self.failed_nodes:
            return False
        u, d = divmod(eid, self.host.n)
        return u in self.failed_nodes or (u ^ (1 << d)) in self.failed_nodes

    def dead_link_mask(self):
        """Boolean numpy mask over directed edge ids (fast-engine view)."""
        import numpy as np

        n = self.host.n
        dead = np.zeros(self.host.num_nodes * n, dtype=bool)
        if self.failed:
            dead[list(self.failed)] = True
        for node in self.failed_nodes:
            dead[node * n:(node + 1) * n] = True  # outgoing
            for d in range(n):
                dead[(node ^ (1 << d)) * n + d] = True  # incoming
        return dead

    def path_alive(self, path: Sequence[int]) -> bool:
        """True when no hop of ``path`` crosses a failed link or node.

        A zero-hop path never fails under link faults (nothing is
        transmitted); it does fail when its single node is dead.
        """
        if self.failed_nodes:
            if len(path) == 1:
                return path[0] not in self.failed_nodes
            if any(v in self.failed_nodes for v in path):
                return False
        return all(
            self.host.edge_id(a, b) not in self.failed
            for a, b in zip(path, path[1:])
        )


# the historical link-only name; same class, empty failed_nodes
FaultyLinkModel = FaultModel


@dataclass
class DeliveryReport:
    """Outcome of a fault-tolerant delivery experiment."""

    total_edges: int
    delivered: int
    surviving_paths: Dict[Tuple, int]
    pieces_needed: int

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.total_edges if self.total_edges else 1.0


def multipath_delivery_experiment(
    emb: MultiPathEmbedding,
    faults: FaultModel,
    message: bytes = b"multiple paths in hypercubes",
    pieces_needed: int | None = None,
) -> DeliveryReport:
    """IDA-protected delivery across every guest edge of ``emb``.

    Each guest edge disperses ``message`` into one piece per path
    (``w = number of paths``) and needs any ``pieces_needed`` (default
    ``ceil(w/2)``) surviving paths to reconstruct.  Co-located edges (trivial
    paths) always deliver.
    """
    delivered = 0
    surviving: Dict[Tuple, int] = {}
    total = 0
    for edge, paths in emb.edge_paths.items():
        total += 1
        if len(paths) == 1 and len(paths[0]) == 1:
            surviving[edge] = 1
            delivered += 1
            continue
        w = len(paths)
        m = pieces_needed if pieces_needed is not None else -(-w // 2)
        m = min(m, w)
        pieces = disperse(message, w, m)
        alive = [
            pieces[i] for i, p in enumerate(paths) if faults.path_alive(p)
        ]
        surviving[edge] = len(alive)
        if len(alive) >= m:
            if reconstruct(alive, w, m) != message:
                raise AssertionError("IDA reconstruction mismatch")
            delivered += 1
    return DeliveryReport(total, delivered, surviving, pieces_needed or 0)


def redundancy_tradeoff_sweep(
    emb: MultiPathEmbedding,
    failure_prob: float,
    trials: int = 3,
    message: bytes = b"routing multiple paths",
):
    """Reliability vs bandwidth across the IDA redundancy knob.

    For each threshold ``m`` (pieces needed out of the ``w`` paths), returns
    the measured delivery rate and the bandwidth overhead ``w/m`` — the
    trade-off Rabin's scheme exposes and the paper's width makes available.
    """
    width = emb.width
    rows = []
    for m in range(1, width + 1):
        total = 0.0
        for seed in range(trials):
            faults = FaultModel.random(emb.host, failure_prob, seed=seed)
            rep = multipath_delivery_experiment(
                emb, faults, message, pieces_needed=m
            )
            total += rep.delivery_rate
        rows.append(
            {
                "pieces_needed": m,
                "overhead": round(width / m, 3),
                "delivery_rate": round(total / trials, 4),
            }
        )
    return rows
