"""Link faults and fault-tolerant delivery over multipath embeddings (§1).

``FaultyLinkModel`` marks a random subset of directed hypercube links as
dead.  ``multipath_delivery_experiment`` sends an IDA-dispersed message down
the ``w`` edge-disjoint paths of each guest edge and reports, per edge,
whether enough pieces survived to reconstruct — the experiment behind bench
E13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro._compat import resolve_rng
from repro.core.embedding import MultiPathEmbedding
from repro.fault.ida import disperse, reconstruct
from repro.hypercube.graph import Hypercube

__all__ = ["FaultyLinkModel", "multipath_delivery_experiment", "DeliveryReport"]


@dataclass
class FaultyLinkModel:
    """A set of failed directed links of a hypercube."""

    host: Hypercube
    failed: Set[int] = field(default_factory=set)  # directed edge ids

    @classmethod
    def random(
        cls, host: Hypercube, failure_prob: float, seed: Optional[int] = None,
        symmetric: bool = True, rng: Optional[random.Random] = None,
    ) -> "FaultyLinkModel":
        """Fail each (undirected) link independently with ``failure_prob``.

        Deterministic given ``seed`` (default 0); pass ``rng`` instead to
        draw from a shared stream.
        """
        if not 0 <= failure_prob <= 1:
            raise ValueError("failure probability must be in [0, 1]")
        rng = resolve_rng(seed, rng)
        failed: Set[int] = set()
        for u in range(host.num_nodes):
            for d in range(host.n):
                v = u ^ (1 << d)
                if u < v and rng.random() < failure_prob:
                    failed.add(u * host.n + d)
                    if symmetric:
                        failed.add(v * host.n + d)
        return cls(host, failed)

    def path_alive(self, path: Sequence[int]) -> bool:
        """True when no hop of ``path`` crosses a failed link."""
        return all(
            self.host.edge_id(a, b) not in self.failed
            for a, b in zip(path, path[1:])
        )


@dataclass
class DeliveryReport:
    """Outcome of a fault-tolerant delivery experiment."""

    total_edges: int
    delivered: int
    surviving_paths: Dict[Tuple, int]
    pieces_needed: int

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.total_edges if self.total_edges else 1.0


def multipath_delivery_experiment(
    emb: MultiPathEmbedding,
    faults: FaultyLinkModel,
    message: bytes = b"multiple paths in hypercubes",
    pieces_needed: int | None = None,
) -> DeliveryReport:
    """IDA-protected delivery across every guest edge of ``emb``.

    Each guest edge disperses ``message`` into one piece per path
    (``w = number of paths``) and needs any ``pieces_needed`` (default
    ``ceil(w/2)``) surviving paths to reconstruct.  Co-located edges (trivial
    paths) always deliver.
    """
    delivered = 0
    surviving: Dict[Tuple, int] = {}
    total = 0
    for edge, paths in emb.edge_paths.items():
        total += 1
        if len(paths) == 1 and len(paths[0]) == 1:
            surviving[edge] = 1
            delivered += 1
            continue
        w = len(paths)
        m = pieces_needed if pieces_needed is not None else -(-w // 2)
        m = min(m, w)
        pieces = disperse(message, w, m)
        alive = [
            pieces[i] for i, p in enumerate(paths) if faults.path_alive(p)
        ]
        surviving[edge] = len(alive)
        if len(alive) >= m:
            if reconstruct(alive, w, m) != message:
                raise AssertionError("IDA reconstruction mismatch")
            delivered += 1
    return DeliveryReport(total, delivered, surviving, pieces_needed or 0)


def redundancy_tradeoff_sweep(
    emb: MultiPathEmbedding,
    failure_prob: float,
    trials: int = 3,
    message: bytes = b"routing multiple paths",
):
    """Reliability vs bandwidth across the IDA redundancy knob.

    For each threshold ``m`` (pieces needed out of the ``w`` paths), returns
    the measured delivery rate and the bandwidth overhead ``w/m`` — the
    trade-off Rabin's scheme exposes and the paper's width makes available.
    """
    width = emb.width
    rows = []
    for m in range(1, width + 1):
        total = 0.0
        for seed in range(trials):
            faults = FaultyLinkModel.random(emb.host, failure_prob, seed=seed)
            rep = multipath_delivery_experiment(
                emb, faults, message, pieces_needed=m
            )
            total += rep.delivery_rate
        rows.append(
            {
                "pieces_needed": m,
                "overhead": round(width / m, 3),
                "delivery_rate": round(total / trials, 4),
            }
        )
    return rows
