"""GF(2^8) arithmetic built from scratch (substrate for Rabin's IDA).

The field is F_2[x] / (x^8 + x^4 + x^3 + x + 1) (the AES polynomial).  Log
and antilog tables over the generator 3 make multiplication and inversion
O(1) table lookups; numpy-vectorized variants serve the matrix kernels in
:mod:`repro.fault.ida`.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["GF256"]

_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


class GF256:
    """The Galois field GF(2^8) with table-based arithmetic."""

    _exp: List[int] = []
    _log: List[int] = []

    @classmethod
    def _init_tables(cls) -> None:
        if cls._exp:
            return
        exp = [0] * 512
        log = [0] * 256
        x = 1
        for i in range(255):
            exp[i] = x
            log[x] = i
            # multiply x by the generator 3 = x + 1: x*3 = (x << 1) ^ x
            hi = x << 1
            if hi & 0x100:
                hi ^= _POLY
            x = hi ^ x
        for i in range(255, 512):
            exp[i] = exp[i - 255]
        cls._exp = exp
        cls._log = log

    # -- scalar ops ----------------------------------------------------------

    @classmethod
    def add(cls, a: int, b: int) -> int:
        """Addition = XOR (characteristic 2); also subtraction."""
        return (a ^ b) & 0xFF

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        cls._init_tables()
        if a == 0 or b == 0:
            return 0
        return cls._exp[cls._log[a] + cls._log[b]]

    @classmethod
    def inv(cls, a: int) -> int:
        cls._init_tables()
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return cls._exp[255 - cls._log[a]]

    @classmethod
    def div(cls, a: int, b: int) -> int:
        return cls.mul(a, cls.inv(b))

    @classmethod
    def pow(cls, a: int, k: int) -> int:
        cls._init_tables()
        if a == 0:
            return 0 if k else 1
        return cls._exp[(cls._log[a] * k) % 255]

    # -- vectorized ops ------------------------------------------------------

    @classmethod
    def mul_vec(cls, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise product of two uint8 arrays."""
        cls._init_tables()
        exp = np.asarray(cls._exp, dtype=np.int64)
        log = np.asarray(cls._log, dtype=np.int64)
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = exp[log[a] + log[b]]
        out = np.where((a == 0) | (b == 0), 0, out)
        return out.astype(np.uint8)

    @classmethod
    def matvec(cls, matrix: np.ndarray, vec: np.ndarray) -> np.ndarray:
        """GF(256) matrix-vector product (XOR-accumulated)."""
        rows = []
        for r in range(matrix.shape[0]):
            prod = cls.mul_vec(matrix[r], vec)
            acc = 0
            for p in prod:
                acc ^= int(p)
            rows.append(acc)
        return np.asarray(rows, dtype=np.uint8)

    @classmethod
    def matmul(cls, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """GF(256) matrix product."""
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
        for j in range(b.shape[1]):
            out[:, j] = cls.matvec(a, b[:, j])
        return out

    @classmethod
    def solve(cls, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs`` by Gaussian elimination over GF(256).

        ``rhs`` may be a matrix (multiple right-hand sides).
        """
        cls._init_tables()
        m = matrix.astype(np.uint8).copy()
        r = rhs.astype(np.uint8).copy()
        if r.ndim == 1:
            r = r[:, None]
        size = m.shape[0]
        if m.shape[1] != size:
            raise ValueError("matrix must be square")
        for col in range(size):
            pivot = next(
                (row for row in range(col, size) if m[row, col] != 0), None
            )
            if pivot is None:
                raise np.linalg.LinAlgError("matrix is singular over GF(256)")
            if pivot != col:
                m[[col, pivot]] = m[[pivot, col]]
                r[[col, pivot]] = r[[pivot, col]]
            inv = cls.inv(int(m[col, col]))
            inv_arr = np.full(m.shape[1], inv, dtype=np.uint8)
            m[col] = cls.mul_vec(m[col], inv_arr)
            r[col] = cls.mul_vec(r[col], np.full(r.shape[1], inv, dtype=np.uint8))
            for row in range(size):
                if row != col and m[row, col] != 0:
                    factor = int(m[row, col])
                    f_m = np.full(m.shape[1], factor, dtype=np.uint8)
                    f_r = np.full(r.shape[1], factor, dtype=np.uint8)
                    m[row] ^= cls.mul_vec(m[col], f_m)
                    r[row] ^= cls.mul_vec(r[col], f_r)
        return r if rhs.ndim > 1 else r[:, 0]
