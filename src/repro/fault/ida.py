"""Rabin's Information Dispersal Algorithm over GF(256) (paper Section 1).

A message of bytes is split into ``w`` *pieces*, each of size
``ceil(len/m)``, such that **any** ``m`` of the ``w`` pieces reconstruct the
message exactly.  Sent down the ``w`` edge-disjoint paths of a
multiple-path embedding, delivery survives up to ``w - m`` path failures
with a bandwidth overhead of only ``w/m`` — the fault-tolerance application
the paper highlights for its embeddings.

Encoding: pad the message to ``m * L`` bytes, view it as an ``m x L``
matrix ``B``, and send piece ``i = row i of A @ B`` where ``A`` is a
``w x m`` Cauchy matrix (every ``m x m`` submatrix invertible).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.fault.gf256 import GF256

__all__ = ["disperse", "reconstruct", "cauchy_matrix"]


def cauchy_matrix(w: int, m: int) -> np.ndarray:
    """A ``w x m`` Cauchy matrix over GF(256): ``A[i, j] = 1/(x_i + y_j)``.

    With distinct ``x_i`` and ``y_j`` (and no ``x_i = y_j``), every square
    submatrix of a Cauchy matrix is nonsingular — exactly the property IDA
    needs.  Requires ``w + m <= 256``.
    """
    if w < 1 or m < 1 or w + m > 256:
        raise ValueError(f"need 1 <= m, w with w + m <= 256, got w={w} m={m}")
    xs = list(range(m, m + w))
    ys = list(range(m))
    a = np.zeros((w, m), dtype=np.uint8)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            a[i, j] = GF256.inv(x ^ y)
    return a


def disperse(message: bytes, w: int, m: int) -> List[Tuple[int, bytes]]:
    """Split ``message`` into ``w`` pieces, any ``m`` of which reconstruct it.

    Returns ``(piece_index, piece_bytes)`` pairs.  Piece length is
    ``ceil((len(message) + 4) / m)`` — four bytes of length header make the
    original length recoverable after padding.
    """
    if m < 1 or w < m:
        raise ValueError(f"need 1 <= m <= w, got m={m} w={w}")
    framed = len(message).to_bytes(4, "big") + message
    cols = -(-len(framed) // m)
    padded = framed + b"\0" * (m * cols - len(framed))
    b = np.frombuffer(padded, dtype=np.uint8).reshape(m, cols)
    a = cauchy_matrix(w, m)
    pieces = GF256.matmul(a, b)
    return [(i, pieces[i].tobytes()) for i in range(w)]


def reconstruct(pieces: Sequence[Tuple[int, bytes]], w: int, m: int) -> bytes:
    """Rebuild the message from any ``m`` of the ``w`` pieces.

    Raises ``ValueError`` when fewer than ``m`` distinct pieces are given.
    """
    distinct = {}
    for idx, data in pieces:
        if not 0 <= idx < w:
            raise ValueError(f"piece index {idx} out of range")
        distinct[idx] = data
    if len(distinct) < m:
        raise ValueError(f"need at least {m} pieces, got {len(distinct)}")
    chosen = sorted(distinct.items())[:m]
    a = cauchy_matrix(w, m)
    sub = a[[idx for idx, _ in chosen], :]
    stacked = np.stack(
        [np.frombuffer(data, dtype=np.uint8) for _, data in chosen]
    )
    b = GF256.solve(sub, stacked)
    framed = b.T.reshape(-1).tobytes() if b.ndim > 1 else b.tobytes()
    # rows of b are the original matrix rows; flatten row-major
    framed = b.reshape(m, -1).tobytes()
    length = int.from_bytes(framed[:4], "big")
    if length > len(framed) - 4:
        raise ValueError("corrupt pieces: length header out of range")
    return framed[4 : 4 + length]
