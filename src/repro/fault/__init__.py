"""Fault tolerance along edge-disjoint paths (paper Section 1).

"if communication links are unreliable multiple paths can be used to
increase fault-tolerance.  For example, Rabin's IDA scheme [22] can be
implemented along the independent paths."

* :mod:`repro.fault.gf256` — GF(2^8) field arithmetic (from scratch);
* :mod:`repro.fault.ida` — Rabin's Information Dispersal Algorithm: split a
  message into ``w`` pieces such that any ``m`` reconstruct it;
* :mod:`repro.fault.faults` — link/node fault injection (static or
  activated at a mid-run step) over a multipath embedding and end-to-end
  delivery experiments.
"""

from repro.fault.gf256 import GF256
from repro.fault.ida import disperse, reconstruct
from repro.fault.faults import (
    FaultModel,
    FaultyLinkModel,
    multipath_delivery_experiment,
    redundancy_tradeoff_sweep,
)

__all__ = [
    "GF256",
    "disperse",
    "reconstruct",
    "FaultModel",
    "FaultyLinkModel",
    "multipath_delivery_experiment",
    "redundancy_tradeoff_sweep",
]
