"""Small path utilities shared by embeddings and routing."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["erase_loops"]


def erase_loops(path: Sequence[int]) -> Tuple[int, ...]:
    """Loop-erase a walk into a simple path with the same endpoints.

    Only removes edges, so applying it to each member of a family of
    pairwise edge-disjoint walks keeps the family edge-disjoint.
    """
    out: List[int] = []
    seen: Dict[int, int] = {}
    for node in path:
        if node in seen:
            for dropped in out[seen[node] + 1 :]:
                del seen[dropped]
            del out[seen[node] + 1 :]
        else:
            seen[node] = len(out)
            out.append(node)
    return tuple(out)


def edge_disjoint_paths(n: int, u: int, v: int, count: int):
    """``count`` pairwise edge-disjoint paths from ``u`` to ``v`` in ``Q_n``.

    Classical construction: with ``D`` the set of differing dimensions
    (``d = |D|``), the first ``d`` paths cross ``D`` in its ``d`` cyclic
    rotations (pairwise internally vertex-disjoint); each further path
    detours out and back through a distinct non-``D`` dimension around a
    crossing of ``D`` (length ``d + 2``).  Supports ``count <= n``.

    Returns a list of node tuples.  Raises for ``u == v`` or
    ``count > n``.
    """
    if u == v:
        raise ValueError("endpoints must differ")
    if not 1 <= count <= n:
        raise ValueError(f"need 1 <= count <= n, got {count}")
    diff = [d for d in range(n) if (u ^ v) >> d & 1]
    other = [d for d in range(n) if not (u ^ v) >> d & 1]
    paths = []
    for i in range(min(count, len(diff))):
        order = diff[i:] + diff[:i]
        node, path = u, [u]
        for d in order:
            node ^= 1 << d
            path.append(node)
        paths.append(tuple(path))
    for j in range(count - len(paths)):
        e = 1 << other[j]
        node, path = u ^ e, [u, u ^ e]
        for d in diff:
            node ^= 1 << d
            path.append(node)
        path.append(v)
        paths.append(tuple(path))
    return paths
