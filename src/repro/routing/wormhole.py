"""Wormhole (cut-through) routing simulator (paper Section 7).

A *worm* is a message of ``M`` flits following a fixed path.  The head
acquires links one at a time; flits pipeline behind it, one flit per link
per step, with ``buffer_capacity`` flits of slack per intermediate node
(1 = classical wormhole).  A link stays reserved from the step the head
crosses it until the tail (the ``M``-th flit) has crossed.  Blocked worms
stall in place, holding their links — exactly the behavior that makes
store-and-forward algorithms pay ``Theta(n M)`` on the hypercube and that
the multiple-copy/multiple-path embeddings avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hypercube.graph import Hypercube

__all__ = ["Worm", "WormholeSimulator", "WormholeDeadlock"]


class WormholeDeadlock(RuntimeError):
    """No worm can make progress: a cyclic link-wait was detected.

    Classical 1-flit wormhole deadlocks on routes with cyclic channel
    dependencies (e.g. the wrapped CCC level loops).  Callers can avoid it
    with dimension-ordered routes or per-node message buffers
    (``buffer_capacity >= num_flits``, i.e. virtual cut-through).
    """


@dataclass
class Worm:
    """A wormhole message: ``num_flits`` flits along ``path``."""

    path: Tuple[int, ...]
    num_flits: int
    release_step: int = 1
    ident: int = -1
    # flits_crossed[i] = number of flits that have crossed link i
    flits_crossed: List[int] = field(default_factory=list)
    head_link: int = -1  # highest link index acquired
    done_step: Optional[int] = None

    def __post_init__(self):
        if len(self.path) < 2:
            raise ValueError("worm path needs at least one link")
        if self.num_flits < 1:
            raise ValueError("worm needs at least one flit")
        self.flits_crossed = [0] * (len(self.path) - 1)

    @property
    def num_links(self) -> int:
        return len(self.path) - 1


class WormholeSimulator:
    """Flit-level synchronous wormhole simulator."""

    def __init__(self, host: Hypercube, buffer_capacity: int = 1):
        if buffer_capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.host = host
        self.buffer_capacity = buffer_capacity
        self.worms: List[Worm] = []
        self._owner: Dict[int, int] = {}  # link id -> worm ident

    def inject(self, path: Sequence[int], num_flits: int, release_step: int = 1) -> Worm:
        worm = Worm(tuple(path), num_flits, release_step, ident=len(self.worms))
        self.worms.append(worm)
        return worm

    def _link_id(self, worm: Worm, i: int) -> int:
        return self.host.edge_id(worm.path[i], worm.path[i + 1])

    def run(
        self, max_steps: int = 10_000_000, *, recorder: Optional[Any] = None
    ) -> int:
        """Run until all worms are delivered; returns the last arrival step.

        ``recorder`` (a :class:`repro.obs.LinkRecorder`-shaped sink)
        receives one ``on_transmit`` per flit-link crossing — so a link's
        recorded transmission count is the number of flits it carried — and
        one ``on_deliver`` per worm completion.  ``None`` (the default)
        keeps the flit loop recording-free.
        """
        active = sorted(self.worms, key=lambda w: w.ident)
        # count only undelivered worms: both phase loops skip delivered ones,
        # so counting them would leave a repeat run() spinning to max_steps
        remaining = sum(1 for w in active if w.done_step is None)
        step = 0
        last_done = max(
            (w.done_step for w in active if w.done_step is not None), default=0
        )
        while remaining > 0:
            if not any(
                w.done_step is None and w.release_step <= step + 1 for w in active
            ):
                # nothing alive is released yet: jump to the next release
                # instead of spinning through guaranteed-empty steps
                step = (
                    min(w.release_step for w in active if w.done_step is None) - 1
                )
            step += 1
            if step > max_steps:
                raise RuntimeError(f"wormhole simulation exceeded {max_steps} steps")
            progressed = False
            # Phase 1: head acquisitions (deterministic order = worm id).
            for worm in active:
                if worm.done_step is not None or step < worm.release_step:
                    continue
                if worm.head_link == worm.num_links - 1:
                    continue  # head already at destination side
                nxt = worm.head_link + 1
                # the head flit must be available at the node before link nxt
                if nxt > 0 and worm.flits_crossed[nxt - 1] == 0:
                    continue
                lid = self._link_id(worm, nxt)
                if self._owner.get(lid) is None:
                    self._owner[lid] = worm.ident
                    worm.head_link = nxt
                    progressed = True
            # Phase 2: flit movement — one flit per owned link, subject to
            # upstream availability and downstream buffer slack.
            for worm in active:
                if worm.done_step is not None or step < worm.release_step:
                    continue
                # advance from head side to tail side so same-step moves don't
                # cascade a single flit across several links
                for i in range(worm.head_link, -1, -1):
                    crossed = worm.flits_crossed[i]
                    if crossed >= worm.num_flits:
                        continue  # tail already past this link
                    upstream = (
                        worm.num_flits if i == 0 else worm.flits_crossed[i - 1]
                    )
                    if upstream - crossed < 1:
                        continue  # no flit waiting before this link
                    if i < worm.num_links - 1:
                        slack = crossed - worm.flits_crossed[i + 1]
                        if slack >= self.buffer_capacity:
                            continue  # downstream node buffer is full
                    worm.flits_crossed[i] = crossed + 1
                    progressed = True
                    if recorder:
                        recorder.on_transmit(self._link_id(worm, i), step)
                    if worm.flits_crossed[i] == worm.num_flits:
                        self._owner.pop(self._link_id(worm, i), None)
                if worm.flits_crossed[-1] == worm.num_flits:
                    worm.done_step = step
                    last_done = step
                    remaining -= 1
                    if recorder:
                        recorder.on_deliver(step)
            if not progressed and all(step >= w.release_step for w in active):
                stuck = [w.ident for w in active if w.done_step is None]
                raise WormholeDeadlock(
                    f"{len(stuck)} worms deadlocked at step {step}"
                )
        return last_done
