"""Batched tensor simulation: B independent runs advance in one kernel.

``FastStoreForward``/``FastWormhole`` vectorize *within* one schedule; fleet
experiments (scenario campaigns, saturation sweeps, nightly QA fuzz) replay
thousands of independent schedules and still pay one Python step loop per
run.  The engines here stack B runs — *lanes* — into flat tensors and
arbitrate + advance every lane per tick in a few numpy ops, so the Python
overhead of a step is amortized over the whole fleet.

The trick is a **lane offset**: packet/worm rows carry a lane id, and every
requested link id is shifted by ``lane * num_links`` before arbitration.
Lanes can never collide on a shifted link, so the scalar engines' winner
kernels (the ``lexsort`` group-head pick of ``FastStoreForward``, the
``np.unique`` lowest-ident pick of ``FastWormhole``) arbitrate all lanes at
once and per-lane semantics are untouched.  Global injection order is
lane-major, so a global priority array preserves each lane's local
injection order; the global idle-jump only fires when *no* lane has a
ready packet, and an idle step is a per-lane no-op, so every lane sees
exactly the step numbers the scalar engine would have simulated.

Per-lane semantics are bit-identical to the scalar fast engines (which are
themselves differentially tested against the reference engines):

* store-and-forward: priority tie-break, fail-stop ``FaultModel`` drops
  (``done_steps`` of ``-1``) including ``active_from`` mid-run activation,
  with an independent fault model per lane;
* wormhole: two-phase head-acquisition/flit-advance steps, per-lane
  deadlock detection — a deadlocked lane freezes with the scalar engines'
  message while the other lanes keep running.

``repro.qa`` referees the identity on fuzzed batches
(:func:`repro.qa.differential.batched_differential_check`) with shrinking
to a minimal failing batch; ``repro bench`` gates the aggregate speedup
(workload ``batched:q12:wormhole-x100`` in ``BENCH_perf.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hypercube.graph import Hypercube
from repro.hypercube.pathcode import path_edge_matrix
from repro.obs.profile import profile_span
from repro.routing.api import ScheduleItem, SimResult, normalize_schedule
from repro.routing.wormhole import Worm, WormholeDeadlock

__all__ = ["BatchedStoreForward", "BatchedWormhole", "WormLaneOutcome"]

_NEVER = np.iinfo(np.int64).max


def _per_lane_faults(faults: Any, lanes: int) -> List[Any]:
    """Normalize ``faults`` to one entry per lane.

    Accepts ``None`` (no faults anywhere), a single ``FaultModel``
    (broadcast to every lane), or a sequence of per-lane
    ``Optional[FaultModel]``.
    """
    if faults is None:
        return [None] * lanes
    if hasattr(faults, "dead_link_mask"):
        return [faults] * lanes
    per_lane = list(faults)
    if len(per_lane) != lanes:
        raise ValueError(
            f"need one fault model per lane: got {len(per_lane)} for "
            f"{lanes} lane(s)"
        )
    return per_lane


def _per_lane_recorders(recorders: Any, lanes: int) -> List[Any]:
    """Normalize ``recorders`` to one (possibly None) sink per lane.

    A single recorder is *not* broadcast — merging every lane's counts
    into one sink silently corrupts per-run congestion profiles, so a
    shared sink must be passed explicitly per lane.
    """
    if recorders is None:
        return [None] * lanes
    if not isinstance(recorders, (list, tuple)):
        raise ValueError(
            "recorders must be a per-lane sequence (one recorder or None "
            "per lane); a single recorder is not broadcast because merging "
            "lanes corrupts per-run congestion profiles"
        )
    per_lane = list(recorders)
    if len(per_lane) != lanes:
        raise ValueError(
            f"need one recorder (or None) per lane: got {len(per_lane)} "
            f"for {lanes} lane(s)"
        )
    return per_lane


class BatchedStoreForward:
    """Store-and-forward simulation of B independent schedules at once."""

    engine = "batched-store-forward"

    def __init__(self, host: Hypercube):
        self.host = host

    def run(
        self,
        schedule: Optional[Iterable[ScheduleItem]] = None,
        *,
        max_steps: int = 10_000_000,
        recorder: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> SimResult:
        """Run one schedule (a batch of one lane) — the Simulator protocol."""
        if schedule is None:
            raise ValueError(
                "BatchedStoreForward requires a schedule; the deprecated "
                "inject()/run() style is not supported"
            )
        return self.run_many(
            [schedule], max_steps=max_steps, recorders=[recorder],
            faults=[faults],
        )[0]

    def run_many(
        self,
        schedules: Sequence[Iterable[ScheduleItem]],
        *,
        max_steps: int = 10_000_000,
        recorders: Optional[Sequence[Optional[Any]]] = None,
        faults: Optional[Any] = None,
    ) -> List[SimResult]:
        """Run every schedule to completion; one :class:`SimResult` per lane.

        Each lane is an independent simulation: its own packets, its own
        optional ``recorder`` sink, its own optional ``FaultModel`` (pass a
        single model to apply the same faults to every lane, or a per-lane
        sequence).  Results are field-identical to running each lane through
        :class:`~repro.routing.fast_simulator.FastStoreForward` —
        ``measured()`` equality is asserted by the QA batched differential.
        """
        lanes = [normalize_schedule(s) for s in schedules]
        for reqs in lanes:
            if any(r.service_time != 1 for r in reqs):
                raise ValueError(
                    "BatchedStoreForward supports unit service time only; "
                    "use StoreForwardSimulator for atomic multi-packet "
                    "messages"
                )
        recs = _per_lane_recorders(recorders, len(lanes))
        fault_models = _per_lane_faults(faults, len(lanes))
        with profile_span(
            "sim.batched_store_forward",
            lanes=len(lanes),
            packets=sum(len(reqs) for reqs in lanes),
        ):
            return self._run_lanes(lanes, max_steps, recs, fault_models)

    def _priorities(self, total: int) -> np.ndarray:
        """Packet arbitration priorities: lower wins its link.

        Global injection order — lane-major, so within a lane it is exactly
        the scalar engines' injection-order priority.  This is the
        arbitration-policy seam the QA mutation tests sabotage.
        """
        return np.arange(total, dtype=np.int64)

    def _run_lanes(
        self,
        lanes: List[List[Any]],
        max_steps: int,
        recorders: List[Any],
        fault_models: List[Any],
    ) -> List[SimResult]:
        num_lanes = len(lanes)
        counts = np.array([len(reqs) for reqs in lanes], dtype=np.int64)
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        total = int(offsets[-1])
        n = self.host.n
        links = self.host.num_edges  # directed links per lane

        paths = [r.path for reqs in lanes for r in reqs]
        release = np.array(
            [r.release_step for reqs in lanes for r in reqs], dtype=np.int64
        )
        lane = np.repeat(np.arange(num_lanes, dtype=np.int64), counts)

        lane_steps = np.zeros(num_lanes, dtype=np.int64)
        link_counts = None
        if total == 0:
            done_step = np.zeros(0, dtype=np.int64)
        else:
            done_step = np.zeros(total, dtype=np.int64)
            edges, lengths = path_edge_matrix(n, paths)
            active = lengths > 0
            hop = np.zeros(total, dtype=np.int64)
            priority = self._priorities(total)
            lane_remaining = np.bincount(lane[active], minlength=num_lanes)

            # per-lane fail-stop faults: one flat (lanes * links) dead mask
            # plus a per-lane activation step, so a single comparison arms
            # each lane independently mid-run
            dead_flat = None
            fault_from = None
            if any(
                f is not None and (f.failed or f.failed_nodes)
                for f in fault_models
            ):
                dead_flat = np.zeros(num_lanes * links, dtype=bool)
                fault_from = np.full(num_lanes, _NEVER, dtype=np.int64)
                for b, f in enumerate(fault_models):
                    if f is not None and (f.failed or f.failed_nodes):
                        dead_flat[b * links:(b + 1) * links] = (
                            f.dead_link_mask()
                        )
                        fault_from[b] = f.active_from

            record_any = any(bool(r) for r in recorders)
            link_counts = (
                np.zeros(num_lanes * links, dtype=np.int64)
                if record_any
                else None
            )

            step = 0
            remaining = int(active.sum())
            while remaining > 0:
                step += 1
                if step > max_steps:
                    raise RuntimeError(
                        f"simulation exceeded {max_steps} steps"
                    )
                ready = active & (release <= step)
                idx = np.nonzero(ready)[0]
                if idx.size == 0:
                    # no lane has a ready packet: jump to the next release
                    # (idle steps are per-lane no-ops, so lane-local step
                    # numbers stay identical to the scalar engines)
                    step = int(release[active].min()) - 1
                    continue
                # lane-shifted link ids: lanes never collide, so one
                # arbitration pass serves the whole fleet
                want = lane[idx] * links + edges[idx, hop[idx]]
                if dead_flat is not None:
                    armed = step >= fault_from[lane[idx]]
                    doomed = armed & dead_flat[want]
                    if doomed.any():
                        kill = idx[doomed]
                        active[kill] = False
                        done_step[kill] = -1
                        remaining -= int(kill.size)
                        dec = np.bincount(lane[kill], minlength=num_lanes)
                        lane_remaining -= dec
                        lane_steps[(dec > 0) & (lane_remaining == 0)] = step
                        idx = idx[~doomed]
                        want = want[~doomed]
                        if idx.size == 0:
                            continue
                # one winner per (lane, link): sort by (link, priority),
                # take group heads — the scalar winner rule per lane
                order = np.lexsort((priority[idx], want))
                sorted_links = want[order]
                head = np.empty(order.size, dtype=bool)
                head[0] = True
                np.not_equal(
                    sorted_links[1:], sorted_links[:-1], out=head[1:]
                )
                winners = idx[order[head]]
                if link_counts is not None:
                    link_counts[sorted_links[head]] += 1
                hop[winners] += 1
                finished = winners[hop[winners] == lengths[winners]]
                if finished.size:
                    active[finished] = False
                    done_step[finished] = step
                    remaining -= int(finished.size)
                    dec = np.bincount(lane[finished], minlength=num_lanes)
                    lane_remaining -= dec
                    lane_steps[(dec > 0) & (lane_remaining == 0)] = step

        results: List[SimResult] = []
        for b in range(num_lanes):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            lane_done = done_step[lo:hi]
            rec = recorders[b]
            if rec:
                if link_counts is not None:
                    row = link_counts[b * links:(b + 1) * links]
                    used = np.nonzero(row)[0]
                    rec.add_link_counts(used, row[used])
                rec.add_deliveries(lane_done[lane_done >= 0])
            results.append(
                SimResult(
                    makespan=(
                        max(0, int(lane_done.max())) if lane_done.size else 0
                    ),
                    delivered=int((lane_done >= 0).sum()),
                    injected=hi - lo,
                    steps=int(lane_steps[b]),
                    done_steps=tuple(int(d) for d in lane_done),
                    engine=self.engine,
                    recorder=rec,
                )
            )
        return results


# one worm: (path, num_flits, release_step)
WormItem = Tuple[Sequence[int], int, int]


@dataclass
class WormLaneOutcome:
    """One lane's complete wormhole outcome.

    ``makespan`` is the lane's last arrival step, or ``None`` when the lane
    deadlocked (``deadlock`` then carries the scalar engines' message,
    ``"<k> worms deadlocked at step <s>"``).  ``worms`` holds the final
    per-worm state exactly as the scalar engines would leave it — including
    the partial ``flits_crossed``/``head_link`` of a stuck worm — and
    ``owner`` maps still-held link ids to lane-local worm idents.
    """

    makespan: Optional[int]
    deadlock: Optional[str]
    worms: List[Worm] = field(default_factory=list)
    owner: Dict[int, int] = field(default_factory=dict)

    @property
    def deadlocked(self) -> bool:
        return self.deadlock is not None


class BatchedWormhole:
    """Flit-level wormhole simulation of B independent schedules at once."""

    engine = "batched-wormhole"

    def __init__(self, host: Hypercube, buffer_capacity: int = 1):
        if buffer_capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.host = host
        self.buffer_capacity = buffer_capacity

    def run(
        self,
        schedule: Optional[Iterable[WormItem]] = None,
        *,
        max_steps: int = 10_000_000,
        recorder: Optional[Any] = None,
    ) -> SimResult:
        """Run one worm schedule (a batch of one lane).

        Unlike the packet engines, schedule items are
        ``(path, num_flits, release_step)`` worm triples.  Raises
        :class:`~repro.routing.wormhole.WormholeDeadlock` exactly when the
        scalar wormhole engines would; otherwise returns a
        :class:`~repro.routing.api.SimResult` with one delivery per worm.
        """
        if schedule is None:
            raise ValueError("BatchedWormhole requires a worm schedule")
        [outcome] = self.run_many(
            [schedule], max_steps=max_steps, recorders=[recorder]
        )
        if outcome.deadlock is not None:
            raise WormholeDeadlock(outcome.deadlock)
        done = [
            -1 if w.done_step is None else int(w.done_step)
            for w in outcome.worms
        ]
        makespan = int(outcome.makespan or 0)
        return SimResult(
            makespan=makespan,
            delivered=sum(1 for d in done if d >= 0),
            injected=len(done),
            steps=makespan,
            done_steps=tuple(done),
            engine=self.engine,
            recorder=recorder,
        )

    def run_many(
        self,
        schedules: Sequence[Iterable[WormItem]],
        *,
        max_steps: int = 10_000_000,
        recorders: Optional[Sequence[Optional[Any]]] = None,
    ) -> List[WormLaneOutcome]:
        """Run every worm schedule; one :class:`WormLaneOutcome` per lane.

        A lane that deadlocks freezes at its deadlock step — its outcome
        records the scalar engines' deadlock message and partial state —
        while every other lane keeps running to completion.
        """
        lanes: List[List[Worm]] = []
        for sched in schedules:
            lanes.append(
                [
                    Worm(tuple(path), int(flits), int(release), ident=i)
                    for i, (path, flits, release) in enumerate(sched)
                ]
            )
        recs = _per_lane_recorders(recorders, len(lanes))
        with profile_span(
            "sim.batched_wormhole",
            lanes=len(lanes),
            worms=sum(len(w) for w in lanes),
        ):
            return self._run_lanes(lanes, max_steps, recs)

    def _run_lanes(
        self,
        lanes: List[List[Worm]],
        max_steps: int,
        recorders: List[Any],
    ) -> List[WormLaneOutcome]:
        num_lanes = len(lanes)
        counts = np.array([len(w) for w in lanes], dtype=np.int64)
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        total = int(offsets[-1])
        if total == 0:
            return [
                WormLaneOutcome(makespan=0, deadlock=None) for _ in lanes
            ]

        worms = [w for lane_worms in lanes for w in lane_worms]
        lane = np.repeat(np.arange(num_lanes, dtype=np.int64), counts)
        eids, lengths = path_edge_matrix(
            self.host.n, [w.path for w in worms]
        )
        max_links = eids.shape[1]
        num = total
        # int32 everywhere the arrays are wide: the step loop is a fixed
        # sequence of whole-array passes, so halving element width halves
        # memory traffic (flit counts and link columns fit easily)
        flits = np.zeros((num, max_links), dtype=np.int32)
        head = np.full(num, -1, dtype=np.int64)
        done = np.full(num, -1, dtype=np.int64)
        num_flits = np.fromiter(
            (w.num_flits for w in worms), dtype=np.int32, count=num
        )
        release = np.fromiter(
            (w.release_step for w in worms), dtype=np.int64, count=num
        )
        links = self.host.num_edges
        owner = np.full(num_lanes * links, -1, dtype=np.int32)
        # lane-shifted link ids, gathered instead of recomputed per step
        eids_flat = lane[:, None] * links + eids

        cap = self.buffer_capacity
        cols = np.arange(max_links, dtype=np.int32)[None, :]
        valid = cols < lengths[:, None]
        is_last = cols == (lengths - 1)[:, None]
        last_col = lengths - 1

        # scratch buffers, allocated once: the step loop below runs a fixed
        # sequence of whole-array passes into these, so steady-state steps
        # do no allocation at all
        shape = (num, max_links)
        gaps = np.zeros(shape, dtype=np.int32)
        base = np.empty(shape, dtype=bool)
        free = np.empty(shape, dtype=bool)
        seed = np.empty(shape, dtype=np.int32)
        block = np.empty(shape, dtype=np.int32)
        moved_rev = np.empty(shape, dtype=bool)
        tails = np.empty(shape, dtype=bool)
        # cols <= head[:, None], maintained incrementally as heads advance;
        # rows are cleared when their worm arrives or its lane deadlocks,
        # which lets phase 2 skip separate active/valid masking passes
        head_mask = np.zeros(shape, dtype=bool)
        row_ids = np.arange(num, dtype=np.int64)

        # per-lane bookkeeping: a lane deadlocks on its own (no progress
        # once everything it will ever release is out), and freezes there
        lane_remaining = counts.copy()
        lane_dead = np.zeros(num_lanes, dtype=bool)
        lane_message: List[Optional[str]] = [None] * num_lanes
        lane_last_done = np.zeros(num_lanes, dtype=np.int64)
        lane_max_release = np.zeros(num_lanes, dtype=np.int64)
        for b in range(num_lanes):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            if hi > lo:
                lane_max_release[b] = int(release[lo:hi].max())


        step = 0
        while bool(np.any((lane_remaining > 0) & ~lane_dead)):
            live = ~lane_dead[lane]
            undone = (done < 0) & live
            if not bool(np.any(undone & (release <= step + 1))):
                # every live lane is between releases: jump ahead (a lane
                # with released undone worms blocks this jump, so per-lane
                # step numbers — including deadlock steps — are exact)
                step = int(release[undone].min()) - 1
            step += 1
            if step > max_steps:
                raise RuntimeError(
                    f"wormhole simulation exceeded {max_steps} steps"
                )
            lane_prog = np.zeros(num_lanes, dtype=bool)
            act = undone & (release <= step)

            # Phase 1: head acquisitions — lowest lane-local ident wins
            # each free link (global order is lane-major, so the global
            # lowest index per shifted link is the lane's lowest ident)
            elig = act & (head < lengths - 1)
            pipe = np.nonzero(elig & (head >= 0))[0]
            if pipe.size:
                stalled = pipe[flits[pipe, head[pipe]] == 0]
                elig[stalled] = False
            cand = np.nonzero(elig)[0]
            if cand.size:
                want = eids_flat[cand, head[cand] + 1]
                free_link = owner[want] < 0
                cand, want = cand[free_link], want[free_link]
                if cand.size:
                    won_links, first = np.unique(want, return_index=True)
                    winners = cand[first]
                    owner[won_links] = winners
                    head[winners] += 1
                    head_mask[winners, head[winners]] = True
                    lane_prog[lane[winners]] = True

            # Phase 2: flit movement — the same recurrence as FastWormhole
            # (moved[i] = base[i] & (free[i] | moved[i+1]), solved by running
            # maxima over the reversed link axis), reformulated over the flit
            # *gap* array g[i] = flits[i-1] - flits[i] (g[0] counts against
            # the source's M flits): a link can move iff a flit waits
            # upstream (g[i] >= 1, which also implies the tail is not past),
            # and is free iff it is the worm's last link or the downstream
            # node has buffer slack (g[i+1] < cap).  Everything runs as
            # full-array passes into the preallocated scratch.
            if bool(np.any(act & (head >= 0))):
                np.subtract(flits[:, :-1], flits[:, 1:], out=gaps[:, 1:])
                np.subtract(num_flits, flits[:, 0], out=gaps[:, 0])
                np.greater_equal(gaps, 1, out=base)
                base &= head_mask
                np.less(gaps[:, 1:], cap, out=free[:, :-1])
                free[:, -1] = False
                free |= is_last
                rbase = base[:, ::-1]
                np.logical_and(rbase, free[:, ::-1], out=moved_rev)
                np.copyto(seed, -1)
                np.copyto(seed, cols, where=moved_rev)
                np.maximum.accumulate(seed, axis=1, out=seed)
                np.copyto(block, cols)
                np.copyto(block, -1, where=rbase)
                np.maximum.accumulate(block, axis=1, out=block)
                np.greater(seed, block, out=moved_rev)
                moved_rev &= rbase
                moved = moved_rev[:, ::-1]
                rows_moved = moved.any(axis=1)
                if bool(rows_moved.any()):
                    np.add(flits, moved, out=flits, casting="unsafe")
                    lane_prog[lane[rows_moved]] = True
                    # a link frees the step its owner's tail crosses it
                    np.equal(flits, num_flits[:, None], out=tails)
                    tails &= moved
                    trow, tcol = np.nonzero(tails)
                    if trow.size:
                        owner[eids_flat[trow, tcol]] = -1
                    arrived_mask = act & (
                        flits[row_ids, last_col] == num_flits
                    )
                    arrived = np.nonzero(arrived_mask)[0]
                    if arrived.size:
                        done[arrived] = step
                        head_mask[arrived] = False
                        lane_last_done[lane[arrived]] = step
                        lane_remaining -= np.bincount(
                            lane[arrived], minlength=num_lanes
                        )

            # per-lane deadlock: a live lane with worms left, everything it
            # will ever release already out, and no progress this step is
            # permanently stuck (releases only add contention; a stalled
            # configuration is a fixed point) — same condition, same step,
            # same message as the scalar engines
            stuck = (
                ~lane_prog
                & ~lane_dead
                & (lane_remaining > 0)
                & (lane_max_release <= step)
            )
            if bool(np.any(stuck)):
                for b in np.nonzero(stuck)[0]:
                    lane_dead[b] = True
                    lane_message[b] = (
                        f"{int(lane_remaining[b])} worms deadlocked "
                        f"at step {step}"
                    )
                head_mask[stuck[lane]] = False

        link_counts = None
        if any(bool(r) for r in recorders):
            # per-link crossing totals, recovered from the final flit
            # profile in one pass: flits[i, j] counts every crossing of
            # link j by worm i (partial rows of deadlocked lanes included)
            link_counts = np.zeros(num_lanes * links, dtype=np.int64)
            np.add.at(link_counts, eids_flat[valid], flits[valid])

        outcomes: List[WormLaneOutcome] = []
        for b in range(num_lanes):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            for i in range(lo, hi):
                worm = worms[i]
                worm.flits_crossed = [
                    int(c) for c in flits[i, : lengths[i]]
                ]
                worm.head_link = int(head[i])
                worm.done_step = None if done[i] < 0 else int(done[i])
            row = owner[b * links:(b + 1) * links]
            held = np.nonzero(row >= 0)[0]
            lane_owner = {int(lid): int(row[lid] - lo) for lid in held}
            rec = recorders[b]
            if rec:
                cnt = link_counts[b * links:(b + 1) * links]
                used = np.nonzero(cnt)[0]
                rec.add_link_counts(used, cnt[used])
                rec.add_deliveries(
                    int(done[i]) for i in range(lo, hi) if done[i] >= 0
                )
            outcomes.append(
                WormLaneOutcome(
                    makespan=(
                        None
                        if lane_message[b] is not None
                        else int(lane_last_done[b])
                    ),
                    deadlock=lane_message[b],
                    worms=lanes[b],
                    owner=lane_owner,
                )
            )
        return outcomes
