"""Packet schedules and p-packet cost measurement (paper Section 3).

The *p-packet cost* of an embedding is the number of time units for the host
to complete one phase of the guest in which every message carries ``p``
packets.  The paper's upper-bound claims come with explicit schedules (e.g.
Theorem 1's "send along all paths on step one, forward on steps two and
three"); :class:`PacketSchedule` represents such a schedule and verifies its
feasibility: at most one packet per directed host edge per step, hops in
strictly increasing step order.

For single-path embeddings (the classical baselines), the exact p-packet
cost under pipelining equals the optimum of a flow-shop problem; we provide
the standard lower bound ``max_edge(congestion * p)``-style bound and a
greedy pipelined schedule via :func:`p_packet_cost_singlepath`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.embedding import Embedding, MultiPathEmbedding
from repro.hypercube.graph import Hypercube

__all__ = [
    "ScheduledPacket",
    "PacketSchedule",
    "multipath_packet_schedule",
    "p_packet_cost_singlepath",
    "singlepath_cost_lower_bound",
]


@dataclass(frozen=True)
class ScheduledPacket:
    """One packet: a host path and the step at which each hop is taken."""

    path: Tuple[int, ...]
    steps: Tuple[int, ...]

    def __post_init__(self):
        if len(self.steps) != len(self.path) - 1:
            raise ValueError("need exactly one step per hop")
        if any(s2 <= s1 for s1, s2 in zip(self.steps, self.steps[1:])):
            raise ValueError("hop steps must be strictly increasing")
        if self.steps and self.steps[0] < 1:
            raise ValueError("steps start at 1")


@dataclass
class PacketSchedule:
    """A set of scheduled packets on a common host."""

    host: Hypercube
    packets: List[ScheduledPacket]

    @property
    def makespan(self) -> int:
        """The cost: the latest step at which any packet moves."""
        return max((p.steps[-1] for p in self.packets if p.steps), default=0)

    def link_usage(self) -> Counter:
        """(edge id, step) -> number of packets using that link at that step."""
        use: Counter = Counter()
        for pkt in self.packets:
            for (a, b), s in zip(zip(pkt.path, pkt.path[1:]), pkt.steps):
                use[(self.host.edge_id(a, b), s)] += 1
        return use

    def verify(self) -> None:
        """Raise unless no directed link carries two packets in one step."""
        use = self.link_usage()
        if use and max(use.values()) > 1:
            bad = [k for k, v in use.items() if v > 1][:5]
            raise AssertionError(f"link/step conflicts at {bad}")

    def busy_link_fraction(self) -> float:
        """Fraction of (link, step) slots actually used — the utilization
        Theorem 2 maximizes ("all hypercube edges in use during each step")."""
        if self.makespan == 0:
            return 0.0
        return len(self.link_usage()) / (self.host.num_edges * self.makespan)


def multipath_packet_schedule(
    emb: MultiPathEmbedding,
    extra_direct_at: Optional[int] = None,
) -> PacketSchedule:
    """Build the packet schedule a multipath embedding carries in ``step_of``.

    One packet per (guest edge, path).  When ``extra_direct_at`` is given,
    every length-1 (direct) path carries one additional packet at that step
    — Theorem 1's "(2k+2)-packet cost 3" trick.
    """
    if emb.step_of is None:
        raise ValueError("embedding has no step schedule")
    packets: List[ScheduledPacket] = []
    for edge, paths in emb.edge_paths.items():
        steps = emb.step_of[edge]
        for path, st in zip(paths, steps):
            packets.append(ScheduledPacket(tuple(path), tuple(st)))
            if extra_direct_at is not None and len(path) == 2:
                packets.append(ScheduledPacket(tuple(path), (extra_direct_at,)))
    return PacketSchedule(emb.host, packets)


def singlepath_cost_lower_bound(emb: Embedding, p: int) -> int:
    """Lower bound on the p-packet cost of a single-path embedding.

    Any schedule must push ``p * congestion(f)`` packets through the most
    congested directed link ``f``, one per step; and the last packet of the
    longest path needs at least ``dilation`` steps after its release.
    """
    return max(p * emb.congestion, emb.dilation + p - 1)


def p_packet_cost_singlepath(emb: Embedding, p: int) -> int:
    """Measured p-packet cost of a single-path embedding with pipelining.

    Greedy list schedule: packet ``t`` of each guest edge is released at step
    ``t + 1`` and forwarded hop by hop; each directed link serves waiting
    packets FIFO, one per step.  Returns the completion step.  (Greedy is
    within the Leighton–Maggs–Rao O(congestion + dilation) guarantee and is
    exactly optimal for the gray-code cycle baseline, where paths are single
    edges.)
    """
    from repro.routing.simulator import StoreForwardSimulator

    schedule = [
        (path, t + 1)
        for path in emb.edge_paths.values()
        for t in range(p)
    ]
    return StoreForwardSimulator(emb.host).run(schedule).makespan


def measured_multipath_cost(emb: MultiPathEmbedding) -> int:
    """Measured cost of sending one packet down every path of every edge.

    Greedy FIFO store-and-forward simulation — a constructive upper bound on
    the width-packet cost (each guest edge ships ``width`` packets at once).
    """
    from repro.routing.simulator import StoreForwardSimulator

    schedule = [p for paths in emb.edge_paths.values() for p in paths]
    return StoreForwardSimulator(emb.host).run(schedule).makespan


def p_packet_cost_multipath(emb: MultiPathEmbedding, p: int) -> int:
    """Measured p-packet cost of a multipath embedding (the paper's metric).

    When the embedding carries a certified step schedule, rounds of it are
    repeated back to back (period = its makespan) until ``p`` packets have
    shipped per guest edge, and the combined schedule is re-verified.
    Without a schedule, falls back to greedy store-and-forward simulation.
    """
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    if emb.step_of is None:
        from repro.routing.simulator import StoreForwardSimulator

        schedule = [
            (path, t + 1)
            for paths in emb.edge_paths.values()
            for path in paths
            if len(path) >= 2
            for t in range(-(-p // max(1, len(paths))))
        ]
        return StoreForwardSimulator(emb.host).run(schedule).makespan
    base = PacketSchedule(emb.host, list(multipath_packet_schedule(emb).packets))
    period = base.makespan
    packets: List[ScheduledPacket] = []
    for edge, paths in emb.edge_paths.items():
        steps = emb.step_of[edge]
        sent, rnd = 0, 0
        while sent < p:
            for path, st in zip(paths, steps):
                if sent >= p:
                    break
                if len(path) < 2:
                    continue
                packets.append(
                    ScheduledPacket(
                        tuple(path), tuple(s + rnd * period for s in st)
                    )
                )
                sent += 1
            rnd += 1
    sched = PacketSchedule(emb.host, packets)
    sched.verify()
    return sched.makespan
