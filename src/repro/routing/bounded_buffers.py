"""Store-and-forward with finite node buffers (the Pippenger [20] setting).

Section 7 leans on randomized routing results including Pippenger's
"Parallel communication with limited buffers": routing stays fast even when
every node can hold only a constant number of packets.  This simulator adds
that constraint to the link-bound model:

* at most one packet per directed link per step (as everywhere else);
* a packet may cross into node ``v`` only if ``v``'s buffer has room after
  this step's departures (backpressure);
* sources inject from an unbounded external queue (injection also waits for
  room), and packets vanish from the buffer on reaching their destination.

With backpressure, cyclic buffer-wait deadlocks are possible; they are
detected and reported, mirroring the wormhole simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.hypercube.graph import Hypercube

__all__ = ["BoundedBufferSimulator", "BufferDeadlock"]


class BufferDeadlock(RuntimeError):
    """No packet can move: every candidate waits on a full buffer."""


class _Packet:
    __slots__ = ("path", "hop", "release", "done_step")

    def __init__(self, path: Tuple[int, ...], release: int):
        self.path = path
        self.hop = 0
        self.release = release
        self.done_step: Optional[int] = None


class BoundedBufferSimulator:
    """Synchronous link-bound simulator with per-node buffer capacity."""

    def __init__(
        self, host: Hypercube, buffer_capacity: int, injection_reserve: int = 0
    ):
        """``injection_reserve`` buffer slots per node are kept free of
        locally injected packets, so transit traffic can always drain —
        the classical guard against injection-induced buffer deadlock."""
        if buffer_capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        if not 0 <= injection_reserve < buffer_capacity:
            raise ValueError("reserve must lie in [0, capacity)")
        self.host = host
        self.capacity = buffer_capacity
        self.injection_reserve = injection_reserve
        self._pending: List[_Packet] = []

    def inject(self, path: Sequence[int], release_step: int = 1) -> None:
        if len(path) < 1:
            raise ValueError("packet path must contain at least one node")
        self._pending.append(_Packet(tuple(path), release_step))

    def run(self, max_steps: int = 10_000_000) -> int:
        # per-link FIFO queues of packets RESIDENT at the link's tail node
        queues: Dict[int, Deque[_Packet]] = {}
        occupancy: Dict[int, int] = {}
        # external injection queues per source node (unbounded)
        sources: Dict[int, Deque[_Packet]] = {}
        in_flight = 0
        last_done = 0
        for pkt in self._pending:
            if len(pkt.path) == 1:
                pkt.done_step = 0
                continue
            sources.setdefault(pkt.path[0], deque()).append(pkt)
            in_flight += 1
        step = 0
        while in_flight > 0:
            step += 1
            if step > max_steps:
                raise RuntimeError(f"simulation exceeded {max_steps} steps")
            moved = False
            # 1. admit injections while the source buffer has room beyond
            # the transit reserve
            inject_cap = self.capacity - self.injection_reserve
            for node, q in list(sources.items()):
                while q and occupancy.get(node, 0) < inject_cap and \
                        q[0].release <= step:
                    pkt = q.popleft()
                    eid = self.host.edge_id(pkt.path[0], pkt.path[1])
                    queues.setdefault(eid, deque()).append(pkt)
                    occupancy[node] = occupancy.get(node, 0) + 1
                    moved = True
                if not q:
                    del sources[node]
            # 2. fix the link winners (FIFO heads), then admit them to a
            # fixed point: a confirmed departure frees a buffer slot that a
            # later pass may hand to an upstream winner (same-step chain
            # advance); winners on genuinely full buffers stay put
            winners = sorted(
                ((eid, queues[eid][0]) for eid in queues), key=lambda w: w[0]
            )
            processed = set()
            progressed = True
            while progressed:
                progressed = False
                for eid, pkt in winners:
                    if eid in processed:
                        continue
                    u = pkt.path[pkt.hop]
                    v = pkt.path[pkt.hop + 1]
                    final = pkt.hop + 1 == len(pkt.path) - 1
                    if not final and occupancy.get(v, 0) >= self.capacity:
                        continue  # backpressure: stay put (for now)
                    q = queues[eid]
                    q.popleft()
                    if not q:
                        del queues[eid]
                    occupancy[u] -= 1
                    pkt.hop += 1
                    processed.add(eid)
                    moved = progressed = True
                    if final:
                        pkt.done_step = step
                        last_done = step
                        in_flight -= 1
                    else:
                        occupancy[v] = occupancy.get(v, 0) + 1
                        nxt = self.host.edge_id(v, pkt.path[pkt.hop + 1])
                        queues.setdefault(nxt, deque()).append(pkt)
            if not moved:
                waiting_release = any(
                    q and q[0].release > step for q in sources.values()
                )
                if waiting_release:
                    continue
                raise BufferDeadlock(
                    f"{in_flight} packets stuck on full buffers at step {step}"
                )
        return last_done
