"""Adaptive path selection over width-w bundles (a Section 7 extension).

The width of a multiple-path embedding is useful even for single-track
messages: a router can place each message on the *least-loaded* of its
``w`` candidate paths.  This module measures that effect — oblivious
(always path 0) versus adaptive (greedy least-loaded) placement of wormhole
messages over the paths of a multipath embedding.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro._compat import resolve_rng
from repro.core.embedding import MultiPathEmbedding
from repro.routing.wormhole import WormholeSimulator

__all__ = ["adaptive_wormhole_experiment"]


def _link_ids(emb: MultiPathEmbedding, path: Sequence[int]) -> List[int]:
    return [emb.host.edge_id(a, b) for a, b in zip(path, path[1:])]


def adaptive_wormhole_experiment(
    emb: MultiPathEmbedding,
    num_messages: int,
    flits: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Dict[str, int]:
    """Wormhole ``num_messages`` along guest edges, oblivious vs adaptive.

    Random guest edges each carry one ``flits``-flit worm.  Oblivious
    routing always uses path 0 of the edge's bundle; adaptive routing picks
    the bundle path minimizing the current maximum link load.  Returns both
    completion times (same message set, same seeds).  Randomness comes from
    ``seed`` (default 0) or a shared ``rng`` stream, never both.

    Both arms run with per-node message buffers (virtual cut-through):
    arbitrary multipath bundles contain cyclic link dependencies, so
    classical 1-flit wormhole can deadlock — detected by the simulator —
    and a deadlock-free discipline keeps the comparison meaningful.
    """
    rng = resolve_rng(seed, rng)
    edges = list(emb.edge_paths)
    moving = [e for e in edges if len(emb.edge_paths[e][0]) > 1]
    chosen = [moving[rng.randrange(len(moving))] for _ in range(num_messages)]

    # oblivious: everyone on path 0
    obl = WormholeSimulator(emb.host, buffer_capacity=flits)
    for e in chosen:
        obl.inject(emb.edge_paths[e][0], flits)
    oblivious_time = obl.run()

    # adaptive: greedy least-loaded path in the bundle
    load: Counter = Counter()
    ada = WormholeSimulator(emb.host, buffer_capacity=flits)
    for e in chosen:
        best, best_cost = None, None
        for path in emb.edge_paths[e]:
            if len(path) < 2:
                continue
            ids = _link_ids(emb, path)
            cost = (max(load[i] for i in ids), sum(load[i] for i in ids))
            if best_cost is None or cost < best_cost:
                best, best_cost = path, cost
        for i in _link_ids(emb, best):
            load[i] += 1
        ada.inject(best, flits)
    adaptive_time = ada.run()
    return {
        "messages": num_messages,
        "flits": flits,
        "oblivious": oblivious_time,
        "adaptive": adaptive_time,
    }
