"""Permutation routing on the hypercube (paper Section 7).

The experiment behind bench E11: every node sends an ``M``-packet message to
a unique destination.

* **Baseline**: the whole message follows one dimension-order path.  With
  store-and-forward queueing (or wormhole reservation), congested links
  serialize whole messages and completion takes ``Theta(n * M)``.
* **Multiple-copy CCC routing**: the message splits into ``n`` pieces, piece
  ``k`` routed through copy ``k`` of Theorem 3's CCC embedding.  Since the
  copies' images are edge-disjoint up to congestion 2, all pieces move in
  parallel and completion is ``O(M + n)``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro._compat import resolve_rng
from repro.core.ccc_multicopy import ccc_multicopy_embedding
from repro.core.embedding import Embedding, MultiCopyEmbedding
from repro.hypercube.graph import Hypercube
from repro.routing.pathutils import erase_loops
from repro.routing.simulator import StoreForwardSimulator
from repro.routing.wormhole import WormholeSimulator

__all__ = [
    "dimension_order_path",
    "ccc_route",
    "ccc_copy_host_path",
    "permutation_baseline_time",
    "permutation_multicopy_time",
    "random_permutation",
    "bit_reversal_permutation",
]


def dimension_order_path(n: int, u: int, v: int) -> List[int]:
    """The e-cube path from ``u`` to ``v``: fix differing bits low to high."""
    path = [u]
    cur = u
    for d in range(n):
        if (cur ^ v) >> d & 1:
            cur ^= 1 << d
            path.append(cur)
    return path


def ccc_route(
    n: int, src: Tuple[int, int], dst: Tuple[int, int]
) -> List[Tuple[int, int]]:
    """A canonical CCC route: one level loop fixing column bits, then spin.

    Follows straight edges around the column cycle, taking the cross edge at
    level ``l`` whenever bit ``l`` of the current column disagrees with the
    destination; then continues straight to the destination level.  Length
    at most ``2n + n``.
    """
    level, col = src
    path = [src]
    for _ in range(n):
        if (col ^ dst[1]) >> level & 1:
            col ^= 1 << level
            path.append((level, col))
        level = (level + 1) % n
        path.append((level, col))
    while level != dst[0]:
        level = (level + 1) % n
        path.append((level, col))
    assert path[-1] == dst
    return path


def ccc_copy_host_path(
    copy: Embedding,
    n: int,
    src_host: int,
    dst_host: int,
    rng: random.Random | None = None,
) -> List[int]:
    """Host path between two hypercube nodes through one CCC copy.

    Each Theorem 3 copy maps the CCC bijectively onto the host nodes, so
    every host node *is* a CCC vertex of the copy; route between the CCC
    preimages and push the route back through the (dilation-1) embedding.

    With ``rng``, the route goes Valiant-style through a uniformly random
    intermediate CCC vertex — the randomized two-phase routing of the
    paper's Section 7 citations, which keeps congestion near average for
    *every* permutation (including adversarial ones like bit reversal).
    """
    inverse = getattr(copy, "_inverse_cache", None)
    if inverse is None:
        inverse = {h: v for v, h in copy.vertex_map.items()}
        copy._inverse_cache = inverse
    src, dst = inverse[src_host], inverse[dst_host]
    if rng is None:
        route = ccc_route(n, src, dst)
    else:
        mid = (rng.randrange(n), rng.randrange(1 << n))
        route = ccc_route(n, src, mid)[:-1] + ccc_route(n, mid, dst)
    hosts = [copy.vertex_map[v] for v in route]
    # two-phase routes may revisit nodes; a worm cannot own one link twice,
    # so cut the loops out (store-and-forward does not care either way)
    return list(erase_loops(hosts))


def random_permutation(
    size: int, seed: Optional[int] = None, rng: Optional[random.Random] = None
) -> List[int]:
    """A random permutation of ``range(size)``.

    Deterministic given ``seed`` (default 0); pass ``rng`` instead to draw
    from a shared stream.
    """
    rng = resolve_rng(seed, rng)
    perm = list(range(size))
    rng.shuffle(perm)
    return perm


def bit_reversal_permutation(bits: int) -> List[int]:
    """The bit-reversal permutation of ``range(2**bits)``.

    The classical adversarial input for deterministic dimension-order
    routing: congestion ``2**(bits/2)`` on the middle links, which the
    paper's randomized multi-path schemes avoid.
    """
    out = []
    for v in range(1 << bits):
        r = 0
        for b in range(bits):
            if v >> b & 1:
                r |= 1 << (bits - 1 - b)
        out.append(r)
    return out


def permutation_baseline_time(
    n: int, perm: Sequence[int], packets: int, mode: str = "message"
) -> int:
    """Completion time: each node sends one ``packets``-packet message along
    a single dimension-order path.

    Modes: ``"message"`` — store-and-forward of the whole message (each hop
    occupies its link for ``packets`` steps: the Section 7 baseline that
    costs Theta(n * M)); ``"packet"`` — the message pipelines packet by
    packet; ``"wormhole"`` — flit-level wormhole with 1-flit buffers.
    """
    if mode not in ("message", "packet", "wormhole"):
        raise ValueError(f"unknown mode {mode!r}")
    host = Hypercube(n)
    if mode == "wormhole":
        wsim = WormholeSimulator(host)
        for u, v in enumerate(perm):
            if u != v:
                wsim.inject(dimension_order_path(n, u, v), packets)
        return wsim.run()
    schedule = []
    for u, v in enumerate(perm):
        if u == v:
            continue
        path = dimension_order_path(n, u, v)
        if mode == "message":
            schedule.append((path, 1, packets))
        elif mode == "packet":
            schedule.extend((path, t + 1) for t in range(packets))
        else:
            raise ValueError(f"unknown mode {mode!r}")
    return StoreForwardSimulator(host).run(schedule).makespan


def permutation_multicopy_time(
    n: int,
    perm: Sequence[int],
    packets: int,
    mode: str = "message",
    randomized: bool = False,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> int:
    """Completion time with the message split across the n CCC copies.

    ``n`` must be a power of two (Theorem 3); the host is ``Q_{n + log n}``
    and the permutation must have ``2**(n + log n)`` entries.  Each of the
    ``n`` pieces carries ``ceil(packets / n)`` packets, so in ``"message"``
    mode a hop costs only ``M/n`` steps — this is exactly how breaking the
    message over the copies turns Theta(n * M) into O(M).  With
    ``randomized=True`` every piece routes Valiant-style through a random
    intermediate (the paper's cited randomized algorithms), making the
    completion time permutation-independent.
    """
    if mode not in ("message", "packet", "wormhole"):
        raise ValueError(f"unknown mode {mode!r}")
    mc: MultiCopyEmbedding = ccc_multicopy_embedding(n)
    host = mc.host
    if len(perm) != host.num_nodes:
        raise ValueError(
            f"permutation must cover the {host.num_nodes} nodes of Q_{host.n}"
        )
    rng = resolve_rng(seed, rng) if randomized else None
    per_piece = -(-packets // mc.k)
    if mode == "wormhole":
        # the wrapped CCC level loops have cyclic channel dependencies, so
        # classical 1-flit wormhole would deadlock; per-node message buffers
        # (virtual cut-through) model the queueing the paper's Section 7
        # store-and-forward algorithms assume
        wsim = WormholeSimulator(host, buffer_capacity=per_piece)
        for u, v in enumerate(perm):
            if u == v:
                continue
            for copy in mc.copies:
                wsim.inject(ccc_copy_host_path(copy, n, u, v, rng), per_piece)
        return wsim.run()
    schedule = []
    for u, v in enumerate(perm):
        if u == v:
            continue
        for copy in mc.copies:
            path = ccc_copy_host_path(copy, n, u, v, rng)
            if mode == "message":
                schedule.append((path, 1, per_piece))
            elif mode == "packet":
                schedule.extend((path, t + 1) for t in range(per_piece))
            else:
                raise ValueError(f"unknown mode {mode!r}")
    return StoreForwardSimulator(host).run(schedule).makespan
