"""Vectorized link-bound simulator (numpy batch engine).

The dict-based :class:`repro.routing.simulator.StoreForwardSimulator` is
the reference implementation; this engine trades its per-packet Python
objects for numpy arrays — all packets advance in one vectorized step.
Measured (bench ``bench_perf``): break-even around 10^4 packets, ~2x at
10^5 (Q_14 permutations), growing with the number of packets in flight per
step — profile-first, per the optimization guidance in DESIGN.md.

Semantics: synchronous store-and-forward, at most one packet per directed
link per step, ties broken by *static priority* (packet injection order)
instead of per-link FIFO.  Both policies are work-conserving link-bound
schedules; makespans agree on contention-free workloads and stay within the
same congestion+dilation envelope otherwise (asserted in tests).

Following the hpc-parallel guidance: the hot loop does no Python-level
per-packet work — a ``lexsort`` groups packets by requested link and a
boolean diff picks each link's winner.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hypercube.graph import Hypercube

__all__ = ["FastStoreForward"]


class FastStoreForward:
    """Batch store-and-forward simulator over ``Q_n``."""

    def __init__(self, host: Hypercube):
        self.host = host
        self._paths: List[Sequence[int]] = []
        self._releases: List[int] = []

    def inject(self, path: Sequence[int], release_step: int = 1) -> None:
        """Queue one unit packet along ``path``."""
        if len(path) < 1:
            raise ValueError("packet path must contain at least one node")
        self._paths.append(tuple(path))
        self._releases.append(release_step)

    def run(self, max_steps: int = 10_000_000) -> int:
        """Run to completion; returns the last arrival step."""
        if not self._paths:
            return 0
        num = len(self._paths)
        lengths = np.array([len(p) - 1 for p in self._paths], dtype=np.int64)
        max_len = int(lengths.max()) if num else 0
        if max_len == 0:
            return 0
        # edge-id matrix, -1 padded
        edges = np.full((num, max_len), -1, dtype=np.int64)
        n = self.host.n
        for i, p in enumerate(self._paths):
            arr = np.asarray(p, dtype=np.int64)
            dims = np.log2((arr[:-1] ^ arr[1:]).astype(np.float64)).astype(
                np.int64
            )
            if np.any(arr[:-1] ^ arr[1:] != (np.int64(1) << dims)):
                raise ValueError(f"path {i} contains a non-hypercube hop")
            edges[i, : len(p) - 1] = arr[:-1] * n + dims

        hop = np.zeros(num, dtype=np.int64)
        release = np.asarray(self._releases, dtype=np.int64)
        priority = np.arange(num, dtype=np.int64)
        done_step = np.zeros(num, dtype=np.int64)
        active = lengths > 0

        step = 0
        remaining = int(active.sum())
        while remaining > 0:
            step += 1
            if step > max_steps:
                raise RuntimeError(f"simulation exceeded {max_steps} steps")
            ready = active & (release <= step)
            idx = np.nonzero(ready)[0]
            if idx.size == 0:
                # jump straight to the next release
                step = int(release[active].min()) - 1
                continue
            want = edges[idx, hop[idx]]
            # one winner per link: sort by (link, priority), take group heads
            order = np.lexsort((priority[idx], want))
            sorted_links = want[order]
            head = np.empty(order.size, dtype=bool)
            head[0] = True
            np.not_equal(sorted_links[1:], sorted_links[:-1], out=head[1:])
            winners = idx[order[head]]
            hop[winners] += 1
            finished = winners[hop[winners] == lengths[winners]]
            if finished.size:
                active[finished] = False
                done_step[finished] = step
                remaining -= int(finished.size)
        return int(done_step.max())
