"""Vectorized link-bound simulator (numpy batch engine).

The dict-based :class:`repro.routing.simulator.StoreForwardSimulator` is
the reference implementation; this engine trades its per-packet Python
objects for numpy arrays — all packets advance in one vectorized step.
Measured (bench ``bench_perf``): break-even around 10^4 packets, ~2x at
10^5 (Q_14 permutations), growing with the number of packets in flight per
step — profile-first, per the optimization guidance in DESIGN.md.

Semantics: synchronous store-and-forward, at most one packet per directed
link per step, ties broken by *static priority* (packet injection order)
instead of per-link FIFO.  Both policies are work-conserving link-bound
schedules; makespans agree on contention-free workloads and stay within the
same congestion+dilation envelope otherwise (asserted in tests).

Following the hpc-parallel guidance: the hot loop does no Python-level
per-packet work — a ``lexsort`` groups packets by requested link and a
boolean diff picks each link's winner.  Recording follows the same rule:
with a recorder the engine accumulates per-link winner counts into one
numpy array and bulk-dumps it after the run; with ``recorder=None`` the
only cost is a single ``is None`` test per step (the <5% disabled-overhead
budget in ISSUE.md).

Implements the unified :class:`repro.routing.api.Simulator` protocol; the
pre-obs ``inject(...); run() -> int`` style works behind a deprecation
shim.  Unit service time only — atomic M-packet messages need the
reference engine.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._compat import warn_deprecated
from repro.hypercube.graph import Hypercube
from repro.hypercube.pathcode import path_edge_matrix
from repro.obs.profile import profile_span
from repro.routing.api import ScheduleItem, SimResult, normalize_schedule

__all__ = ["FastStoreForward"]


class FastStoreForward:
    """Batch store-and-forward simulator over ``Q_n``."""

    engine = "fast-store-forward"

    def __init__(self, host: Hypercube):
        self.host = host
        self._paths: List[Sequence[int]] = []
        self._releases: List[int] = []

    def inject(self, path: Sequence[int], release_step: int = 1) -> None:
        """Queue one unit packet along ``path``.

        .. deprecated:: pass a schedule to :meth:`run` instead.
        """
        if len(path) < 1:
            raise ValueError("packet path must contain at least one node")
        self._paths.append(tuple(path))
        self._releases.append(release_step)

    def run(
        self,
        schedule: Optional[Union[int, Iterable[ScheduleItem]]] = None,
        *,
        max_steps: int = 10_000_000,
        recorder: Optional[Any] = None,
        faults: Optional[Any] = None,
    ):
        """Run a packet schedule to completion.

        With a ``schedule``, returns a :class:`repro.routing.api.SimResult`
        and (when ``recorder`` is given) bulk-records per-link transmission
        counts and per-packet delivery steps.  Schedules with
        ``service_time != 1`` raise ``ValueError`` — use the reference
        :class:`~repro.routing.simulator.StoreForwardSimulator` for atomic
        multi-packet messages.

        ``faults`` (a :class:`repro.fault.FaultModel`) drops packets whose
        next hop is dead from ``faults.active_from`` onward — the same
        fail-stop semantics as the reference engine, field-for-field
        (dropped packets record ``done_steps`` of ``-1`` and are excluded
        from ``delivered``).

        Calling with no schedule (or a bare int ``max_steps``) runs packets
        previously added via :meth:`inject` and returns the last arrival
        step as an int — the deprecated pre-obs signature.
        """
        if schedule is None or isinstance(schedule, int):
            warn_deprecated(
                "FastStoreForward.inject()/run() -> int is deprecated; "
                "pass a schedule to run() and read SimResult.makespan"
            )
            if isinstance(schedule, int):
                max_steps = schedule
            paths, releases = self._paths, self._releases
            self._paths, self._releases = [], []
            done_step, steps = self._run_arrays(
                paths, releases, max_steps, recorder, faults
            )
            return max(0, int(done_step.max())) if done_step.size else 0

        requests = normalize_schedule(schedule)
        if any(r.service_time != 1 for r in requests):
            raise ValueError(
                "FastStoreForward supports unit service time only; "
                "use StoreForwardSimulator for atomic multi-packet messages"
            )
        paths = [r.path for r in requests]
        releases = [r.release_step for r in requests]
        with profile_span("sim.fast_store_forward", packets=len(paths)):
            done_step, steps = self._run_arrays(
                paths, releases, max_steps, recorder, faults
            )
        # dropped packets carry done_step -1; makespan counts arrivals only
        makespan = max(0, int(done_step.max())) if done_step.size else 0
        return SimResult(
            makespan=makespan,
            delivered=int((done_step >= 0).sum()),
            injected=len(requests),
            steps=steps,
            done_steps=tuple(int(d) for d in done_step),
            engine=self.engine,
            recorder=recorder,
        )

    def _run_arrays(
        self,
        paths: List[Sequence[int]],
        releases: List[int],
        max_steps: int,
        recorder: Optional[Any],
        faults: Optional[Any] = None,
    ) -> Tuple[np.ndarray, int]:
        """Vectorized step loop; returns (per-packet done steps, steps run)."""
        num = len(paths)
        if num == 0:
            return np.zeros(0, dtype=np.int64), 0
        n = self.host.n
        dead_hop = None
        fault_from = 0
        if faults is not None and (faults.failed or faults.failed_nodes):
            dead_hop = faults.dead_link_mask()
            fault_from = faults.active_from
        # shared -1-padded edge-id encoding; validates every hop by XOR
        # popcount *before* any log2, so a zero-move hop (u == u) raises the
        # same clean ValueError the reference engine's edge_id would instead
        # of a divide-by-zero RuntimeWarning and an undefined float cast
        edges, lengths = path_edge_matrix(n, paths)
        done_step = np.zeros(num, dtype=np.int64)
        max_len = edges.shape[1]
        if max_len == 0:
            if recorder:
                recorder.add_deliveries(done_step)
            return done_step, 0

        hop = np.zeros(num, dtype=np.int64)
        release = np.asarray(releases, dtype=np.int64)
        priority = np.arange(num, dtype=np.int64)
        active = lengths > 0
        # per-directed-link winner tallies, allocated only when recording
        link_counts = (
            np.zeros(self.host.num_nodes * n, dtype=np.int64) if recorder else None
        )

        step = 0
        remaining = int(active.sum())
        while remaining > 0:
            step += 1
            if step > max_steps:
                raise RuntimeError(f"simulation exceeded {max_steps} steps")
            ready = active & (release <= step)
            idx = np.nonzero(ready)[0]
            if idx.size == 0:
                # jump straight to the next release
                step = int(release[active].min()) - 1
                continue
            want = edges[idx, hop[idx]]
            if dead_hop is not None and step >= fault_from:
                # drop packets whose next hop is dead, mirroring the
                # reference engine's top-of-step purge (done_step -1)
                doomed = dead_hop[want]
                if doomed.any():
                    kill = idx[doomed]
                    active[kill] = False
                    done_step[kill] = -1
                    remaining -= int(kill.size)
                    idx = idx[~doomed]
                    want = want[~doomed]
                    if idx.size == 0:
                        continue
            # one winner per link: sort by (link, priority), take group heads
            order = np.lexsort((priority[idx], want))
            sorted_links = want[order]
            head = np.empty(order.size, dtype=bool)
            head[0] = True
            np.not_equal(sorted_links[1:], sorted_links[:-1], out=head[1:])
            winners = idx[order[head]]
            if link_counts is not None:
                link_counts[sorted_links[head]] += 1  # winner links are unique
            hop[winners] += 1
            finished = winners[hop[winners] == lengths[winners]]
            if finished.size:
                active[finished] = False
                done_step[finished] = step
                remaining -= int(finished.size)
        if recorder:
            used = np.nonzero(link_counts)[0]
            recorder.add_link_counts(used, link_counts[used])
            recorder.add_deliveries(done_step[done_step >= 0])
        return done_step, step
