"""Vectorized wormhole (cut-through) simulator (numpy batch engine).

The flit-level :class:`repro.routing.wormhole.WormholeSimulator` is the
reference implementation; this engine advances *all* worms' flit frontiers
as array operations per step, matching the reference field-for-field —
same per-worm ``flits_crossed``/``head_link``/``done_step``, same return
value, same :class:`~repro.routing.wormhole.WormholeDeadlock` on the same
schedules (asserted by ``repro.qa.differential.wormhole_differential_check``).

Per step the reference does two phases; both vectorize exactly:

* **Head acquisitions** run in worm-ident order and each worm grabs at
  most one link, so the winner of every contested free link is simply the
  lowest-ident eligible worm — ``np.unique(want, return_index=True)`` on
  the ident-ordered candidate array.
* **Flit movement** walks each worm's links head-to-tail so a flit cannot
  cascade across two links in one step; link ``i`` moves iff it has an
  upstream flit waiting (pre-step values) and downstream buffer slack
  *after* link ``i+1``'s same-step move.  That is the linear recurrence
  ``moved[i] = base[i] & (free[i] | moved[i+1])`` (because slack never
  exceeds the buffer capacity, a downstream move always frees exactly
  enough slack), solved without a Python loop by running-maximum
  comparisons over the reversed link axis.

State lives in the same :class:`~repro.routing.wormhole.Worm` objects the
reference uses; ``run()`` loads them into padded ``(worms, max_links)``
arrays, steps vectorized, and writes the arrays back — so repeated
``run()`` calls, partial deadlocked states, and direct worm inspection all
behave identically to the reference engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.hypercube.graph import Hypercube
from repro.hypercube.pathcode import path_edge_matrix
from repro.obs.profile import profile_span
from repro.routing.wormhole import Worm, WormholeDeadlock

__all__ = ["FastWormhole"]


class FastWormhole:  # lint: protocol-exempt(flit-level surface: inject worms, run() -> last arrival step)
    """Batch flit-level wormhole simulator over ``Q_n``."""

    engine = "fast-wormhole"

    def __init__(self, host: Hypercube, buffer_capacity: int = 1):
        if buffer_capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.host = host
        self.buffer_capacity = buffer_capacity
        self.worms: List[Worm] = []
        self._owner: Dict[int, int] = {}  # link id -> worm ident

    def inject(
        self, path: Sequence[int], num_flits: int, release_step: int = 1
    ) -> Worm:
        worm = Worm(tuple(path), num_flits, release_step, ident=len(self.worms))
        self.worms.append(worm)
        return worm

    def run(
        self, max_steps: int = 10_000_000, *, recorder: Optional[Any] = None
    ) -> int:
        """Run until all worms are delivered; returns the last arrival step.

        Same contract as :meth:`WormholeSimulator.run`, including the
        recorder totals: each link's recorded transmission count is the
        number of flits it carried, and one delivery lands per worm.
        """
        with profile_span("sim.fast_wormhole", worms=len(self.worms)):
            return self._run(max_steps, recorder)

    def _run(self, max_steps: int, recorder: Optional[Any]) -> int:
        worms = self.worms
        if not worms:
            return 0
        num = len(worms)
        # path encoding + per-worm state, loaded from the Worm objects so
        # repeat runs continue exactly where the reference would
        eids, lengths = path_edge_matrix(self.host.n, [w.path for w in worms])
        max_links = eids.shape[1]
        flits = np.zeros((num, max_links), dtype=np.int64)
        rows = np.repeat(np.arange(num, dtype=np.int64), lengths)
        starts = np.cumsum(lengths) - lengths
        cols_flat = np.arange(rows.size, dtype=np.int64) - np.repeat(starts, lengths)
        flits[rows, cols_flat] = np.fromiter(
            (c for w in worms for c in w.flits_crossed),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        head = np.fromiter((w.head_link for w in worms), dtype=np.int64, count=num)
        done = np.fromiter(
            (-1 if w.done_step is None else w.done_step for w in worms),
            dtype=np.int64,
            count=num,
        )
        num_flits = np.fromiter((w.num_flits for w in worms), dtype=np.int64, count=num)
        release = np.fromiter(
            (w.release_step for w in worms), dtype=np.int64, count=num
        )
        owner = np.full(self.host.num_edges, -1, dtype=np.int64)
        for lid, ident in self._owner.items():
            owner[lid] = ident

        cap = self.buffer_capacity
        cols = np.arange(max_links, dtype=np.int64)[None, :]
        valid = cols < lengths[:, None]
        is_last = cols == (lengths - 1)[:, None]
        max_release = int(release.max())
        link_counts = (
            np.zeros(self.host.num_edges, dtype=np.int64) if recorder else None
        )
        newly_done: List[int] = []

        remaining = int((done < 0).sum())
        last_done = max(int(done.max()), 0)
        step = 0
        try:
            while remaining > 0:
                undone = done < 0
                if not bool(np.any(undone & (release <= step + 1))):
                    # nothing alive is released yet: jump to the next release
                    step = int(release[undone].min()) - 1
                step += 1
                if step > max_steps:
                    raise RuntimeError(
                        f"wormhole simulation exceeded {max_steps} steps"
                    )
                progressed = False
                act = undone & (release <= step)

                # Phase 1: head acquisitions — lowest ident wins each link.
                elig = act & (head < lengths - 1)
                pipe = np.nonzero(elig & (head >= 0))[0]
                if pipe.size:
                    # the head flit must have crossed the current head link
                    stalled = pipe[flits[pipe, head[pipe]] == 0]
                    elig[stalled] = False
                cand = np.nonzero(elig)[0]
                if cand.size:
                    want = eids[cand, head[cand] + 1]
                    free_link = owner[want] < 0
                    cand, want = cand[free_link], want[free_link]
                    if cand.size:
                        won_links, first = np.unique(want, return_index=True)
                        winners = cand[first]
                        owner[won_links] = winners
                        head[winners] += 1
                        progressed = True

                # Phase 2: flit movement on the active rows.  A worm that
                # has not acquired its first link yet (head == -1) has no
                # link a flit could cross — skip its row entirely.
                active_rows = np.nonzero(act & (head >= 0))[0]
                if active_rows.size:
                    fa = flits[active_rows]
                    ma = num_flits[active_rows][:, None]
                    base = (
                        valid[active_rows]
                        & (cols <= head[active_rows][:, None])
                        & (fa < ma)
                    )
                    upstream = np.empty_like(fa)
                    upstream[:, 0] = num_flits[active_rows]
                    upstream[:, 1:] = fa[:, :-1]
                    base &= (upstream - fa) >= 1
                    downstream = np.zeros_like(fa)
                    downstream[:, :-1] = fa[:, 1:]
                    free = is_last[active_rows] | ((fa - downstream) < cap)
                    # moved[i] = base[i] & (free[i] | moved[i+1]), solved
                    # right-to-left via running maxima on the reversed axis
                    rbase = base[:, ::-1]
                    seed = np.where(rbase & free[:, ::-1], cols, -1)
                    np.maximum.accumulate(seed, axis=1, out=seed)
                    block = np.where(rbase, -1, cols)
                    np.maximum.accumulate(block, axis=1, out=block)
                    moved = (rbase & (seed > block))[:, ::-1]
                    if moved.any():
                        progressed = True
                        fa = fa + moved
                        flits[active_rows] = fa
                        mrow, mcol = np.nonzero(moved)
                        moved_eids = eids[active_rows[mrow], mcol]
                        if link_counts is not None:
                            # one owner per link: moved links are unique
                            link_counts[moved_eids] += 1
                        tail_passed = fa[mrow, mcol] == num_flits[active_rows[mrow]]
                        owner[moved_eids[tail_passed]] = -1
                        arrived_mask = (
                            fa[
                                np.arange(active_rows.size),
                                lengths[active_rows] - 1,
                            ]
                            == num_flits[active_rows]
                        )
                        arrived = active_rows[arrived_mask]
                        if arrived.size:
                            done[arrived] = step
                            newly_done.extend(int(i) for i in arrived)
                            last_done = step
                            remaining -= int(arrived.size)
                if not progressed and step >= max_release:
                    stuck = int((done < 0).sum())
                    raise WormholeDeadlock(
                        f"{stuck} worms deadlocked at step {step}"
                    )
        finally:
            # write state back into the Worm objects (also on deadlock, so a
            # stuck run is inspectable exactly like the reference's)
            for i, worm in enumerate(worms):
                worm.flits_crossed = [int(c) for c in flits[i, : lengths[i]]]
                worm.head_link = int(head[i])
                worm.done_step = None if done[i] < 0 else int(done[i])
            held = np.nonzero(owner >= 0)[0]
            self._owner = {int(lid): int(owner[lid]) for lid in held}
            if recorder:
                used = np.nonzero(link_counts)[0]
                recorder.add_link_counts(used, link_counts[used])
                recorder.add_deliveries(int(done[i]) for i in newly_done)
        return last_done
