"""Synchronous store-and-forward network simulator (the paper's cost model).

Each directed host link transmits at most one packet per time step; packets
follow fixed paths and wait in FIFO queues at each link.  This is the
"store-and-forward" model of Section 7 and the measurement instrument for
every p-packet cost we report.

The step loop is deliberately simple (dict of per-link deques) — packet
counts in the reproduced experiments are at most a few hundred thousand, and
profiling showed the construction (not simulation) dominates; see the
hpc-parallel guide note in DESIGN.md.

This engine implements the unified :class:`repro.routing.api.Simulator`
protocol: pass a schedule to :meth:`StoreForwardSimulator.run` and get a
:class:`repro.routing.api.SimResult` back, optionally filling a
:class:`repro.obs.recorder.LinkRecorder` with per-link congestion data.
The pre-obs ``inject(...); run() -> int`` style still works behind a
deprecation shim.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro._compat import warn_deprecated
from repro.hypercube.graph import Hypercube
from repro.obs.profile import profile_span
from repro.routing.api import ScheduleItem, SimResult, normalize_schedule

__all__ = ["StoreForwardSimulator", "SimPacket"]


@dataclass
class SimPacket:
    """A packet with a fixed path; ``hop`` is the next hop index to take.

    ``service_time`` is the number of steps the packet occupies each link it
    crosses — 1 for a unit packet, ``M`` for an atomic M-packet message
    (message-granularity store-and-forward, the Section 7 baseline).
    """

    path: Tuple[int, ...]
    release_step: int = 1
    service_time: int = 1
    hop: int = 0
    done_step: Optional[int] = None
    ident: int = -1


class StoreForwardSimulator:
    """Synchronous link-bound simulator with per-link FIFO queues.

    ``port_limit`` caps how many outgoing transmissions a node may *start*
    per step: ``None`` is the paper's all-port model (every link usable
    every step); ``1`` is the classical single-port model used by e.g. the
    dimension-exchange algorithms E15 compares against.

    ``tie_break`` picks which queued packet an idle link serves first:
    ``"fifo"`` (the default, the historical behavior) serves in arrival
    order; ``"priority"`` serves the lowest injection index — the *same*
    policy the vectorized :class:`~repro.routing.fast_simulator.FastStoreForward`
    implements, which is what makes exact differential testing of the two
    engines possible (see :mod:`repro.qa.differential`).  Both policies are
    work-conserving, so congestion/makespan envelopes are unaffected.
    """

    engine = "store-forward"

    def __init__(
        self,
        host: Hypercube,
        port_limit: Optional[int] = None,
        tie_break: str = "fifo",
    ):
        if port_limit is not None and port_limit < 1:
            raise ValueError("port limit must be >= 1 (or None)")
        if tie_break not in ("fifo", "priority"):
            raise ValueError(f"tie_break must be 'fifo' or 'priority', got {tie_break!r}")
        self.host = host
        self.port_limit = port_limit
        self.tie_break = tie_break
        self._queues: Dict[int, Deque[SimPacket]] = {}
        self._pending: List[SimPacket] = []
        self._delivered: List[SimPacket] = []
        self._steps_run = 0

    def inject(
        self, path: Sequence[int], release_step: int = 1, service_time: int = 1
    ) -> SimPacket:
        """Add a packet that becomes eligible to move at ``release_step``.

        .. deprecated:: pass a schedule to :meth:`run` instead.
        """
        if len(path) < 1:
            raise ValueError("packet path must contain at least one node")
        if service_time < 1:
            raise ValueError("service time must be >= 1")
        pkt = SimPacket(
            tuple(path), release_step, service_time, ident=len(self._pending)
        )
        self._pending.append(pkt)
        return pkt

    def _enqueue(self, pkt: SimPacket) -> bool:
        """Queue ``pkt`` on its next link; True when it still has hops."""
        if pkt.hop >= len(pkt.path) - 1:
            return False
        eid = self.host.edge_id(pkt.path[pkt.hop], pkt.path[pkt.hop + 1])
        self._queues.setdefault(eid, deque()).append(pkt)
        return True

    def run(
        self,
        schedule: Optional[Union[int, Iterable[ScheduleItem]]] = None,
        *,
        max_steps: int = 10_000_000,
        recorder: Optional[Any] = None,
        faults: Optional[Any] = None,
    ):
        """Run a packet schedule to completion.

        With a ``schedule`` (any shape :func:`repro.routing.api.normalize_schedule`
        accepts), returns a :class:`repro.routing.api.SimResult`; ``recorder``
        (e.g. a :class:`repro.obs.LinkRecorder`) receives per-link
        transmission, queue-depth and delivery events — with ``None`` (the
        default) the hot loop performs no recording work at all.

        ``faults`` (a :class:`repro.fault.FaultModel`) drops packets: from
        ``faults.active_from`` onward, any queued packet whose next hop
        crosses a failed link or touches a failed node is discarded at the
        top of the step (``done_steps`` records ``-1``, ``delivered``
        excludes it).  Transmissions already in progress complete —
        fail-stop at transmission granularity — and zero-hop packets always
        deliver at step 0, before any fault can activate.  The vectorized
        engine implements the identical semantics, so faulty runs stay
        differential-testable.

        Calling with no schedule (or a bare int, the old ``max_steps``
        positional) runs packets previously added via :meth:`inject` and
        returns the last arrival step as an int — the deprecated pre-obs
        signature.  Zero-hop packets complete at step 0 (they are already at
        their destination).
        """
        if schedule is None or isinstance(schedule, int):
            warn_deprecated(
                "StoreForwardSimulator.inject()/run() -> int is deprecated; "
                "pass a schedule to run() and read SimResult.makespan"
            )
            if isinstance(schedule, int):
                max_steps = schedule
            packets = self._pending
            self._pending = []
            last_done, _ = self._run_packets(packets, max_steps, recorder, faults)
            return last_done

        requests = normalize_schedule(schedule)
        packets = [
            SimPacket(r.path, r.release_step, r.service_time, ident=i)
            for i, r in enumerate(requests)
        ]
        with profile_span("sim.store_forward", packets=len(packets)):
            last_done, steps = self._run_packets(
                packets, max_steps, recorder, faults
            )
        done_steps = tuple(
            pkt.done_step if pkt.done_step is not None else -1 for pkt in packets
        )
        return SimResult(
            makespan=last_done,
            delivered=sum(1 for pkt in packets if pkt.done_step is not None),
            injected=len(packets),
            steps=steps,
            done_steps=done_steps,
            engine=self.engine,
            recorder=recorder,
        )

    def _run_packets(
        self,
        packets: List[SimPacket],
        max_steps: int,
        recorder: Optional[Any],
        faults: Optional[Any] = None,
    ) -> Tuple[int, int]:
        """Drive ``packets`` to completion; returns (last arrival, steps run)."""
        # per-run state: without this reset, ``delivered`` and the step
        # counter accumulate across run() calls and mix unrelated runs
        self._queues = {}
        self._delivered = []
        self._steps_run = 0
        in_flight = 0
        releases: Dict[int, List[SimPacket]] = {}
        for pkt in packets:
            if len(pkt.path) == 1:
                pkt.done_step = 0
                self._delivered.append(pkt)
                if recorder:
                    recorder.on_deliver(0)
            else:
                releases.setdefault(pkt.release_step, []).append(pkt)
                in_flight += 1

        step = 0
        last_done = 0
        transmitting: Dict[int, Tuple[SimPacket, int]] = {}  # eid -> (pkt, finish)
        while in_flight > 0:
            if not self._queues and not transmitting and releases:
                # nothing queued or on a link: jump to the next release
                # instead of spinning through guaranteed-empty steps
                step = max(step, min(releases) - 1)
            step += 1
            if step > max_steps:
                raise RuntimeError(f"simulation exceeded {max_steps} steps")
            for pkt in releases.pop(step, []):
                self._enqueue(pkt)
            if faults is not None and faults.active(step):
                # every queued packet blocked by a dead link/node is dropped
                # before arbitration; all packets queued on one link share
                # its endpoints, so the whole queue lives or dies together
                for eid in [e for e in self._queues if faults.hop_dead(e)]:
                    in_flight -= len(self._queues.pop(eid))
            # start transmissions on idle links (FIFO per link); with a port
            # limit, each node starts at most that many sends per step
            # (links already mid-transmission count against the budget)
            ports: Dict[int, int] = {}
            if self.port_limit is not None:
                for eid in transmitting:
                    node = eid // self.host.n
                    ports[node] = ports.get(node, 0) + 1
            for eid in sorted(self._queues):
                if eid in transmitting:
                    continue
                if self.port_limit is not None:
                    node = eid // self.host.n
                    if ports.get(node, 0) >= self.port_limit:
                        continue
                    ports[node] = ports.get(node, 0) + 1
                q = self._queues[eid]
                if recorder:
                    recorder.on_queue_depth(eid, len(q))
                if self.tie_break == "priority" and len(q) > 1:
                    i = min(range(len(q)), key=lambda j: q[j].ident)
                    pkt = q[i]
                    del q[i]
                else:
                    pkt = q.popleft()
                if not q:
                    del self._queues[eid]
                transmitting[eid] = (pkt, step + pkt.service_time - 1)
                if recorder:
                    recorder.on_transmit(eid, step, pkt.service_time)
            # complete transmissions finishing this step
            for eid in [e for e, (_, f) in transmitting.items() if f <= step]:
                pkt, _ = transmitting.pop(eid)
                pkt.hop += 1
                if pkt.hop >= len(pkt.path) - 1:
                    pkt.done_step = step
                    self._delivered.append(pkt)
                    in_flight -= 1
                    last_done = step
                    if recorder:
                        recorder.on_deliver(step)
                else:
                    self._enqueue(pkt)
        self._steps_run = step
        return last_done, step

    @property
    def delivered(self) -> List[SimPacket]:
        return self._delivered
