"""Link-bound routing substrate.

The paper's cost model (Section 3): during one time unit every processor can
send one message packet over each outgoing link.  This subpackage provides

* :mod:`repro.routing.schedule` — explicit packet schedules (the form the
  paper's cost claims take) with conflict verification, plus p-packet cost
  measurement for embeddings;
* :mod:`repro.routing.simulator` — a synchronous store-and-forward queue
  simulator for baselines and randomized routing;
* :mod:`repro.routing.wormhole` — cut-through/wormhole routing (Section 7);
* :mod:`repro.routing.permutation` — randomized permutation routing on the
  embedded CCC/butterfly copies (Section 7);
* :mod:`repro.routing.batched` — batched tensor engines that advance B
  independent runs per tick in a few numpy ops (fleet campaigns, sweeps);
* :mod:`repro.routing.api` — the unified :class:`Simulator` protocol shared
  by the reference and vectorized engines: ``run(schedule, max_steps=...,
  recorder=...) -> SimResult``, with optional per-link instrumentation via
  :mod:`repro.obs`.
"""

from repro.routing.api import (
    SimRequest,
    SimResult,
    Simulator,
    normalize_schedule,
)
from repro.routing.batched import (
    BatchedStoreForward,
    BatchedWormhole,
    WormLaneOutcome,
)
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.fast_wormhole import FastWormhole
from repro.routing.schedule import (
    PacketSchedule,
    ScheduledPacket,
    multipath_packet_schedule,
    p_packet_cost_singlepath,
)
from repro.routing.simulator import StoreForwardSimulator
from repro.routing.wormhole import Worm, WormholeDeadlock, WormholeSimulator

__all__ = [
    "BatchedStoreForward",
    "BatchedWormhole",
    "WormLaneOutcome",
    "FastStoreForward",
    "FastWormhole",
    "Worm",
    "WormholeDeadlock",
    "WormholeSimulator",
    "PacketSchedule",
    "ScheduledPacket",
    "SimRequest",
    "SimResult",
    "Simulator",
    "StoreForwardSimulator",
    "multipath_packet_schedule",
    "normalize_schedule",
    "p_packet_cost_singlepath",
]
