"""Two-phase message routing on the induced cross product (Section 7).

"A better alternative is to use the width-n embedding of X directly to
route messages.  Each route takes two phases; in the first phase each
message is routed along a row butterfly into the column butterfly of the
destination.  In the second phase the message is routed along the column
butterfly to reach the destination. ... By using the multiple-paths
corresponding to each width-n edge of X, the need to queue messages can be
eliminated."

This module implements exactly that: X-routes (row phase then column
phase), expanded onto the width-n parallel host paths so an M-packet
message ships as n pieces of M/n packets that never share a link with each
other.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro._compat import resolve_rng
from repro.core.butterfly_multicopy import butterfly_multicopy_embedding
from repro.core.cross_product import induced_cross_product_embedding
from repro.hypercube.moments import moment
from repro.routing.pathutils import erase_loops
from repro.routing.simulator import StoreForwardSimulator

__all__ = [
    "XRouter",
    "butterfly_route",
    "x_permutation_time",
    "random_x_permutation",
]

BFVertex = Tuple[int, int]


def butterfly_route(m: int, src: BFVertex, dst: BFVertex) -> List[BFVertex]:
    """A forward route in the wrapped m-level butterfly.

    Ascend levels from ``src``, crossing whenever the current level's column
    bit disagrees with the destination, then continue straight to the
    destination level; at most ``2m`` hops.
    """
    level, col = src
    path = [src]
    for _ in range(m):
        bit = 1 << level
        nxt = (level + 1) % m
        if (col ^ dst[1]) & bit:
            col ^= bit
        level = nxt
        path.append((level, col))
    while level != dst[0]:
        level = (level + 1) % m
        path.append((level, col))
    assert path[-1] == dst
    return path


class XRouter:
    """Route messages over the width-n embedding of ``X(butterfly_m)``.

    Host nodes of ``Q_{2n}`` are X vertices ``(row << n) | column``; a
    message from ``src`` to ``dst`` rides row ``src_row``'s butterfly to
    column ``dst_col`` (phase 1), then column ``dst_col``'s butterfly to row
    ``dst_row`` (phase 2).  Every X edge on the route carries ``n``
    edge-disjoint host paths, so the message's ``n`` pieces each take their
    own parallel track.
    """

    def __init__(self, m: int):
        self.m = m
        self.mc = butterfly_multicopy_embedding(m, undirected=True)
        self.x = induced_cross_product_embedding(self.mc)
        self.n = self.x.info["n"]
        self.host = self.x.host
        self._phi = [copy.vertex_map for copy in self.mc.copies]
        self._phi_inv = [
            {h: v for v, h in vm.items()} for vm in self._phi
        ]

    def _copy_index(self, line: int) -> int:
        return moment(line) % len(self._phi)

    def x_route(self, src: int, dst: int) -> List[int]:
        """The two-phase X route as a host-node sequence (one per X vertex)."""
        n = self.n
        mask = (1 << n) - 1
        src_row, src_col = src >> n, src & mask
        dst_row, dst_col = dst >> n, dst & mask
        route = [src]
        if src_col != dst_col:
            # phase 1: along row src_row from column src_col to dst_col
            ci = self._copy_index(src_row)
            bf_path = butterfly_route(
                self.m, self._phi_inv[ci][src_col], self._phi_inv[ci][dst_col]
            )
            route.extend(
                (src_row << n) | self._phi[ci][v] for v in bf_path[1:]
            )
        if src_row != dst_row:
            # phase 2: along column dst_col from row src_row to dst_row
            ci = self._copy_index(dst_col)
            bf_path = butterfly_route(
                self.m, self._phi_inv[ci][src_row], self._phi_inv[ci][dst_row]
            )
            route.extend(
                (self._phi[ci][v] << n) | dst_col for v in bf_path[1:]
            )
        assert route[-1] == dst
        return list(erase_loops(route))

    def piece_paths(self, src: int, dst: int) -> List[Tuple[int, ...]]:
        """``n`` pairwise edge-disjoint host paths realizing the X route."""
        route = self.x_route(src, dst)
        if len(route) == 1:
            return [(src,)]
        composites: List[List[int]] = [[route[0]] for _ in range(self.n)]
        for a, b in zip(route, route[1:]):
            paths = self.x.edge_paths[(a, b)]
            for k in range(self.n):
                composites[k].extend(paths[k][1:])
        return [tuple(erase_loops(p)) for p in composites]


def random_x_permutation(
    m: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    router: "XRouter | None" = None,
) -> List[int]:
    """A random permutation sized for ``x_permutation_time`` on ``X(B_m)``.

    Covers every node of the ``Q_{2n}`` host of the induced cross product,
    not just the X vertices, matching what :func:`x_permutation_time`
    requires.  Deterministic given ``seed`` (default 0); pass ``rng``
    instead to draw from a shared stream.  Pass the ``router`` you already
    built to skip reconstructing the embedding.
    """
    router = router or XRouter(m)
    rng = resolve_rng(seed, rng)
    perm = list(range(router.host.num_nodes))
    rng.shuffle(perm)
    return perm


def x_permutation_time(
    m: int, perm: Sequence[int], packets: int, router: XRouter | None = None
) -> int:
    """Completion time of an M-packet permutation over the X router.

    Each message splits into ``n`` pieces of ``ceil(M/n)`` packets; piece
    ``k`` rides the k-th parallel track (message-granularity
    store-and-forward per hop, matching the Section 7 baseline model).
    """
    router = router or XRouter(m)
    if len(perm) != router.host.num_nodes:
        raise ValueError(
            f"permutation must cover the {router.host.num_nodes} nodes"
        )
    per_piece = -(-packets // router.n)
    schedule = [
        (path, 1, per_piece)
        for u, v in enumerate(perm)
        if u != v
        for path in router.piece_paths(u, v)
        if len(path) > 1
    ]
    return StoreForwardSimulator(router.host).run(schedule).makespan
