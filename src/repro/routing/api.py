"""The unified simulator API: one protocol, one schedule shape, one result.

Every packet-level engine in this package — the reference FIFO
:class:`~repro.routing.simulator.StoreForwardSimulator`, the vectorized
:class:`~repro.routing.fast_simulator.FastStoreForward`, and (for flit
traffic) :class:`~repro.routing.wormhole.WormholeSimulator` — accepts the
same call::

    result = sim.run(schedule, max_steps=..., recorder=...)

where ``schedule`` is any iterable of packet descriptions (see
:func:`normalize_schedule`), ``recorder`` is an optional
:class:`repro.obs.recorder.LinkRecorder`-shaped sink, and the return is a
:class:`SimResult` with identical fields across engines, so measurement
code can swap engines freely (``isinstance(sim, Simulator)`` checks
conformance at runtime).

The pre-obs mutate-then-run style (``sim.inject(path); sim.run() -> int``)
still works but emits :class:`repro._compat.ReproDeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

__all__ = ["SimRequest", "SimResult", "Simulator", "normalize_schedule"]


@dataclass(frozen=True)
class SimRequest:
    """One packet: a fixed host path, a release step, a per-hop service time."""

    path: Tuple[int, ...]
    release_step: int = 1
    service_time: int = 1

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ValueError("packet path must contain at least one node")
        if self.release_step < 1:
            raise ValueError("release step must be >= 1")
        if self.service_time < 1:
            raise ValueError("service time must be >= 1")


# a schedule item: a bare path, (path, release), (path, release, service),
# or an explicit SimRequest
ScheduleItem = Union[Sequence[int], Tuple[Sequence[int], int],
                     Tuple[Sequence[int], int, int], SimRequest]


def normalize_schedule(schedule: Iterable[ScheduleItem]) -> List[SimRequest]:
    """Normalize the accepted schedule shapes to a list of :class:`SimRequest`.

    Each item may be a bare path (a sequence of node ids), a
    ``(path, release_step)`` pair, a ``(path, release_step, service_time)``
    triple, or an explicit :class:`SimRequest`.
    """
    out: List[SimRequest] = []
    for item in schedule:
        if isinstance(item, SimRequest):
            out.append(item)
            continue
        if not isinstance(item, Sequence):
            raise TypeError(f"schedule item {item!r} is not a path or tuple")
        if len(item) == 0:
            raise ValueError("packet path must contain at least one node")
        first = item[0]
        if isinstance(first, (int,)) and not isinstance(first, bool):
            out.append(SimRequest(tuple(item)))  # bare path
        elif isinstance(first, Sequence):
            path, rest = tuple(first), tuple(item[1:])
            if len(rest) == 1:
                out.append(SimRequest(path, int(rest[0])))
            elif len(rest) == 2:
                out.append(SimRequest(path, int(rest[0]), int(rest[1])))
            else:
                raise TypeError(
                    "tuple schedule items must be (path, release[, service])"
                )
        else:
            raise TypeError(f"schedule item {item!r} is not a path or tuple")
    return out


@dataclass(frozen=True)
class SimResult:
    """What one simulation run measured — identical fields for every engine.

    ``makespan`` is the step at which the last packet completed (0 for an
    empty or all-zero-hop schedule); ``done_steps`` lists each packet's
    completion step in schedule order; ``steps`` is how many simulated time
    steps the engine executed; ``recorder`` echoes back the sink passed to
    ``run`` (None when instrumentation was off).
    """

    makespan: int
    delivered: int
    injected: int
    steps: int
    done_steps: Tuple[int, ...]
    engine: str
    recorder: Optional[Any] = field(default=None, compare=False, repr=False)

    # the measured fields two engines must agree on to be *equivalent*
    # (``engine`` names the implementation and ``recorder`` is a sink, so
    # neither participates)
    MEASURED_FIELDS = ("makespan", "delivered", "injected", "steps", "done_steps")

    def measured(self) -> Dict[str, Any]:
        """The measured fields as a dict (the differential-testing view)."""
        return {name: getattr(self, name) for name in self.MEASURED_FIELDS}

    def diff_fields(self, other: "SimResult") -> Tuple[str, ...]:
        """Names of measured fields where ``self`` and ``other`` disagree."""
        return tuple(
            name
            for name in self.MEASURED_FIELDS
            if getattr(self, name) != getattr(other, name)
        )


@runtime_checkable
class Simulator(Protocol):
    """Anything that can run a packet schedule and report a :class:`SimResult`."""

    def run(
        self,
        schedule: Optional[Iterable[ScheduleItem]] = None,
        *,
        max_steps: int = 10_000_000,
        recorder: Optional[Any] = None,
    ) -> Any:  # SimResult for schedule runs; legacy int for the shim path
        ...
