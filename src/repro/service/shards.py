"""Shared-memory CSR shards — the serving substrate of ``route_batch``.

One *shard* is one embedding's full routing answer — the
:class:`~repro.core.fast_verify.PathCSR` arrays — published into a single
``multiprocessing.shared_memory`` segment: a fixed magic + JSON header
(schema version, the pathcode dtype contract, array extents, guest-edge
table, SHA-256 of the payload) followed by the 8-byte-aligned array bytes.
Workers :func:`attach` by name and map the arrays **zero-copy** with
``np.frombuffer`` over the segment — a Q_12 multipath shard is a few MB
mapped once, not pickled per request.  Attach re-hashes the payload and
refuses a corrupted segment with :class:`ShardIntegrityError`.

:class:`ShardManager` owns the segments one service process publishes:
create/attach/detach/unlink are serialized under one lock (lint R6 covers
this module), every segment is unlinked when the manager closes (or is
garbage-collected, via ``weakref.finalize``), and a host without a usable
``/dev/shm`` degrades to process-local shards — same `.csr` view, no
cross-process mapping — counted in ``shard_fallbacks``.

Attaching processes never *own* a segment: attach unregisters the mapping
from ``resource_tracker`` so a worker crash (or plain exit) cannot tear
down a segment the publisher is still serving from — the lifecycle tests
kill a worker mid-flight and assert the shard survives.
"""

from __future__ import annotations

import hashlib
import json
import struct
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.fast_verify import PathCSR
from repro.hypercube.pathcode import CSR_ARRAYS, csr_aligned
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SHARD_SCHEMA",
    "ShardIntegrityError",
    "ShardInfo",
    "ShardView",
    "ShardManager",
    "publish_csr",
    "attach_shard",
]

SHARD_SCHEMA = 1
_MAGIC = b"RPSHARD1"
_PREFIX = struct.Struct("<8sQ")  # magic, header length

# The serialized array contract and alignment now live in
# :mod:`repro.hypercube.pathcode` (shared with the on-disk artifact store);
# these aliases keep the shard module's historical names alive.
_ARRAY_CONTRACT = CSR_ARRAYS
_ALIGN = 8  # == pathcode.CSR_ALIGN; kept for introspecting tests


class ShardIntegrityError(RuntimeError):
    """A segment failed validation on attach (checksum/schema/dtype)."""


@dataclass(frozen=True)
class ShardInfo:
    """Metadata of one published shard."""

    name: str  # shared-memory segment name ("" for local shards)
    spec_key: str  # cache key of the embedding this shard serves
    backend: str  # "shm" or "local"
    nbytes: int  # payload bytes (arrays only)
    sha256: str  # hex digest of the payload
    num_bundles: int
    num_paths: int


def _encode_edges(edges: Tuple[Any, ...]) -> Any:
    def enc(v: Any) -> Any:
        if isinstance(v, tuple):
            return [enc(x) for x in v]
        return v

    return [enc(e) for e in edges]


def _decode_edges(doc: Any) -> Tuple[Any, ...]:
    def dec(v: Any) -> Any:
        if isinstance(v, list):
            return tuple(dec(x) for x in v)
        return v

    return tuple(dec(e) for e in doc)


def _aligned(n: int) -> int:
    return csr_aligned(n)


def _csr_arrays(csr: PathCSR) -> Tuple[np.ndarray, ...]:
    arrays = (csr.nodes, csr.path_offsets, csr.bundle_offsets, csr.path_reversed)
    return tuple(
        np.ascontiguousarray(a, dtype=dt)
        for a, (_, dt) in zip(arrays, _ARRAY_CONTRACT)
    )


def _payload_digest(buf: memoryview, start: int, end: int) -> str:
    return hashlib.sha256(buf[start:end]).hexdigest()


def publish_csr(
    csr: PathCSR, *, spec_key: str = "", name: Optional[str] = None
):
    """Write ``csr`` into a new shared-memory segment.

    Returns ``(shm, info)`` — the caller owns the segment (close + unlink).
    Layout: magic, header length, JSON header, then each contract array at
    an 8-byte-aligned offset.  The header's ``sha256`` covers exactly the
    payload region, so any flipped byte is caught on attach.
    """
    from multiprocessing import shared_memory

    arrays = _csr_arrays(csr)
    specs = []
    offset = 0  # relative to payload start
    for (field_name, dt), arr in zip(_ARRAY_CONTRACT, arrays):
        offset = _aligned(offset)
        specs.append(
            {
                "name": field_name,
                "dtype": dt.str,
                "size": int(arr.size),
                "offset": offset,
            }
        )
        offset += arr.nbytes
    payload = offset
    header = {
        "schema": SHARD_SCHEMA,
        "host_n": csr.host_n,
        "spec_key": spec_key,
        "payload": payload,
        "arrays": specs,
        "edges": _encode_edges(csr.edges),
    }
    # the digest and payload offset go into the header, so serialize twice:
    # once to size the region (reserving room for both), once for real
    head_blob = json.dumps(header, separators=(",", ":")).encode()
    digest_pad = 128  # > len of ,"sha256":"<64 hex>","data_start":<int>
    data_start = _aligned(_PREFIX.size + len(head_blob) + digest_pad)
    shm = shared_memory.SharedMemory(create=True, size=data_start + payload, name=name)
    buf = shm.buf
    for spec, arr in zip(specs, arrays):
        lo = data_start + spec["offset"]
        buf[lo : lo + arr.nbytes] = arr.tobytes()
    header["sha256"] = _payload_digest(buf, data_start, data_start + payload)
    header["data_start"] = data_start
    head_blob = json.dumps(header, separators=(",", ":")).encode()
    if _PREFIX.size + len(head_blob) > data_start:  # pragma: no cover - sized above
        raise AssertionError("shard header overran its reserved region")
    buf[: _PREFIX.size] = _PREFIX.pack(_MAGIC, len(head_blob))
    buf[_PREFIX.size : _PREFIX.size + len(head_blob)] = head_blob
    info = ShardInfo(
        name=shm.name,
        spec_key=spec_key,
        backend="shm",
        nbytes=payload,
        sha256=header["sha256"],
        num_bundles=csr.num_bundles,
        num_paths=csr.num_paths,
    )
    return shm, info


def _map_segment(shm) -> Tuple[PathCSR, ShardInfo]:
    """Validate a segment and map its arrays zero-copy into a PathCSR."""
    buf = shm.buf
    if bytes(buf[:8]) != _MAGIC:
        raise ShardIntegrityError(f"segment {shm.name!r} is not a repro shard")
    _, head_len = _PREFIX.unpack(bytes(buf[: _PREFIX.size]))
    try:
        header = json.loads(bytes(buf[_PREFIX.size : _PREFIX.size + head_len]))
    except ValueError as err:
        raise ShardIntegrityError(f"segment {shm.name!r}: bad header ({err})") from err
    if header.get("schema") != SHARD_SCHEMA:
        raise ShardIntegrityError(
            f"segment {shm.name!r}: schema {header.get('schema')!r} != {SHARD_SCHEMA}"
        )
    data_start = header["data_start"]
    payload = header["payload"]
    digest = _payload_digest(buf, data_start, data_start + payload)
    if digest != header["sha256"]:
        raise ShardIntegrityError(
            f"segment {shm.name!r}: payload checksum mismatch "
            f"({digest[:12]} != {header['sha256'][:12]})"
        )
    views: Dict[str, np.ndarray] = {}
    by_name = {s["name"]: s for s in header["arrays"]}
    for field_name, dt in _ARRAY_CONTRACT:
        spec = by_name.get(field_name)
        if spec is None or spec["dtype"] != dt.str:
            raise ShardIntegrityError(
                f"segment {shm.name!r}: array {field_name!r} violates the "
                f"dtype contract ({spec and spec['dtype']} != {dt.str})"
            )
        lo = data_start + spec["offset"]
        arr = np.frombuffer(buf, dtype=dt, count=spec["size"], offset=lo)
        arr.setflags(write=False)
        views[field_name] = arr
    csr = PathCSR(
        host_n=header["host_n"],
        edges=_decode_edges(header["edges"]),
        nodes=views["nodes"],
        path_offsets=views["path_offsets"],
        bundle_offsets=views["bundle_offsets"],
        path_reversed=views["path_reversed"],
    )
    info = ShardInfo(
        name=shm.name,
        spec_key=header.get("spec_key", ""),
        backend="shm",
        nbytes=payload,
        sha256=header["sha256"],
        num_bundles=csr.num_bundles,
        num_paths=csr.num_paths,
    )
    return csr, info


class ShardView:
    """A mapped shard: ``.csr`` resolves batches straight off the segment.

    ``close()`` drops the array views and detaches the mapping; it never
    unlinks — only the owning :class:`ShardManager` does that.
    """

    def __init__(self, csr: PathCSR, info: ShardInfo, shm=None) -> None:
        self.csr = csr
        self.info = info
        self._shm = shm

    def close(self) -> None:
        self.csr = None  # type: ignore[assignment]  # drop buffer exports
        if self._shm is not None:
            self._shm.close()
            self._shm = None


def attach_shard(name: str) -> ShardView:
    """Map an existing shard read-only (worker side).

    ``name`` is either a shared-memory segment name or — when it points at
    a file (the ``backend="file"`` shards of the memmapped artifact store)
    — a store path, which maps through ``numpy.memmap`` so attachers share
    the publisher's page-cache pages instead of a second copy.

    Segments are validated (magic/schema/dtype contract, payload re-hash)
    before returning.  The attachment is unregistered from
    ``resource_tracker``: attachers are guests, and a guest process dying
    — even by ``SIGKILL`` — must not reap a segment its publisher still
    serves from.
    """
    import os

    if os.sep in name or os.path.isfile(name):
        # a store file, not a segment; import lazily to keep the shard
        # layer importable without the store (and vice versa)
        from repro.service.store import open_store

        store = open_store(name)
        info = ShardInfo(
            name=name,
            spec_key=store.info.spec_key,
            backend="file",
            nbytes=store.info.nbytes,
            sha256=store.info.sha256,
            num_bundles=store.info.num_bundles,
            num_paths=store.info.num_paths,
        )
        return ShardView(store.csr, info)

    from multiprocessing import resource_tracker, shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:  # Python < 3.13 has no track=False; undo the implicit claim
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker impl detail
        pass
    try:
        csr, info = _map_segment(shm)
    except Exception:
        shm.close()
        raise
    return ShardView(csr, info, shm=shm)


class _OwnedShard:
    """Publisher-side record: the segment plus its local zero-copy view."""

    def __init__(self, shm, view: ShardView) -> None:
        self.shm = shm
        self.view = view

    def unlink(self) -> None:
        self.view.close()
        if self.shm is not None:
            self.shm.close()
            self.shm.unlink()
            self.shm = None


def _unlink_all(lock: threading.Lock, shards: Dict[str, _OwnedShard]) -> None:
    with lock:
        owned = list(shards.values())
        shards.clear()
    for shard in owned:
        try:
            shard.unlink()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


class ShardManager:
    """Publishes and owns the CSR shards of one serving process.

    ``get_or_publish(key, build)`` is the cache-aside entry the service
    uses per spec; workers use :meth:`attach` (a thin wrapper over
    :func:`attach_shard`) with the segment name from :meth:`info`.  All
    map mutations happen under one lock; the segment syscalls run outside
    it so a slow publish never blocks concurrent lookups.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        backend: str = "shm",
    ) -> None:
        if backend not in ("shm", "local"):
            raise ValueError(f"unknown shard backend {backend!r}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.backend = backend
        self._lock = threading.Lock()
        self._shards: Dict[str, _OwnedShard] = {}
        self._finalizer = weakref.finalize(
            self, _unlink_all, self._lock, self._shards
        )

    # -- publisher side ------------------------------------------------------

    def get(self, key: str) -> Optional[ShardView]:
        with self._lock:
            owned = self._shards.get(key)
        if owned is None:
            return None
        return owned.view

    def publish_mapped(
        self,
        key: str,
        csr: PathCSR,
        *,
        name: str = "",
        nbytes: Optional[int] = None,
        sha256: str = "",
    ) -> ShardView:
        """Serve an already-mapped CSR (e.g. a memmapped store file) as a shard.

        The instant-start path: the arrays are already zero-copy views over
        an artifact file, so copying them into a shared-memory segment
        would just duplicate hundreds of MB — the shard wraps the mapping
        as-is, with ``name`` carrying the file path worker processes hand
        to :meth:`attach`.
        """
        info = ShardInfo(
            name=name,
            spec_key=key,
            backend="file",
            nbytes=csr.nbytes() if nbytes is None else nbytes,
            sha256=sha256,
            num_bundles=csr.num_bundles,
            num_paths=csr.num_paths,
        )
        owned = _OwnedShard(None, ShardView(csr, info))
        with self._lock:
            winner = self._shards.setdefault(key, owned)
        if winner is not owned:  # lost a publish race; keep the first mapping
            owned.unlink()
        else:
            self.metrics.incr("shard_file_published")
        self._refresh_gauges()
        return winner.view

    def get_or_publish(self, key: str, build: Callable[[], PathCSR]) -> ShardView:
        """The mapped shard for ``key``, publishing it on first use."""
        with self._lock:
            owned = self._shards.get(key)
        if owned is not None:
            self.metrics.incr("shard_hits")
            return owned.view
        self.metrics.incr("shard_misses")
        csr = build()
        owned = self._publish(key, csr)
        with self._lock:
            winner = self._shards.setdefault(key, owned)
        if winner is not owned:  # lost a publish race; keep the first segment
            owned.unlink()
        self._refresh_gauges()
        return winner.view

    def _publish(self, key: str, csr: PathCSR) -> _OwnedShard:
        if self.backend == "shm":
            try:
                shm, _ = publish_csr(csr, spec_key=key)
            except OSError:
                self.metrics.incr("shard_fallbacks")
            else:
                mapped, info = _map_segment(shm)
                return _OwnedShard(shm, ShardView(mapped, info, shm=None))
        info = ShardInfo(
            name="",
            spec_key=key,
            backend="local",
            nbytes=csr.nbytes(),
            sha256="",
            num_bundles=csr.num_bundles,
            num_paths=csr.num_paths,
        )
        return _OwnedShard(None, ShardView(csr, info))

    def unlink(self, key: str) -> bool:
        """Tear down one shard (detach the local view, unlink the segment)."""
        with self._lock:
            owned = self._shards.pop(key, None)
        if owned is None:
            return False
        owned.unlink()
        self._refresh_gauges()
        return True

    def close(self) -> None:
        """Unlink every owned shard; the manager stays usable afterwards."""
        _unlink_all(self._lock, self._shards)
        self._refresh_gauges()

    # -- worker side ---------------------------------------------------------

    @staticmethod
    def attach(name: str) -> ShardView:
        return attach_shard(name)

    # -- observability -------------------------------------------------------

    def info(self) -> Dict[str, ShardInfo]:
        with self._lock:
            return {key: owned.view.info for key, owned in self._shards.items()}

    def _refresh_gauges(self) -> None:
        with self._lock:
            active = len(self._shards)
            total = sum(owned.view.info.nbytes for owned in self._shards.values())
        self.metrics.gauge("shards_active").set(active)
        self.metrics.gauge("shard_bytes").set(total)

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
