"""Binary memmapped artifact store — instant-start persistence for CSR shards.

The disk analogue of :mod:`repro.service.shards`: one *store file* is one
verified embedding's full routing answer, laid out exactly like a
shared-memory shard — ``[magic][header length][JSON header]`` followed by
the 8-byte-aligned :data:`~repro.hypercube.pathcode.CSR_ARRAYS` bytes — so
:func:`open_store` hydrates a :class:`~repro.core.fast_verify.PathCSR`
via ``numpy.memmap`` **zero-copy**: no rebuild, no JSON decode of a
million paths, no Python dicts.  A Q_20 artifact (hundreds of MB) opens
in milliseconds; the ~13s build+verify is paid exactly once, at admit.

Two extras distinguish a store file from a shard segment:

* **Packed edge lookup.**  Integer-vertex guests (the cycle families)
  additionally serialize their canonical-edge endpoints and the sorted
  :class:`~repro.core.fast_verify.EdgeLookup` arrays, so request
  resolution after open is one ``searchsorted`` over memmapped keys —
  building the dict index over 2^20 edges would alone blow the cold-start
  budget.  Tuple-vertex guests (grid/CCC/tree) keep their edges JSON in
  the header, exactly as shards do.
* **The embedding blob.**  The exact artifact text that was verified at
  build time rides behind the arrays, so the registry can materialize the
  full embedding object on demand — the fast path never touches it.

Integrity model: the header carries SHA-256 digests of the array payload
and of the blob, both computed at write time from bytes that passed
``verify()``.  :func:`open_store` always validates magic, schema, spec
key, package version, the dtype contract and every array's extent; the
payload digest is re-hashed eagerly when the payload is small
(``payload_verify="auto"``, bounded by ``EAGER_VERIFY_LIMIT``) — hashing
hundreds of MB would turn O(ms) opens back into O(s), so huge artifacts
defer the re-hash to :meth:`StoreView.verify_payload` (run by ``repro
cache migrate --verify`` and the QA ``cold_start_differential`` stage).
The blob digest is always checked when the blob is read: embedding
materialization never trusts unchecksummed bytes.

Writes are crash-safe: a per-process unique ``.tmp`` sibling is written,
fsynced, then atomically renamed over the destination.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.fast_verify import EdgeLookup, PathCSR, build_edge_lookup
from repro.hypercube.pathcode import (
    CSR_ARRAYS,
    CSR_FLAG_DTYPE,
    CSR_NODE_DTYPE,
    CSR_OFFSET_DTYPE,
    csr_aligned,
)

__all__ = [
    "EAGER_VERIFY_LIMIT",
    "STORE_SCHEMA",
    "STORE_SUFFIX",
    "PackedEdges",
    "StoreIntegrityError",
    "StoreInfo",
    "StoreView",
    "open_store",
    "read_store_header",
    "write_store",
]

STORE_SCHEMA = 1
STORE_SUFFIX = ".rpstore"
_MAGIC = b"RPSTORE1"
_PREFIX = struct.Struct("<8sQ")  # magic, header length

# ``payload_verify="auto"`` re-hashes the array payload on open only up to
# this size: a few-MB Q_12 artifact costs microseconds to check, a 378 MB
# Q_20 payload would cost ~0.5s — the exact cold-start cost this tier
# exists to delete.  Above the limit the payload digest is still stored
# and still checked, just on demand (migrate --verify, QA, tests).
EAGER_VERIFY_LIMIT = 32 * 1024 * 1024

# lookup arrays ride next to the contract arrays under their own names
_LOOKUP_ARRAYS: Tuple[Tuple[str, np.dtype], ...] = (
    ("edge_uv", CSR_NODE_DTYPE),
    ("lookup_keys", CSR_NODE_DTYPE),
    ("lookup_gids", CSR_OFFSET_DTYPE),
    ("lookup_flips", CSR_FLAG_DTYPE),
)


class StoreIntegrityError(RuntimeError):
    """A store file failed validation (schema/key/version/checksum/dtype)."""


@dataclass(frozen=True)
class StoreInfo:
    """Metadata of one store artifact."""

    path: str
    spec_key: str
    kind: str
    nbytes: int  # array payload bytes (header and blob excluded)
    sha256: str  # hex digest of the array payload
    blob_bytes: int
    num_bundles: int
    num_paths: int
    edges_mode: str  # "packed" or "json"


class PackedEdges:
    """Lazy tuple-of-edges view over a memmapped ``(n, 2)`` endpoint array.

    Building ``tuple((u, v), ...)`` for 2^20 bundles costs ~0.5s of pure
    Python — this stand-in satisfies everything the serving layer asks of
    ``PathCSR.edges`` (length, indexing, iteration) while materializing
    tuples only for the rows actually touched.
    """

    __slots__ = ("_uv",)

    def __init__(self, uv: np.ndarray) -> None:
        self._uv = uv

    def __len__(self) -> int:
        return int(self._uv.shape[0])

    def __getitem__(
        self, i: Union[int, slice]
    ) -> Union[Tuple[int, int], List[Tuple[int, int]]]:
        if isinstance(i, slice):
            return [(int(u), int(v)) for u, v in self._uv[i]]
        row = self._uv[i]
        return (int(row[0]), int(row[1]))

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for u, v in self._uv:
            yield (int(u), int(v))


def _encode_edges(edges: Any) -> Any:
    # recursive guest-edge codec, same shape as the shard header's
    def enc(v: Any) -> Any:
        if isinstance(v, tuple):
            return [enc(x) for x in v]
        return v

    return [enc(e) for e in edges]


def _decode_edges(doc: Any) -> Tuple[Any, ...]:
    def dec(v: Any) -> Any:
        if isinstance(v, list):
            return tuple(dec(x) for x in v)
        return v

    return tuple(dec(e) for e in doc)


def _edge_uv(edges: Any) -> Optional[np.ndarray]:
    """``(n, 2)`` int64 endpoints, or None when vertices are not plain ints."""
    if isinstance(edges, PackedEdges):
        return np.asarray(edges._uv, dtype=np.int64)
    try:
        uv = np.asarray(edges, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    if uv.ndim != 2 or uv.shape[1] != 2 or (uv.size and int(uv.min()) < 0):
        return None
    return uv


def _contract_arrays(csr: PathCSR) -> List[Tuple[str, np.dtype, np.ndarray]]:
    source = {
        "nodes": csr.nodes,
        "path_offsets": csr.path_offsets,
        "bundle_offsets": csr.bundle_offsets,
        "path_reversed": csr.path_reversed,
    }
    return [
        (name, dt, np.ascontiguousarray(source[name], dtype=dt))
        for name, dt in CSR_ARRAYS
    ]


def write_store(
    path: Union[str, Path],
    csr: PathCSR,
    blob_text: str,
    *,
    spec_key: str,
    kind: str,
    params: Optional[Dict[str, Any]] = None,
    package_version: str = "",
    construction: str = "",
    artifact_version: int = 1,
) -> StoreInfo:
    """Serialize ``csr`` (+ the verified artifact ``blob_text``) to ``path``.

    The write goes to a per-process unique ``.tmp`` sibling, is fsynced,
    and lands via ``os.replace`` — concurrent admits of the same key
    cannot tear each other's files and a crash leaves only a ``.tmp``
    orphan for :meth:`~repro.service.registry.EmbeddingRegistry.clear`
    to sweep.
    """
    path = Path(path)
    arrays = _contract_arrays(csr)
    uv = _edge_uv(csr.edges)
    lookup: Optional[EdgeLookup] = None
    if uv is not None:
        lookup = csr.lookup if csr.lookup is not None else build_edge_lookup(uv)
        arrays += [
            ("edge_uv", CSR_NODE_DTYPE, np.ascontiguousarray(uv.reshape(-1))),
            ("lookup_keys", CSR_NODE_DTYPE, lookup.keys),
            ("lookup_gids", CSR_OFFSET_DTYPE, lookup.gids),
            ("lookup_flips", CSR_FLAG_DTYPE, lookup.flips),
        ]

    specs: List[Dict[str, Any]] = []
    offset = 0  # relative to the payload start
    for name, dt, arr in arrays:
        offset = csr_aligned(offset)
        specs.append(
            {"name": name, "dtype": dt.str, "size": int(arr.size), "offset": offset}
        )
        offset += arr.nbytes
    payload = offset
    blob = blob_text.encode()
    header: Dict[str, Any] = {
        "schema": STORE_SCHEMA,
        "artifact_version": artifact_version,
        "spec_key": spec_key,
        "kind": kind,
        "params": params if params is not None else {},
        "package_version": package_version,
        "construction": construction,
        "host_n": csr.host_n,
        "payload": payload,
        "arrays": specs,
        "blob_bytes": len(blob),
        "blob_sha256": hashlib.sha256(blob).hexdigest(),
    }
    if uv is not None and lookup is not None:
        header["edges_mode"] = "packed"
        header["lookup_base"] = lookup.base
    else:
        header["edges_mode"] = "json"
        header["edges"] = _encode_edges(csr.edges)
    # digest/offsets go into the header, so serialize twice: once to size
    # the reserved region, once for real (the shard layout's trick)
    head_blob = json.dumps(header, separators=(",", ":")).encode()
    digest_pad = 192  # > ,"sha256":"..","data_start":N,"blob_offset":N
    data_start = csr_aligned(_PREFIX.size + len(head_blob) + digest_pad)
    blob_offset = data_start + csr_aligned(payload)

    tmp = path.with_name(f"{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp")
    path.parent.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256()
    try:
        with open(tmp, "wb") as fh:
            fh.write(b"\0" * data_start)
            pos = 0
            for spec, (_, _, arr) in zip(specs, arrays):
                gap = spec["offset"] - pos
                if gap:
                    fh.write(b"\0" * gap)
                    digest.update(b"\0" * gap)
                data = arr.tobytes()
                fh.write(data)
                digest.update(data)
                pos = spec["offset"] + arr.nbytes
            if blob_offset - data_start > pos:
                fh.write(b"\0" * (blob_offset - data_start - pos))
            fh.write(blob)
            header["sha256"] = digest.hexdigest()
            header["data_start"] = data_start
            header["blob_offset"] = blob_offset
            head_blob = json.dumps(header, separators=(",", ":")).encode()
            if _PREFIX.size + len(head_blob) > data_start:  # pragma: no cover
                raise AssertionError("store header overran its reserved region")
            fh.seek(0)
            fh.write(_PREFIX.pack(_MAGIC, len(head_blob)))
            fh.write(head_blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write must not leak its temp file
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return StoreInfo(
        path=str(path),
        spec_key=spec_key,
        kind=kind,
        nbytes=payload,
        sha256=header["sha256"],
        blob_bytes=len(blob),
        num_bundles=csr.num_bundles,
        num_paths=csr.num_paths,
        edges_mode=header["edges_mode"],
    )


def read_store_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse just the JSON header of a store file (no payload mapping).

    Cheap enough for listings over hundreds of artifacts; raises
    :class:`StoreIntegrityError` on a bad magic or header, ``OSError``
    on filesystem trouble.
    """
    path = Path(path)
    size = path.stat().st_size
    with open(path, "rb") as fh:
        prefix = fh.read(_PREFIX.size)
        if len(prefix) < _PREFIX.size or prefix[:8] != _MAGIC:
            raise StoreIntegrityError(f"{path} is not a repro store file")
        _, head_len = _PREFIX.unpack(prefix)
        if _PREFIX.size + head_len > size:
            raise StoreIntegrityError(f"{path}: truncated header")
        head_blob = fh.read(head_len)
    try:
        header = json.loads(head_blob)
    except ValueError as err:
        raise StoreIntegrityError(f"{path}: bad header ({err})") from err
    if not isinstance(header, dict):
        raise StoreIntegrityError(f"{path}: header is not an object")
    return header


def _resolve_verify_mode(payload_verify: Optional[str]) -> str:
    mode = payload_verify or os.environ.get("REPRO_STORE_VERIFY") or "auto"
    if mode not in ("auto", "eager", "lazy"):
        raise ValueError(f"unknown payload_verify mode {mode!r}")
    return mode


class StoreView:
    """A memmapped store artifact: ``.csr`` serves straight off the file.

    Holds one read-only ``numpy.memmap`` over the whole file; every CSR
    array (and the packed edge lookup) is a zero-copy view into it.
    ``close()`` drops the views and the mapping.
    """

    def __init__(
        self,
        path: Path,
        header: Dict[str, Any],
        csr: PathCSR,
        info: StoreInfo,
        mm: np.ndarray,
    ) -> None:
        self.path = path
        self.header = header
        self.csr = csr
        self.info = info
        self._mm: Optional[np.ndarray] = mm

    def verify_payload(self) -> None:
        """Re-hash the full array payload against the header digest.

        The on-demand half of the ``auto`` verification mode; raises
        :class:`StoreIntegrityError` on mismatch.
        """
        if self._mm is None:
            raise StoreIntegrityError(f"{self.path}: view is closed")
        lo = int(self.header["data_start"])
        hi = lo + int(self.header["payload"])
        digest = hashlib.sha256(self._mm[lo:hi]).hexdigest()
        if digest != self.header["sha256"]:
            raise StoreIntegrityError(
                f"{self.path}: payload checksum mismatch "
                f"({digest[:12]} != {self.header['sha256'][:12]})"
            )

    def blob_text(self) -> str:
        """The artifact text serialized at admit time (always checksummed)."""
        if self._mm is None:
            raise StoreIntegrityError(f"{self.path}: view is closed")
        lo = int(self.header["blob_offset"])
        hi = lo + int(self.header["blob_bytes"])
        blob = bytes(self._mm[lo:hi])
        digest = hashlib.sha256(blob).hexdigest()
        if digest != self.header["blob_sha256"]:
            raise StoreIntegrityError(
                f"{self.path}: blob checksum mismatch "
                f"({digest[:12]} != {self.header['blob_sha256'][:12]})"
            )
        return blob.decode()

    def close(self) -> None:
        self.csr = None  # type: ignore[assignment]  # drop array views
        self._mm = None


def open_store(
    path: Union[str, Path],
    *,
    expect_key: Optional[str] = None,
    expect_package_version: Optional[str] = None,
    expect_artifact_version: Optional[int] = None,
    payload_verify: Optional[str] = None,
) -> StoreView:
    """Map a store file zero-copy into a served :class:`PathCSR`.

    Always validates magic, schema, header integrity, the dtype contract,
    and every array extent against the actual file size; ``expect_*``
    pins spec key / package version / artifact version (the registry's
    staleness checks).  ``payload_verify`` is ``"auto"`` (default, also
    via ``$REPRO_STORE_VERIFY``), ``"eager"`` or ``"lazy"`` — see the
    module docstring for the trade.  Filesystem errors surface as
    ``OSError`` (transient, the file may be fine); validation failures
    raise :class:`StoreIntegrityError` (the file is bad or stale).
    """
    path = Path(path)
    mode = _resolve_verify_mode(payload_verify)
    size = path.stat().st_size
    with open(path, "rb") as fh:
        prefix = fh.read(_PREFIX.size)
        if len(prefix) < _PREFIX.size or prefix[:8] != _MAGIC:
            raise StoreIntegrityError(f"{path} is not a repro store file")
        _, head_len = _PREFIX.unpack(prefix)
        if _PREFIX.size + head_len > size:
            raise StoreIntegrityError(f"{path}: truncated header")
        head_blob = fh.read(head_len)
    try:
        header = json.loads(head_blob)
    except ValueError as err:
        raise StoreIntegrityError(f"{path}: bad header ({err})") from err
    if header.get("schema") != STORE_SCHEMA:
        raise StoreIntegrityError(
            f"{path}: schema {header.get('schema')!r} != {STORE_SCHEMA}"
        )
    if expect_key is not None and header.get("spec_key") != expect_key:
        raise StoreIntegrityError(f"{path}: spec key mismatch")
    if (
        expect_artifact_version is not None
        and header.get("artifact_version") != expect_artifact_version
    ):
        raise StoreIntegrityError(f"{path}: artifact version mismatch")
    if (
        expect_package_version is not None
        and header.get("package_version") != expect_package_version
    ):
        raise StoreIntegrityError(f"{path}: package version mismatch")
    data_start = int(header.get("data_start", 0))
    payload = int(header.get("payload", 0))
    blob_end = int(header.get("blob_offset", 0)) + int(header.get("blob_bytes", 0))
    if data_start + payload > size or blob_end > size:
        raise StoreIntegrityError(f"{path}: truncated payload")

    mm = np.memmap(path, dtype=np.uint8, mode="r")
    views: Dict[str, np.ndarray] = {}
    by_name = {s["name"]: s for s in header.get("arrays", ())}
    contract = CSR_ARRAYS + (
        _LOOKUP_ARRAYS if header.get("edges_mode") == "packed" else ()
    )
    for field_name, dt in contract:
        spec = by_name.get(field_name)
        if spec is None or spec["dtype"] != dt.str:
            raise StoreIntegrityError(
                f"{path}: array {field_name!r} violates the dtype contract "
                f"({spec and spec['dtype']} != {dt.str})"
            )
        lo = data_start + int(spec["offset"])
        nbytes = int(spec["size"]) * dt.itemsize
        if lo + nbytes > size:
            raise StoreIntegrityError(f"{path}: array {field_name!r} truncated")
        views[field_name] = mm[lo : lo + nbytes].view(dt)

    edges: Any
    lookup: Optional[EdgeLookup] = None
    if header.get("edges_mode") == "packed":
        uv = views["edge_uv"].reshape(-1, 2)
        edges = PackedEdges(uv)
        lookup = EdgeLookup(
            base=int(header["lookup_base"]),
            keys=views["lookup_keys"],
            gids=views["lookup_gids"],
            flips=views["lookup_flips"],
        )
    else:
        edges = _decode_edges(header.get("edges", ()))

    csr = PathCSR(
        host_n=int(header["host_n"]),
        edges=edges,
        nodes=views["nodes"],
        path_offsets=views["path_offsets"],
        bundle_offsets=views["bundle_offsets"],
        path_reversed=views["path_reversed"],
        lookup=lookup,
    )
    info = StoreInfo(
        path=str(path),
        spec_key=header.get("spec_key", ""),
        kind=header.get("kind", ""),
        nbytes=payload,
        sha256=header.get("sha256", ""),
        blob_bytes=int(header.get("blob_bytes", 0)),
        num_bundles=csr.num_bundles,
        num_paths=csr.num_paths,
        edges_mode=header.get("edges_mode", "json"),
    )
    view = StoreView(path, header, csr, info, mm)
    if mode == "eager" or (mode == "auto" and payload <= EAGER_VERIFY_LIMIT):
        view.verify_payload()
    return view
