"""Concurrent batch construction of embeddings.

Independent constructions (a sweep of ``n``, or a mixed
cycle/grid/CCC/tree workload) are embarrassingly parallel, so the engine
fans cache misses out to a ``ProcessPoolExecutor``.  Each worker builds
the construction, **verifies** it (`.verify()` — the same invariants the
theorems certify), and returns the encoded artifact text; only verified
artifacts are admitted to the registry.

Requests for the same cache key are deduplicated twice: within a batch
(one build per unique key) and across concurrent callers (an in-flight
table shares the pending future instead of building again).

Environments where process pools are unavailable (restricted sandboxes)
degrade gracefully to in-process serial builds — same results, no
parallelism.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.service.registry import EmbeddingRegistry, make_artifact
from repro.service.specs import EmbeddingSpec, build_spec

__all__ = ["BuildEngine", "build_artifact_text"]


def build_artifact_text(spec: EmbeddingSpec) -> str:
    """Worker entry point: build + verify + encode one artifact.

    Module-level so it pickles to worker processes; returns text rather
    than the embedding object to keep inter-process traffic cheap and to
    guarantee what lands on disk is exactly what was verified.
    """
    emb = build_spec(spec)
    emb.verify()
    return make_artifact(spec, emb)


class BuildEngine:
    """Fan out cache-missing constructions to worker processes."""

    def __init__(
        self,
        registry: EmbeddingRegistry,
        max_workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry
        self.max_workers = max_workers
        self.metrics = metrics if metrics is not None else registry.metrics
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}

    def build_batch(
        self, specs: Iterable[EmbeddingSpec], parallel: bool = True
    ) -> List:
        """Resolve every spec (cache hit or fresh build); preserves order.

        Duplicate specs in the batch resolve to one build.  Worker
        exceptions (bad parameters, failed verification) propagate to the
        caller after the rest of the batch settles.
        """
        specs = list(specs)
        unique: Dict[str, EmbeddingSpec] = {}
        for s in specs:
            key = s.cache_key()
            if key in unique:
                self.metrics.incr("batch_dedup")
            else:
                unique[key] = s

        resolved: Dict[str, object] = {}
        to_build: Dict[str, EmbeddingSpec] = {}
        for key, s in unique.items():
            emb = self.registry.get(s)
            if emb is not None:
                resolved[key] = emb
            else:
                to_build[key] = s

        if to_build:
            built = None
            if parallel and self.max_workers != 0 and len(to_build) > 1:
                built = self._build_parallel(to_build)
            if built is None:
                for key, s in to_build.items():
                    resolved[key] = self.registry.get_or_build(s)
            else:
                resolved.update(built)

        return [resolved[s.cache_key()] for s in specs]

    def warm(self, specs: Iterable[EmbeddingSpec], parallel: bool = True) -> int:
        """Prefetch a batch into the cache; returns the batch size."""
        return len(self.build_batch(specs, parallel=parallel))

    # -- internals ---------------------------------------------------------------

    def _build_parallel(
        self, to_build: Dict[str, EmbeddingSpec]
    ) -> Optional[Dict[str, object]]:
        workers = self.max_workers or min(len(to_build), os.cpu_count() or 2)
        try:
            executor = ProcessPoolExecutor(max_workers=workers)
        except Exception:
            self.metrics.incr("pool_unavailable")
            return None
        futures: Dict[str, Future] = {}
        owned: List[str] = []
        results: Dict[str, object] = {}
        error: Optional[BaseException] = None
        try:
            with executor:
                with self._lock:
                    for key, s in to_build.items():
                        fut = self._inflight.get(key)
                        if fut is None:
                            fut = executor.submit(build_artifact_text, s)
                            self._inflight[key] = fut
                            owned.append(key)
                        else:
                            self.metrics.incr("inflight_dedup")
                        futures[key] = fut
                with self.metrics.time("parallel_batch"):
                    for key, fut in futures.items():
                        try:
                            text = fut.result()
                        except BaseException as err:  # noqa: BLE001
                            self.metrics.incr("build_errors")
                            error = error or err
                            continue
                        spec = to_build[key]
                        results[key] = self.registry.admit_artifact(spec, text)
                        self.metrics.incr("builds")
        finally:
            with self._lock:
                for key in owned:
                    self._inflight.pop(key, None)
        if error is not None:
            raise error
        return results
