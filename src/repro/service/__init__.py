"""repro.service — cached embedding registry + routing-request engine.

The serving layer over :mod:`repro.core` / :mod:`repro.routing` /
:mod:`repro.fault`: constructions are deterministic and dominate runtime,
so the service memoizes them (memory LRU over a checksummed disk tier),
builds cache misses concurrently in worker processes, and answers routing
requests — plain and fault-tolerant — over the precomputed edge-disjoint
path sets.

Quickstart::

    from repro.service import EmbeddingSpec, RoutingService

    svc = RoutingService()
    spec = EmbeddingSpec.make("cycle", n=8)
    emb = svc.get_embedding(spec)          # built once, cached forever
    paths = svc.route(spec, (0, 1))        # w edge-disjoint host paths
    out = svc.route_fault_tolerant(spec, (0, 1), b"payload")
    print(svc.stats())

Modules:

* :mod:`repro.service.specs`    — request vocabulary + cache keys;
* :mod:`repro.service.registry` — two-tier content-addressed cache;
* :mod:`repro.service.engine`   — concurrent batch construction;
* :mod:`repro.service.api`     — the :class:`RoutingService` facade;
* :mod:`repro.service.metrics` — deprecated shim; metrics now live on
  :class:`repro.obs.MetricsRegistry`, which the whole layer threads through
  registry/engine/facade.
"""

from repro.service.api import DeliveryOutcome, FaultSet, RoutingService, disjoint_paths
from repro.service.engine import BuildEngine
from repro.service.metrics import ServiceMetrics  # lint: deprecated-ok(re-exported shim surface)
from repro.service.registry import (
    EmbeddingRegistry,
    decode_embedding,
    default_cache_dir,
    encode_embedding,
)
from repro.service.specs import CONSTRUCTION_VERSION, EmbeddingSpec, build_spec

__all__ = [
    "BuildEngine",
    "CONSTRUCTION_VERSION",
    "DeliveryOutcome",
    "EmbeddingRegistry",
    "EmbeddingSpec",
    "FaultSet",
    "RoutingService",
    "ServiceMetrics",
    "build_spec",
    "decode_embedding",
    "default_cache_dir",
    "disjoint_paths",
    "encode_embedding",
]
