"""repro.service — cached embedding registry + batch routing engine.

The serving layer over :mod:`repro.core` / :mod:`repro.routing` /
:mod:`repro.fault`: constructions are deterministic and dominate runtime,
so the service memoizes them (memory LRU over a checksummed disk tier),
builds cache misses concurrently in worker processes, publishes each
embedding's flat CSR path arrays as a checksummed shared-memory *shard*,
and answers routing requests — batched, plain and fault-tolerant — by
numpy gathers against those shards.

Quickstart::

    from repro.service import EmbeddingSpec, RouteRequest, RoutingService

    svc = RoutingService()
    spec = EmbeddingSpec.make("cycle", n=8)
    emb = svc.get_embedding(spec)            # built once, cached forever
    batch = svc.route_batch(spec, [(0, 1), (2, 1)])   # vectorized resolve
    print(batch[0].paths)                    # w edge-disjoint host paths
    one = svc.route(spec, RouteRequest((0, 1)))       # single-item wrapper
    out = svc.route_fault_tolerant(spec, RouteRequest((0, 1), b"payload"))
    print(svc.stats())

Modules:

* :mod:`repro.service.specs`    — request/response vocabulary + cache keys;
* :mod:`repro.service.registry` — content-addressed cache tiers;
* :mod:`repro.service.store`    — binary memmapped artifact files;
* :mod:`repro.service.engine`   — concurrent batch construction;
* :mod:`repro.service.shards`   — shared-memory CSR shards + manager;
* :mod:`repro.service.frontend` — batching ``serve()`` loop + load harness;
* :mod:`repro.service.api`      — the :class:`RoutingService` facade;
* :mod:`repro.service.metrics`  — deprecated shim; metrics now live on
  :class:`repro.obs.MetricsRegistry`, which the whole layer threads through
  registry/engine/facade.
"""

from typing import Any

from repro.service.api import DeliveryOutcome, RoutingService, disjoint_paths
from repro.service.engine import BuildEngine
from repro.service.frontend import BatchingFrontend, LoadReport, open_loop_load, serve
from repro.service.metrics import ServiceMetrics  # lint: deprecated-ok(re-exported shim surface)
from repro.service.registry import (
    EmbeddingRegistry,
    decode_embedding,
    default_cache_dir,
    encode_embedding,
)
from repro.service.shards import (
    ShardIntegrityError,
    ShardManager,
    ShardView,
    attach_shard,
)
from repro.service.store import (
    StoreIntegrityError,
    StoreView,
    open_store,
    write_store,
)
from repro.service.specs import (
    CONSTRUCTION_VERSION,
    BatchRouteResult,
    EmbeddingSpec,
    RouteRequest,
    RouteResponse,
    build_spec,
)

__all__ = [
    "BatchRouteResult",
    "BatchingFrontend",
    "BuildEngine",
    "CONSTRUCTION_VERSION",
    "DeliveryOutcome",
    "EmbeddingRegistry",
    "EmbeddingSpec",
    "FaultSet",
    "LoadReport",
    "RouteRequest",
    "RouteResponse",
    "RoutingService",
    "ServiceMetrics",
    "ShardIntegrityError",
    "ShardManager",
    "ShardView",
    "StoreIntegrityError",
    "StoreView",
    "attach_shard",
    "build_spec",
    "decode_embedding",
    "default_cache_dir",
    "disjoint_paths",
    "encode_embedding",
    "open_loop_load",
    "open_store",
    "serve",
    "write_store",
]


def __getattr__(name: str) -> Any:
    if name == "FaultSet":
        # the deprecation warning lives in repro.service.api.__getattr__
        from repro.service import api

        return api.FaultSet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
